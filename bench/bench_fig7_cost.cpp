// Figure 7: total online tuning time (configuration evaluation +
// recommendation) per workload-input pair, with the recommendation-time
// breakdown the paper marks in black. Lower is better; averaged over 3
// offline seeds. Paper headline: DeepCAT uses 24.64% less total time than
// CDBTune on average (up to 50.08%) and 39.71% less than OtterTune (up to
// 53.39%); recommendation time per 5-step session is ~0.69 s (DeepCAT) /
// 0.25 s (CDBTune) / 43.25 s (OtterTune, dominated by GP retraining).
#include <iostream>

#include "bench_comparison.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace deepcat;
  const auto results = bench::run_averaged_comparison(
      bench::all_case_ids(), bench::comparison_seeds());

  common::Table t(
      "Figure 7: total online tuning time, avg over offline seeds (rec = "
      "recommendation share)");
  t.header({"case", "DeepCAT total(s)", "DeepCAT rec(s)", "CDBTune total(s)",
            "CDBTune rec(s)", "OtterTune total(s)", "OtterTune rec(s)"});
  std::vector<double> save_vs_cdb, save_vs_ot;
  common::RunningStats dc_rec, cdb_rec, ot_rec;
  for (const auto& r : results) {
    const double dc = r.deepcat.total_tuning;
    const double cdb = r.cdbtune.total_tuning;
    const double ot = r.ottertune.total_tuning;
    save_vs_cdb.push_back((cdb - dc) / cdb);
    save_vs_ot.push_back((ot - dc) / ot);
    dc_rec.add(r.deepcat.total_recommendation);
    cdb_rec.add(r.cdbtune.total_recommendation);
    ot_rec.add(r.ottertune.total_recommendation);
    t.row({r.case_id, common::cell(dc, 1),
           common::cell(r.deepcat.total_recommendation, 2),
           common::cell(cdb, 1),
           common::cell(r.cdbtune.total_recommendation, 2),
           common::cell(ot, 1),
           common::cell(r.ottertune.total_recommendation, 2)});
  }
  t.print(std::cout);

  std::cout << "\nDeepCAT total-tuning-time saving vs CDBTune: avg "
            << common::percent_cell(common::mean(save_vs_cdb), 2) << ", max "
            << common::percent_cell(common::max_of(save_vs_cdb), 2)
            << "  (paper: avg 24.64%, up to 50.08%)\n";
  std::cout << "DeepCAT total-tuning-time saving vs OtterTune: avg "
            << common::percent_cell(common::mean(save_vs_ot), 2) << ", max "
            << common::percent_cell(common::max_of(save_vs_ot), 2)
            << "  (paper: avg 39.71%, up to 53.39%)\n";
  std::cout << "\nRecommendation time per 5-step session (avg):\n"
            << "  DeepCAT   " << common::cell(dc_rec.mean(), 3)
            << " s  (paper: 0.69 s)\n"
            << "  CDBTune   " << common::cell(cdb_rec.mean(), 3)
            << " s  (paper: 0.25 s)\n"
            << "  OtterTune " << common::cell(ot_rec.mean(), 3)
            << " s  (paper: 43.25 s; same shape — GP retraining dominates)\n";
  return 0;
}
