// Shared setup for the experiment harnesses: standard offline-training
// schedules, seeded tuner factories, and model snapshot/restore so one
// offline model can serve several independent online-tuning runs (the
// paper trains the DRL model once and reuses it, §2).
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

#include "common/thread_pool.hpp"
#include "sparksim/environment.hpp"
#include "tuners/cdbtune.hpp"
#include "tuners/deepcat.hpp"
#include "tuners/ottertune.hpp"

namespace deepcat::bench {

/// Offline schedule used across benches (our simulator evaluates a config
/// in microseconds; the paper spent 3-4 days on a real cluster). 1200
/// iterations sits just past TD3+RDPER's convergence knee and before the
/// baselines' (Fig. 4), matching the paper's fixed-budget protocol.
inline constexpr std::size_t kOfflineIters = 1200;
/// "Thousands of offline samples" (paper §4.4): 4 workloads x 1000.
inline constexpr std::size_t kOtterTuneSamplesPerWorkload = 1000;
inline constexpr int kOnlineSteps = 5;  // per CDBTune / the paper §4.4

/// Process-wide worker pool for the experiment harnesses. Size comes from
/// DEEPCAT_BENCH_THREADS when set (useful both to raise it on big machines
/// and to pin it to 1 when checking parallel == serial); otherwise
/// hardware concurrency. All harness parallelism is structured so figure
/// data does not depend on this pool's size.
inline common::ThreadPool& shared_pool() {
  static common::ThreadPool pool([] {
    if (const char* env = std::getenv("DEEPCAT_BENCH_THREADS")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};  // 0 = hardware concurrency
  }());
  return pool;
}

inline sparksim::TuningEnvironment make_env(const sparksim::HiBenchCase& c,
                                            std::uint64_t seed,
                                            sparksim::ClusterSpec cluster =
                                                sparksim::cluster_a()) {
  return sparksim::TuningEnvironment(std::move(cluster),
                                     sparksim::workload_for(c), {.seed = seed});
}

inline tuners::DeepCatOptions deepcat_options(std::uint64_t seed) {
  tuners::DeepCatOptions o;
  o.seed = seed;
  return o;
}

inline tuners::CdbTuneOptions cdbtune_options(std::uint64_t seed) {
  tuners::CdbTuneOptions o;
  o.seed = seed;
  return o;
}

/// Trains a DeepCAT model on the given "standard environment" case.
inline tuners::DeepCatTuner trained_deepcat(const sparksim::HiBenchCase& c,
                                            std::uint64_t seed,
                                            std::size_t iters = kOfflineIters) {
  tuners::DeepCatTuner tuner(deepcat_options(seed));
  sparksim::TuningEnvironment env = make_env(c, seed * 7919 + 13);
  (void)tuner.train_offline(env, iters);
  return tuner;
}

inline tuners::CdbTuneTuner trained_cdbtune(const sparksim::HiBenchCase& c,
                                            std::uint64_t seed,
                                            std::size_t iters = kOfflineIters) {
  tuners::CdbTuneTuner tuner(cdbtune_options(seed));
  sparksim::TuningEnvironment env = make_env(c, seed * 7919 + 17);
  tuner.train_offline(env, iters);
  return tuner;
}

/// Seeds OtterTune with random observations from every distinct workload
/// type in the suite (the paper feeds it thousands of offline samples).
inline tuners::OtterTuneTuner seeded_ottertune(std::uint64_t seed) {
  tuners::OtterTuneOptions options;
  options.seed = seed;
  // Trimmed hyperparameter grid / candidate pool keep the bench wall-clock
  // reasonable; GP retraining still dominates OtterTune's recommendation
  // time by an order of magnitude (Fig. 7's breakdown).
  options.length_scale_grid = {1.0, 1.8};
  options.candidate_pool = 600;
  tuners::OtterTuneTuner tuner(options);
  std::uint64_t env_seed = seed * 104729 + 3;
  for (const char* id : {"WC-D2", "TS-D2", "PR-D2", "KM-D2"}) {
    const auto& c = sparksim::hibench_case(id);
    sparksim::TuningEnvironment env = make_env(c, env_seed++);
    tuner.collect_observations(env, id, kOtterTuneSamplesPerWorkload);
  }
  return tuner;
}

/// Weight snapshot for reusing one offline model across independent runs.
class ModelSnapshot {
 public:
  explicit ModelSnapshot(tuners::DeepCatTuner& tuner) { tuner.save(stream_); }
  void restore(tuners::DeepCatTuner& tuner) {
    stream_.clear();
    stream_.seekg(0);
    tuner.load(stream_);
  }

 private:
  std::stringstream stream_;
};

}  // namespace deepcat::bench
