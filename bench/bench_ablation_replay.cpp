// Design-choice ablation (DESIGN.md §5): the same TD3 agent trained with
// three replay schemes — conventional uniform replay, TD-error PER
// (Schaul et al., what CDBTune pairs with DDPG), and DeepCAT's RDPER —
// each evaluated by the best configuration its model recommends online.
// Complements Fig. 4 (which ablates RDPER against uniform replay only).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "rl/replay_per.hpp"

namespace {

using namespace deepcat;
using namespace deepcat::sparksim;

double evaluate_model(tuners::DeepCatTuner& tuner) {
  bench::ModelSnapshot snapshot(tuner);
  double best = 0.0;
  constexpr int kSessions = 3;
  for (int s = 0; s < kSessions; ++s) {
    TuningEnvironment env = bench::make_env(
        hibench_case("TS-D1"), 5000 + static_cast<std::uint64_t>(s) * 131);
    best += tuner.tune(env, bench::kOnlineSteps).best_time / kSessions;
    snapshot.restore(tuner);
  }
  return best;
}

// TD3 + TD-error PER is not a stock DeepCatTuner configuration; train the
// agent manually against the environment with a PrioritizedReplay buffer,
// mirroring DeepCatTuner::train_offline's loop.
double td3_with_per(std::uint64_t seed, std::size_t iterations) {
  common::Rng rng(seed);
  TuningEnvironment env = bench::make_env(hibench_case("TS-D1"), seed);
  rl::Td3Config config;
  config.state_dim = env.state_dim();
  config.action_dim = env.action_dim();
  config.gamma = 0.4;
  rl::Td3Agent agent(config, rng);
  rl::PrioritizedReplay replay(100'000);

  std::vector<double> state = env.reset();
  for (std::size_t it = 0; it < iterations; ++it) {
    std::vector<double> action;
    if (replay.size() < 64) {
      action.resize(env.action_dim());
      for (double& a : action) a = rng.uniform();
    } else {
      action = agent.act_noisy(state, 0.25, rng);
    }
    const StepResult res = env.step(action);
    replay.add({state, action, res.reward, res.state, (it + 1) % 5 == 0});
    if (replay.size() >= config.batch_size) {
      (void)agent.train_step(replay, rng);
    }
    state = res.state;
  }

  // Online: 5 deterministic recommendations, fine-tuning disabled for the
  // manual agent (the comparison targets offline replay quality).
  double best_avg = 0.0;
  constexpr int kSessions = 3;
  for (int s = 0; s < kSessions; ++s) {
    TuningEnvironment tune_env = bench::make_env(
        hibench_case("TS-D1"), 5000 + static_cast<std::uint64_t>(s) * 131);
    std::vector<double> st = tune_env.reset();
    double best = tune_env.default_time();
    for (int step = 0; step < bench::kOnlineSteps; ++step) {
      const StepResult res = tune_env.step(agent.act(st));
      if (res.success) best = std::min(best, res.exec_seconds);
      st = res.state;
    }
    best_avg += best / kSessions;
  }
  return best_avg;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 44;
  common::Table t(
      "Ablation: TD3 replay scheme vs best online-recommended execution "
      "time (TeraSort 3.2 GB, " +
      std::to_string(bench::kOfflineIters) + " offline iterations)");
  t.header({"replay scheme", "best exec time (s)"});

  {
    tuners::DeepCatOptions o = bench::deepcat_options(kSeed);
    o.use_rdper = false;
    tuners::DeepCatTuner tuner(o);
    TuningEnvironment env = bench::make_env(hibench_case("TS-D1"), kSeed);
    (void)tuner.train_offline(env, bench::kOfflineIters);
    t.row({"uniform (conventional)", common::cell(evaluate_model(tuner), 1)});
  }
  t.row({"TD-error PER (Schaul et al.)",
         common::cell(td3_with_per(kSeed, bench::kOfflineIters), 1)});
  {
    tuners::DeepCatOptions o = bench::deepcat_options(kSeed);
    tuners::DeepCatTuner tuner(o);
    TuningEnvironment env = bench::make_env(hibench_case("TS-D1"), kSeed);
    (void)tuner.train_offline(env, bench::kOfflineIters);
    t.row({"RDPER (DeepCAT)", common::cell(evaluate_model(tuner), 1)});
  }
  t.print(std::cout);
  std::cout << "\n(paper §3.3: TD-error prioritization chases environment "
               "information; reward-driven prioritization chases the "
               "sparse close-to-optimal transitions the tuning objective "
               "actually cares about)\n";
  return 0;
}
