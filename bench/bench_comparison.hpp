// The shared experiment behind Figures 6, 7 and 8: offline-train DeepCAT
// and CDBTune once on a standard environment (TS-D2), seed OtterTune's
// observation repository, then serve each workload-input pair as an
// independent online tuning request (model weights restored between
// requests, matching the paper's one-model-many-requests protocol).
#pragma once

#include <string>
#include <vector>

#include "bench_util.hpp"

namespace deepcat::bench {

struct ComparisonResult {
  std::string case_id;
  tuners::TuningReport deepcat;
  tuners::TuningReport cdbtune;
  tuners::TuningReport ottertune;
};

inline std::vector<ComparisonResult> run_suite_comparison(
    const std::vector<std::string>& case_ids, std::uint64_t seed) {
  tuners::DeepCatTuner deepcat =
      trained_deepcat(sparksim::hibench_case("TS-D2"), seed);
  tuners::CdbTuneTuner cdbtune =
      trained_cdbtune(sparksim::hibench_case("TS-D2"), seed);
  tuners::OtterTuneTuner ottertune = seeded_ottertune(seed);

  std::stringstream deepcat_weights, cdbtune_weights;
  deepcat.save(deepcat_weights);
  cdbtune.save(cdbtune_weights);
  auto rewind = [](std::stringstream& ss) {
    ss.clear();
    ss.seekg(0);
  };

  std::vector<ComparisonResult> results;
  std::uint64_t env_seed = seed * 31 + 100;
  for (const auto& id : case_ids) {
    const auto& c = sparksim::hibench_case(id);
    ComparisonResult r;
    r.case_id = id;
    {
      sparksim::TuningEnvironment env = make_env(c, env_seed);
      r.deepcat = deepcat.tune(env, kOnlineSteps);
      rewind(deepcat_weights);
      deepcat.load(deepcat_weights);
    }
    {
      sparksim::TuningEnvironment env = make_env(c, env_seed);
      r.cdbtune = cdbtune.tune(env, kOnlineSteps);
      rewind(cdbtune_weights);
      cdbtune.load(cdbtune_weights);
    }
    {
      sparksim::TuningEnvironment env = make_env(c, env_seed);
      r.ottertune = ottertune.tune(env, kOnlineSteps);
    }
    ++env_seed;
    results.push_back(std::move(r));
  }
  return results;
}

inline std::vector<std::string> all_case_ids() {
  std::vector<std::string> ids;
  for (const auto& c : sparksim::hibench_suite()) ids.push_back(c.id);
  return ids;
}

/// Seed-averaged view of one case's three tuning sessions. Offline model
/// quality varies run to run (exactly as retraining on a real cluster
/// would); figures average over independent offline seeds.
struct AveragedCase {
  std::string case_id;
  double default_time = 0.0;
  struct PerTuner {
    double best_time = 0.0;
    double total_tuning = 0.0;
    double total_recommendation = 0.0;
    double step_best[8] = {};  ///< best-so-far after step i
    double step_cum[8] = {};   ///< accumulated tuning cost through step i
    [[nodiscard]] double speedup(double default_time) const {
      return best_time > 0.0 ? default_time / best_time : 0.0;
    }
  } deepcat, cdbtune, ottertune;
};

inline std::vector<AveragedCase> run_averaged_comparison(
    const std::vector<std::string>& case_ids,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<AveragedCase> averaged(case_ids.size());
  const double inv_n = 1.0 / static_cast<double>(seeds.size());
  // Each seed's suite run is a pure function of (case_ids, seed): the
  // tuners and environments it builds carry their own RNGs. Run the seeds
  // concurrently, then fold in seed order so the floating-point
  // accumulation matches the serial loop bit for bit.
  const auto per_seed =
      common::parallel_map(shared_pool(), seeds.size(), [&](std::size_t si) {
        return run_suite_comparison(case_ids, seeds[si]);
      });
  for (const auto& results : per_seed) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      AveragedCase& out = averaged[i];
      out.case_id = results[i].case_id;
      out.default_time += results[i].deepcat.default_time * inv_n;
      auto accumulate = [inv_n](AveragedCase::PerTuner& dst,
                                const tuners::TuningReport& src) {
        dst.best_time += src.best_time * inv_n;
        dst.total_tuning += src.total_tuning_seconds() * inv_n;
        dst.total_recommendation +=
            src.total_recommendation_seconds() * inv_n;
        double cum = 0.0;
        for (std::size_t s = 0; s < src.steps.size() && s < 8; ++s) {
          cum += src.steps[s].exec_seconds +
                 src.steps[s].recommendation_seconds;
          dst.step_best[s] += src.steps[s].best_so_far * inv_n;
          dst.step_cum[s] += cum * inv_n;
        }
      };
      accumulate(out.deepcat, results[i].deepcat);
      accumulate(out.cdbtune, results[i].cdbtune);
      accumulate(out.ottertune, results[i].ottertune);
    }
  }
  return averaged;
}

inline const std::vector<std::uint64_t>& comparison_seeds() {
  static const std::vector<std::uint64_t> seeds{6, 8};
  return seeds;
}

}  // namespace deepcat::bench
