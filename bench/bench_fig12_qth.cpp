// Figure 12: sensitivity to the Twin-Q Optimizer threshold Q_th. One
// offline model serves five online-tuning sessions with Q_th = 0.1..0.5
// (weights restored between sessions). Paper: larger Q_th drives riskier
// exploration — Q_th = 0.5 finds the best configuration but at the
// largest tuning cost; 0.3 is chosen (least total time, within 2.54 s of
// the 0.5 optimum).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace deepcat;
  using namespace deepcat::sparksim;

  const auto& ts = hibench_case("TS-D1");
  tuners::DeepCatOptions options = bench::deepcat_options(12);
  tuners::DeepCatTuner tuner(options);
  TuningEnvironment train_env = bench::make_env(ts, 1200);
  (void)tuner.train_offline(train_env, bench::kOfflineIters);
  bench::ModelSnapshot snapshot(tuner);

  common::Table t(
      "Figure 12: DeepCAT performance under different Q_th settings "
      "(TeraSort 3.2 GB, shared offline model)");
  t.header({"Q_th", "best exec time (s)", "total tuning cost (s)",
            "optimizer iterations (5 steps)"});

  for (double qth : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    // Rebuild the tuner with the new threshold, then restore the shared
    // offline weights so only Q_th varies.
    tuners::DeepCatOptions o = bench::deepcat_options(12);
    o.q_threshold = qth;
    tuners::DeepCatTuner session(o);
    {
      TuningEnvironment boot = bench::make_env(ts, 1201);
      (void)session.train_offline(boot, 64);
      snapshot.restore(session);
    }
    TuningEnvironment env = bench::make_env(ts, 1212);
    const auto report = session.tune(env, bench::kOnlineSteps);
    std::size_t opt_iters = 0;
    for (const auto& trace : session.last_online_traces()) {
      opt_iters += trace.iterations;
    }
    t.row({common::cell(qth, 1), common::cell(report.best_time, 1),
           common::cell(report.total_tuning_seconds(), 1),
           common::cell(opt_iters)});
  }
  t.print(std::cout);
  std::cout << "\n(paper: Q_th = 0.5 recommends the best configuration but "
               "costs the most; Q_th = 0.3 is the sweet spot)\n";
  return 0;
}
