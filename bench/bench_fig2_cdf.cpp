// Figure 2: CDF of 200 randomly generated configurations for TeraSort,
// by performance relative to the best configuration found. Reproduces the
// paper's observation that better-than-default configurations are easy to
// find but close-to-optimal ones are rare.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "sparksim/environment.hpp"
#include "tuners/random_search.hpp"

int main() {
  using namespace deepcat;
  using namespace deepcat::sparksim;

  constexpr int kConfigs = 200;
  TuningEnvironment env(cluster_a(),
                        make_workload(WorkloadType::kTeraSort, 3.2),
                        {.seed = 2022});
  tuners::RandomSearchTuner random({.seed = 2022});
  const tuners::TuningReport report = random.tune(env, kConfigs);

  // Relative performance = best_found / exec_time, in (0, 1]; failures
  // score 0 (they never finish).
  std::vector<double> relative;
  int failures = 0;
  for (const auto& s : report.steps) {
    if (s.success) {
      relative.push_back(report.best_time / s.exec_seconds);
    } else {
      relative.push_back(0.0);
      ++failures;
    }
  }

  // The CDF as the paper plots it: P(relative perf <= x).
  common::Table cdf(
      "Figure 2: CDF of 200 random configurations (TeraSort 3.2 GB), "
      "relative performance = best_found / exec_time");
  cdf.header({"x", "P"});
  for (double x = 0.0; x <= 1.0001; x += 0.05) {
    cdf.row({common::cell(x, 2), common::cell(common::fraction_below(relative, x), 3)});
  }
  cdf.print(std::cout);

  const double default_rel = report.best_time / report.default_time;
  std::cout << "\nSummary (paper: better-than-default is easy, "
               "close-to-optimal is rare):\n";
  std::cout << "  failed configurations              : " << failures << "/"
            << kConfigs << "\n";
  std::cout << "  better than default (rel > "
            << common::cell(default_rel, 2) << ")     : "
            << common::percent_cell(
                   1.0 - common::fraction_below(relative, default_rel), 1)
            << "\n";
  std::cout << "  within 2x of best (rel >= 0.5)     : "
            << common::percent_cell(
                   1.0 - common::fraction_below(relative, 0.5 - 1e-12), 1)
            << "\n";
  std::cout << "  close-to-optimal (rel >= 0.9)      : "
            << common::percent_cell(
                   1.0 - common::fraction_below(relative, 0.9 - 1e-12), 1)
            << "\n";
  std::cout << "  best execution time                : "
            << common::cell(report.best_time, 1) << " s (default "
            << common::cell(report.default_time, 1) << " s)\n";
  return 0;
}
