// Figure 2: CDF of 200 randomly generated configurations for TeraSort,
// by performance relative to the best configuration found. Reproduces the
// paper's observation that better-than-default configurations are easy to
// find but close-to-optimal ones are rare.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sparksim/environment.hpp"
#include "tuners/random_search.hpp"

int main() {
  using namespace deepcat;
  using namespace deepcat::sparksim;

  constexpr int kConfigs = 200;
  TuningEnvironment env(cluster_a(),
                        make_workload(WorkloadType::kTeraSort, 3.2),
                        {.seed = 2022});
  env.reset();
  const double default_time = env.default_time();

  // Plan all 200 configurations and their simulator seeds up front, in the
  // exact order the serial tune() loop would draw them, then evaluate the
  // independent runs on the shared pool. The fold below consumes results
  // in submission order, so the figure data is identical to the serial run
  // for any pool size (DEEPCAT_BENCH_THREADS=1 reproduces it exactly).
  tuners::RandomSearchTuner random({.seed = 2022});
  const auto actions = random.plan_actions(env.action_dim(), kConfigs);
  std::vector<std::uint64_t> seeds(actions.size());
  for (auto& s : seeds) s = env.draw_eval_seed();

  const auto runs = common::parallel_map(
      bench::shared_pool(), actions.size(), [&](std::size_t i) {
        return env.simulator().run(env.workload(),
                                   pipeline_space().decode(actions[i]),
                                   seeds[i]);
      });

  double best_time = default_time;
  for (const auto& r : runs) {
    if (r.success && r.exec_seconds < best_time) best_time = r.exec_seconds;
  }

  // Relative performance = best_found / exec_time, in (0, 1]; failures
  // score 0 (they never finish).
  std::vector<double> relative;
  int failures = 0;
  for (const auto& r : runs) {
    if (r.success) {
      relative.push_back(best_time / r.exec_seconds);
    } else {
      relative.push_back(0.0);
      ++failures;
    }
  }

  // The CDF as the paper plots it: P(relative perf <= x).
  common::Table cdf(
      "Figure 2: CDF of 200 random configurations (TeraSort 3.2 GB), "
      "relative performance = best_found / exec_time");
  cdf.header({"x", "P"});
  for (double x = 0.0; x <= 1.0001; x += 0.05) {
    cdf.row({common::cell(x, 2), common::cell(common::fraction_below(relative, x), 3)});
  }
  cdf.print(std::cout);

  const double default_rel = best_time / default_time;
  std::cout << "\nSummary (paper: better-than-default is easy, "
               "close-to-optimal is rare):\n";
  std::cout << "  failed configurations              : " << failures << "/"
            << kConfigs << "\n";
  std::cout << "  better than default (rel > "
            << common::cell(default_rel, 2) << ")     : "
            << common::percent_cell(
                   1.0 - common::fraction_below(relative, default_rel), 1)
            << "\n";
  std::cout << "  within 2x of best (rel >= 0.5)     : "
            << common::percent_cell(
                   1.0 - common::fraction_below(relative, 0.5 - 1e-12), 1)
            << "\n";
  std::cout << "  close-to-optimal (rel >= 0.9)      : "
            << common::percent_cell(
                   1.0 - common::fraction_below(relative, 0.9 - 1e-12), 1)
            << "\n";
  std::cout << "  best execution time                : "
            << common::cell(best_time, 1) << " s (default "
            << common::cell(default_time, 1) << " s)\n";
  return 0;
}
