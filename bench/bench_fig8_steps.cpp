// Figure 8: execution time of the current best configuration and the
// accumulated tuning cost along the 5 online tuning steps, for DeepCAT,
// CDBTune and OtterTune (one panel per workload, D1 datasets; seed-averaged). Reproduces the paper's "better configuration
// with much less accumulated tuning time at every step" claim.
#include <iostream>

#include "bench_comparison.hpp"
#include "common/table.hpp"

int main() {
  using namespace deepcat;
  const std::vector<std::string> cases{"WC-D1", "TS-D1", "PR-D1", "KM-D1"};
  const auto results =
      bench::run_averaged_comparison(cases, bench::comparison_seeds());

  for (const auto& r : results) {
    common::Table t("Figure 8 [" + r.case_id +
                    "]: best-so-far execution time / accumulated tuning "
                    "cost per online step (avg over offline seeds)");
    t.header({"step", "DeepCAT best(s)", "DeepCAT cum(s)", "CDBTune best(s)",
              "CDBTune cum(s)", "OtterTune best(s)", "OtterTune cum(s)"});
    for (int i = 0; i < bench::kOnlineSteps; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      t.row({common::cell(i + 1),
             common::cell(r.deepcat.step_best[idx], 1),
             common::cell(r.deepcat.step_cum[idx], 1),
             common::cell(r.cdbtune.step_best[idx], 1),
             common::cell(r.cdbtune.step_cum[idx], 1),
             common::cell(r.ottertune.step_best[idx], 1),
             common::cell(r.ottertune.step_cum[idx], 1)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "(paper: at every step DeepCAT holds a better best "
               "configuration at lower accumulated cost, so under a tuning "
               "budget it fits more steps)\n";
  return 0;
}
