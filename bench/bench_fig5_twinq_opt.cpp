// Figure 5: execution time of the configuration recommended at each of
// the 5 online tuning steps, DeepCAT with vs without the Twin-Q
// Optimizer, starting from the SAME offline model. As in the paper, the
// offline model comes from the "standard environment" (the D2 dataset)
// and the online request is a different real environment (the D1
// dataset), so online exploration is live and the optimizer has
// proposals to screen. Sessions are averaged to de-noise the series.
//
// The paper reports TeraSort; we additionally sweep the other three
// workloads because the screening payoff concentrates where exploration
// is dangerous (KMeans/PageRank memory cliffs) — see EXPERIMENTS.md.
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace deepcat;
using namespace deepcat::sparksim;

constexpr int kTrials = 8;

struct Series {
  double step_time[bench::kOnlineSteps] = {};
  double total = 0.0;
  double best = 0.0;
};

struct ArmPair {
  Series with_opt;
  Series without_opt;
};

// Both arms explore online with the same Gaussian noise; the only
// difference is whether the Twin-Q Optimizer screens/repairs each
// exploratory proposal before it is paid for. This isolates the paper's
// "low-cost exploration-exploitation trade off".
constexpr double kExploreSigma = 0.25;
// The ablation isolates the optimizer given a CONVERGED offline model
// ("based on the same offline training model", paper §5.1.2), so train
// past the Fig. 4 convergence knee.
constexpr std::size_t kFig5OfflineIters = 2000;

ArmPair run_workload(const std::string& train_id, const std::string& tune_id) {
  tuners::DeepCatOptions with_options = bench::deepcat_options(5);
  with_options.online_explore_sigma = kExploreSigma;
  tuners::DeepCatTuner with_opt(with_options);
  {
    TuningEnvironment env =
        bench::make_env(hibench_case(train_id), 5 * 7919 + 13);
    (void)with_opt.train_offline(env, kFig5OfflineIters);
  }
  bench::ModelSnapshot snapshot(with_opt);

  tuners::DeepCatOptions without_options = with_options;
  without_options.use_twin_q_optimizer = false;
  tuners::DeepCatTuner without_opt(without_options);
  {
    TuningEnvironment boot = bench::make_env(hibench_case(train_id), 55);
    (void)without_opt.train_offline(boot, 64);
    snapshot.restore(without_opt);
  }

  auto run_sessions = [&](tuners::DeepCatTuner& tuner) {
    Series out;
    for (int trial = 0; trial < kTrials; ++trial) {
      snapshot.restore(tuner);
      TuningEnvironment env = bench::make_env(
          hibench_case(tune_id), 770 + static_cast<std::uint64_t>(trial));
      const auto report = tuner.tune(env, bench::kOnlineSteps);
      for (int i = 0; i < bench::kOnlineSteps; ++i) {
        out.step_time[i] +=
            report.steps[static_cast<std::size_t>(i)].exec_seconds / kTrials;
      }
      out.total += report.total_evaluation_seconds() / kTrials;
      out.best += report.best_time / kTrials;
    }
    return out;
  };

  return {run_sessions(with_opt), run_sessions(without_opt)};
}

}  // namespace

int main() {
  // --- The paper's panel: TeraSort, per-step series.
  const ArmPair ts = run_workload("TS-D2", "TS-D1");
  common::Table t(
      "Figure 5: per-step execution time, DeepCAT vs DeepCAT w/o Twin-Q "
      "Optimizer (TeraSort 3.2 GB, model from TeraSort 6 GB, avg of " +
      std::to_string(kTrials) + " sessions)");
  t.header({"online step", "DeepCAT (s)", "w/o Twin-Q Optimizer (s)",
            "saved (s)"});
  for (int i = 0; i < bench::kOnlineSteps; ++i) {
    t.row({common::cell(i + 1), common::cell(ts.with_opt.step_time[i], 1),
           common::cell(ts.without_opt.step_time[i], 1),
           common::cell(ts.without_opt.step_time[i] - ts.with_opt.step_time[i],
                        1)});
  }
  t.print(std::cout);

  // --- All four workloads: total 5-step evaluation time and best config.
  common::Table summary(
      "Figure 5 summary: total 5-step evaluation time with/without the "
      "Twin-Q Optimizer (D2-trained model tunes D1)");
  summary.header({"workload", "DeepCAT total (s)", "w/o optimizer total (s)",
                  "time saved", "DeepCAT best (s)", "w/o optimizer best (s)"});
  auto add_row = [&summary](const std::string& name, const ArmPair& p) {
    summary.row({name, common::cell(p.with_opt.total, 1),
                 common::cell(p.without_opt.total, 1),
                 common::percent_cell(
                     (p.without_opt.total - p.with_opt.total) /
                         p.without_opt.total,
                     2),
                 common::cell(p.with_opt.best, 1),
                 common::cell(p.without_opt.best, 1)});
  };
  add_row("TeraSort", ts);
  add_row("WordCount", run_workload("WC-D2", "WC-D1"));
  add_row("PageRank", run_workload("PR-D2", "PR-D1"));
  add_row("KMeans", run_workload("KM-D2", "KM-D1"));
  std::cout << '\n';
  summary.print(std::cout);
  std::cout << "\n(paper, TeraSort only: 19.29% less total time — 204.6 s vs "
               "253.5 s — and a 7.29% better best configuration; in our "
               "simulator the screening payoff concentrates on the "
               "memory-cliff workloads)\n";
  return 0;
}
