// Microbenchmarks (google-benchmark): the numeric kernels and simulator
// hot paths that determine how cheap DeepCAT's "free" operations are —
// in particular the Twin-Q indicator, whose entire point is costing
// microseconds instead of a multi-minute cluster run.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "gp/gp_regressor.hpp"
#include "nn/mlp.hpp"
#include "rl/replay_rdper.hpp"
#include "rl/td3.hpp"
#include "sparksim/job_sim.hpp"

namespace {

using namespace deepcat;

void BM_MatMul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  nn::Matrix a(n, n), b(n, n);
  for (double& x : a.flat()) x = rng.normal();
  for (double& x : b.flat()) x = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MlpForward(benchmark::State& state) {
  common::Rng rng(2);
  nn::Mlp net({41, 128, 128, 1}, rng);
  nn::Matrix x(static_cast<std::size_t>(state.range(0)), 41);
  for (double& v : x.flat()) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x));
  }
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(64);

void BM_Td3TrainStep(benchmark::State& state) {
  common::Rng rng(3);
  rl::Td3Config config;
  config.state_dim = 9;
  config.action_dim = 32;
  rl::Td3Agent agent(config, rng);
  rl::RdperReplay replay(10'000, {.reward_threshold = 0.0, .beta = 0.6});
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> s(9), a(32), s2(9);
    for (double& v : s) v = rng.uniform();
    for (double& v : a) v = rng.uniform();
    for (double& v : s2) v = rng.uniform();
    replay.add({s, a, rng.uniform(-3.0, 1.0), s2, false});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.train_step(replay, rng));
  }
}
BENCHMARK(BM_Td3TrainStep);

void BM_TwinQIndicator(benchmark::State& state) {
  // The cost of one Twin-Q Optimizer probe: two critic forward passes.
  common::Rng rng(4);
  rl::Td3Config config;
  config.state_dim = 9;
  config.action_dim = 32;
  rl::Td3Agent agent(config, rng);
  std::vector<double> s(9, 0.5), a(32, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.min_q(s, a));
  }
}
BENCHMARK(BM_TwinQIndicator);

void BM_RdperSample(benchmark::State& state) {
  common::Rng rng(5);
  rl::RdperReplay replay(100'000, {.reward_threshold = 0.0, .beta = 0.6});
  for (int i = 0; i < 50'000; ++i) {
    replay.add({{0.5}, {0.5}, rng.uniform(-3.0, 1.0), {0.5}, false});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay.sample(64, rng));
  }
}
BENCHMARK(BM_RdperSample);

void BM_JobSimulatorRun(benchmark::State& state) {
  // One simulated cluster run — the stand-in for a multi-minute physical
  // configuration evaluation.
  const sparksim::JobSimulator sim(sparksim::cluster_a());
  const auto workload =
      sparksim::make_workload(sparksim::WorkloadType::kTeraSort, 3.2);
  const auto config = sparksim::pipeline_space().defaults();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(workload, config, seed++));
  }
}
BENCHMARK(BM_JobSimulatorRun);

void BM_GpFitPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(6);
  nn::Matrix x(n, 32);
  std::vector<double> y(n);
  for (double& v : x.flat()) v = rng.uniform();
  for (double& v : y) v = rng.uniform(30.0, 300.0);
  std::vector<double> q(32, 0.5);
  for (auto _ : state) {
    gp::GpRegressor model(std::make_unique<gp::Matern52Kernel>(1.8, 1.0),
                          0.05);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.predict(q));
  }
}
BENCHMARK(BM_GpFitPredict)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
