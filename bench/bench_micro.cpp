// Microbenchmarks: the numeric kernels and simulator hot paths that
// determine how cheap DeepCAT's "free" operations are — in particular the
// Twin-Q indicator, whose entire point is costing microseconds instead of
// a multi-minute cluster run.
//
// Three modes:
//   bench_micro                    google-benchmark suite (default)
//   bench_micro --json[=path]      kernel benchmark: times every GEMM/fused
//                                  kernel once per selectable ISA tier
//                                  (scalar/avx2/avx512 columns), register-
//                                  blocked vs L2-tiled packed GEMM at sizes
//                                  past the packing threshold, and GP refit
//                                  wall time at n={512,1024,2048} with
//                                  thread pools of {1,4,16}; every ns value
//                                  is a min-of-N with the rep count in the
//                                  export, emitted through the obs metrics
//                                  exporter — a build-info line followed by
//                                  one gauge line per statistic (the
//                                  committed BENCH_kernels.json baseline).
//   bench_micro --json-obs[=path]  obs-overhead benchmark: the streaming
//                                  determinism workload (8 tuning sessions
//                                  through StreamingService) with streaming
//                                  span export + metrics on vs. tracing off
//                                  (the committed BENCH_obs.json baseline).
//   bench_micro --json-serve[=path] serving front-end load generator: 32
//                                  concurrent clients x 64 request round
//                                  trips against an in-process FrontEnd
//                                  (deterministic fake sessions, so the
//                                  numbers isolate the epoll/framing path),
//                                  once over AF_UNIX and once over TCP
//                                  loopback; exports throughput and
//                                  p50/p95/p99 round-trip latency per
//                                  transport (the committed
//                                  BENCH_serve.json baseline).
//   bench_micro --json-warm[=path] warm-start evaluations-to-target (the
//                                  paper's fig9/fig10 protocol): trains one
//                                  master, builds an experience index from
//                                  D1 sessions, then runs warm (k retrieved
//                                  seeds) vs cold sessions on the D2 cases
//                                  and counts paid evaluations until each
//                                  run first reaches the cold run's best
//                                  cost (the committed BENCH_warm.json
//                                  baseline). Fully deterministic — every
//                                  number is a pure function of the seeds.
//                                  Index sessions whose default run fails
//                                  in the simulator are recorded in the
//                                  header's "skipped" array, so the
//                                  baseline never under-reports coverage.
//   bench_micro --json-stream[=path] streaming re-adaptation: every stream
//                                  suite case runs as one long phase-
//                                  shifted session (no restart), warm
//                                  (offline-trained master) vs cold, and
//                                  exports per-shift recovery-evaluation
//                                  counts (the committed BENCH_stream.json
//                                  baseline). Publishing refuses when a
//                                  warm session fails to recover within 5%
//                                  of its pre-shift objective.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/sharding.hpp"
#include "service/wire.hpp"
#include "gp/gp_regressor.hpp"
#include "gp/kernel.hpp"
#include "obs/build_info.hpp"
#include "obs/clock.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/tracer.hpp"
#include "core/deepcat_api.hpp"
#include "nn/mlp.hpp"
#include "retrieval/index.hpp"
#include "rl/replay_rdper.hpp"
#include "rl/td3.hpp"
#include "service/checkpoint.hpp"
#include "service/jsonl.hpp"
#include "service/session.hpp"
#include "service/streaming.hpp"
#include "sparksim/job_sim.hpp"
#include "sparksim/workloads.hpp"
#include "streamsim/workloads.hpp"

namespace {

using namespace deepcat;

void BM_MatMul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  nn::Matrix a(n, n), b(n, n);
  for (double& x : a.flat()) x = rng.normal();
  for (double& x : b.flat()) x = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulScalar(benchmark::State& state) {
  // Same workload with the vector backend disabled: the dispatch overhead
  // and the scalar reference cost in one number.
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  nn::Matrix a(n, n), b(n, n);
  for (double& x : a.flat()) x = rng.normal();
  for (double& x : b.flat()) x = rng.normal();
  common::simd::force_scalar(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::matmul(a, b));
  }
  common::simd::force_scalar(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatMulScalar)->Arg(32)->Arg(64)->Arg(128);

void BM_MlpForward(benchmark::State& state) {
  common::Rng rng(2);
  nn::Mlp net({41, 128, 128, 1}, rng);
  nn::Matrix x(static_cast<std::size_t>(state.range(0)), 41);
  for (double& v : x.flat()) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x));
  }
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(64);

void BM_Td3TrainStep(benchmark::State& state) {
  common::Rng rng(3);
  rl::Td3Config config;
  config.state_dim = 9;
  config.action_dim = 32;
  rl::Td3Agent agent(config, rng);
  rl::RdperReplay replay(10'000, {.reward_threshold = 0.0, .beta = 0.6});
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> s(9), a(32), s2(9);
    for (double& v : s) v = rng.uniform();
    for (double& v : a) v = rng.uniform();
    for (double& v : s2) v = rng.uniform();
    replay.add({s, a, rng.uniform(-3.0, 1.0), s2, false});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.train_step(replay, rng));
  }
}
BENCHMARK(BM_Td3TrainStep);

void BM_TwinQIndicator(benchmark::State& state) {
  // The cost of one Twin-Q Optimizer probe: two critic forward passes.
  common::Rng rng(4);
  rl::Td3Config config;
  config.state_dim = 9;
  config.action_dim = 32;
  rl::Td3Agent agent(config, rng);
  std::vector<double> s(9, 0.5), a(32, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.min_q(s, a));
  }
}
BENCHMARK(BM_TwinQIndicator);

void BM_RdperSample(benchmark::State& state) {
  common::Rng rng(5);
  rl::RdperReplay replay(100'000, {.reward_threshold = 0.0, .beta = 0.6});
  for (int i = 0; i < 50'000; ++i) {
    replay.add({{0.5}, {0.5}, rng.uniform(-3.0, 1.0), {0.5}, false});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay.sample(64, rng));
  }
}
BENCHMARK(BM_RdperSample);

void BM_JobSimulatorRun(benchmark::State& state) {
  // One simulated cluster run — the stand-in for a multi-minute physical
  // configuration evaluation.
  const sparksim::JobSimulator sim(sparksim::cluster_a());
  const auto workload =
      sparksim::make_workload(sparksim::WorkloadType::kTeraSort, 3.2);
  const auto config = sparksim::pipeline_space().defaults();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(workload, config, seed++));
  }
}
BENCHMARK(BM_JobSimulatorRun);

void BM_GpFitPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(6);
  nn::Matrix x(n, 32);
  std::vector<double> y(n);
  for (double& v : x.flat()) v = rng.uniform();
  for (double& v : y) v = rng.uniform(30.0, 300.0);
  std::vector<double> q(32, 0.5);
  for (auto _ : state) {
    gp::GpRegressor model(std::make_unique<gp::Matern52Kernel>(1.8, 1.0),
                          0.05);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.predict(q));
  }
}
BENCHMARK(BM_GpFitPredict)->Arg(100)->Arg(400);

// ---------------------------------------------------------------------------
// Obs overhead: the streaming determinism workload (same shape as the
// StreamingObsDeterminismTest stress — 8 real tuning sessions against a
// trained master) with streaming span export + health metrics on vs. all
// tracing off. The delta is the full cost of observability for a serve
// run: span begin/end, ring drains through the sink, metric updates.

service::StreamingOptions obs_bench_options() {
  service::StreamingOptions o;
  o.service.threads = 4;
  o.service.api.tuner.seed = 7;
  o.service.api.tuner.td3.hidden = {24, 24};
  o.service.api.tuner.warmup_steps = 16;
  o.service.api.env.seed = 1007;
  o.master_update_steps = 2;
  return o;
}

std::vector<service::TuningRequest> obs_bench_requests() {
  std::vector<service::TuningRequest> reqs;
  const char* cases[] = {"WC-D1", "TS-D1", "PR-D1", "KM-D1",
                         "WC-D2", "TS-D2", "PR-D2", "KM-D2"};
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    service::TuningRequest r;
    r.id = "req-" + std::to_string(i);
    r.workload = cases[i];
    r.cluster = i % 3 == 2 ? "b" : "a";
    r.max_steps = 2;
    r.seed = 100 + i;
    reqs.push_back(r);
  }
  return reqs;
}

/// Trained master checkpoint, shared by every obs benchmark iteration so
/// the (expensive) TD3 warmup is paid once, not per timed run.
const std::string& obs_bench_master() {
  static const std::string blob = [] {
    service::StreamingOptions options = obs_bench_options();
    options.service.threads = 1;
    service::StreamingService trainer(options);
    trainer.train_model(
        "default",
        sparksim::make_workload(sparksim::WorkloadType::kTeraSort, 3.2), 40);
    return trainer.checkpoint_of("default");
  }();
  return blob;
}

struct ObsServeStats {
  std::uint64_t spans = 0;
  std::uint64_t dropped = 0;
  std::uint64_t ring_highwater = 0;
};

/// One full serve run: load master, submit the 8 requests, drain, flush.
/// With streaming_export the run carries a LogicalClock tracer exporting
/// through a CallbackSpanSink at the default ring capacity plus the
/// tracer-health metrics registry; without it the service runs bare.
ObsServeStats run_streaming_workload(bool streaming_export) {
  obs::LogicalClock clock;
  std::uint64_t sunk = 0;
  obs::CallbackSpanSink sink(
      [&sunk](const obs::SpanRecord&) { ++sunk; });
  obs::MetricsRegistry registry;
  std::optional<obs::Tracer> tracer;
  service::StreamingOptions options = obs_bench_options();
  if (streaming_export) {
    obs::TracerOptions tracer_options;
    tracer_options.exporter = &sink;
    tracer_options.ring_capacity = 256;
    tracer_options.health = &registry;
    tracer.emplace(clock, tracer_options);
    options.service.obs = {&registry, &*tracer};
  }
  service::StreamingService svc(options);
  std::istringstream blob(obs_bench_master(), std::ios::binary);
  svc.load_model("default", blob);
  for (const auto& r : obs_bench_requests()) svc.submit(r);
  while (svc.wait_completed()) {
  }
  (void)svc.flush();
  ObsServeStats stats;
  if (streaming_export) {
    tracer->flush_exporter();
    stats.spans = sunk;
    stats.dropped = tracer->dropped_spans();
    stats.ring_highwater = tracer->ring_highwater();
  }
  return stats;
}

void BM_StreamingServeTracingOff(benchmark::State& state) {
  (void)obs_bench_master();  // train outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_streaming_workload(false));
  }
}
BENCHMARK(BM_StreamingServeTracingOff)->Unit(benchmark::kMillisecond);

void BM_StreamingServeStreamingExport(benchmark::State& state) {
  (void)obs_bench_master();
  std::uint64_t spans = 0;
  for (auto _ : state) {
    const ObsServeStats stats = run_streaming_workload(true);
    spans += stats.spans;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["spans_per_run"] = benchmark::Counter(
      static_cast<double>(spans) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_StreamingServeStreamingExport)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json mode: chrono-timed kernel suite, scalar vs dispatched backend.

/// Times fn() and returns the best ns/call over `reps` timed repetitions
/// (min filters scheduler noise better than mean for short kernels).
template <typename Fn>
double best_ns_per_call(Fn&& fn, double min_batch_seconds = 0.01,
                        int reps = 5) {
  using clock = std::chrono::steady_clock;
  // Calibrate a batch size that runs for at least min_batch_seconds.
  std::size_t batch = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < batch; ++i) fn();
    const std::chrono::duration<double> elapsed = clock::now() - t0;
    if (elapsed.count() >= min_batch_seconds || batch >= (1u << 24)) break;
    batch *= 2;
  }
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < batch; ++i) fn();
    const std::chrono::duration<double, std::nano> elapsed = clock::now() - t0;
    best = std::min(best, elapsed.count() / static_cast<double>(batch));
  }
  return best;
}

/// Timed repetitions per statistic; every exported ns column is the
/// min-of-kKernelReps (recorded per entry as `.reps`), so large sizes —
/// where the calibrated batch collapses to a single call — still publish
/// a noise-filtered number instead of one arbitrary rep.
constexpr int kKernelReps = 5;
/// GP fits run seconds per call at n=2048; two reps bound the bench time.
constexpr int kGpFitReps = 2;

struct BackendColumn {
  std::string label;  ///< metric-name fragment: "scalar" | "avx2" | "avx512"
  common::simd::Backend backend;
};

/// One column per ISA tier selectable in this process (after the CPU,
/// compile-flag and env caps), lowest first. On a non-AVX-512 host the
/// avx512 columns are simply absent from the export.
std::vector<BackendColumn> selectable_columns() {
  namespace simd = common::simd;
  std::vector<BackendColumn> out;
  const std::pair<const char*, simd::Backend> ladder[] = {
      {"scalar", simd::Backend::kScalar},
      {"avx2", simd::Backend::kAvx2},
      {"avx512", simd::Backend::kAvx512},
  };
  for (const auto& [label, backend] : ladder) {
    if (simd::backend_selectable(backend)) out.push_back({label, backend});
  }
  return out;
}

/// Times `fn` once per selectable ISA tier and exports
/// kernel.{name}.{shape}.{tier}_ns / _gflops columns plus the
/// scalar-to-top-tier speedup and the rep count.
template <typename Fn>
void time_kernel_backends(obs::MetricsRegistry& registry,
                          const std::string& name, const std::string& shape,
                          double flops, Fn&& fn) {
  namespace simd = common::simd;
  const std::string prefix = "kernel." + name + "." + shape;
  double scalar_ns = 0.0;
  double top_ns = 0.0;
  for (const auto& col : selectable_columns()) {
    simd::force_backend(col.backend);
    const double ns =
        best_ns_per_call(fn, /*min_batch_seconds=*/0.01, kKernelReps);
    registry.gauge(prefix + "." + col.label + "_ns").set(ns);
    if (flops > 0.0) {
      registry.gauge(prefix + "." + col.label + "_gflops").set(flops / ns);
    }
    if (col.backend == simd::Backend::kScalar) scalar_ns = ns;
    top_ns = ns;  // columns ascend the ladder; the last is the dispatch tier
  }
  simd::force_scalar(false);
  registry.gauge(prefix + ".reps").set(kKernelReps);
  if (scalar_ns > 0.0 && top_ns > 0.0) {
    registry.gauge(prefix + ".speedup").set(scalar_ns / top_ns);
  }
}

/// Register-blocked vs L2-tiled packed columns for one GEMM shape, per
/// vector tier: kernel.{name}.{shape}.{tier}_blocked_ns / _packed_ns /
/// _packed_speedup. Scalar has no packed path and is skipped.
template <typename Fn>
void time_gemm_paths(obs::MetricsRegistry& registry, const std::string& name,
                     const std::string& shape, double flops, Fn&& fn) {
  namespace simd = common::simd;
  const std::string prefix = "kernel." + name + "." + shape;
  for (const auto& col : selectable_columns()) {
    if (col.backend == simd::Backend::kScalar) continue;
    simd::force_backend(col.backend);
    simd::force_gemm_path(simd::GemmPath::kRegisterBlocked);
    const double blocked_ns =
        best_ns_per_call(fn, /*min_batch_seconds=*/0.01, kKernelReps);
    simd::force_gemm_path(simd::GemmPath::kPacked);
    const double packed_ns =
        best_ns_per_call(fn, /*min_batch_seconds=*/0.01, kKernelReps);
    simd::force_gemm_path(simd::GemmPath::kAuto);
    registry.gauge(prefix + "." + col.label + "_blocked_ns").set(blocked_ns);
    registry.gauge(prefix + "." + col.label + "_packed_ns").set(packed_ns);
    if (flops > 0.0) {
      registry.gauge(prefix + "." + col.label + "_blocked_gflops")
          .set(flops / blocked_ns);
      registry.gauge(prefix + "." + col.label + "_packed_gflops")
          .set(flops / packed_ns);
    }
    registry.gauge(prefix + "." + col.label + "_packed_speedup")
        .set(blocked_ns / packed_ns);
  }
  simd::force_scalar(false);
  registry.gauge(prefix + ".path_reps").set(kKernelReps);
}

int run_kernel_bench_json(const std::string& path) {
  common::Rng rng(7);
  obs::MetricsRegistry registry;
  common::simd::reset_dispatch_counts();

  for (const std::size_t n : {std::size_t{32}, std::size_t{64},
                              std::size_t{128}, std::size_t{192}}) {
    nn::Matrix a(n, n), b(n, n);
    for (double& x : a.flat()) x = rng.normal();
    for (double& x : b.flat()) x = rng.normal();
    const double flops = 2.0 * static_cast<double>(n * n * n);
    const std::string shape = std::to_string(n) + "x" + std::to_string(n) +
                              "x" + std::to_string(n);
    time_kernel_backends(registry, "matmul", shape, flops, [&] {
      benchmark::DoNotOptimize(nn::matmul(a, b));
    });
    time_kernel_backends(registry, "matmul_tn", shape, flops, [&] {
      benchmark::DoNotOptimize(nn::matmul_tn(a, b));
    });
    time_kernel_backends(registry, "matmul_nt", shape, flops, [&] {
      benchmark::DoNotOptimize(nn::matmul_nt(a, b));
    });
  }

  // At and above the packed threshold: register-blocked vs packed per
  // vector tier — the acceptance columns for the L2-tiled path.
  for (const std::size_t n : {std::size_t{256}, std::size_t{320}}) {
    nn::Matrix a(n, n), b(n, n);
    for (double& x : a.flat()) x = rng.normal();
    for (double& x : b.flat()) x = rng.normal();
    const double flops = 2.0 * static_cast<double>(n * n * n);
    const std::string shape = std::to_string(n) + "x" + std::to_string(n) +
                              "x" + std::to_string(n);
    time_gemm_paths(registry, "matmul", shape, flops, [&] {
      benchmark::DoNotOptimize(nn::matmul(a, b));
    });
  }

  {
    // The fused Linear+activation step at the TD3 critic's hidden shape.
    const std::size_t m = 64, k = 128, n = 128;
    nn::Matrix x(m, k), w(k, n), bias(1, n);
    for (double& v : x.flat()) v = rng.normal();
    for (double& v : w.flat()) v = rng.normal();
    for (double& v : bias.flat()) v = rng.normal();
    const double flops = 2.0 * static_cast<double>(m * n * k);
    time_kernel_backends(registry, "matmul_bias_tanh", "64x128x128", flops,
                         [&] {
                           benchmark::DoNotOptimize(nn::matmul_bias_act(
                               x, w, bias, nn::Activation::kTanh));
                         });
  }

  {
    nn::Mlp net({41, 128, 128, 1}, rng);
    nn::Matrix x(64, 41);
    for (double& v : x.flat()) v = rng.uniform();
    // 2*m*k*n per linear layer; activations are noise by comparison.
    const double flops =
        2.0 * 64.0 * (41.0 * 128.0 + 128.0 * 128.0 + 128.0 * 1.0);
    time_kernel_backends(registry, "mlp_forward", "batch64 41-128-128-1",
                         flops,
                         [&] { benchmark::DoNotOptimize(net.forward(x)); });
  }

  {
    const std::size_t len = 4096;
    std::vector<double> u(len), v(len);
    for (double& x : u) x = rng.normal();
    for (double& x : v) x = rng.normal();
    time_kernel_backends(registry, "dot", "4096",
                         2.0 * static_cast<double>(len), [&] {
                           benchmark::DoNotOptimize(common::simd::dot(
                               u.data(), v.data(), len));
                         });
  }

  // GP refit wall time at OtterTune sizes, serial vs pools of {1,4,16}
  // threads (threads0 = no pool). The parallel fit is bit-identical to
  // serial, so these columns measure pure scheduling, not model drift.
  for (const std::size_t n :
       {std::size_t{512}, std::size_t{1024}, std::size_t{2048}}) {
    const std::size_t dim = 12;
    nn::Matrix x(n, dim);
    std::vector<double> y(n);
    for (double& v : x.flat()) v = rng.uniform();
    for (double& v : y) v = rng.uniform(30.0, 300.0);
    const std::string prefix = "gp.fit.n" + std::to_string(n);
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      common::ThreadPool pool(threads);
      const double ns = best_ns_per_call(
          [&] {
            gp::GpRegressor model(
                std::make_unique<gp::Matern52Kernel>(1.8, 1.0), 0.05);
            model.set_thread_pool(&pool);
            model.fit(x, y);
            benchmark::DoNotOptimize(model);
          },
          /*min_batch_seconds=*/0.0, kGpFitReps);
      registry.gauge(prefix + ".threads" + std::to_string(threads) + "_ns")
          .set(ns);
    }
    registry.gauge(prefix + ".reps").set(kGpFitReps);
  }

  // Export through the observability layer instead of a private
  // serializer: line 1 is the same build-info object `deepcat info --json`
  // and the METR frame carry, the rest is the obs metrics exporter — one
  // gauge per kernel statistic. Anything that learns to read --metrics-out
  // files reads this baseline for free.
  const auto dispatches = common::simd::dispatch_counts();
  registry.counter("simd.scalar_dispatches").add(dispatches.scalar_calls);
  registry.counter("simd.avx2_dispatches").add(dispatches.avx2_calls);
  registry.counter("simd.avx512_dispatches").add(dispatches.avx512_calls);
  registry.counter("simd.packed_dispatches").add(dispatches.packed_calls);

  std::ostringstream json;
  json << "{\"bench\":\"deepcat kernel microbenchmarks\",\"build\":";
  obs::write_build_info_json(json, obs::current_build_info());
  json << "}\n";
  registry.write_jsonl(json);

  if (path.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench_micro: cannot write " << path << "\n";
      return 1;
    }
    out << json.str();
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

/// Writes the obs-overhead baseline (BENCH_obs.json): best wall time of the
/// streaming determinism workload with observability off and with streaming
/// span export + health metrics on, plus the derived per-span overhead.
int run_obs_bench_json(const std::string& path) {
  (void)obs_bench_master();           // pay the TD3 warmup up front
  (void)run_streaming_workload(true); // warm allocators / code paths
  // Best-of-8 per mode: the workload is scheduler-noisy (a thread pool
  // draining 8 sessions), and the publish gate below compares the two
  // minima — too few reps and noise, not tracing, trips it.
  const double off_ns =
      best_ns_per_call([] { run_streaming_workload(false); },
                       /*min_batch_seconds=*/0.0, /*reps=*/8);
  ObsServeStats last;
  const double on_ns = best_ns_per_call(
      [&last] { last = run_streaming_workload(true); },
      /*min_batch_seconds=*/0.0, /*reps=*/8);

  obs::MetricsRegistry registry;
  registry.gauge("obs.serve.tracing_off_ns").set(off_ns);
  registry.gauge("obs.serve.streaming_export_ns").set(on_ns);
  registry.gauge("obs.serve.overhead_ratio").set(on_ns / off_ns);
  if (last.spans > 0) {
    registry.gauge("obs.serve.overhead_ns_per_span")
        .set((on_ns - off_ns) / static_cast<double>(last.spans));
  }
  registry.gauge("obs.serve.spans_per_run")
      .set(static_cast<double>(last.spans));
  registry.gauge("obs.serve.ring_highwater")
      .set(static_cast<double>(last.ring_highwater));
  registry.counter("obs.serve.dropped_spans").add(last.dropped);

  // Tracing must stay a rounding error on the serve path; a regression
  // past 5% is a finding, not a baseline, so refuse to publish it.
  constexpr double kMaxOverheadRatio = 1.05;
  if (on_ns > off_ns * kMaxOverheadRatio) {
    std::cerr << "bench_micro: tracing overhead " << on_ns / off_ns
              << "x exceeds the " << kMaxOverheadRatio
              << "x publish gate; not publishing\n";
    return 1;
  }

  // GET /metrics scrape under load: render the Prometheus exposition from
  // the live registry while the traced workload runs — the same
  // registry-snapshot-plus-render the HTTP endpoint performs between
  // epoll wakeups, contending with every instrumented layer.
  {
    obs::LogicalClock clock;
    obs::CallbackSpanSink sink([](const obs::SpanRecord&) {});
    obs::MetricsRegistry live;
    obs::TracerOptions tracer_options;
    tracer_options.exporter = &sink;
    tracer_options.ring_capacity = 256;
    tracer_options.health = &live;
    obs::Tracer tracer(clock, tracer_options);
    service::StreamingOptions options = obs_bench_options();
    options.service.obs = {&live, &tracer};
    service::StreamingService svc(options);
    std::istringstream blob(obs_bench_master(), std::ios::binary);
    svc.load_model("default", blob);

    std::atomic<bool> done{false};
    std::thread worker([&] {
      for (const auto& r : obs_bench_requests()) svc.submit(r);
      while (svc.wait_completed()) {
      }
      (void)svc.flush();
      done.store(true, std::memory_order_release);
    });
    const obs::BuildInfo info = obs::current_build_info();
    double scrape_total_ns = 0.0;
    double scrape_max_ns = 0.0;
    std::size_t scrapes = 0;
    std::size_t scrape_bytes = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto t0 = std::chrono::steady_clock::now();
      std::ostringstream text;
      obs::write_prometheus_text(text, live.snapshot(), info);
      const auto ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      scrape_bytes = text.str().size();
      scrape_total_ns += ns;
      scrape_max_ns = std::max(scrape_max_ns, ns);
      ++scrapes;
    }
    worker.join();
    registry.gauge("obs.scrape.count")
        .set(static_cast<double>(scrapes));
    if (scrapes > 0) {
      registry.gauge("obs.scrape.mean_ns")
          .set(scrape_total_ns / static_cast<double>(scrapes));
      registry.gauge("obs.scrape.max_ns").set(scrape_max_ns);
      registry.gauge("obs.scrape.last_bytes")
          .set(static_cast<double>(scrape_bytes));
    }
  }

  std::ostringstream json;
  json << "{\"bench\":\"deepcat obs overhead microbenchmark\",\"build\":";
  obs::write_build_info_json(json, obs::current_build_info());
  json << "}\n";
  registry.write_jsonl(json);

  if (path.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench_micro: cannot write " << path << "\n";
      return 1;
    }
    out << json.str();
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

// --json-serve mode: load-generates the epoll front end over both
// transports. Sessions are the deterministic fake, so throughput and
// latency measure the serving path (accept, framing, admission-order
// release, completion hand-off) rather than model math.

constexpr std::size_t kServeClients = 32;
constexpr std::size_t kServeRequestsPerClient = 64;

service::SessionReport serve_bench_fake_session(
    const service::TuningRequest& r) {
  service::SessionReport report;
  report.id = r.id;
  report.workload = r.workload;
  report.cluster = r.cluster;
  report.ok = true;
  report.report.default_time = 100.0;
  report.report.best_time = 80.0;
  return report;
}

struct ServeLoadResult {
  double wall_seconds = 0.0;
  std::vector<double> latencies_ms;  ///< one per request round trip
};

/// One transport's load phase: kServeClients threads, each doing
/// kServeRequestsPerClient synchronous REQ->REP round trips, then a clean
/// END handshake. Aborts (throws) on any ERR frame — the bench must not
/// publish numbers from a run with failures.
ServeLoadResult run_serve_load(const net::FrontEndOptions& options,
                               std::uint16_t tcp_port, bool use_tcp) {
  ServeLoadResult result;
  result.latencies_ms.reserve(kServeClients * kServeRequestsPerClient);
  std::mutex latencies_mutex;
  std::vector<std::thread> clients;
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < kServeClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = use_tcp
                        ? net::BlockingClient::to_tcp("127.0.0.1", tcp_port)
                        : net::BlockingClient::to_unix(options.unix_path);
      client.send_header();
      std::vector<double> local;
      local.reserve(kServeRequestsPerClient);
      for (std::size_t r = 0; r < kServeRequestsPerClient; ++r) {
        const std::string payload =
            "{\"id\":\"c" + std::to_string(c) + "-r" + std::to_string(r) +
            "\",\"workload\":\"TS-D1\",\"steps\":2}";
        const auto sent = std::chrono::steady_clock::now();
        client.send_frame(service::FrameType::kRequest, payload);
        for (;;) {
          auto frame = client.read_frame();
          if (!frame) throw std::runtime_error("serve bench: early EOF");
          if (frame->type == service::FrameType::kError) {
            throw std::runtime_error("serve bench: ERR " + frame->payload);
          }
          if (frame->type == service::FrameType::kReply) break;
        }
        local.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - sent)
                            .count());
      }
      client.send_frame(service::FrameType::kEnd, "");
      while (auto frame = client.read_frame()) {
        if (frame->type == service::FrameType::kEnd) break;
      }
      std::scoped_lock lock(latencies_mutex);
      result.latencies_ms.insert(result.latencies_ms.end(), local.begin(),
                                 local.end());
    });
  }
  for (auto& t : clients) t.join();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return result;
}

double latency_quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

void export_serve_phase(obs::MetricsRegistry& registry,
                        const std::string& prefix,
                        const ServeLoadResult& load) {
  const double requests =
      static_cast<double>(kServeClients * kServeRequestsPerClient);
  registry.gauge(prefix + ".throughput_rps").set(requests / load.wall_seconds);
  registry.gauge(prefix + ".p50_ms")
      .set(latency_quantile(load.latencies_ms, 0.50));
  registry.gauge(prefix + ".p95_ms")
      .set(latency_quantile(load.latencies_ms, 0.95));
  registry.gauge(prefix + ".p99_ms")
      .set(latency_quantile(load.latencies_ms, 0.99));
}

int run_serve_bench_json(const std::string& path) {
  service::StreamingOptions streaming;
  streaming.service.threads = 4;
  service::ShardedStreamingService svc(streaming, /*shards=*/4);
  svc.set_session_runner_for_test(serve_bench_fake_session);

  net::FrontEndOptions options;
  options.unix_path =
      "/tmp/deepcat_bench_serve_" + std::to_string(::getpid()) + ".sock";
  options.tcp_port = 0;  // ephemeral
  options.max_connections = kServeClients + 8;
  options.max_inflight = 4096;
  net::FrontEnd front_end(svc, options);
  const std::uint16_t tcp_port = front_end.tcp_port();
  net::FrontEndStats stats;
  std::thread loop([&] { stats = front_end.run(); });

  // Warm both transports (connect path, allocator, code) off the record.
  (void)run_serve_load(options, tcp_port, /*use_tcp=*/false);
  const auto unix_load = run_serve_load(options, tcp_port, /*use_tcp=*/false);
  const auto tcp_load = run_serve_load(options, tcp_port, /*use_tcp=*/true);

  front_end.request_shutdown();
  loop.join();
  if (stats.failed_sessions != 0 || stats.protocol_errors != 0 ||
      stats.rejected_overload != 0 || stats.forced_closes != 0) {
    std::cerr << "bench_micro: serve bench saw failures; not publishing\n";
    return 1;
  }

  obs::MetricsRegistry registry;
  registry.gauge("serve.clients").set(static_cast<double>(kServeClients));
  registry.gauge("serve.requests_per_client")
      .set(static_cast<double>(kServeRequestsPerClient));
  export_serve_phase(registry, "serve.unix", unix_load);
  export_serve_phase(registry, "serve.tcp", tcp_load);

  std::ostringstream json;
  json << "{\"bench\":\"deepcat serving front-end load generator\",\"build\":";
  obs::write_build_info_json(json, obs::current_build_info());
  json << "}\n";
  registry.write_jsonl(json);

  if (path.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench_micro: cannot write " << path << "\n";
      return 1;
    }
    out << json.str();
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

// --json-warm mode: the paper's evaluations-to-target comparison
// (fig9/fig10) on the simulator. Warm sessions replay k retrieved best
// configurations before the actor takes over; the figure of merit is how
// many paid evaluations each mode needs before its best-so-far first
// reaches the cold run's final best cost. Everything below is a pure
// function of the fixed seeds — no wall clock, no scheduling.

constexpr int kWarmBenchTrainIters = 600;
constexpr int kWarmBenchIndexSteps = 10;
constexpr int kWarmBenchSessionSteps = 10;
constexpr std::uint64_t kWarmBenchIndexSeeds = 3;
constexpr std::size_t kWarmBenchNeighbors = 2;

/// Target rule: a run "reaches the target" when its best-so-far first gets
/// within 5% of the cold run's final best cost — the same
/// within-tolerance-of-reference protocol the paper's adaptation figures
/// use, applied to both modes so the comparison is symmetric.
constexpr double kWarmBenchTargetSlack = 1.05;

/// 1-based evaluation count until best-so-far first reaches `target`;
/// steps+1 when the run never gets there (a miss).
int evals_to_target(const tuners::TuningReport& report, double target) {
  for (const auto& s : report.steps) {
    if (s.best_so_far <= target) return s.step;
  }
  return static_cast<int>(report.steps.size()) + 1;
}

int run_warm_bench_json(const std::string& path) {
  const core::DeepCatApiOptions api;
  core::DeepCat master(sparksim::cluster_a(), api);
  (void)master.train_offline(
      sparksim::make_workload(sparksim::WorkloadType::kTeraSort, 3.2),
      kWarmBenchTrainIters);
  const std::string blob = service::checkpoint_to_string(master);

  const auto try_run = [&](const std::string& case_id, std::uint64_t seed,
                           int steps,
                           std::vector<std::vector<double>> warm_actions) {
    service::TuningRequest request;
    request.id = case_id + "-s" + std::to_string(seed);
    request.workload = case_id;
    request.max_steps = steps;
    request.seed = seed;
    request.warm_actions = std::move(warm_actions);
    return service::run_session(blob, api, request, nullptr, nullptr);
  };
  const auto run = [&](const std::string& case_id, std::uint64_t seed,
                       int steps,
                       std::vector<std::vector<double>> warm_actions) {
    service::SessionReport report =
        try_run(case_id, seed, steps, std::move(warm_actions));
    if (!report.ok) {
      throw std::runtime_error("warm bench: session " + report.id +
                               " failed: " + report.error);
    }
    return report;
  };

  // Leave-one-size-out: the index holds the D1 and D3 sessions, the warm
  // targets below are the held-out D2 cases, so retrieval always crosses
  // input sizes and never sees the exact case it is asked to seed.
  retrieval::ExperienceIndex index;
  std::vector<std::string> skipped;
  for (const char* case_id : {"WC-D1", "TS-D1", "PR-D1", "KM-D1", "WC-D3",
                              "TS-D3", "PR-D3", "KM-D3"}) {
    const sparksim::HiBenchCase& c = sparksim::hibench_case(case_id);
    for (std::uint64_t seed = 1; seed <= kWarmBenchIndexSeeds; ++seed) {
      const auto report = try_run(case_id, seed, kWarmBenchIndexSteps, {});
      if (!report.ok) {
        // A seed whose default run fails in the simulator (e.g. an OOM
        // dataset/seed combination) simply contributes no experience — but
        // the published JSON must say so, or the baseline under-reports
        // its own coverage.
        std::cerr << "warm bench: skipping index session " << report.id
                  << ": " << report.error << "\n";
        skipped.push_back(report.id);
        continue;
      }
      index.add(retrieval::entry_from_report(c, seed, report.report));
    }
  }

  obs::MetricsRegistry registry;
  double cold_total = 0.0;
  double warm_total = 0.0;
  std::size_t runs = 0;
  std::size_t warm_misses = 0;
  for (const char* case_id : {"WC-D2", "TS-D2", "PR-D2", "KM-D2"}) {
    const sparksim::HiBenchCase& c = sparksim::hibench_case(case_id);
    std::vector<std::vector<double>> seeds_for_case;
    for (const auto& nb :
         index.query_case(c, kWarmBenchNeighbors, retrieval::Metric::kCosine)) {
      const auto& action = index.entries()[nb.entry].best_action;
      seeds_for_case.emplace_back(action.begin(), action.end());
    }
    double cold_case = 0.0;
    double warm_case = 0.0;
    std::size_t case_runs = 0;
    for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
      const auto cold = run(case_id, seed, kWarmBenchSessionSteps, {});
      const auto warm =
          run(case_id, seed, kWarmBenchSessionSteps, seeds_for_case);
      const double target = cold.report.best_time * kWarmBenchTargetSlack;
      const int cold_evals = evals_to_target(cold.report, target);
      const int warm_evals = evals_to_target(warm.report, target);
      if (warm_evals > kWarmBenchSessionSteps) ++warm_misses;
      cold_case += cold_evals;
      warm_case += warm_evals;
      ++case_runs;
    }
    cold_total += cold_case;
    warm_total += warm_case;
    runs += case_runs;
    const auto per = static_cast<double>(case_runs);
    registry.gauge(std::string("warm.") + case_id + ".cold_evals_to_target")
        .set(cold_case / per);
    registry.gauge(std::string("warm.") + case_id + ".warm_evals_to_target")
        .set(warm_case / per);
  }

  const auto n = static_cast<double>(runs);
  registry.gauge("warm.sessions_per_mode").set(n);
  registry.gauge("warm.neighbors_k")
      .set(static_cast<double>(kWarmBenchNeighbors));
  registry.gauge("warm.index_entries").set(static_cast<double>(index.size()));
  registry.gauge("warm.mean_cold_evals_to_target").set(cold_total / n);
  registry.gauge("warm.mean_warm_evals_to_target").set(warm_total / n);
  registry.gauge("warm.eval_savings_ratio")
      .set(1.0 - warm_total / cold_total);
  registry.counter("warm.misses").add(warm_misses);

  if (warm_total >= cold_total) {
    std::cerr << "bench_micro: warm start did not beat cold ("
              << warm_total / n << " vs " << cold_total / n
              << " mean evaluations); not publishing\n";
    return 1;
  }

  std::ostringstream json;
  json << "{\"bench\":\"deepcat warm-start evaluations-to-target\",\"build\":";
  obs::write_build_info_json(json, obs::current_build_info());
  json << ",\"skipped\":[";
  for (std::size_t i = 0; i < skipped.size(); ++i) {
    if (i) json << ",";
    json << "\"" << service::json_escape(skipped[i]) << "\"";
  }
  json << "]}\n";
  registry.write_jsonl(json);

  if (path.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench_micro: cannot write " << path << "\n";
      return 1;
    }
    out << json.str();
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

// --json-stream mode: the streaming re-adaptation benchmark. Every suite
// case runs as ONE long session over its full phase schedule — the model
// fine-tunes across the mid-session load shifts, there is no restart — and
// the figure of merit is the per-shift recovery: how many evaluation
// windows after each shift until the normalized p95 objective is back
// within 5% of the pre-shift best. Warm sessions start from an offline-
// trained master; cold sessions start untrained. Fully deterministic.

constexpr int kStreamBenchTrainIters = 600;

/// Extra evaluation windows past the scheduled ones (the last phase holds
/// forever), so a shift landing near the end of the schedule still gets a
/// fair recovery window before the guard judges it.
constexpr int kStreamBenchTailWindows = 4;

int run_stream_bench_json(const std::string& path) {
  const core::DeepCatApiOptions api;
  core::DeepCat master(sparksim::cluster_a(), api);
  (void)master.train_offline(
      sparksim::make_workload(sparksim::WorkloadType::kTeraSort, 3.2),
      kStreamBenchTrainIters);
  const std::string blob = service::checkpoint_to_string(master);

  obs::MetricsRegistry registry;
  struct ModeTotals {
    std::size_t shifts = 0;
    std::size_t recovered = 0;
    double recovery_evals = 0.0;  ///< summed over recovered shifts
  };
  ModeTotals warm_totals;
  ModeTotals cold_totals;
  std::vector<std::string> unrecovered_warm;
  for (const auto& c : streamsim::stream_suite()) {
    for (const bool warm : {false, true}) {
      core::DeepCat dc(sparksim::cluster_a(), api);
      if (warm) service::checkpoint_from_string(blob, dc);
      tuners::TuneBudget budget;
      // reset() consumes window 0 under defaults; the budget covers the
      // rest of the schedule plus the recovery tail.
      budget.max_steps =
          c.schedule.total_windows() - 1 + kStreamBenchTailWindows;
      const tuners::TuningReport report =
          dc.tune_online_stream(sparksim::cluster_a(), c, budget);
      if (!report.stream) {
        std::cerr << "bench_micro: stream session " << c.id
                  << " produced no stream summary; not publishing\n";
        return 1;
      }
      const sparksim::StreamSummary& ss = *report.stream;
      const std::string prefix =
          std::string("stream.") + c.id + (warm ? ".warm" : ".cold");
      registry.gauge(prefix + ".windows")
          .set(static_cast<double>(ss.windows));
      registry.gauge(prefix + ".final_p95_s").set(ss.final_p95_s);
      ModeTotals& totals = warm ? warm_totals : cold_totals;
      for (std::size_t s = 0; s < ss.shifts.size(); ++s) {
        const sparksim::ShiftRecord& shift = ss.shifts[s];
        const std::string at = prefix + ".shift" + std::to_string(s + 1);
        registry.gauge(at + ".at_eval")
            .set(static_cast<double>(shift.at_eval));
        // recovery_evals is 0 while unrecovered (mirrors ShiftRecord);
        // read it together with .recovered.
        registry.gauge(at + ".recovery_evals")
            .set(static_cast<double>(shift.recovery_evals));
        registry.gauge(at + ".recovered").set(shift.recovered ? 1.0 : 0.0);
        ++totals.shifts;
        if (shift.recovered) {
          ++totals.recovered;
          totals.recovery_evals += shift.recovery_evals;
        }
      }
      if (warm && !ss.all_recovered()) unrecovered_warm.push_back(c.id);
    }
  }

  registry.gauge("stream.cases")
      .set(static_cast<double>(streamsim::stream_suite().size()));
  for (const bool warm : {false, true}) {
    const ModeTotals& totals = warm ? warm_totals : cold_totals;
    const std::string prefix = warm ? "stream.warm" : "stream.cold";
    registry.gauge(prefix + ".shifts")
        .set(static_cast<double>(totals.shifts));
    registry.gauge(prefix + ".recovered_shifts")
        .set(static_cast<double>(totals.recovered));
    registry.gauge(prefix + ".mean_recovery_evals")
        .set(totals.recovered == 0
                 ? 0.0
                 : totals.recovery_evals /
                       static_cast<double>(totals.recovered));
  }

  if (!unrecovered_warm.empty()) {
    std::cerr << "bench_micro: warm streaming session did not recover after "
                 "a load shift (";
    for (std::size_t i = 0; i < unrecovered_warm.size(); ++i) {
      if (i) std::cerr << ", ";
      std::cerr << unrecovered_warm[i];
    }
    std::cerr << "); not publishing\n";
    return 1;
  }

  std::ostringstream json;
  json << "{\"bench\":\"deepcat streaming re-adaptation\",\"build\":";
  obs::write_build_info_json(json, obs::current_build_info());
  json << "}\n";
  registry.write_jsonl(json);

  if (path.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench_micro: cannot write " << path << "\n";
      return 1;
    }
    out << json.str();
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return run_kernel_bench_json("");
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return run_kernel_bench_json(argv[i] + 7);
    }
    if (std::strcmp(argv[i], "--json-obs") == 0) {
      return run_obs_bench_json("");
    }
    if (std::strncmp(argv[i], "--json-obs=", 11) == 0) {
      return run_obs_bench_json(argv[i] + 11);
    }
    if (std::strcmp(argv[i], "--json-serve") == 0) {
      return run_serve_bench_json("");
    }
    if (std::strncmp(argv[i], "--json-serve=", 13) == 0) {
      return run_serve_bench_json(argv[i] + 13);
    }
    if (std::strcmp(argv[i], "--json-warm") == 0) {
      return run_warm_bench_json("");
    }
    if (std::strncmp(argv[i], "--json-warm=", 12) == 0) {
      return run_warm_bench_json(argv[i] + 12);
    }
    if (std::strcmp(argv[i], "--json-stream") == 0) {
      return run_stream_bench_json("");
    }
    if (std::strncmp(argv[i], "--json-stream=", 14) == 0) {
      return run_stream_bench_json(argv[i] + 14);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
