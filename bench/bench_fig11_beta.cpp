// Figure 11: sensitivity to the RDPER high-reward batch share beta.
// Nine models are trained (beta = 0.1 .. 0.9) and each online-tunes
// TeraSort 3.2 GB. Paper: extremes over-fit (all-good or all-bad
// batches); beta in [0.4, 0.7] works best and 0.6 is chosen.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace deepcat;
  using namespace deepcat::sparksim;

  const auto& ts = hibench_case("TS-D1");
  common::Table t(
      "Figure 11: DeepCAT performance under different beta settings "
      "(TeraSort 3.2 GB)");
  t.header({"beta", "best exec time (s)", "total tuning cost (s)"});

  // The nine beta settings are fully independent train+tune pipelines
  // (every RNG they touch is seeded per setting), so they run concurrently;
  // rows are emitted in beta order afterwards, identical to the serial loop.
  const auto reports = common::parallel_map(
      bench::shared_pool(), std::size_t{9}, [&](std::size_t i) {
        const double beta = static_cast<double>(i + 1) / 10.0;
        tuners::DeepCatOptions options = bench::deepcat_options(11);
        options.rdper.beta = beta;
        tuners::DeepCatTuner tuner(options);
        TuningEnvironment train_env = bench::make_env(ts, 1100);
        (void)tuner.train_offline(train_env, 1600);

        TuningEnvironment env = bench::make_env(ts, 1111);
        return tuner.tune(env, bench::kOnlineSteps);
      });

  double best_time_at_06 = 0.0, worst_time = 0.0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const double beta = static_cast<double>(i + 1) / 10.0;
    const auto& report = reports[i];
    t.row({common::cell(beta, 1), common::cell(report.best_time, 1),
           common::cell(report.total_tuning_seconds(), 1)});
    if (i + 1 == 6) best_time_at_06 = report.best_time;
    worst_time = std::max(worst_time, report.best_time);
  }
  t.print(std::cout);

  std::cout << "\nbeta = 0.6 (paper's choice) best exec time: "
            << common::cell(best_time_at_06, 1)
            << " s; worst beta setting: " << common::cell(worst_time, 1)
            << " s\n(paper: mid-range betas 0.4-0.7 clearly beat the "
               "extremes)\n";
  return 0;
}
