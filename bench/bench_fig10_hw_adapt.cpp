// Figure 10: adaptability to hardware change. All three tuners are
// prepared on Cluster-A (the paper's physical testbed) and must then
// online-tune WordCount and PageRank on Cluster-B (the smaller VM
// cluster); out-of-scope recommendations are clipped to the new
// environment's boundaries. Paper speedups on Cluster-B: WC 1.68 / 1.30 /
// 1.17 and PR 1.42 / 1.25 / 1.09 (DeepCAT / CDBTune / OtterTune).
//
// Each (workload, tuner) pair prepares its own tuner from scratch and is
// therefore a pure function of its index: the 6 units fan out on the
// shared pool and fold back in fixed order, so the table is byte-
// identical to a serial run for any DEEPCAT_BENCH_THREADS.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace deepcat;
using namespace deepcat::sparksim;

constexpr const char* kCases[] = {"WC-D1", "PR-D1"};
constexpr const char* kTuners[] = {"DeepCAT", "CDBTune", "OtterTune"};

tuners::TuningReport run_unit(std::size_t unit) {
  const char* id = kCases[unit / 3];
  const auto& c = hibench_case(id);
  const std::uint64_t seed = 1010 + static_cast<std::uint64_t>(id[0]);
  TuningEnvironment env = bench::make_env(c, seed, cluster_b());
  switch (unit % 3) {
    case 0: {
      tuners::DeepCatTuner deepcat = bench::trained_deepcat(c, 10);
      return deepcat.tune(env, bench::kOnlineSteps);
    }
    case 1: {
      tuners::CdbTuneTuner cdbtune = bench::trained_cdbtune(c, 10);
      return cdbtune.tune(env, bench::kOnlineSteps);
    }
    default: {
      tuners::OtterTuneTuner ottertune = bench::seeded_ottertune(10);
      return ottertune.tune(env, bench::kOnlineSteps);
    }
  }
}

}  // namespace

int main() {
  const auto reports = common::parallel_map(bench::shared_pool(), 6, run_unit);

  common::Table t(
      "Figure 10: tuning on Cluster-B with models prepared on Cluster-A");
  t.header({"workload", "tuner", "default (s)", "best (s)", "speedup",
            "total tuning cost (s)"});
  for (std::size_t unit = 0; unit < reports.size(); ++unit) {
    const auto& r = reports[unit];
    t.row({kCases[unit / 3], kTuners[unit % 3],
           common::cell(r.default_time, 1), common::cell(r.best_time, 1),
           common::speedup_cell(r.speedup_over_default()),
           common::cell(r.total_tuning_seconds(), 1)});
  }
  t.print(std::cout);
  std::cout << "\nPaper reference (Cluster-B speedups): WC 1.68x/1.30x/1.17x, "
               "PR 1.42x/1.25x/1.09x (DeepCAT/CDBTune/OtterTune);\n"
               "DeepCAT also consumes the least total tuning cost.\n";
  return 0;
}
