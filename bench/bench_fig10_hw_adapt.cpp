// Figure 10: adaptability to hardware change. All three tuners are
// prepared on Cluster-A (the paper's physical testbed) and must then
// online-tune WordCount and PageRank on Cluster-B (the smaller VM
// cluster); out-of-scope recommendations are clipped to the new
// environment's boundaries. Paper speedups on Cluster-B: WC 1.68 / 1.30 /
// 1.17 and PR 1.42 / 1.25 / 1.09 (DeepCAT / CDBTune / OtterTune).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace deepcat;
  using namespace deepcat::sparksim;

  common::Table t(
      "Figure 10: tuning on Cluster-B with models prepared on Cluster-A");
  t.header({"workload", "tuner", "default (s)", "best (s)", "speedup",
            "total tuning cost (s)"});

  for (const char* id : {"WC-D1", "PR-D1"}) {
    const auto& c = hibench_case(id);

    tuners::DeepCatTuner deepcat = bench::trained_deepcat(c, 10);
    tuners::CdbTuneTuner cdbtune = bench::trained_cdbtune(c, 10);
    tuners::OtterTuneTuner ottertune = bench::seeded_ottertune(10);

    const std::uint64_t seed = 1010 + static_cast<std::uint64_t>(id[0]);
    {
      TuningEnvironment env = bench::make_env(c, seed, cluster_b());
      const auto r = deepcat.tune(env, bench::kOnlineSteps);
      t.row({id, "DeepCAT", common::cell(r.default_time, 1),
             common::cell(r.best_time, 1),
             common::speedup_cell(r.speedup_over_default()),
             common::cell(r.total_tuning_seconds(), 1)});
    }
    {
      TuningEnvironment env = bench::make_env(c, seed, cluster_b());
      const auto r = cdbtune.tune(env, bench::kOnlineSteps);
      t.row({id, "CDBTune", common::cell(r.default_time, 1),
             common::cell(r.best_time, 1),
             common::speedup_cell(r.speedup_over_default()),
             common::cell(r.total_tuning_seconds(), 1)});
    }
    {
      TuningEnvironment env = bench::make_env(c, seed, cluster_b());
      const auto r = ottertune.tune(env, bench::kOnlineSteps);
      t.row({id, "OtterTune", common::cell(r.default_time, 1),
             common::cell(r.best_time, 1),
             common::speedup_cell(r.speedup_over_default()),
             common::cell(r.total_tuning_seconds(), 1)});
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper reference (Cluster-B speedups): WC 1.68x/1.30x/1.17x, "
               "PR 1.42x/1.25x/1.09x (DeepCAT/CDBTune/OtterTune);\n"
               "DeepCAT also consumes the least total tuning cost.\n";
  return 0;
}
