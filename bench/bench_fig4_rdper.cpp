// Figure 4: execution time of the best configuration recommended after 5
// online tuning steps, as a function of offline training iterations —
// conventional TD3 (uniform replay) vs TD3 + RDPER. Reproduces the
// paper's finding that RDPER converges substantially faster and ends at a
// better configuration.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace deepcat;
using namespace deepcat::sparksim;

/// Trains incrementally; at each checkpoint snapshots the model, runs
/// independent 5-step online tuning sessions (averaged), and restores the
/// weights so online fine-tuning does not leak into the remaining offline
/// schedule.
std::vector<std::pair<std::size_t, double>> sweep(bool use_rdper,
                                                  std::uint64_t seed) {
  tuners::DeepCatOptions options = bench::deepcat_options(seed);
  options.use_rdper = use_rdper;
  tuners::DeepCatTuner tuner(options);
  TuningEnvironment train_env = bench::make_env(hibench_case("TS-D1"), seed);

  std::vector<std::pair<std::size_t, double>> curve;
  constexpr std::size_t kStep = 400;
  constexpr std::size_t kMax = 3600;
  constexpr int kSessions = 3;
  for (std::size_t done = 0; done < kMax; done += kStep) {
    (void)tuner.train_offline(train_env, kStep);
    bench::ModelSnapshot snapshot(tuner);
    double best = 0.0;
    for (int session = 0; session < kSessions; ++session) {
      TuningEnvironment tune_env = bench::make_env(
          hibench_case("TS-D1"),
          9000 + seed + static_cast<std::uint64_t>(session) * 97);
      best += tuner.tune(tune_env, bench::kOnlineSteps).best_time / kSessions;
      snapshot.restore(tuner);
    }
    curve.emplace_back(done + kStep, best);
  }
  return curve;
}

}  // namespace

int main() {
  const auto plain = sweep(/*use_rdper=*/false, 41);
  const auto rdper = sweep(/*use_rdper=*/true, 41);

  common::Table t(
      "Figure 4: best online-recommended execution time vs offline "
      "training iterations (TeraSort 3.2 GB)");
  t.header({"offline iterations", "TD3 (s)", "TD3+RDPER (s)"});
  for (std::size_t i = 0; i < plain.size(); ++i) {
    t.row({common::cell(plain[i].first), common::cell(plain[i].second, 1),
           common::cell(rdper[i].second, 1)});
  }
  t.print(std::cout);

  // Convergence comparison in the paper's terms: iterations needed to
  // first reach within 5% of the best value either variant ever achieves
  // (anchoring on a common target keeps the metric comparable).
  double global_best = 1e300;
  for (const auto& [iters, time] : plain) global_best = std::min(global_best, time);
  for (const auto& [iters, time] : rdper) global_best = std::min(global_best, time);
  auto converged_at =
      [global_best](const std::vector<std::pair<std::size_t, double>>& c) {
        for (const auto& [iters, time] : c) {
          if (time <= global_best * 1.05) return iters;
        }
        return c.back().first;
      };
  const auto plain_conv = converged_at(plain);
  const auto rdper_conv = converged_at(rdper);
  std::cout << "\nConvergence (within 5% of overall best):  TD3 @ "
            << plain_conv
            << " iters,  TD3+RDPER @ " << rdper_conv << " iters  =>  "
            << common::cell(
                   static_cast<double>(plain_conv) /
                       static_cast<double>(rdper_conv),
                   2)
            << "x faster (paper: 1.60x, 3200 vs 2000)\n";
  std::cout << "Final best execution time:  TD3 "
            << common::cell(plain.back().second, 1) << " s,  TD3+RDPER "
            << common::cell(rdper.back().second, 1)
            << " s (paper: 42.1 s vs 37.0 s, 12.11% better)\n";
  return 0;
}
