// Figure 4: execution time of the best configuration recommended after 5
// online tuning steps, as a function of offline training iterations —
// conventional TD3 (uniform replay) vs TD3 + RDPER. Reproduces the
// paper's finding that RDPER converges substantially faster and ends at a
// better configuration.
//
// Parallel protocol: phase 1 trains each variant straight through its
// offline schedule, snapshotting the weights every kStep iterations
// (training never sees online-session RNG draws, unlike the earlier
// serial interleaving). Phase 2 fans the 2 x 9 x 3 online sessions out as
// pure (snapshot, per-index seed) units and folds them back in index
// order, so figure data is byte-identical for any DEEPCAT_BENCH_THREADS.
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace deepcat;
using namespace deepcat::sparksim;

constexpr std::size_t kStep = 400;
constexpr std::size_t kMax = 3600;
constexpr std::size_t kCheckpoints = kMax / kStep;
constexpr std::size_t kSessions = 3;
constexpr std::uint64_t kSeed = 41;

/// Phase 1: offline-train one variant, saving a weight blob at every
/// checkpoint. Sequential within a variant (training is inherently
/// incremental); the two variants run as independent units.
std::vector<std::string> training_snapshots(bool use_rdper) {
  tuners::DeepCatOptions options = bench::deepcat_options(kSeed);
  options.use_rdper = use_rdper;
  tuners::DeepCatTuner tuner(options);
  TuningEnvironment train_env = bench::make_env(hibench_case("TS-D1"), kSeed);

  std::vector<std::string> blobs;
  blobs.reserve(kCheckpoints);
  for (std::size_t done = 0; done < kMax; done += kStep) {
    (void)tuner.train_offline(train_env, kStep);
    std::stringstream ss;
    tuner.save(ss);
    blobs.push_back(ss.str());
  }
  return blobs;
}

/// Phase 2 unit: one independent 5-step online session from a snapshot.
/// A pure function of (blob, variant, checkpoint, session) — every RNG
/// stream is seeded from the unit's own indices.
double session_best(const std::string& blob, bool use_rdper,
                    std::size_t checkpoint, std::size_t session) {
  const std::uint64_t unit =
      (use_rdper ? kCheckpoints * kSessions : 0) +
      checkpoint * kSessions + session;
  tuners::DeepCatOptions options =
      bench::deepcat_options(kSeed + 7001 * (unit + 1));
  options.use_rdper = use_rdper;
  tuners::DeepCatTuner tuner(options);
  TuningEnvironment tune_env = bench::make_env(
      hibench_case("TS-D1"), 9000 + kSeed + session * 97);
  tuner.materialize(tune_env.state_dim(), tune_env.action_dim());
  std::istringstream ss(blob);
  tuner.load(ss);
  return tuner.tune(tune_env, bench::kOnlineSteps).best_time;
}

}  // namespace

int main() {
  // Phase 1: the two training trajectories are independent units.
  const auto snapshots = common::parallel_map(
      bench::shared_pool(), 2,
      [](std::size_t vi) { return training_snapshots(vi == 1); });

  // Phase 2: 2 variants x 9 checkpoints x 3 sessions, all independent.
  const std::size_t total = 2 * kCheckpoints * kSessions;
  const auto bests = common::parallel_map(
      bench::shared_pool(), total, [&snapshots](std::size_t u) {
        const std::size_t vi = u / (kCheckpoints * kSessions);
        const std::size_t checkpoint = (u / kSessions) % kCheckpoints;
        const std::size_t session = u % kSessions;
        return session_best(snapshots[vi][checkpoint], vi == 1, checkpoint,
                            session);
      });

  // Fold in index order so the averaging matches a serial run bit for bit.
  std::vector<std::pair<std::size_t, double>> plain, rdper;
  for (std::size_t vi = 0; vi < 2; ++vi) {
    auto& curve = vi == 1 ? rdper : plain;
    for (std::size_t checkpoint = 0; checkpoint < kCheckpoints; ++checkpoint) {
      double best = 0.0;
      for (std::size_t session = 0; session < kSessions; ++session) {
        best += bests[vi * kCheckpoints * kSessions +
                      checkpoint * kSessions + session] /
                static_cast<double>(kSessions);
      }
      curve.emplace_back((checkpoint + 1) * kStep, best);
    }
  }

  common::Table t(
      "Figure 4: best online-recommended execution time vs offline "
      "training iterations (TeraSort 3.2 GB)");
  t.header({"offline iterations", "TD3 (s)", "TD3+RDPER (s)"});
  for (std::size_t i = 0; i < plain.size(); ++i) {
    t.row({common::cell(plain[i].first), common::cell(plain[i].second, 1),
           common::cell(rdper[i].second, 1)});
  }
  t.print(std::cout);

  // Convergence comparison in the paper's terms: iterations needed to
  // first reach within 5% of the best value either variant ever achieves
  // (anchoring on a common target keeps the metric comparable).
  double global_best = 1e300;
  for (const auto& [iters, time] : plain) global_best = std::min(global_best, time);
  for (const auto& [iters, time] : rdper) global_best = std::min(global_best, time);
  auto converged_at =
      [global_best](const std::vector<std::pair<std::size_t, double>>& c) {
        for (const auto& [iters, time] : c) {
          if (time <= global_best * 1.05) return iters;
        }
        return c.back().first;
      };
  const auto plain_conv = converged_at(plain);
  const auto rdper_conv = converged_at(rdper);
  std::cout << "\nConvergence (within 5% of overall best):  TD3 @ "
            << plain_conv
            << " iters,  TD3+RDPER @ " << rdper_conv << " iters  =>  "
            << common::cell(
                   static_cast<double>(plain_conv) /
                       static_cast<double>(rdper_conv),
                   2)
            << "x faster (paper: 1.60x, 3200 vs 2000)\n";
  std::cout << "Final best execution time:  TD3 "
            << common::cell(plain.back().second, 1) << " s,  TD3+RDPER "
            << common::cell(rdper.back().second, 1)
            << " s (paper: 42.1 s vs 37.0 s, 12.11% better)\n";
  return 0;
}
