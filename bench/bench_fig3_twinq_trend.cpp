// Figure 3: the trend of min(Q1, Q2) from the twin critic networks versus
// the real reward during offline training — the evidence behind the
// Twin-Q Optimizer's use of the critics as a free execution-time estimate.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace deepcat;
  using namespace deepcat::sparksim;

  tuners::DeepCatTuner tuner(bench::deepcat_options(3));
  TuningEnvironment env = bench::make_env(hibench_case("TS-D1"), 303);
  const auto trace = tuner.train_offline(env, bench::kOfflineIters);

  // Windowed averages, as the paper plots smoothed curves.
  constexpr std::size_t kBuckets = 20;
  const std::size_t per_bucket = trace.size() / kBuckets;
  common::Table t(
      "Figure 3: twin-Q indicator vs real reward over offline training "
      "(TeraSort 3.2 GB, window-averaged)");
  t.header({"iterations", "min(Q1,Q2)", "real reward"});
  for (std::size_t b = 0; b < kBuckets; ++b) {
    common::RunningStats q, r;
    for (std::size_t i = b * per_bucket; i < (b + 1) * per_bucket; ++i) {
      q.add(trace[i].min_q);
      r.add(trace[i].reward);
    }
    t.row({common::cell((b + 1) * per_bucket), common::cell(q.mean(), 3),
           common::cell(r.mean(), 3)});
  }
  t.print(std::cout);

  // Quantitative version of "share a very similar trend" (paper Fig. 3):
  // rank correlation of the indicator and the realized reward over the
  // post-warmup half of training.
  std::vector<double> qs, rs;
  for (std::size_t i = trace.size() / 2; i < trace.size(); ++i) {
    qs.push_back(trace[i].min_q);
    rs.push_back(trace[i].reward);
  }
  std::cout << "\nSpearman rank correlation (2nd half of training): "
            << common::cell(common::spearman(qs, rs), 3)
            << "  (paper: curves visibly co-trend)\n";
  return 0;
}
