// Figure 9: adaptability to workload change. DeepCAT models offline-
// trained on WC / TS / KM / PR are each used to online-tune PageRank
// (M_X -> PR); CDBTune and OtterTune are prepared specifically for
// PageRank. Paper: DeepCAT's transferred models beat both baselines
// (avg +15.86% over CDBTune, +27.21% over OtterTune perf; 21.67% / 24.02%
// less tuning cost), and M_TS -> PR is the weakest transfer. Results are
// averaged over 3 online sessions per model.
//
// The six tuner preparations (4 DeepCAT transfers + CDBTune + OtterTune)
// are self-contained, so they fan out as one unit each and fold back in
// fixed order — figure data is byte-identical to a serial run for any
// DEEPCAT_BENCH_THREADS.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace deepcat;
using namespace deepcat::sparksim;

constexpr std::uint64_t kTuneSeeds[] = {909, 919, 929};
constexpr const char* kSources[] = {"WC-D1", "TS-D1", "PR-D1", "KM-D1"};

struct Averages {
  double best = 0.0;
  double cost = 0.0;
};

template <typename Tuner, typename Restore>
Averages averaged_tune(Tuner& tuner, Restore restore) {
  Averages out;
  for (const std::uint64_t seed : kTuneSeeds) {
    restore(tuner);
    TuningEnvironment env =
        bench::make_env(hibench_case("PR-D1"), seed);
    const auto report = tuner.tune(env, bench::kOnlineSteps);
    out.best += report.best_time / std::size(kTuneSeeds);
    out.cost += report.total_tuning_seconds() / std::size(kTuneSeeds);
  }
  return out;
}

/// Units 0-3: DeepCAT M_source -> PR. Unit 4: CDBTune. Unit 5: OtterTune.
/// Each unit builds its own tuner from scratch, so it is a pure function
/// of its index.
Averages run_unit(std::size_t unit) {
  if (unit < 4) {
    tuners::DeepCatTuner tuner =
        bench::trained_deepcat(hibench_case(kSources[unit]), 9);
    bench::ModelSnapshot snapshot(tuner);
    return averaged_tune(tuner, [&snapshot](tuners::DeepCatTuner& model) {
      snapshot.restore(model);
    });
  }
  if (unit == 4) {
    tuners::CdbTuneTuner cdbtune =
        bench::trained_cdbtune(hibench_case("PR-D1"), 9);
    std::stringstream cdb_weights;
    cdbtune.save(cdb_weights);
    Averages cdb;
    for (const std::uint64_t seed : kTuneSeeds) {
      cdb_weights.clear();
      cdb_weights.seekg(0);
      cdbtune.load(cdb_weights);
      TuningEnvironment env = bench::make_env(hibench_case("PR-D1"), seed);
      const auto report = cdbtune.tune(env, bench::kOnlineSteps);
      cdb.best += report.best_time / std::size(kTuneSeeds);
      cdb.cost += report.total_tuning_seconds() / std::size(kTuneSeeds);
    }
    return cdb;
  }
  tuners::OtterTuneTuner ottertune = bench::seeded_ottertune(9);
  return averaged_tune(ottertune, [](tuners::OtterTuneTuner&) {});
}

}  // namespace

int main() {
  const auto units = common::parallel_map(bench::shared_pool(), 6, run_unit);

  common::Table t(
      "Figure 9: online-tuning PageRank (0.5 Mpages) with models trained "
      "on different workloads (avg of 3 sessions)");
  t.header({"model", "best exec time (s)", "total tuning cost (s)"});

  double dc_perf_sum = 0.0, dc_cost_sum = 0.0;
  double ts_to_pr = 0.0, pr_to_pr = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const Averages& avg = units[i];
    t.row({std::string("DeepCAT M_") + kSources[i] + " -> PR",
           common::cell(avg.best, 1), common::cell(avg.cost, 1)});
    dc_perf_sum += avg.best;
    dc_cost_sum += avg.cost;
    if (std::string(kSources[i]) == "TS-D1") ts_to_pr = avg.best;
    if (std::string(kSources[i]) == "PR-D1") pr_to_pr = avg.best;
  }

  const Averages& cdb = units[4];
  t.row({"CDBTune (trained on PR)", common::cell(cdb.best, 1),
         common::cell(cdb.cost, 1)});

  const Averages& ot = units[5];
  t.row({"OtterTune (PR history mapped)", common::cell(ot.best, 1),
         common::cell(ot.cost, 1)});

  t.print(std::cout);

  const double dc_avg_perf = dc_perf_sum / 4.0;
  const double dc_avg_cost = dc_cost_sum / 4.0;
  std::cout << "\nDeepCAT (4-model avg) vs CDBTune: perf "
            << common::percent_cell((cdb.best - dc_avg_perf) / cdb.best, 2)
            << " better (paper: 15.86%), cost "
            << common::percent_cell((cdb.cost - dc_avg_cost) / cdb.cost, 2)
            << " less (paper: 21.67%)\n";
  std::cout << "DeepCAT (4-model avg) vs OtterTune: perf "
            << common::percent_cell((ot.best - dc_avg_perf) / ot.best, 2)
            << " better (paper: 27.21%), cost "
            << common::percent_cell((ot.cost - dc_avg_cost) / ot.cost, 2)
            << " less (paper: 24.02%)\n";
  std::cout << "Transfer penalty M_TS->PR vs native M_PR->PR: "
            << common::percent_cell((ts_to_pr - pr_to_pr) / pr_to_pr, 2)
            << " more execution time (paper: 11.22%-19.44% across models)\n";
  return 0;
}
