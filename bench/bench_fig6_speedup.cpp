// Figure 6: speedup of the best recommended configuration over the
// default configuration for all 12 workload-input pairs, DeepCAT vs
// CDBTune vs OtterTune (higher is better), seed-averaged. Paper headline: DeepCAT 4.66x average vs 3.21x
// (CDBTune) and 2.82x (OtterTune) — i.e. 1.45x / 1.65x.
#include <iostream>

#include "bench_comparison.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace deepcat;
  const auto results = bench::run_averaged_comparison(
      bench::all_case_ids(), bench::comparison_seeds());

  common::Table t(
      "Figure 6: speedup over default configuration (avg over offline seeds)");
  t.header({"case", "default (s)", "DeepCAT", "CDBTune", "OtterTune"});
  std::vector<double> dc, cdb, ot;
  for (const auto& r : results) {
    dc.push_back(r.deepcat.speedup(r.default_time));
    cdb.push_back(r.cdbtune.speedup(r.default_time));
    ot.push_back(r.ottertune.speedup(r.default_time));
    t.row({r.case_id, common::cell(r.default_time, 1),
           common::speedup_cell(dc.back()), common::speedup_cell(cdb.back()),
           common::speedup_cell(ot.back())});
  }
  t.row({"average", "",
         common::speedup_cell(common::mean(dc)),
         common::speedup_cell(common::mean(cdb)),
         common::speedup_cell(common::mean(ot))});
  t.print(std::cout);

  const double vs_cdb = common::mean(dc) / common::mean(cdb);
  const double vs_ot = common::mean(dc) / common::mean(ot);
  std::cout << "\nDeepCAT vs CDBTune (avg speedup ratio): "
            << common::speedup_cell(vs_cdb) << "  (paper: 1.45x)\n";
  std::cout << "DeepCAT vs OtterTune (avg speedup ratio): "
            << common::speedup_cell(vs_ot) << "  (paper: 1.65x)\n";

  // KMeans spotlight (paper §5.2.1 calls out the largest gaps there).
  double km_dc = 0.0, km_cdb = 0.0, km_ot = 0.0;
  int km_n = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].case_id.rfind("KM", 0) == 0) {
      km_dc += dc[i];
      km_cdb += cdb[i];
      km_ot += ot[i];
      ++km_n;
    }
  }
  std::cout << "KMeans-only average ratios: vs CDBTune "
            << common::speedup_cell(km_dc / km_cdb) << " (paper avg 1.77x), "
            << "vs OtterTune " << common::speedup_cell(km_dc / km_ot)
            << " (paper avg 1.98x)  [n=" << km_n << "]\n";
  return 0;
}
