// Tables 1 & 2: the HiBench workload grid and the tuned-knob inventory.
// Regenerates exactly the rows the paper reports, from the live registry
// (so the tables can never drift from the implementation).
#include <iostream>

#include "common/table.hpp"
#include "sparksim/config_space.hpp"
#include "sparksim/workloads.hpp"

int main() {
  using namespace deepcat;
  using namespace deepcat::sparksim;

  // --- Table 1: workload characteristics.
  common::Table table1("Table 1: Workload characteristics");
  table1.header({"Workload", "Category", "Input Datasets (D1, D2, D3)"});
  auto row_for = [](WorkloadType t, const char* category, const char* sizes) {
    return std::vector<std::string>{to_string(t), category, sizes};
  };
  table1.row(row_for(WorkloadType::kWordCount, "micro", "3.2, 10, 20 (GB)"));
  table1.row(row_for(WorkloadType::kTeraSort, "micro", "3.2, 6, 10 (GB)"));
  table1.row(row_for(WorkloadType::kPageRank, "websearch",
                     "0.5, 1, 1.6 (Million Pages)"));
  table1.row(row_for(WorkloadType::kKMeans, "ML",
                     "20, 30, 40 (Million Points)"));
  table1.print(std::cout);

  // Cross-check the printed sizes against the live suite registry.
  std::cout << "\nSuite registry (live):\n";
  for (const auto& c : hibench_suite()) {
    const WorkloadSpec w = workload_for(c);
    std::cout << "  " << c.id << " -> " << w.name << "  (" << w.input_mb
              << " MB on HDFS, " << w.stages.size() << " stages)\n";
  }

  // --- Table 2: knob counts per pipeline component.
  const ConfigSpace& space = pipeline_space();
  common::Table table2("Table 2: Number of tuned parameters in the pipeline");
  table2.header({"Component of the pipeline", "Number of parameters"});
  table2.row({"Spark", common::cell(space.count(Component::kSpark)) + "*"});
  table2.row({"YARN", common::cell(space.count(Component::kYarn))});
  table2.row({"HDFS", common::cell(space.count(Component::kHdfs))});
  std::cout << '\n';
  table2.print(std::cout);
  std::cout << "*Including the Spark-YARN connector parameters\n\n";

  // Full knob inventory with ranges and defaults.
  common::Table knobs("Tuned configuration parameters (full inventory)");
  knobs.header({"#", "Parameter", "Component", "Type", "Min", "Max",
                "Default"});
  const char* comp_names[] = {"Spark", "YARN", "HDFS"};
  const char* type_names[] = {"int", "double", "bool", "categorical"};
  for (std::size_t i = 0; i < space.size(); ++i) {
    const KnobDef& k = space.knob(static_cast<KnobId>(i));
    knobs.row({common::cell(i + 1), k.name,
               comp_names[static_cast<int>(k.component)],
               type_names[static_cast<int>(k.type)],
               common::cell(k.min_value, 1), common::cell(k.max_value, 1),
               common::cell(k.default_value, 1)});
  }
  knobs.print(std::cout);
  return 0;
}
