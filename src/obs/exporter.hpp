// Span export sinks — the streaming side of the tracer.
//
// In retained mode the Tracer keeps every span in memory until someone
// calls write_chrome_trace(); fine for tests and short CLI runs, O(trace)
// for a long-lived service. Exporter mode inverts that: completed spans
// accumulate in a small ring inside the Tracer and are handed to a
// SpanSink in batches whenever the ring fills (synchronous back-pressure,
// never silent loss) and at flush points. Memory stays O(ring + open
// spans) however long the stream runs.
//
// Two sinks ship here:
//
//   * CallbackSpanSink — in-process fan-out to a std::function, for tests,
//     benchmarks and embedders that want spans as objects.
//   * ChromeTraceFileSink — incremental Chrome-trace-format writer with
//     valid-JSON-on-crash framing: after every event the closing "]}"
//     tail is written and the write position rewound over it before the
//     next event, so the file on disk parses as a complete trace at every
//     flush boundary even if the process dies mid-stream.
//
// Sinks are called with the Tracer's internal mutex held (that is what
// makes the ring drain a back-pressure point rather than a drop point),
// so a sink must never call back into the Tracer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

namespace deepcat::obs {

/// One completed span, resolved to plain values. Ids are the Tracer's
/// monotonic span ids; parent 0 means root. Timestamps are whatever the
/// Tracer's Clock produced (ns).
struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
  std::uint32_t tid = 0;
};

/// Destination for completed spans. export_spans receives batches in
/// completion order; flush() marks a durability point (end of stream,
/// Tracer destruction). Implementations must tolerate empty batches.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void export_spans(const SpanRecord* spans, std::size_t count) = 0;
  virtual void flush() {}
};

/// Hands each span to a callback; the simplest possible sink.
class CallbackSpanSink final : public SpanSink {
 public:
  using Callback = std::function<void(const SpanRecord&)>;
  explicit CallbackSpanSink(Callback on_span)
      : on_span_(std::move(on_span)) {}

  void export_spans(const SpanRecord* spans, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) on_span_(spans[i]);
  }

 private:
  Callback on_span_;
};

/// Streams spans into a Chrome-trace JSON file as they complete.
///
/// Framing invariant: after construction and after every export_spans /
/// flush call the file contains a structurally valid Chrome trace (header,
/// metadata event, every span exported so far, closing "]}" tail). The
/// tail is rewritten after each event batch and the put position seeks
/// back over it before the next batch — a crash between batches loses at
/// most the spans still in the Tracer's ring, never the file's validity.
class ChromeTraceFileSink final : public SpanSink {
 public:
  /// Opens (truncates) `path` and writes the trace header. `clock_kind`
  /// lands in the otherData metadata ("steady" / "logical"). Throws
  /// std::runtime_error when the file cannot be opened.
  ChromeTraceFileSink(const std::string& path, const std::string& clock_kind);
  ~ChromeTraceFileSink() override;

  void export_spans(const SpanRecord* spans, std::size_t count) override;
  void flush() override;

  /// Spans written to the file so far.
  [[nodiscard]] std::uint64_t exported_spans() const noexcept {
    return exported_;
  }

 private:
  void write_tail();

  std::ofstream out_;
  std::ofstream::pos_type tail_pos_{};
  std::uint64_t exported_ = 0;
};

}  // namespace deepcat::obs
