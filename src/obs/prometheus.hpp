// Prometheus text-exposition rendering of a MetricsRegistry snapshot.
//
// One renderer shared by the HTTP /metrics endpoint and its tests, so the
// exposition format is pinned in exactly one place. Mapping:
//
//   - metric names: dots become underscores and everything gets a
//     "deepcat_" prefix ("net.accepted" -> "deepcat_net_accepted");
//   - counters export as "<name>_total" with TYPE counter;
//   - gauges are commutative summaries (count/mean/min/max — there is no
//     "last value" by design, see metrics.hpp), so a gauge exports as one
//     TYPE gauge family with a stat label:
//       deepcat_x{stat="count"|"mean"|"min"|"max"} ...
//   - histograms export in the classic Prometheus shape: cumulative
//     "_bucket{le=...}" series ending in le="+Inf", plus "_sum"/"_count";
//   - build identity exports as the conventional info gauge
//     deepcat_build_info{version=...,backend=...,...} 1, so every scrape
//     can be joined against the binary that produced it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/metrics.hpp"

namespace deepcat::obs {

/// "rl.critic1_loss" -> "deepcat_rl_critic1_loss": every character
/// outside [a-zA-Z0-9_:] becomes '_' after the prefix is applied.
[[nodiscard]] std::string prometheus_metric_name(const std::string& name);

/// Escapes a label value for the exposition format (backslash, double
/// quote and newline get backslash escapes).
[[nodiscard]] std::string prometheus_escape_label(const std::string& value);

/// Writes the full exposition: the build-info gauge first, then every
/// snapshot entry name-sorted (snapshot() already sorts). Ends with a
/// newline, as scrapers require.
void write_prometheus_text(std::ostream& os,
                           const std::vector<MetricSnapshot>& snapshot,
                           const BuildInfo& info);

}  // namespace deepcat::obs
