#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

namespace deepcat::obs {

namespace detail {

std::size_t stripe_index() noexcept {
  // Hash of the thread id, cached per thread. Distinct threads usually
  // land on distinct stripes; collisions only cost contention, never
  // correctness.
  thread_local const std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
  return idx;
}

}  // namespace detail

std::int64_t to_fixed_point(double v) noexcept {
  if (!std::isfinite(v)) return 0;
  const double scaled = v * kFixedPointScale;
  // Saturate rather than overflow into UB on absurd magnitudes.
  constexpr double kLimit = 9.2e18;
  if (scaled >= kLimit) return std::numeric_limits<std::int64_t>::max();
  if (scaled <= -kLimit) return std::numeric_limits<std::int64_t>::min();
  return std::llround(scaled);
}

double from_fixed_point(std::int64_t units) noexcept {
  return static_cast<double>(units) / kFixedPointScale;
}

namespace {

std::uint64_t sum_stripes(
    const std::array<detail::StripeU64, detail::kStripes>& stripes) noexcept {
  std::uint64_t total = 0;
  for (const auto& s : stripes) total += s.v.load(std::memory_order_relaxed);
  return total;
}

std::int64_t sum_stripes(
    const std::array<detail::StripeI64, detail::kStripes>& stripes) noexcept {
  std::int64_t total = 0;
  for (const auto& s : stripes) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::uint64_t Counter::value() const noexcept { return sum_stripes(stripes_); }

Gauge::Gauge() noexcept
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Gauge::set(double v) noexcept {
  const std::size_t idx = detail::stripe_index();
  count_[idx].v.fetch_add(1, std::memory_order_relaxed);
  sum_units_[idx].v.fetch_add(to_fixed_point(v), std::memory_order_relaxed);
  if (std::isfinite(v)) {
    atomic_min(min_, v);
    atomic_max(max_, v);
  }
}

std::uint64_t Gauge::count() const noexcept { return sum_stripes(count_); }

double Gauge::sum() const noexcept {
  return from_fixed_point(sum_stripes(sum_units_));
}

double Gauge::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Gauge::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Gauge::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)) {
  if (edges_.empty()) {
    throw std::invalid_argument("Histogram: needs at least one upper edge");
  }
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::invalid_argument(
        "Histogram: upper edges must be strictly ascending");
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(edges_.size() + 1);
  for (std::size_t i = 0; i <= edges_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const auto bucket =
      static_cast<std::size_t>(std::distance(edges_.begin(), it));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_units_[detail::stripe_index()].v.fetch_add(to_fixed_point(v),
                                                 std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const noexcept {
  std::vector<std::uint64_t> counts(edges_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= edges_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  return from_fixed_point(sum_stripes(sum_units_));
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const noexcept {
  return histogram_quantile(edges_, bucket_counts(), q);
}

double histogram_quantile(const std::vector<double>& edges,
                          const std::vector<std::uint64_t>& counts,
                          double q) noexcept {
  if (edges.empty() || counts.size() != edges.size() + 1) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(std::isfinite(q) ? q : 0.0, 0.0, 1.0);
  // Continuous target rank in [0, total]; rank r is covered by the bucket
  // whose cumulative count first reaches it.
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    const double reached = static_cast<double>(cumulative + in_bucket);
    if (reached >= target) {
      const double lo = i == 0 ? std::min(0.0, edges[0]) : edges[i - 1];
      const double hi = edges[i];
      const double into =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + std::clamp(into, 0.0, 1.0) * (hi - lo);
    }
    cumulative += in_bucket;
  }
  // Rank lands in the overflow bucket, which has no upper edge; the last
  // finite edge is the tightest bound the histogram can state.
  return edges.back();
}

namespace {

const char* kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

// Metric names are plain identifiers (dots, dashes, alnum); escape the
// JSON specials anyway so a stray name cannot corrupt the export.
void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name,
                                  bool deterministic) {
  std::lock_guard lock(mutex_);
  auto& entry = entries_[name];
  if (entry.counter == nullptr && entry.gauge == nullptr &&
      entry.histogram == nullptr) {
    entry.kind = MetricKind::kCounter;
    entry.deterministic = deterministic;
    entry.counter = std::make_unique<Counter>();
  } else if (entry.kind != MetricKind::kCounter) {
    throw std::invalid_argument("metric '" + name +
                                "' already registered with a different kind");
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, bool deterministic) {
  std::lock_guard lock(mutex_);
  auto& entry = entries_[name];
  if (entry.counter == nullptr && entry.gauge == nullptr &&
      entry.histogram == nullptr) {
    entry.kind = MetricKind::kGauge;
    entry.deterministic = deterministic;
    entry.gauge = std::make_unique<Gauge>();
  } else if (entry.kind != MetricKind::kGauge) {
    throw std::invalid_argument("metric '" + name +
                                "' already registered with a different kind");
  }
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_edges,
                                      bool deterministic) {
  std::lock_guard lock(mutex_);
  auto& entry = entries_[name];
  if (entry.counter == nullptr && entry.gauge == nullptr &&
      entry.histogram == nullptr) {
    entry.kind = MetricKind::kHistogram;
    entry.deterministic = deterministic;
    entry.histogram = std::make_unique<Histogram>(std::move(upper_edges));
  } else if (entry.kind != MetricKind::kHistogram) {
    throw std::invalid_argument("metric '" + name +
                                "' already registered with a different kind");
  } else if (entry.histogram->upper_edges() != upper_edges) {
    throw std::invalid_argument("metric '" + name +
                                "' already registered with different edges");
  }
  return *entry.histogram;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot(
    bool include_nondeterministic) const {
  std::lock_guard lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    if (!entry.deterministic && !include_nondeterministic) continue;
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = entry.kind;
    snap.deterministic = entry.deterministic;
    switch (entry.kind) {
      case MetricKind::kCounter:
        snap.counter_value = entry.counter->value();
        break;
      case MetricKind::kGauge:
        snap.count = entry.gauge->count();
        snap.sum = entry.gauge->sum();
        snap.mean = entry.gauge->mean();
        snap.min = entry.gauge->min();
        snap.max = entry.gauge->max();
        break;
      case MetricKind::kHistogram:
        snap.edges = entry.histogram->upper_edges();
        snap.bucket_counts = entry.histogram->bucket_counts();
        snap.count = entry.histogram->count();
        snap.sum = entry.histogram->sum();
        snap.mean = entry.histogram->mean();
        snap.p50 = histogram_quantile(snap.edges, snap.bucket_counts, 0.50);
        snap.p95 = histogram_quantile(snap.edges, snap.bucket_counts, 0.95);
        snap.p99 = histogram_quantile(snap.edges, snap.bucket_counts, 0.99);
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void write_metric_json(std::ostream& os, const MetricSnapshot& snap) {
  const auto previous = os.precision(17);
  os << "{\"name\":";
  write_json_string(os, snap.name);
  os << ",\"kind\":\"" << kind_name(snap.kind) << "\",\"deterministic\":"
     << (snap.deterministic ? "true" : "false");
  switch (snap.kind) {
    case MetricKind::kCounter:
      os << ",\"value\":" << snap.counter_value;
      break;
    case MetricKind::kGauge:
      os << ",\"count\":" << snap.count << ",\"mean\":" << snap.mean
         << ",\"min\":" << snap.min << ",\"max\":" << snap.max;
      break;
    case MetricKind::kHistogram: {
      os << ",\"count\":" << snap.count << ",\"mean\":" << snap.mean
         << ",\"edges\":[";
      for (std::size_t i = 0; i < snap.edges.size(); ++i) {
        if (i != 0) os << ',';
        os << snap.edges[i];
      }
      os << "],\"counts\":[";
      for (std::size_t i = 0; i < snap.bucket_counts.size(); ++i) {
        if (i != 0) os << ',';
        os << snap.bucket_counts[i];
      }
      os << "],\"p50\":" << snap.p50 << ",\"p95\":" << snap.p95
         << ",\"p99\":" << snap.p99;
      break;
    }
  }
  os << '}';
  os.precision(previous);
}

void MetricsRegistry::write_jsonl(std::ostream& os,
                                  bool include_nondeterministic) const {
  for (const auto& snap : snapshot(include_nondeterministic)) {
    write_metric_json(os, snap);
    os << '\n';
  }
}

}  // namespace deepcat::obs
