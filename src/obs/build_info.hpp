// Build/runtime identity: version, dispatched numeric backend, thread-pool
// size. One struct and one JSON writer shared by `deepcat info`, the METR
// wire payload, trace metadata and the bench_micro JSON — so the labels
// can never drift apart between surfaces.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

namespace deepcat::obs {

/// Library version, bumped per PR.
inline constexpr const char* kDeepCatVersion = "0.10.0";

struct BuildInfo {
  std::string version;      ///< kDeepCatVersion
  std::string backend;      ///< simd::backend_name(): the active ISA-ladder
                            ///< tier ("scalar" | "avx2+fma" | "avx512")
  bool simd_compiled = false;  ///< false on non-x86 / DEEPCAT_DISABLE_SIMD
  std::size_t threads = 0;  ///< worker threads the caller's pool uses
};

/// Captures the live build info. threads = 0 resolves to
/// hardware_concurrency (the ThreadPool default).
[[nodiscard]] BuildInfo current_build_info(std::size_t threads = 0);

/// {"version":"...","backend":"...","simd_compiled":bool,"threads":N} —
/// no surrounding newline, embeddable in a larger object.
void write_build_info_json(std::ostream& os, const BuildInfo& info);

/// The same four fields without the surrounding braces, for callers that
/// extend the object with more keys (`deepcat info --json` adds the ISA
/// ladder and the packed-GEMM threshold) while keeping the shared labels.
void write_build_info_json_fields(std::ostream& os, const BuildInfo& info);

}  // namespace deepcat::obs
