#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace deepcat::obs {

namespace {

/// Shortest round-trip double formatting (printf %.17g trimmed by
/// retrying shorter precisions), matching the repo's JSON writers in
/// spirit: equal values serialize to equal bytes.
std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void fold_into(TimeSeriesPoint& into, const TimeSeriesPoint& p) {
  into.count += p.count;
  into.sum += p.sum;
  into.min = std::min(into.min, p.min);
  into.max = std::max(into.max, p.max);
  into.last = p.last;
}

std::string escape_name(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

TimeSeriesRegistry::TimeSeriesRegistry(std::size_t capacity)
    : capacity_(capacity) {
  if (capacity_ < 2 || capacity_ % 2 != 0) {
    throw std::invalid_argument(
        "TimeSeriesRegistry capacity must be an even number >= 2");
  }
}

void TimeSeriesRegistry::append(const std::string& name, double value) {
  if (!std::isfinite(value)) value = 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  Series& s = series_[name];
  const std::uint64_t index = s.total++;
  if (!s.points.empty() && s.points.back().count < s.stride) {
    TimeSeriesPoint& open = s.points.back();
    ++open.count;
    open.sum += value;
    open.min = std::min(open.min, value);
    open.max = std::max(open.max, value);
    open.last = value;
    return;
  }
  if (s.points.size() == capacity_) {
    // Ring is full of sealed points: fold adjacent pairs and double the
    // stride. capacity_ is even, so this exactly halves the ring.
    std::vector<TimeSeriesPoint> folded;
    folded.reserve(capacity_ / 2 + 1);
    for (std::size_t i = 0; i + 1 < s.points.size(); i += 2) {
      TimeSeriesPoint merged = s.points[i];
      fold_into(merged, s.points[i + 1]);
      folded.push_back(merged);
    }
    s.points = std::move(folded);
    s.stride *= 2;
  }
  TimeSeriesPoint p;
  p.index = index;
  p.count = 1;
  p.sum = p.min = p.max = p.last = value;
  s.points.push_back(p);
}

std::size_t TimeSeriesRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

std::vector<TimeSeriesSnapshot> TimeSeriesRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TimeSeriesSnapshot> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    TimeSeriesSnapshot snap;
    snap.name = name;
    snap.total = s.total;
    snap.stride = s.stride;
    snap.points = s.points;
    out.push_back(std::move(snap));
  }
  return out;  // std::map iteration is already name-sorted
}

namespace {

std::string encode_points(const std::vector<TimeSeriesPoint>& points) {
  std::string out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const TimeSeriesPoint& p = points[i];
    if (i != 0) out += ';';
    out += std::to_string(p.index);
    out += ',';
    out += std::to_string(p.count);
    out += ',';
    out += format_double(p.sum);
    out += ',';
    out += format_double(p.min);
    out += ',';
    out += format_double(p.max);
    out += ',';
    out += format_double(p.last);
  }
  return out;
}

}  // namespace

void write_timeseries_jsonl(std::ostream& os,
                            const std::vector<TimeSeriesSnapshot>& series) {
  os << "{\"tser\":1,\"series\":" << series.size() << "}\n";
  for (const TimeSeriesSnapshot& s : series) {
    os << "{\"name\":\"" << escape_name(s.name) << "\",\"count\":" << s.total
       << ",\"stride\":" << s.stride << ",\"points\":\""
       << encode_points(s.points) << "\"}\n";
  }
}

void write_timeseries_json(std::ostream& os,
                           const std::vector<TimeSeriesSnapshot>& series) {
  os << "{\"series\":[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const TimeSeriesSnapshot& s = series[i];
    if (i != 0) os << ',';
    os << "{\"name\":\"" << escape_name(s.name) << "\",\"count\":" << s.total
       << ",\"stride\":" << s.stride << ",\"points\":[";
    for (std::size_t j = 0; j < s.points.size(); ++j) {
      const TimeSeriesPoint& p = s.points[j];
      if (j != 0) os << ',';
      os << '[' << p.index << ',' << p.count << ',' << format_double(p.sum)
         << ',' << format_double(p.min) << ',' << format_double(p.max) << ','
         << format_double(p.last) << ']';
    }
    os << "]}";
  }
  os << "]}";
}

std::vector<TimeSeriesPoint> parse_timeseries_points(
    const std::string& encoded) {
  std::vector<TimeSeriesPoint> out;
  if (encoded.empty()) return out;
  std::size_t pos = 0;
  while (pos <= encoded.size()) {
    const std::size_t end = encoded.find(';', pos);
    const std::string chunk =
        encoded.substr(pos, end == std::string::npos ? end : end - pos);
    std::vector<std::string> fields;
    std::size_t fpos = 0;
    for (;;) {
      const std::size_t comma = chunk.find(',', fpos);
      fields.push_back(chunk.substr(
          fpos, comma == std::string::npos ? comma : comma - fpos));
      if (comma == std::string::npos) break;
      fpos = comma + 1;
    }
    if (fields.size() != 6) {
      throw std::invalid_argument("malformed time-series point '" + chunk +
                                  "' (want 6 comma-separated fields)");
    }
    TimeSeriesPoint p;
    try {
      std::size_t used = 0;
      p.index = std::stoull(fields[0], &used);
      if (used != fields[0].size()) throw std::invalid_argument("index");
      p.count = std::stoull(fields[1], &used);
      if (used != fields[1].size()) throw std::invalid_argument("count");
      p.sum = std::stod(fields[2], &used);
      if (used != fields[2].size()) throw std::invalid_argument("sum");
      p.min = std::stod(fields[3], &used);
      if (used != fields[3].size()) throw std::invalid_argument("min");
      p.max = std::stod(fields[4], &used);
      if (used != fields[4].size()) throw std::invalid_argument("max");
      p.last = std::stod(fields[5], &used);
      if (used != fields[5].size()) throw std::invalid_argument("last");
    } catch (const std::exception&) {
      throw std::invalid_argument("malformed time-series point '" + chunk +
                                  "'");
    }
    out.push_back(p);
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return out;
}

std::string render_sparkline(const std::vector<TimeSeriesPoint>& points,
                             std::size_t width) {
  static const char* kCells[] = {"▁", "▂", "▃", "▄",
                                 "▅", "▆", "▇", "█"};
  if (points.empty() || width == 0) return "";
  const std::size_t begin =
      points.size() > width ? points.size() - width : 0;
  double lo = points[begin].last;
  double hi = points[begin].last;
  for (std::size_t i = begin; i < points.size(); ++i) {
    lo = std::min(lo, points[i].last);
    hi = std::max(hi, points[i].last);
  }
  const double span = hi - lo;
  std::string out;
  for (std::size_t i = begin; i < points.size(); ++i) {
    std::size_t cell = 0;
    if (span > 0.0) {
      cell = static_cast<std::size_t>(((points[i].last - lo) / span) * 7.0);
      cell = std::min<std::size_t>(cell, 7);
    }
    out += kCells[cell];
  }
  return out;
}

}  // namespace deepcat::obs
