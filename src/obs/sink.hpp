// Sink — the hand-off point between instrumented code and the obs layer.
//
// A Sink is a pair of non-owning pointers (metrics registry, tracer) plus
// the span id instrumentation should parent new spans under. Option
// structs across the stack (ServiceOptions, DeepCatOptions, Td3Config,
// OtterTuneOptions) embed one; a default-constructed Sink is inert and
// every record helper is a no-op, so un-instrumented callers pay a null
// check and nothing else. The pointers must outlive every component the
// sink was handed to.
//
// The trace_parent field is how parent/child structure crosses layer
// boundaries without thread-local state: the service opens a request
// span, stamps its id into the sink it passes down, and the tuner's
// spans attach under it — across whatever pool thread runs the session.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/tracer.hpp"

namespace deepcat::obs {

struct Sink {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  /// Convergence history (reward best-so-far, rec-cost, TD3 losses);
  /// null = no time-series retention. See timeseries.hpp.
  TimeSeriesRegistry* series = nullptr;
  /// Parent span id for spans opened through this sink (0 = root).
  std::uint64_t trace_parent = 0;

  [[nodiscard]] bool active() const noexcept {
    return metrics != nullptr || tracer != nullptr || series != nullptr;
  }

  /// Appends one sample to a convergence series; inert without a
  /// TimeSeriesRegistry.
  void record_series(const std::string& name, double value) const {
    if (series != nullptr) series->append(name, value);
  }

  /// Copy of this sink with a different trace parent — the idiom for
  /// passing "your spans go under span X" down a layer.
  [[nodiscard]] Sink with_parent(std::uint64_t parent) const noexcept {
    Sink child = *this;
    child.trace_parent = parent;
    return child;
  }

  /// Opens a span under trace_parent; inert sink -> inert span (id 0).
  [[nodiscard]] Tracer::Span scope(std::string name) const {
    if (tracer == nullptr) return Tracer::Span(nullptr, 0);
    return tracer->scope(std::move(name), trace_parent);
  }
};

}  // namespace deepcat::obs
