// Span tracer with explicit parent/child links and an injectable clock,
// exporting Chrome-trace-format JSON (load the file in chrome://tracing
// or https://ui.perfetto.dev).
//
// Spans are explicit: begin_span() returns an id, the caller threads it to
// children as `parent`, end_span() closes it. No thread-local implicit
// stack — in this codebase a request's work hops across pool threads
// (admission thread -> session worker -> merge under the flush barrier),
// so "current span" is a property of the request, not the thread. The
// Sink (sink.hpp) carries the parent id across layer boundaries.
//
// Two storage modes:
//
//   * retained (default, no exporter): every span stays in memory until
//     write_chrome_trace(); max_spans caps the store and begin_span()
//     drops past it. Right for tests and bounded CLI runs.
//   * streaming (options.exporter set): completed spans land in a bounded
//     ring and are drained to the SpanSink whenever the ring fills and at
//     flush_exporter(). Memory is O(ring_capacity + open spans) whatever
//     the stream length; a full ring drains synchronously (back-pressure)
//     instead of dropping, so dropped_spans() counts only spans refused
//     because too many were simultaneously *open* (> max_spans), not
//     truncation of the completed-span history.
//
// Determinism: with a LogicalClock, timestamps are tick numbers and the
// *structure* of the trace (the multiset of parent-name -> span-name
// edges) is a pure function of the work performed — invariant across
// thread counts and arrival shuffles, in both storage modes (the edge
// multiset is maintained incrementally at begin_span, so streaming export
// never loses it). Tick assignment order still depends on interleaving,
// so golden tests compare structure_signature(), not bytes. See
// DESIGN.md §10.
//
// Sampling: sample_every = N keeps every Nth *root* span (children of a
// kept root are always kept; children of a dropped root see parent id 0
// and are sampled independently as roots). Default 1 = keep everything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/clock.hpp"
#include "obs/exporter.hpp"

namespace deepcat::obs {

class MetricsRegistry;
class Counter;
class Gauge;

struct TracerOptions {
  /// Keep every Nth root span (1 = all). Must be >= 1.
  std::size_t sample_every = 1;
  /// Retained mode: hard cap on stored spans; beyond it begin_span()
  /// drops (returns 0) and counts. Streaming mode: cap on simultaneously
  /// OPEN spans — completed spans stream out and are never capped.
  std::size_t max_spans = 1u << 20;
  /// Streaming export destination; nullptr = retained mode.
  SpanSink* exporter = nullptr;
  /// Completed-span ring size in streaming mode. A full ring drains to
  /// the exporter synchronously (back-pressure, no loss). Must be >= 1.
  std::size_t ring_capacity = 256;
  /// Optional registry for tracer health instruments
  /// (obs.spans.emitted/dropped/ring_highwater, obs.sample_every) so
  /// trace loss is visible in the metrics snapshot, not only via
  /// accessors. Must outlive the tracer.
  MetricsRegistry* health = nullptr;
};

class Tracer {
 public:
  explicit Tracer(Clock& clock, TracerOptions options = {});
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] Clock& clock() noexcept { return *clock_; }

  /// Opens a span. parent = 0 means root. Returns the span id (> 0), or 0
  /// when the span was sampled out or the cap was hit — 0 is always safe
  /// to pass as a parent and to end_span().
  [[nodiscard]] std::uint64_t begin_span(std::string name,
                                         std::uint64_t parent = 0);

  /// Closes a span by id; id 0 is a no-op. Closing twice keeps the first
  /// end time.
  void end_span(std::uint64_t id);

  /// Records an already-timed span with explicit start/duration, bypassing
  /// the clock (and root sampling — the caller already decided to keep
  /// it). Used to graft timings measured elsewhere into this trace: the
  /// stats client turns a REP's t_*_ns stage block into child spans of its
  /// local rpc span, so one Chrome-trace file shows the request's full
  /// life across both processes. Returns the span id, or 0 when dropped
  /// at the span cap.
  std::uint64_t add_complete_span(std::string name, std::uint64_t parent,
                                  std::uint64_t t0_ns,
                                  std::uint64_t duration_ns);

  /// RAII helper: ends the span on scope exit.
  class Span {
   public:
    Span(Tracer* tracer, std::uint64_t id) noexcept
        : tracer_(tracer), id_(id) {}
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span(Span&& other) noexcept : tracer_(other.tracer_), id_(other.id_) {
      other.tracer_ = nullptr;
      other.id_ = 0;
    }
    ~Span() {
      if (tracer_ != nullptr) tracer_->end_span(id_);
    }
    /// Id to pass to children as their parent.
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

   private:
    Tracer* tracer_;
    std::uint64_t id_;
  };

  [[nodiscard]] Span scope(std::string name, std::uint64_t parent = 0) {
    return Span(this, begin_span(std::move(name), parent));
  }

  /// Spans begun and not dropped (retained: stored; streaming: open +
  /// ringed + exported).
  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::size_t dropped_spans() const;

  /// Spans currently held in memory: records in retained mode, open map +
  /// ring in streaming mode. The streaming determinism stress asserts
  /// this stays O(ring_capacity + concurrency).
  [[nodiscard]] std::size_t retained_spans() const;
  /// Completed spans handed to the exporter so far (0 in retained mode).
  [[nodiscard]] std::size_t exported_spans() const;
  /// Deepest the completed-span ring ever got (<= ring_capacity).
  [[nodiscard]] std::size_t ring_highwater() const;

  /// Streaming mode: drains the ring to the exporter and flushes the
  /// sink, making everything completed so far durable. No-op in retained
  /// mode. The destructor calls this.
  void flush_exporter();

  /// Chrome trace event format: one "X" (complete) event per span with
  /// ts/dur in microseconds, plus metadata naming the process and the
  /// clock kind. Unended spans export with dur 0. Retained mode only —
  /// in streaming mode the exporter owns the spans and this writes an
  /// empty (but valid) trace.
  void write_chrome_trace(std::ostream& os) const;

  /// Deterministic structural digest: name-sorted lines
  /// "<parent-name>><name> <count>\n" with "" as the root parent. Two
  /// logical-clock runs of the same work produce identical signatures
  /// whatever the interleaving — and whichever storage mode is active.
  [[nodiscard]] std::string structure_signature() const;

 private:
  struct Record {
    std::string name;
    std::uint64_t parent = 0;
    std::uint64_t t0 = 0;
    std::uint64_t t1 = 0;
    bool ended = false;
    std::uint32_t tid = 0;
  };

  /// Requires mutex_ held. Hands the ring to the exporter and clears it.
  void drain_ring_locked();
  [[nodiscard]] std::uint32_t tid_for_current_thread_locked();

  Clock* clock_;
  TracerOptions options_;
  mutable std::mutex mutex_;

  // Retained mode storage (span id == 1-based index into records_).
  std::deque<Record> records_;

  // Streaming mode storage: monotonically id'd open spans + completed ring.
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Record> open_;
  std::vector<SpanRecord> ring_;
  std::size_t ring_highwater_ = 0;
  std::uint64_t exported_ = 0;

  // Parent-name -> name edge multiset, maintained incrementally so the
  // structural digest survives streaming export.
  std::map<std::pair<std::string, std::string>, std::uint64_t> edges_;

  std::map<std::thread::id, std::uint32_t> tids_;
  std::uint64_t roots_seen_ = 0;
  std::uint64_t dropped_ = 0;

  // Health instruments (null when options_.health is null).
  Counter* health_emitted_ = nullptr;
  Counter* health_dropped_ = nullptr;
  Gauge* health_ring_highwater_ = nullptr;
};

/// Structural validation of a Chrome trace JSON document, for tests and
/// the CLI smoke checks: verifies the traceEvents array exists, every
/// event object has name/ph/ts/pid/tid, and "X" events carry dur.
struct ChromeTraceCheck {
  bool ok = false;
  std::size_t events = 0;
  std::size_t complete_events = 0;
  std::string error;
};

[[nodiscard]] ChromeTraceCheck validate_chrome_trace(const std::string& json);

}  // namespace deepcat::obs
