// Span tracer with explicit parent/child links and an injectable clock,
// exporting Chrome-trace-format JSON (load the file in chrome://tracing
// or https://ui.perfetto.dev).
//
// Spans are explicit: begin_span() returns an id, the caller threads it to
// children as `parent`, end_span() closes it. No thread-local implicit
// stack — in this codebase a request's work hops across pool threads
// (admission thread -> session worker -> merge under the flush barrier),
// so "current span" is a property of the request, not the thread. The
// Sink (sink.hpp) carries the parent id across layer boundaries.
//
// Determinism: with a LogicalClock, timestamps are tick numbers and the
// *structure* of the trace (the multiset of parent-name -> span-name
// edges) is a pure function of the work performed — invariant across
// thread counts and arrival shuffles. Tick assignment order still depends
// on interleaving, so golden tests compare structure_signature(), not
// bytes. See DESIGN.md §10.
//
// Sampling: sample_every = N keeps every Nth *root* span (children of a
// kept root are always kept; children of a dropped root see parent id 0
// and are sampled independently as roots). Default 1 = keep everything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/clock.hpp"

namespace deepcat::obs {

struct TracerOptions {
  /// Keep every Nth root span (1 = all). Must be >= 1.
  std::size_t sample_every = 1;
  /// Hard cap on stored spans; beyond it begin_span() drops (returns 0)
  /// and counts. Bounds memory for unbounded streams.
  std::size_t max_spans = 1u << 20;
};

class Tracer {
 public:
  explicit Tracer(Clock& clock, TracerOptions options = {});
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] Clock& clock() noexcept { return *clock_; }

  /// Opens a span. parent = 0 means root. Returns the span id (> 0), or 0
  /// when the span was sampled out or the cap was hit — 0 is always safe
  /// to pass as a parent and to end_span().
  [[nodiscard]] std::uint64_t begin_span(std::string name,
                                         std::uint64_t parent = 0);

  /// Closes a span by id; id 0 is a no-op. Closing twice keeps the first
  /// end time.
  void end_span(std::uint64_t id);

  /// RAII helper: ends the span on scope exit.
  class Span {
   public:
    Span(Tracer* tracer, std::uint64_t id) noexcept
        : tracer_(tracer), id_(id) {}
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span(Span&& other) noexcept : tracer_(other.tracer_), id_(other.id_) {
      other.tracer_ = nullptr;
      other.id_ = 0;
    }
    ~Span() {
      if (tracer_ != nullptr) tracer_->end_span(id_);
    }
    /// Id to pass to children as their parent.
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

   private:
    Tracer* tracer_;
    std::uint64_t id_;
  };

  [[nodiscard]] Span scope(std::string name, std::uint64_t parent = 0) {
    return Span(this, begin_span(std::move(name), parent));
  }

  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::size_t dropped_spans() const;

  /// Chrome trace event format: one "X" (complete) event per span with
  /// ts/dur in microseconds, plus metadata naming the process and the
  /// clock kind. Unended spans export with dur 0.
  void write_chrome_trace(std::ostream& os) const;

  /// Deterministic structural digest: name-sorted lines
  /// "<parent-name>><name> <count>\n" with "" as the root parent. Two
  /// logical-clock runs of the same work produce identical signatures
  /// whatever the interleaving.
  [[nodiscard]] std::string structure_signature() const;

 private:
  struct Record {
    std::string name;
    std::uint64_t parent = 0;
    std::uint64_t t0 = 0;
    std::uint64_t t1 = 0;
    bool ended = false;
    std::uint32_t tid = 0;
  };

  Clock* clock_;
  TracerOptions options_;
  mutable std::mutex mutex_;
  std::deque<Record> records_;
  std::map<std::thread::id, std::uint32_t> tids_;
  std::uint64_t roots_seen_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Structural validation of a Chrome trace JSON document, for tests and
/// the CLI smoke checks: verifies the traceEvents array exists, every
/// event object has name/ph/ts/pid/tid, and "X" events carry dur.
struct ChromeTraceCheck {
  bool ok = false;
  std::size_t events = 0;
  std::size_t complete_events = 0;
  std::string error;
};

[[nodiscard]] ChromeTraceCheck validate_chrome_trace(const std::string& json);

}  // namespace deepcat::obs
