#include "obs/build_info.hpp"

#include <algorithm>
#include <ostream>
#include <thread>

#include "common/simd.hpp"

namespace deepcat::obs {

BuildInfo current_build_info(std::size_t threads) {
  BuildInfo info;
  info.version = kDeepCatVersion;
  info.backend = common::simd::backend_name();
  info.simd_compiled = common::simd::vector_compiled();
  info.threads =
      threads != 0 ? threads
                   : static_cast<std::size_t>(std::max(
                         1u, std::thread::hardware_concurrency()));
  return info;
}

void write_build_info_json_fields(std::ostream& os, const BuildInfo& info) {
  os << "\"version\":\"" << info.version << "\",\"backend\":\""
     << info.backend << "\",\"simd_compiled\":"
     << (info.simd_compiled ? "true" : "false")
     << ",\"threads\":" << info.threads;
}

void write_build_info_json(std::ostream& os, const BuildInfo& info) {
  os << '{';
  write_build_info_json_fields(os, info);
  os << '}';
}

}  // namespace deepcat::obs
