#include "obs/tracer.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace deepcat::obs {

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

Tracer::Tracer(Clock& clock, TracerOptions options)
    : clock_(&clock), options_(options) {
  if (options_.sample_every == 0) {
    throw std::invalid_argument("Tracer: sample_every must be >= 1");
  }
}

std::uint64_t Tracer::begin_span(std::string name, std::uint64_t parent) {
  std::lock_guard lock(mutex_);
  if (parent == 0) {
    // Which roots survive sampling depends on admission order, so any
    // sample_every > 1 opts out of cross-interleaving determinism; the
    // deterministic contract holds at the default of 1.
    const std::uint64_t seq = roots_seen_++;
    if (options_.sample_every > 1 && seq % options_.sample_every != 0) {
      return 0;
    }
  }
  if (records_.size() >= options_.max_spans) {
    ++dropped_;
    return 0;
  }
  Record rec;
  rec.name = std::move(name);
  rec.parent = parent <= records_.size() ? parent : 0;
  rec.t0 = clock_->now_ns();
  const auto [it, inserted] = tids_.try_emplace(
      std::this_thread::get_id(), static_cast<std::uint32_t>(tids_.size()));
  rec.tid = it->second;
  records_.push_back(std::move(rec));
  return records_.size();
}

void Tracer::end_span(std::uint64_t id) {
  if (id == 0) return;
  std::lock_guard lock(mutex_);
  if (id > records_.size()) return;
  Record& rec = records_[id - 1];
  if (rec.ended) return;
  rec.t1 = clock_->now_ns();
  rec.ended = true;
}

std::size_t Tracer::span_count() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

std::size_t Tracer::dropped_spans() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\""
     << clock_->kind() << "\",\"tool\":\"deepcat\"},\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"deepcat\"}}";
  const auto flags = os.flags();
  const auto previous = os.precision(3);
  os.setf(std::ios::fixed, std::ios::floatfield);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& rec = records_[i];
    const double ts_us = static_cast<double>(rec.t0) / 1000.0;
    const double dur_us =
        rec.ended && rec.t1 >= rec.t0
            ? static_cast<double>(rec.t1 - rec.t0) / 1000.0
            : 0.0;
    os << ",\n{\"name\":";
    write_json_string(os, rec.name);
    os << ",\"cat\":\"deepcat\",\"ph\":\"X\",\"ts\":" << ts_us
       << ",\"dur\":" << dur_us << ",\"pid\":1,\"tid\":" << rec.tid
       << ",\"args\":{\"id\":" << (i + 1) << ",\"parent\":" << rec.parent
       << "}}";
  }
  os.flags(flags);
  os.precision(previous);
  os << "\n]}\n";
}

std::string Tracer::structure_signature() const {
  std::lock_guard lock(mutex_);
  std::map<std::pair<std::string, std::string>, std::uint64_t> edges;
  for (const Record& rec : records_) {
    const std::string parent_name =
        rec.parent == 0 ? std::string() : records_[rec.parent - 1].name;
    ++edges[{parent_name, rec.name}];
  }
  std::ostringstream out;
  for (const auto& [edge, count] : edges) {
    out << edge.first << '>' << edge.second << ' ' << count << '\n';
  }
  return out.str();
}

namespace {

// Splits the top-level objects of a JSON array body by brace matching,
// skipping string contents. `pos` points just past the '['.
std::vector<std::string> split_array_objects(const std::string& json,
                                             std::size_t pos, bool& ok) {
  std::vector<std::string> objects;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  std::size_t start = std::string::npos;
  for (; pos < json.size(); ++pos) {
    const char c = json[pos];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) start = pos;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0 && start != std::string::npos) {
        objects.push_back(json.substr(start, pos - start + 1));
        start = std::string::npos;
      }
      if (depth < 0) break;
    } else if (c == ']' && depth == 0) {
      ok = true;
      return objects;
    }
  }
  ok = false;
  return objects;
}

}  // namespace

ChromeTraceCheck validate_chrome_trace(const std::string& json) {
  ChromeTraceCheck check;
  const std::size_t key = json.find("\"traceEvents\"");
  if (key == std::string::npos) {
    check.error = "missing traceEvents key";
    return check;
  }
  const std::size_t open = json.find('[', key);
  if (open == std::string::npos) {
    check.error = "traceEvents is not an array";
    return check;
  }
  bool closed = false;
  const auto objects = split_array_objects(json, open + 1, closed);
  if (!closed) {
    check.error = "traceEvents array is not terminated";
    return check;
  }
  for (const auto& obj : objects) {
    for (const char* field : {"\"name\"", "\"ph\"", "\"ts\"", "\"pid\"",
                              "\"tid\""}) {
      if (obj.find(field) == std::string::npos) {
        // Metadata events carry no ts; allow that one exemption.
        if (std::string(field) == "\"ts\"" &&
            obj.find("\"ph\":\"M\"") != std::string::npos) {
          continue;
        }
        check.error = "event missing field " + std::string(field);
        return check;
      }
    }
    if (obj.find("\"ph\":\"X\"") != std::string::npos) {
      if (obj.find("\"dur\"") == std::string::npos) {
        check.error = "complete event missing dur";
        return check;
      }
      ++check.complete_events;
    }
  }
  check.events = objects.size();
  check.ok = true;
  return check;
}

}  // namespace deepcat::obs
