#include "obs/tracer.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace deepcat::obs {

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

Tracer::Tracer(Clock& clock, TracerOptions options)
    : clock_(&clock), options_(options) {
  if (options_.sample_every == 0) {
    throw std::invalid_argument("Tracer: sample_every must be >= 1");
  }
  if (options_.exporter != nullptr && options_.ring_capacity == 0) {
    throw std::invalid_argument("Tracer: ring_capacity must be >= 1");
  }
  if (options_.exporter != nullptr) {
    ring_.reserve(options_.ring_capacity);
  }
  if (options_.health != nullptr) {
    // Emitted (completed) spans are a pure function of the work, so the
    // counter is deterministic; how deep the ring got and how many spans
    // were refused under open-span pressure are scheduling artifacts.
    health_emitted_ = &options_.health->counter("obs.spans.emitted");
    health_dropped_ =
        &options_.health->counter("obs.spans.dropped", /*deterministic=*/false);
    health_ring_highwater_ = &options_.health->gauge(
        "obs.spans.ring_highwater", /*deterministic=*/false);
    options_.health->gauge("obs.sample_every")
        .set(static_cast<double>(options_.sample_every));
  }
}

Tracer::~Tracer() { flush_exporter(); }

std::uint32_t Tracer::tid_for_current_thread_locked() {
  const auto [it, inserted] = tids_.try_emplace(
      std::this_thread::get_id(), static_cast<std::uint32_t>(tids_.size()));
  return it->second;
}

void Tracer::drain_ring_locked() {
  if (ring_.empty() || options_.exporter == nullptr) return;
  if (health_ring_highwater_ != nullptr) {
    // Publish the tracked lifetime highwater, not the instantaneous depth:
    // a partial drain at flush time must not understate how deep the ring
    // ever got (the TELE pin reads this gauge's max).
    health_ring_highwater_->set(static_cast<double>(ring_highwater_));
  }
  options_.exporter->export_spans(ring_.data(), ring_.size());
  exported_ += ring_.size();
  ring_.clear();
}

std::uint64_t Tracer::begin_span(std::string name, std::uint64_t parent) {
  std::lock_guard lock(mutex_);
  if (parent == 0) {
    // Which roots survive sampling depends on admission order, so any
    // sample_every > 1 opts out of cross-interleaving determinism; the
    // deterministic contract holds at the default of 1.
    const std::uint64_t seq = roots_seen_++;
    if (options_.sample_every > 1 && seq % options_.sample_every != 0) {
      return 0;
    }
  }
  if (options_.exporter == nullptr) {
    // Retained mode: ids are 1-based indexes into records_.
    if (records_.size() >= options_.max_spans) {
      ++dropped_;
      if (health_dropped_ != nullptr) health_dropped_->add(1);
      return 0;
    }
    Record rec;
    rec.parent = parent <= records_.size() ? parent : 0;
    ++edges_[{rec.parent == 0 ? std::string()
                              : records_[rec.parent - 1].name,
              name}];
    rec.name = std::move(name);
    rec.t0 = clock_->now_ns();
    rec.tid = tid_for_current_thread_locked();
    records_.push_back(std::move(rec));
    return records_.size();
  }
  // Streaming mode: completed spans leave through the exporter, so only
  // the simultaneously-open set is capped — refusing here is back-pressure
  // against a span leak, not history truncation.
  if (open_.size() >= options_.max_spans) {
    ++dropped_;
    if (health_dropped_ != nullptr) health_dropped_->add(1);
    return 0;
  }
  Record rec;
  // A parent that already completed (or was sampled out) has left the open
  // map; its child exports re-parented to root. Instrumented code in this
  // repo always closes parents after children, so this is a defensive
  // path, not a hot one.
  const auto parent_it = parent == 0 ? open_.end() : open_.find(parent);
  rec.parent = parent_it == open_.end() ? 0 : parent;
  ++edges_[{parent_it == open_.end() ? std::string()
                                     : parent_it->second.name,
            name}];
  rec.name = std::move(name);
  rec.t0 = clock_->now_ns();
  rec.tid = tid_for_current_thread_locked();
  const std::uint64_t id = next_id_++;
  open_.emplace(id, std::move(rec));
  return id;
}

void Tracer::end_span(std::uint64_t id) {
  if (id == 0) return;
  std::lock_guard lock(mutex_);
  if (options_.exporter == nullptr) {
    if (id > records_.size()) return;
    Record& rec = records_[id - 1];
    if (rec.ended) return;
    rec.t1 = clock_->now_ns();
    rec.ended = true;
    if (health_emitted_ != nullptr) health_emitted_->add(1);
    return;
  }
  const auto it = open_.find(id);
  if (it == open_.end()) return;  // unknown or already ended
  SpanRecord out;
  out.name = std::move(it->second.name);
  out.id = id;
  out.parent = it->second.parent;
  out.t0 = it->second.t0;
  out.t1 = clock_->now_ns();
  out.tid = it->second.tid;
  open_.erase(it);
  ring_.push_back(std::move(out));
  ring_highwater_ = std::max(ring_highwater_, ring_.size());
  if (health_emitted_ != nullptr) health_emitted_->add(1);
  if (ring_.size() >= options_.ring_capacity) drain_ring_locked();
}

std::uint64_t Tracer::add_complete_span(std::string name, std::uint64_t parent,
                                        std::uint64_t t0_ns,
                                        std::uint64_t duration_ns) {
  std::lock_guard lock(mutex_);
  if (options_.exporter == nullptr) {
    if (records_.size() >= options_.max_spans) {
      ++dropped_;
      if (health_dropped_ != nullptr) health_dropped_->add(1);
      return 0;
    }
    Record rec;
    rec.parent = parent <= records_.size() ? parent : 0;
    ++edges_[{rec.parent == 0 ? std::string()
                              : records_[rec.parent - 1].name,
              name}];
    rec.name = std::move(name);
    rec.t0 = t0_ns;
    rec.t1 = t0_ns + duration_ns;
    rec.ended = true;
    rec.tid = tid_for_current_thread_locked();
    records_.push_back(std::move(rec));
    if (health_emitted_ != nullptr) health_emitted_->add(1);
    return records_.size();
  }
  // Streaming mode: the span is born complete, so it goes straight to the
  // ring without ever occupying an open-map slot.
  const auto parent_it = parent == 0 ? open_.end() : open_.find(parent);
  ++edges_[{parent_it == open_.end() ? std::string()
                                     : parent_it->second.name,
            name}];
  SpanRecord out;
  out.name = std::move(name);
  out.id = next_id_++;
  out.parent = parent_it == open_.end() ? 0 : parent;
  out.t0 = t0_ns;
  out.t1 = t0_ns + duration_ns;
  out.tid = tid_for_current_thread_locked();
  const std::uint64_t id = out.id;
  ring_.push_back(std::move(out));
  ring_highwater_ = std::max(ring_highwater_, ring_.size());
  if (health_emitted_ != nullptr) health_emitted_->add(1);
  if (ring_.size() >= options_.ring_capacity) drain_ring_locked();
  return id;
}

std::size_t Tracer::span_count() const {
  std::lock_guard lock(mutex_);
  if (options_.exporter == nullptr) return records_.size();
  return open_.size() + ring_.size() + static_cast<std::size_t>(exported_);
}

std::size_t Tracer::dropped_spans() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::size_t Tracer::retained_spans() const {
  std::lock_guard lock(mutex_);
  if (options_.exporter == nullptr) return records_.size();
  return open_.size() + ring_.size();
}

std::size_t Tracer::exported_spans() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(exported_);
}

std::size_t Tracer::ring_highwater() const {
  std::lock_guard lock(mutex_);
  return ring_highwater_;
}

void Tracer::flush_exporter() {
  std::lock_guard lock(mutex_);
  if (options_.exporter == nullptr) return;
  drain_ring_locked();
  options_.exporter->flush();
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\""
     << clock_->kind() << "\",\"tool\":\"deepcat\"},\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"deepcat\"}}";
  const auto flags = os.flags();
  const auto previous = os.precision(3);
  os.setf(std::ios::fixed, std::ios::floatfield);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& rec = records_[i];
    const double ts_us = static_cast<double>(rec.t0) / 1000.0;
    const double dur_us =
        rec.ended && rec.t1 >= rec.t0
            ? static_cast<double>(rec.t1 - rec.t0) / 1000.0
            : 0.0;
    os << ",\n{\"name\":";
    write_json_string(os, rec.name);
    os << ",\"cat\":\"deepcat\",\"ph\":\"X\",\"ts\":" << ts_us
       << ",\"dur\":" << dur_us << ",\"pid\":1,\"tid\":" << rec.tid
       << ",\"args\":{\"id\":" << (i + 1) << ",\"parent\":" << rec.parent
       << "}}";
  }
  os.flags(flags);
  os.precision(previous);
  os << "\n]}\n";
}

std::string Tracer::structure_signature() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  for (const auto& [edge, count] : edges_) {
    out << edge.first << '>' << edge.second << ' ' << count << '\n';
  }
  return out.str();
}

namespace {

// Splits the top-level objects of a JSON array body by brace matching,
// skipping string contents. `pos` points just past the '['.
std::vector<std::string> split_array_objects(const std::string& json,
                                             std::size_t pos, bool& ok) {
  std::vector<std::string> objects;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  std::size_t start = std::string::npos;
  for (; pos < json.size(); ++pos) {
    const char c = json[pos];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) start = pos;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0 && start != std::string::npos) {
        objects.push_back(json.substr(start, pos - start + 1));
        start = std::string::npos;
      }
      if (depth < 0) break;
    } else if (c == ']' && depth == 0) {
      ok = true;
      return objects;
    }
  }
  ok = false;
  return objects;
}

}  // namespace

ChromeTraceCheck validate_chrome_trace(const std::string& json) {
  ChromeTraceCheck check;
  const std::size_t key = json.find("\"traceEvents\"");
  if (key == std::string::npos) {
    check.error = "missing traceEvents key";
    return check;
  }
  const std::size_t open = json.find('[', key);
  if (open == std::string::npos) {
    check.error = "traceEvents is not an array";
    return check;
  }
  bool closed = false;
  const auto objects = split_array_objects(json, open + 1, closed);
  if (!closed) {
    check.error = "traceEvents array is not terminated";
    return check;
  }
  for (const auto& obj : objects) {
    for (const char* field : {"\"name\"", "\"ph\"", "\"ts\"", "\"pid\"",
                              "\"tid\""}) {
      if (obj.find(field) == std::string::npos) {
        // Metadata events carry no ts; allow that one exemption.
        if (std::string(field) == "\"ts\"" &&
            obj.find("\"ph\":\"M\"") != std::string::npos) {
          continue;
        }
        check.error = "event missing field " + std::string(field);
        return check;
      }
    }
    if (obj.find("\"ph\":\"X\"") != std::string::npos) {
      if (obj.find("\"dur\"") == std::string::npos) {
        check.error = "complete event missing dur";
        return check;
      }
      ++check.complete_events;
    }
  }
  check.events = objects.size();
  check.ok = true;
  return check;
}

}  // namespace deepcat::obs
