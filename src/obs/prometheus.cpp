#include "obs/prometheus.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace deepcat::obs {

namespace {

// Shortest decimal string that round-trips the double (same policy as the
// TSER encoder): precision climbs only as far as strtod needs.
std::string format_number(double v) {
  if (v != v || v - v != 0.0) return "0";  // non-finite never leaves us
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void write_counter(std::ostream& os, const std::string& name,
                   const MetricSnapshot& snap) {
  os << "# TYPE " << name << "_total counter\n"
     << name << "_total " << snap.counter_value << "\n";
}

void write_gauge(std::ostream& os, const std::string& name,
                 const MetricSnapshot& snap) {
  os << "# TYPE " << name << " gauge\n"
     << name << "{stat=\"count\"} " << snap.count << "\n"
     << name << "{stat=\"mean\"} " << format_number(snap.mean) << "\n"
     << name << "{stat=\"min\"} " << format_number(snap.min) << "\n"
     << name << "{stat=\"max\"} " << format_number(snap.max) << "\n";
}

void write_histogram(std::ostream& os, const std::string& name,
                     const MetricSnapshot& snap) {
  os << "# TYPE " << name << " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < snap.edges.size(); ++i) {
    if (i < snap.bucket_counts.size()) cumulative += snap.bucket_counts[i];
    os << name << "_bucket{le=\"" << format_number(snap.edges[i]) << "\"} "
       << cumulative << "\n";
  }
  if (!snap.bucket_counts.empty()) cumulative += snap.bucket_counts.back();
  os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n"
     << name << "_sum " << format_number(snap.sum) << "\n"
     << name << "_count " << cumulative << "\n";
}

}  // namespace

std::string prometheus_metric_name(const std::string& name) {
  std::string out = "deepcat_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void write_prometheus_text(std::ostream& os,
                           const std::vector<MetricSnapshot>& snapshot,
                           const BuildInfo& info) {
  os << "# HELP deepcat_build_info Build identity; the value is always 1.\n"
     << "# TYPE deepcat_build_info gauge\n"
     << "deepcat_build_info{version=\"" << prometheus_escape_label(info.version)
     << "\",backend=\"" << prometheus_escape_label(info.backend)
     << "\",simd_compiled=\"" << (info.simd_compiled ? "true" : "false")
     << "\",threads=\"" << info.threads << "\"} 1\n";
  for (const MetricSnapshot& snap : snapshot) {
    const std::string name = prometheus_metric_name(snap.name);
    switch (snap.kind) {
      case MetricKind::kCounter: write_counter(os, name, snap); break;
      case MetricKind::kGauge: write_gauge(os, name, snap); break;
      case MetricKind::kHistogram: write_histogram(os, name, snap); break;
    }
  }
}

}  // namespace deepcat::obs
