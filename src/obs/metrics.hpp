// MetricsRegistry — named counters, gauges and fixed-bucket histograms,
// cheap enough for hot paths and deterministic enough for golden tests.
//
// Hot-path cost model: increments never take a lock. Counters and the
// count/sum accumulators inside gauges and histograms are striped across
// cache-line-aligned atomics (relaxed ordering), so concurrent writers on
// different cores rarely share a line. Handle lookup (counter()/gauge()/
// histogram()) takes the registry mutex — call it once at construction
// time and keep the reference; it stays valid for the registry's lifetime.
//
// Determinism contract (DESIGN.md §10): a metric recorded from concurrent
// sessions must export identically however the scheduler interleaved the
// writers. That forces two design rules:
//
//   1. No floating-point accumulation. Double addition is not associative,
//      so a racing `sum += x` would make the exported total depend on
//      interleaving. All real-valued sums accumulate in *fixed point*
//      (int64 units of 2^-20), whose addition is exact and commutative.
//      Values round to ~1e-6 absolute — plenty for losses, seconds and
//      Q-values; exact figures belong in reports, not metrics.
//   2. Aggregates only, never "last value". A gauge here is the
//      commutative summary (count, mean, min, max) of every set() call,
//      because "the last writer" is exactly the thing the scheduler picks.
//
// Metrics that are *inherently* scheduling- or wall-clock-dependent
// (queue depths sampled mid-flight, wall-time durations) register with
// deterministic=false; the deterministic export skips them, the full
// export labels them.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace deepcat::obs {

namespace detail {

inline constexpr std::size_t kStripes = 16;

struct alignas(64) StripeU64 {
  std::atomic<std::uint64_t> v{0};
};

struct alignas(64) StripeI64 {
  std::atomic<std::int64_t> v{0};
};

/// Stable per-thread stripe index in [0, kStripes).
[[nodiscard]] std::size_t stripe_index() noexcept;

}  // namespace detail

/// Fixed-point scale for deterministic real-valued accumulation: 2^20
/// units per 1.0, i.e. ~1e-6 resolution with ±8.7e12 range.
inline constexpr double kFixedPointScale = 1048576.0;

/// Round a double to fixed-point units. Non-finite values contribute 0 —
/// a NaN loss must not poison a whole deterministic snapshot.
[[nodiscard]] std::int64_t to_fixed_point(double v) noexcept;
[[nodiscard]] double from_fixed_point(std::int64_t units) noexcept;

/// Monotonic event counter. add() is lock-free and relaxed.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    stripes_[detail::stripe_index()].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  std::array<detail::StripeU64, detail::kStripes> stripes_{};
};

/// Commutative summary of a stream of real observations: count, exact
/// fixed-point sum (-> mean), running min and max. There is deliberately
/// no "current value" — see the header comment.
class Gauge {
 public:
  Gauge() noexcept;

  void set(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// Min/max over all observations; 0 when empty (never ±inf, so the
  /// JSONL export stays valid JSON).
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

 private:
  std::array<detail::StripeU64, detail::kStripes> count_{};
  std::array<detail::StripeI64, detail::kStripes> sum_units_{};
  // +inf/-inf sentinels while empty; accessors report 0 for an empty gauge.
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Fixed-bucket histogram: counts per bucket plus a fixed-point sum for
/// the mean. Bucket i counts observations <= upper_edges[i] (first
/// matching edge); one implicit overflow bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_edges);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& upper_edges() const noexcept {
    return edges_;
  }
  /// Per-bucket counts; size() == upper_edges().size() + 1 (overflow last).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Quantile estimate from the bucket counts, q in [0, 1] (clamped):
  /// linear interpolation inside the covering bucket — see
  /// histogram_quantile() for the exact contract.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  std::vector<double> edges_;  // strictly ascending
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::array<detail::StripeI64, detail::kStripes> sum_units_{};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exported metric, resolved to plain values.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  bool deterministic = true;
  std::uint64_t counter_value = 0;                // counter
  std::uint64_t count = 0;                        // gauge / histogram
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;                               // gauge
  double max = 0.0;                               // gauge
  std::vector<double> edges;                      // histogram
  std::vector<std::uint64_t> bucket_counts;       // histogram (+overflow)
  double p50 = 0.0;                               // histogram quantiles
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Quantile estimate from inclusive-upper-bound bucket counts (the
/// Histogram layout: counts[i] observations <= edges[i], counts.back() is
/// the overflow bucket). q is clamped to [0, 1]. The target rank
/// q * total is located in its covering bucket and the value linearly
/// interpolated between the bucket's lower and upper edge (bucket 0's
/// lower edge is min(0, edges[0])). Ranks landing in the overflow bucket
/// report edges.back() — the largest value the histogram can bound.
/// Returns 0 on an empty histogram. Exact at bucket boundaries; at most
/// one bucket width off inside a bucket.
[[nodiscard]] double histogram_quantile(
    const std::vector<double>& edges,
    const std::vector<std::uint64_t>& counts, double q) noexcept;

/// Owner of all metrics. Lookup is by name; re-registering a name returns
/// the existing instrument (kind and edges must match, else
/// std::invalid_argument). Handles are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name,
                                 bool deterministic = true);
  [[nodiscard]] Gauge& gauge(const std::string& name,
                             bool deterministic = true);
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> upper_edges,
                                     bool deterministic = true);

  [[nodiscard]] std::size_t size() const;

  /// Name-sorted snapshot of every metric's current values. With
  /// include_nondeterministic=false, scheduling-dependent metrics are
  /// omitted — this is the byte-stable export the determinism tests
  /// compare across thread counts.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot(
      bool include_nondeterministic = true) const;

  /// One JSON object per line, name-sorted, precision 17. Counters:
  /// {"name","kind":"counter","deterministic",value}. Gauges add
  /// count/mean/min/max; histograms add count/mean/edges/counts.
  void write_jsonl(std::ostream& os,
                   bool include_nondeterministic = true) const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    bool deterministic = true;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// Writes one MetricSnapshot as a single JSON object (no newline).
void write_metric_json(std::ostream& os, const MetricSnapshot& snap);

}  // namespace deepcat::obs
