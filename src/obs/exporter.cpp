#include "obs/exporter.hpp"

#include <ios>
#include <stdexcept>

namespace deepcat::obs {

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

ChromeTraceFileSink::ChromeTraceFileSink(const std::string& path,
                                         const std::string& clock_kind)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("ChromeTraceFileSink: cannot open '" + path +
                             "'");
  }
  out_ << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":";
  write_json_string(out_, clock_kind);
  out_ << ",\"tool\":\"deepcat\"},\"traceEvents\":[\n";
  out_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
          "\"args\":{\"name\":\"deepcat\"}}";
  tail_pos_ = out_.tellp();
  write_tail();
  out_.flush();
}

ChromeTraceFileSink::~ChromeTraceFileSink() { flush(); }

void ChromeTraceFileSink::write_tail() { out_ << "\n]}\n"; }

void ChromeTraceFileSink::export_spans(const SpanRecord* spans,
                                       std::size_t count) {
  if (count == 0) return;
  out_.seekp(tail_pos_);
  const auto flags = out_.flags();
  const auto previous = out_.precision(3);
  out_.setf(std::ios::fixed, std::ios::floatfield);
  for (std::size_t i = 0; i < count; ++i) {
    const SpanRecord& rec = spans[i];
    const double ts_us = static_cast<double>(rec.t0) / 1000.0;
    const double dur_us = rec.t1 >= rec.t0
                              ? static_cast<double>(rec.t1 - rec.t0) / 1000.0
                              : 0.0;
    out_ << ",\n{\"name\":";
    write_json_string(out_, rec.name);
    out_ << ",\"cat\":\"deepcat\",\"ph\":\"X\",\"ts\":" << ts_us
         << ",\"dur\":" << dur_us << ",\"pid\":1,\"tid\":" << rec.tid
         << ",\"args\":{\"id\":" << rec.id << ",\"parent\":" << rec.parent
         << "}}";
    ++exported_;
  }
  out_.flags(flags);
  out_.precision(previous);
  tail_pos_ = out_.tellp();
  write_tail();
}

void ChromeTraceFileSink::flush() {
  if (out_.is_open()) out_.flush();
}

}  // namespace deepcat::obs
