// Injectable clocks for the observability layer.
//
// Every timestamp the tracer records flows through a Clock, so the same
// instrumentation serves two masters:
//
//   * SteadyClock — monotonic wall time, for real profiling. Trace
//     durations mean what chrome://tracing says they mean.
//   * LogicalClock — a process-global atomic tick counter. Each now_ns()
//     call returns the next tick, so timestamps carry *ordering* only,
//     never scheduling. Two runs that perform the same set of clock reads
//     produce the same set of timestamps regardless of thread count —
//     the property the golden-trace tests and the streaming determinism
//     contract (DESIGN.md §10) are built on.
//
// One logical tick renders as one microsecond in the Chrome trace export
// so nested spans stay visually distinguishable.
#pragma once

#include <atomic>
#include <cstdint>

namespace deepcat::obs {

/// Nanosecond timestamp source. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current timestamp in nanoseconds. Successive calls observe
  /// non-decreasing values.
  [[nodiscard]] virtual std::uint64_t now_ns() noexcept = 0;

  /// "logical" or "steady" — stamped into trace metadata so a reader can
  /// tell whether durations are wall time or tick counts.
  [[nodiscard]] virtual const char* kind() const noexcept = 0;
};

/// Deterministic clock: every read consumes one tick (rendered as 1µs).
/// The timestamp *multiset* over a run is a pure function of how many
/// reads happened, independent of which threads performed them.
class LogicalClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_ns() noexcept override {
    return ticks_.fetch_add(1, std::memory_order_relaxed) * 1000u;
  }
  [[nodiscard]] const char* kind() const noexcept override {
    return "logical";
  }

  /// Ticks consumed so far (equals the number of now_ns() calls).
  [[nodiscard]] std::uint64_t ticks() const noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ticks_{0};
};

/// Monotonic wall clock, zeroed at construction so traces start near t=0.
class SteadyClock final : public Clock {
 public:
  SteadyClock() noexcept;
  [[nodiscard]] std::uint64_t now_ns() noexcept override;
  [[nodiscard]] const char* kind() const noexcept override { return "steady"; }

 private:
  std::uint64_t epoch_ns_ = 0;
};

}  // namespace deepcat::obs
