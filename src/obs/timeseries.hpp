// TimeSeriesRegistry — bounded convergence history for the serving stack.
//
// The metrics registry (metrics.hpp) answers "what is the aggregate right
// now"; this registry answers "how did we get here". Each named series is
// an append-only stream of real observations (reward best-so-far per
// model, per-evaluation recommendation cost, TD3 losses, shift-recovery
// events) held in a fixed-capacity ring of *downsampled* points.
//
// Downsampling is stride doubling: a series starts storing one point per
// sample (stride 1). When the ring would exceed its capacity, adjacent
// point pairs are folded (count/sum/min/max merge, `last` keeps the later
// point's value) and the stride doubles — so memory is O(capacity) however
// long the stream runs, early history coarsens first, and the most recent
// point always carries the latest raw value.
//
// Determinism contract (DESIGN.md §14): the registry state after N
// appends to a series is a pure function of that series' append sequence
// — folding depends only on arrival *prefix*, never on wall time or
// thread identity. Single-writer series (appends under the service state
// mutex in canonical merge order) therefore export byte-identically; the
// TSER wire frame inherits whatever determinism its writers have, exactly
// like the TELE nondeterministic section.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace deepcat::obs {

/// One downsampled point: `count` consecutive raw samples starting at
/// arrival index `index`, summarized commutatively (plus `last`, the final
/// raw value folded in, for sparkline rendering).
struct TimeSeriesPoint {
  std::uint64_t index = 0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
};

/// Resolved copy of one series for export.
struct TimeSeriesSnapshot {
  std::string name;
  std::uint64_t total = 0;    ///< raw samples appended so far
  std::uint64_t stride = 1;   ///< samples per *sealed* point
  std::vector<TimeSeriesPoint> points;
};

class TimeSeriesRegistry {
 public:
  /// capacity = max retained points per series; must be an even number
  /// >= 2 so stride doubling can always halve the ring.
  explicit TimeSeriesRegistry(std::size_t capacity = 128);

  TimeSeriesRegistry(const TimeSeriesRegistry&) = delete;
  TimeSeriesRegistry& operator=(const TimeSeriesRegistry&) = delete;

  /// Appends one sample to `name`, creating the series on first use.
  /// Non-finite values are recorded as 0 (mirrors to_fixed_point's rule:
  /// a NaN loss must not poison an export).
  void append(const std::string& name, double value);

  [[nodiscard]] std::size_t series_count() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Name-sorted snapshot of every series.
  [[nodiscard]] std::vector<TimeSeriesSnapshot> snapshot() const;

 private:
  struct Series {
    std::uint64_t total = 0;
    std::uint64_t stride = 1;
    std::vector<TimeSeriesPoint> points;  // points.back() may be partial
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<std::string, Series> series_;
};

/// TSER frame payload / JSONL export. Line 1 is a header object
/// ({"tser":1,"series":N}); then one flat JSON object per series,
/// name-sorted: {"name","count","stride","points"} where "points" is the
/// compact string encoding "index,count,sum,min,max,last;..." — flat so
/// the tolerant line parser in service/jsonl.hpp can read it back.
void write_timeseries_jsonl(std::ostream& os,
                            const std::vector<TimeSeriesSnapshot>& series);

/// Nested JSON document for the HTTP /timeseries view: {"series":[{...,
/// "points":[[index,count,sum,min,max,last],...]},...]}.
void write_timeseries_json(std::ostream& os,
                           const std::vector<TimeSeriesSnapshot>& series);

/// Decodes the compact "points" string written by write_timeseries_jsonl.
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] std::vector<TimeSeriesPoint> parse_timeseries_points(
    const std::string& encoded);

/// Renders a series' point values (`last` per point) as a unicode
/// sparkline (▁▂▃▄▅▆▇█), at most `width` cells (tail-biased when the
/// series has more points). Empty series -> "".
[[nodiscard]] std::string render_sparkline(
    const std::vector<TimeSeriesPoint>& points, std::size_t width = 48);

}  // namespace deepcat::obs
