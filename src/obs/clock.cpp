#include "obs/clock.hpp"

#include <chrono>

namespace deepcat::obs {

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SteadyClock::SteadyClock() noexcept : epoch_ns_(steady_now_ns()) {}

std::uint64_t SteadyClock::now_ns() noexcept {
  const std::uint64_t now = steady_now_ns();
  return now >= epoch_ns_ ? now - epoch_ns_ : 0;
}

}  // namespace deepcat::obs
