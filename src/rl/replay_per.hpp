// TD-error prioritized experience replay (Schaul et al., 2015): the replay
// scheme CDBTune couples with DDPG. Priorities are |TD error|^alpha; samples
// carry importance weights (N * P(i))^-beta normalized by the max weight.
#pragma once

#include "common/rng.hpp"
#include "rl/replay.hpp"
#include "rl/sum_tree.hpp"

namespace deepcat::rl {

struct PerConfig {
  double alpha = 0.6;           ///< priority exponent
  double beta0 = 0.4;           ///< initial IS-correction exponent
  double beta_growth = 1e-4;    ///< beta anneals toward 1 per sample() call
  double epsilon = 1e-3;        ///< added to |TD| so nothing starves
  double max_priority = 10.0;   ///< clip for raw |TD| before exponentiation
};

class PrioritizedReplay final : public ReplayBuffer {
 public:
  PrioritizedReplay(std::size_t capacity, PerConfig config = {});

  /// New transitions get the current max priority so they are replayed at
  /// least once before their TD error is known.
  void add(Transition t) override;

  [[nodiscard]] SampledBatch sample(std::size_t m, common::Rng& rng) override;

  void update_priorities(std::span<const std::uint64_t> ids,
                         std::span<const double> td_errors) override;

  [[nodiscard]] std::size_t size() const noexcept override {
    return storage_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept override {
    return capacity_;
  }
  [[nodiscard]] double beta() const noexcept { return beta_; }
  [[nodiscard]] double priority_of(std::size_t index) const {
    return tree_.get(index);
  }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<Transition> storage_;
  SumTree tree_;
  PerConfig config_;
  double beta_;
  double max_seen_priority_ = 1.0;  // in alpha-exponentiated space
};

}  // namespace deepcat::rl
