#include "rl/replay_rdper.hpp"

#include <cmath>
#include <stdexcept>

namespace deepcat::rl {

RdperReplay::RdperReplay(std::size_t capacity_per_pool, RdperConfig config)
    : capacity_per_pool_(capacity_per_pool), config_(config) {
  if (capacity_per_pool == 0) {
    throw std::invalid_argument("RdperReplay: capacity 0");
  }
  if (config.beta < 0.0 || config.beta > 1.0) {
    throw std::invalid_argument("RdperReplay: beta must be in [0,1]");
  }
  high_.storage.reserve(capacity_per_pool);
  low_.storage.reserve(capacity_per_pool);
}

void RdperReplay::set_beta(double beta) {
  if (beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument("RdperReplay: beta must be in [0,1]");
  }
  config_.beta = beta;
}

void RdperReplay::restore_pools(std::vector<Transition> high,
                                std::size_t high_cursor,
                                std::vector<Transition> low,
                                std::size_t low_cursor) {
  if (high.size() > capacity_per_pool_ || low.size() > capacity_per_pool_) {
    throw std::invalid_argument("RdperReplay::restore_pools: over capacity");
  }
  if (high_cursor >= capacity_per_pool_ || low_cursor >= capacity_per_pool_) {
    throw std::invalid_argument("RdperReplay::restore_pools: bad cursor");
  }
  high_.storage = std::move(high);
  high_.next = high_cursor;
  low_.storage = std::move(low);
  low_.next = low_cursor;
}

void RdperReplay::Pool::add(Transition t, std::size_t capacity) {
  if (storage.size() < capacity) {
    storage.push_back(std::move(t));
  } else {
    storage[next] = std::move(t);
    next = (next + 1) % capacity;
  }
}

void RdperReplay::add(Transition t) {
  if (t.reward >= config_.reward_threshold) {
    high_.add(std::move(t), capacity_per_pool_);
  } else {
    low_.add(std::move(t), capacity_per_pool_);
  }
}

void RdperReplay::draw_from(const Pool& pool, std::size_t count,
                            common::Rng& rng, SampledBatch& batch) const {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t idx = rng.index(pool.size());
    batch.transitions.push_back(&pool.storage[idx]);
    batch.weights.push_back(1.0);
    batch.ids.push_back(idx);
  }
}

SampledBatch RdperReplay::sample(std::size_t m, common::Rng& rng) {
  if (size() == 0) throw std::logic_error("RdperReplay: empty sample");
  SampledBatch batch;
  batch.transitions.reserve(m);
  batch.weights.reserve(m);
  batch.ids.reserve(m);

  std::size_t from_high =
      static_cast<std::size_t>(std::llround(config_.beta * static_cast<double>(m)));
  if (high_.size() == 0) from_high = 0;
  if (low_.size() == 0) from_high = m;

  draw_from(high_, from_high, rng, batch);
  draw_from(low_, m - from_high, rng, batch);
  return batch;
}

}  // namespace deepcat::rl
