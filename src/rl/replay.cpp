#include "rl/replay.hpp"

#include <stdexcept>

namespace deepcat::rl {

UniformReplay::UniformReplay(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("UniformReplay: capacity 0");
  storage_.reserve(capacity);
}

void UniformReplay::add(Transition t) {
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(t));
  } else {
    storage_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
}

void UniformReplay::restore_storage(std::vector<Transition> storage,
                                    std::size_t cursor) {
  if (storage.size() > capacity_) {
    throw std::invalid_argument("UniformReplay::restore_storage: over capacity");
  }
  if (cursor >= capacity_) {
    throw std::invalid_argument("UniformReplay::restore_storage: bad cursor");
  }
  storage_ = std::move(storage);
  next_ = cursor;
}

SampledBatch UniformReplay::sample(std::size_t m, common::Rng& rng) {
  if (storage_.empty()) throw std::logic_error("UniformReplay: empty sample");
  SampledBatch batch;
  batch.transitions.reserve(m);
  batch.weights.assign(m, 1.0);
  batch.ids.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t idx = rng.index(storage_.size());
    batch.transitions.push_back(&storage_[idx]);
    batch.ids.push_back(idx);
  }
  return batch;
}

}  // namespace deepcat::rl
