// Binary sum tree supporting O(log n) priority updates and prefix-sum
// sampling — the classic backbone of TD-error prioritized experience
// replay (Schaul et al., 2015), used here by the CDBTune baseline.
#pragma once

#include <cstddef>
#include <vector>

namespace deepcat::rl {

class SumTree {
 public:
  /// Fixed capacity of leaves; priorities start at zero.
  explicit SumTree(std::size_t capacity);

  /// Sets leaf `index` (0-based) to `priority` (must be >= 0).
  void set(std::size_t index, double priority);

  [[nodiscard]] double get(std::size_t index) const;

  /// Total priority mass.
  [[nodiscard]] double total() const noexcept;

  /// Finds the leaf l with the smallest index such that
  /// sum(priorities[0..l]) > prefix. `prefix` must be in [0, total()).
  [[nodiscard]] std::size_t find_prefix(double prefix) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Smallest non-zero priority currently stored (infinity if none); used
  /// for max importance-weight normalization.
  [[nodiscard]] double min_nonzero() const;

 private:
  std::size_t capacity_;
  std::size_t leaf_base_;      // index of first leaf in `nodes_`
  std::vector<double> nodes_;  // 1-indexed implicit binary tree
};

}  // namespace deepcat::rl
