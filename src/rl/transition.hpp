// The (s, a, r, s', done) experience tuple shared by all replay buffers
// and agents. States and actions are flat vectors; actions live in the
// normalized [0,1]^d knob cube (paper §3.1).
#pragma once

#include <cstdint>
#include <vector>

namespace deepcat::rl {

struct Transition {
  std::vector<double> state;
  std::vector<double> action;
  double reward = 0.0;
  std::vector<double> next_state;
  bool done = false;
};

/// A sampled minibatch. `weights` are importance-sampling corrections
/// (all 1.0 for uniform and RDPER sampling); `ids` identify transitions for
/// priority updates in PER.
struct SampledBatch {
  std::vector<const Transition*> transitions;
  std::vector<double> weights;
  std::vector<std::uint64_t> ids;

  [[nodiscard]] std::size_t size() const noexcept {
    return transitions.size();
  }
};

}  // namespace deepcat::rl
