// RDPER — DeepCAT's reward-driven prioritized experience replay (paper
// §3.3). Transitions are routed by reward against a threshold R_th into a
// high-reward pool P_high or a low-reward pool P_low. Each minibatch of
// size m draws round(beta * m) samples from P_high and the rest from
// P_low, guaranteeing the share of rare, valuable high-reward experience
// in every update regardless of how scarce it is in the stream.
#pragma once

#include "common/rng.hpp"
#include "rl/replay.hpp"

namespace deepcat::rl {

struct RdperConfig {
  double reward_threshold = 0.0;  ///< R_th: reward >= R_th goes to P_high
  double beta = 0.6;              ///< high-reward share of each batch (paper §5.4.1)
};

class RdperReplay final : public ReplayBuffer {
 public:
  /// Each pool is its own ring of `capacity_per_pool` transitions.
  RdperReplay(std::size_t capacity_per_pool, RdperConfig config = {});

  void add(Transition t) override;

  /// If one pool is still empty, the whole batch falls back to the other
  /// pool (training can begin before the first high-reward transition).
  [[nodiscard]] SampledBatch sample(std::size_t m, common::Rng& rng) override;

  [[nodiscard]] std::size_t size() const noexcept override {
    return high_.size() + low_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept override {
    return 2 * capacity_per_pool_;
  }

  [[nodiscard]] std::size_t high_pool_size() const noexcept {
    return high_.size();
  }
  [[nodiscard]] std::size_t low_pool_size() const noexcept {
    return low_.size();
  }
  [[nodiscard]] const RdperConfig& config() const noexcept { return config_; }
  void set_beta(double beta);

  /// Read-only views plus ring cursors over both pools, and a bulk restore.
  /// Together these let the checkpoint layer round-trip the pools exactly:
  /// contents, insertion order, and where the next overwrite lands.
  [[nodiscard]] std::span<const Transition> high_pool() const noexcept {
    return high_.storage;
  }
  [[nodiscard]] std::span<const Transition> low_pool() const noexcept {
    return low_.storage;
  }
  [[nodiscard]] std::size_t high_cursor() const noexcept { return high_.next; }
  [[nodiscard]] std::size_t low_cursor() const noexcept { return low_.next; }
  void restore_pools(std::vector<Transition> high, std::size_t high_cursor,
                     std::vector<Transition> low, std::size_t low_cursor);

 private:
  struct Pool {
    std::size_t next = 0;
    std::vector<Transition> storage;

    void add(Transition t, std::size_t capacity);
    [[nodiscard]] std::size_t size() const noexcept { return storage.size(); }
  };

  void draw_from(const Pool& pool, std::size_t count, common::Rng& rng,
                 SampledBatch& batch) const;

  std::size_t capacity_per_pool_;
  RdperConfig config_;
  Pool high_, low_;
};

}  // namespace deepcat::rl
