#include "rl/td3.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/math_util.hpp"
#include "rl/agent_util.hpp"

namespace deepcat::rl {

namespace {

std::vector<std::size_t> net_dims(std::size_t in,
                                  const std::vector<std::size_t>& hidden,
                                  std::size_t out) {
  std::vector<std::size_t> dims;
  dims.reserve(hidden.size() + 2);
  dims.push_back(in);
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  dims.push_back(out);
  return dims;
}

nn::Mlp make_actor(const Td3Config& c, common::Rng& rng) {
  return nn::Mlp(net_dims(c.state_dim, c.hidden, c.action_dim), rng,
                 nn::OutputActivation::kSigmoid);
}

nn::Mlp make_critic(const Td3Config& c, common::Rng& rng) {
  return nn::Mlp(net_dims(c.state_dim + c.action_dim, c.hidden, 1), rng,
                 nn::OutputActivation::kNone);
}

void validate(const Td3Config& c) {
  if (c.state_dim == 0 || c.action_dim == 0) {
    throw std::invalid_argument("Td3Config: zero state/action dim");
  }
  if (c.batch_size == 0) throw std::invalid_argument("Td3Config: batch 0");
  if (c.policy_delay == 0) {
    throw std::invalid_argument("Td3Config: policy_delay 0");
  }
  if (c.gamma < 0.0 || c.gamma > 1.0) {
    throw std::invalid_argument("Td3Config: gamma out of range");
  }
}

}  // namespace

Td3Agent::Td3Agent(Td3Config config, common::Rng& rng)
    : config_((validate(config), config)),
      actor_(make_actor(config_, rng)),
      actor_target_(actor_),
      critic1_(make_critic(config_, rng)),
      critic2_(make_critic(config_, rng)),
      critic1_target_(critic1_),
      critic2_target_(critic2_),
      actor_opt_(actor_.params(),
                 {.lr = config_.actor_lr, .grad_clip = config_.grad_clip}),
      critic1_opt_(critic1_.params(),
                   {.lr = config_.critic_lr, .grad_clip = config_.grad_clip}),
      critic2_opt_(critic2_.params(),
                   {.lr = config_.critic_lr, .grad_clip = config_.grad_clip}) {
  if (config_.obs.metrics != nullptr) {
    obs_train_steps_ = &config_.obs.metrics->counter("rl.train_steps");
    obs_critic1_loss_ = &config_.obs.metrics->gauge("rl.critic1_loss");
    obs_critic2_loss_ = &config_.obs.metrics->gauge("rl.critic2_loss");
    obs_actor_loss_ = &config_.obs.metrics->gauge("rl.actor_loss");
  }
}

std::vector<double> Td3Agent::act(std::span<const double> state) {
  if (state.size() != config_.state_dim) {
    throw std::invalid_argument("Td3Agent::act: state dim mismatch");
  }
  return actor_.forward_one(state);
}

std::vector<double> Td3Agent::act_noisy(std::span<const double> state,
                                        double sigma, common::Rng& rng) {
  auto action = act(state);
  for (double& a : action) {
    a = common::clamp(a + rng.normal(0.0, sigma), 0.0, 1.0);
  }
  return action;
}

std::pair<double, double> Td3Agent::twin_q(std::span<const double> state,
                                           std::span<const double> action) {
  std::vector<double> input(state.begin(), state.end());
  input.insert(input.end(), action.begin(), action.end());
  const double q1 = critic1_.forward_one(input)[0];
  const double q2 = critic2_.forward_one(input)[0];
  return {q1, q2};
}

double Td3Agent::min_q(std::span<const double> state,
                       std::span<const double> action) {
  const auto [q1, q2] = twin_q(state, action);
  return std::min(q1, q2);
}

std::size_t Td3Agent::fine_tune(ReplayBuffer& buffer, common::Rng& rng,
                                std::size_t max_steps) {
  if (buffer.size() < config_.batch_size) return 0;
  std::size_t taken = 0;
  for (; taken < max_steps; ++taken) (void)train_step(buffer, rng);
  return taken;
}

Td3TrainStats Td3Agent::train_step(ReplayBuffer& buffer, common::Rng& rng) {
  const SampledBatch batch = buffer.sample(config_.batch_size, rng);
  const auto m = batch.size();

  const nn::Matrix s = states_of(batch.transitions);
  const nn::Matrix a = actions_of(batch.transitions);
  const nn::Matrix r = rewards_of(batch.transitions);
  const nn::Matrix s_next = next_states_of(batch.transitions);
  const nn::Matrix done = dones_of(batch.transitions);

  // Target action with clipped smoothing noise (TD3 trick #3).
  nn::Matrix a_next = actor_target_.forward(s_next);
  for (double& v : a_next.flat()) {
    const double eps = common::clamp(rng.normal(0.0, config_.policy_noise),
                                     -config_.noise_clip, config_.noise_clip);
    v = common::clamp(v + eps, 0.0, 1.0);
  }

  // Clipped double-Q target (TD3 trick #1).
  const nn::Matrix target_in = concat_cols(s_next, a_next);
  const nn::Matrix q1_next = critic1_target_.forward(target_in);
  const nn::Matrix q2_next = critic2_target_.forward(target_in);
  nn::Matrix y(m, 1);
  for (std::size_t i = 0; i < m; ++i) {
    const double q_min = std::min(q1_next(i, 0), q2_next(i, 0));
    y(i, 0) = r(i, 0) + config_.gamma * (1.0 - done(i, 0)) * q_min;
  }

  const nn::Matrix critic_in = concat_cols(s, a);
  Td3TrainStats stats;
  std::vector<double> td_errors(m);

  auto update_critic = [&](nn::Mlp& critic, nn::Adam& opt,
                           bool record_td) -> double {
    critic.zero_grad();
    const nn::Matrix pred = critic.forward(critic_in);
    // Importance-weighted MSE (weights are 1.0 for uniform/RDPER).
    nn::Matrix grad(m, 1);
    double loss = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double diff = pred(i, 0) - y(i, 0);
      const double w = batch.weights[i];
      loss += w * diff * diff;
      grad(i, 0) = 2.0 * w * diff / static_cast<double>(m);
      if (record_td) td_errors[i] = diff;
    }
    critic.backward(grad);
    opt.step();
    return loss / static_cast<double>(m);
  };

  stats.critic1_loss = update_critic(critic1_, critic1_opt_, true);
  stats.critic2_loss = update_critic(critic2_, critic2_opt_, false);
  buffer.update_priorities(batch.ids, td_errors);

  ++steps_;
  // Delayed policy + target updates (TD3 trick #2).
  if (steps_ % config_.policy_delay == 0) {
    update_actor(s);
    actor_target_.soft_update_from(actor_, config_.tau);
    critic1_target_.soft_update_from(critic1_, config_.tau);
    critic2_target_.soft_update_from(critic2_, config_.tau);

    // Recompute actor loss for reporting: -mean(Q1(s, pi(s))).
    const nn::Matrix a_pi = actor_.forward(s);
    const nn::Matrix q = critic1_.forward(concat_cols(s, a_pi));
    double q_mean = 0.0;
    for (std::size_t i = 0; i < m; ++i) q_mean += q(i, 0);
    stats.actor_loss = -q_mean / static_cast<double>(m);
  }
  if (obs_train_steps_ != nullptr) {
    obs_train_steps_->add(1);
    obs_critic1_loss_->set(stats.critic1_loss);
    obs_critic2_loss_->set(stats.critic2_loss);
    if (stats.actor_loss) obs_actor_loss_->set(*stats.actor_loss);
  }
  // Convergence history: one point per train step (the serving layer only
  // attaches a series registry to the master agent, so these trace the
  // master's fine-tune trajectory, not per-session clones).
  config_.obs.record_series("rl.critic1_loss", stats.critic1_loss);
  config_.obs.record_series("rl.critic2_loss", stats.critic2_loss);
  if (stats.actor_loss) {
    config_.obs.record_series("rl.actor_loss", *stats.actor_loss);
  }
  return stats;
}

void Td3Agent::update_actor(const nn::Matrix& states) {
  // Maximize Q1(s, pi(s)): gradient of -mean(Q1) w.r.t. actor parameters,
  // chained through the critic input (paper Eq. 4 decomposition).
  actor_.zero_grad();
  critic1_.zero_grad();

  const nn::Matrix a_pi = actor_.forward(states);
  const nn::Matrix critic_in = concat_cols(states, a_pi);
  const nn::Matrix q = critic1_.forward(critic_in);

  nn::Matrix dq(q.rows(), 1,
                -1.0 / static_cast<double>(q.rows()));  // d(-mean Q)/dQ
  const nn::Matrix d_input = critic1_.backward(dq);
  const nn::Matrix d_action = right_cols(d_input, config_.action_dim);

  actor_.backward(d_action);
  actor_opt_.step();
  // The critic's parameter gradients from this pass are a by-product;
  // discard them so the next critic update starts clean.
  critic1_.zero_grad();
}

std::vector<std::pair<const char*, nn::Mlp*>> Td3Agent::networks() {
  return {{"actor", &actor_},
          {"actor_target", &actor_target_},
          {"critic1", &critic1_},
          {"critic2", &critic2_},
          {"critic1_target", &critic1_target_},
          {"critic2_target", &critic2_target_}};
}

std::vector<std::pair<const char*, nn::Adam*>> Td3Agent::optimizers() {
  return {{"actor_opt", &actor_opt_},
          {"critic1_opt", &critic1_opt_},
          {"critic2_opt", &critic2_opt_}};
}

void Td3Agent::save(std::ostream& os) {
  for (auto& [name, net] : networks()) net->save(os);
  for (auto& [name, opt] : optimizers()) opt->save(os);
  os << steps_ << '\n';
}

void Td3Agent::load(std::istream& is) {
  for (auto& [name, net] : networks()) net->load(is);
  for (auto& [name, opt] : optimizers()) opt->load(is);
  is >> steps_;
  if (!is) throw std::runtime_error("Td3Agent::load: truncated stream");
}

}  // namespace deepcat::rl
