#include "rl/ddpg.hpp"

#include <stdexcept>

#include "common/math_util.hpp"
#include "rl/agent_util.hpp"

namespace deepcat::rl {

namespace {

std::vector<std::size_t> net_dims(std::size_t in,
                                  const std::vector<std::size_t>& hidden,
                                  std::size_t out) {
  std::vector<std::size_t> dims{in};
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  dims.push_back(out);
  return dims;
}

void validate(const DdpgConfig& c) {
  if (c.state_dim == 0 || c.action_dim == 0) {
    throw std::invalid_argument("DdpgConfig: zero state/action dim");
  }
  if (c.batch_size == 0) throw std::invalid_argument("DdpgConfig: batch 0");
}

}  // namespace

DdpgAgent::DdpgAgent(DdpgConfig config, common::Rng& rng)
    : config_((validate(config), config)),
      actor_(net_dims(config_.state_dim, config_.hidden, config_.action_dim),
             rng, nn::OutputActivation::kSigmoid),
      actor_target_(actor_),
      critic_(net_dims(config_.state_dim + config_.action_dim, config_.hidden,
                       1),
              rng, nn::OutputActivation::kNone),
      critic_target_(critic_),
      actor_opt_(actor_.params(),
                 {.lr = config_.actor_lr, .grad_clip = config_.grad_clip}),
      critic_opt_(critic_.params(),
                  {.lr = config_.critic_lr, .grad_clip = config_.grad_clip}) {}

std::vector<double> DdpgAgent::act(std::span<const double> state) {
  if (state.size() != config_.state_dim) {
    throw std::invalid_argument("DdpgAgent::act: state dim mismatch");
  }
  return actor_.forward_one(state);
}

std::vector<double> DdpgAgent::act_noisy(std::span<const double> state,
                                         double sigma, common::Rng& rng) {
  auto action = act(state);
  for (double& a : action) {
    a = common::clamp(a + rng.normal(0.0, sigma), 0.0, 1.0);
  }
  return action;
}

double DdpgAgent::q_value(std::span<const double> state,
                          std::span<const double> action) {
  std::vector<double> input(state.begin(), state.end());
  input.insert(input.end(), action.begin(), action.end());
  return critic_.forward_one(input)[0];
}

DdpgTrainStats DdpgAgent::train_step(ReplayBuffer& buffer, common::Rng& rng) {
  const SampledBatch batch = buffer.sample(config_.batch_size, rng);
  const auto m = batch.size();

  const nn::Matrix s = states_of(batch.transitions);
  const nn::Matrix a = actions_of(batch.transitions);
  const nn::Matrix r = rewards_of(batch.transitions);
  const nn::Matrix s_next = next_states_of(batch.transitions);
  const nn::Matrix done = dones_of(batch.transitions);

  // y = r + gamma * Q'(s', mu'(s')) — no smoothing, single critic: this is
  // precisely the overestimation-prone target TD3 was designed to fix.
  const nn::Matrix a_next = actor_target_.forward(s_next);
  const nn::Matrix q_next = critic_target_.forward(concat_cols(s_next, a_next));
  nn::Matrix y(m, 1);
  for (std::size_t i = 0; i < m; ++i) {
    y(i, 0) = r(i, 0) + config_.gamma * (1.0 - done(i, 0)) * q_next(i, 0);
  }

  DdpgTrainStats stats;
  std::vector<double> td_errors(m);

  critic_.zero_grad();
  const nn::Matrix pred = critic_.forward(concat_cols(s, a));
  nn::Matrix grad(m, 1);
  double loss = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double diff = pred(i, 0) - y(i, 0);
    const double w = batch.weights[i];
    loss += w * diff * diff;
    grad(i, 0) = 2.0 * w * diff / static_cast<double>(m);
    td_errors[i] = diff;
  }
  critic_.backward(grad);
  critic_opt_.step();
  stats.critic_loss = loss / static_cast<double>(m);
  buffer.update_priorities(batch.ids, td_errors);

  // Actor ascent on Q(s, mu(s)).
  actor_.zero_grad();
  critic_.zero_grad();
  const nn::Matrix a_pi = actor_.forward(s);
  const nn::Matrix q = critic_.forward(concat_cols(s, a_pi));
  double q_mean = 0.0;
  for (std::size_t i = 0; i < m; ++i) q_mean += q(i, 0);
  stats.actor_loss = -q_mean / static_cast<double>(m);

  nn::Matrix dq(m, 1, -1.0 / static_cast<double>(m));
  const nn::Matrix d_input = critic_.backward(dq);
  actor_.backward(right_cols(d_input, config_.action_dim));
  actor_opt_.step();
  critic_.zero_grad();

  actor_target_.soft_update_from(actor_, config_.tau);
  critic_target_.soft_update_from(critic_, config_.tau);
  ++steps_;
  return stats;
}

void DdpgAgent::save(std::ostream& os) {
  actor_.save(os);
  actor_target_.save(os);
  critic_.save(os);
  critic_target_.save(os);
}

void DdpgAgent::load(std::istream& is) {
  actor_.load(is);
  actor_target_.load(is);
  critic_.load(is);
  critic_target_.load(is);
}

}  // namespace deepcat::rl
