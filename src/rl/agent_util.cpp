#include "rl/agent_util.hpp"

#include <algorithm>
#include <stdexcept>

namespace deepcat::rl {

namespace {
template <typename Selector>
nn::Matrix pack(std::span<const Transition* const> batch, Selector select) {
  if (batch.empty()) throw std::invalid_argument("pack: empty batch");
  const auto& first = select(*batch.front());
  nn::Matrix m(batch.size(), first.size());
  for (std::size_t r = 0; r < batch.size(); ++r) {
    const auto& v = select(*batch[r]);
    if (v.size() != m.cols()) {
      throw std::invalid_argument("pack: ragged transition vectors");
    }
    std::copy(v.begin(), v.end(), m.row(r).begin());
  }
  return m;
}
}  // namespace

nn::Matrix states_of(std::span<const Transition* const> batch) {
  return pack(batch, [](const Transition& t) -> const std::vector<double>& {
    return t.state;
  });
}

nn::Matrix actions_of(std::span<const Transition* const> batch) {
  return pack(batch, [](const Transition& t) -> const std::vector<double>& {
    return t.action;
  });
}

nn::Matrix next_states_of(std::span<const Transition* const> batch) {
  return pack(batch, [](const Transition& t) -> const std::vector<double>& {
    return t.next_state;
  });
}

nn::Matrix rewards_of(std::span<const Transition* const> batch) {
  nn::Matrix m(batch.size(), 1);
  for (std::size_t r = 0; r < batch.size(); ++r) m(r, 0) = batch[r]->reward;
  return m;
}

nn::Matrix dones_of(std::span<const Transition* const> batch) {
  nn::Matrix m(batch.size(), 1);
  for (std::size_t r = 0; r < batch.size(); ++r) {
    m(r, 0) = batch[r]->done ? 1.0 : 0.0;
  }
  return m;
}

nn::Matrix concat_cols(const nn::Matrix& a, const nn::Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("concat_cols: row mismatch");
  }
  nn::Matrix c(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    auto dst = c.row(r);
    std::copy(a.row(r).begin(), a.row(r).end(), dst.begin());
    std::copy(b.row(r).begin(), b.row(r).end(),
              dst.begin() + static_cast<std::ptrdiff_t>(a.cols()));
  }
  return c;
}

nn::Matrix right_cols(const nn::Matrix& m, std::size_t cols) {
  if (cols > m.cols()) throw std::invalid_argument("right_cols: too wide");
  nn::Matrix out(m.rows(), cols);
  const std::size_t offset = m.cols() - cols;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto src = m.row(r);
    std::copy(src.begin() + static_cast<std::ptrdiff_t>(offset), src.end(),
              out.row(r).begin());
  }
  return out;
}

}  // namespace deepcat::rl
