#include "rl/noise.hpp"

#include "common/math_util.hpp"

namespace deepcat::rl {

GaussianNoise::GaussianNoise(std::size_t dims, double sigma)
    : dims_(dims), sigma_(sigma) {}

std::vector<double> GaussianNoise::sample(common::Rng& rng) {
  std::vector<double> n(dims_);
  for (double& x : n) x = rng.normal(0.0, sigma_);
  return n;
}

void GaussianNoise::apply(std::vector<double>& action, common::Rng& rng,
                          double lo, double hi) {
  for (double& a : action) {
    a = common::clamp(a + rng.normal(0.0, sigma_), lo, hi);
  }
}

OrnsteinUhlenbeckNoise::OrnsteinUhlenbeckNoise(std::size_t dims, double theta,
                                               double sigma, double mu)
    : theta_(theta), sigma_(sigma), mu_(mu), state_(dims, mu) {}

void OrnsteinUhlenbeckNoise::reset() noexcept {
  for (double& x : state_) x = mu_;
}

std::vector<double> OrnsteinUhlenbeckNoise::sample(common::Rng& rng) {
  for (double& x : state_) {
    x += theta_ * (mu_ - x) + sigma_ * rng.normal();
  }
  return state_;
}

void OrnsteinUhlenbeckNoise::apply(std::vector<double>& action,
                                   common::Rng& rng, double lo, double hi) {
  const auto noise = sample(rng);
  for (std::size_t i = 0; i < action.size() && i < noise.size(); ++i) {
    action[i] = common::clamp(action[i] + noise[i], lo, hi);
  }
}

}  // namespace deepcat::rl
