// Exploration noise processes for deterministic-policy agents.
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace deepcat::rl {

/// Uncorrelated Gaussian noise N(0, sigma^2) per action dimension —
/// what TD3 (and DeepCAT's Twin-Q Optimizer) perturb actions with.
class GaussianNoise {
 public:
  GaussianNoise(std::size_t dims, double sigma);

  [[nodiscard]] std::vector<double> sample(common::Rng& rng);

  /// Adds noise to `action` in place, clamping each dim to [lo, hi].
  void apply(std::vector<double>& action, common::Rng& rng, double lo = 0.0,
             double hi = 1.0);

  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  void set_sigma(double sigma) noexcept { sigma_ = sigma; }

 private:
  std::size_t dims_;
  double sigma_;
};

/// Ornstein-Uhlenbeck process — temporally correlated noise classically
/// paired with DDPG (used by the CDBTune baseline).
class OrnsteinUhlenbeckNoise {
 public:
  OrnsteinUhlenbeckNoise(std::size_t dims, double theta = 0.15,
                         double sigma = 0.2, double mu = 0.0);

  void reset() noexcept;
  [[nodiscard]] std::vector<double> sample(common::Rng& rng);
  void apply(std::vector<double>& action, common::Rng& rng, double lo = 0.0,
             double hi = 1.0);

 private:
  double theta_, sigma_, mu_;
  std::vector<double> state_;
};

}  // namespace deepcat::rl
