// Helpers shared by the DDPG and TD3 agents for packing sampled
// transitions into batched matrices and splitting critic input gradients.
#pragma once

#include <span>

#include "nn/matrix.hpp"
#include "rl/transition.hpp"

namespace deepcat::rl {

/// (m x state_dim) matrix of batch states.
[[nodiscard]] nn::Matrix states_of(std::span<const Transition* const> batch);
/// (m x action_dim) matrix of batch actions.
[[nodiscard]] nn::Matrix actions_of(std::span<const Transition* const> batch);
/// (m x state_dim) matrix of next states.
[[nodiscard]] nn::Matrix next_states_of(
    std::span<const Transition* const> batch);
/// (m x 1) rewards column.
[[nodiscard]] nn::Matrix rewards_of(std::span<const Transition* const> batch);
/// (m x 1) terminal flags (1.0 if done).
[[nodiscard]] nn::Matrix dones_of(std::span<const Transition* const> batch);

/// [A | B] column-wise concatenation (same row count).
[[nodiscard]] nn::Matrix concat_cols(const nn::Matrix& a, const nn::Matrix& b);

/// Right `cols` columns of `m` (used to slice dQ/da out of dQ/d[s,a]).
[[nodiscard]] nn::Matrix right_cols(const nn::Matrix& m, std::size_t cols);

}  // namespace deepcat::rl
