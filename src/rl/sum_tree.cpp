#include "rl/sum_tree.hpp"

#include <limits>
#include <stdexcept>

namespace deepcat::rl {

namespace {
std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

SumTree::SumTree(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("SumTree: capacity 0");
  leaf_base_ = next_pow2(capacity);
  nodes_.assign(2 * leaf_base_, 0.0);
}

void SumTree::set(std::size_t index, double priority) {
  if (index >= capacity_) throw std::out_of_range("SumTree::set");
  if (priority < 0.0) throw std::invalid_argument("SumTree: negative priority");
  std::size_t node = leaf_base_ + index;
  const double delta = priority - nodes_[node];
  while (node >= 1) {
    nodes_[node] += delta;
    node >>= 1;
  }
}

double SumTree::get(std::size_t index) const {
  if (index >= capacity_) throw std::out_of_range("SumTree::get");
  return nodes_[leaf_base_ + index];
}

double SumTree::total() const noexcept { return nodes_[1]; }

std::size_t SumTree::find_prefix(double prefix) const {
  std::size_t node = 1;
  while (node < leaf_base_) {
    const std::size_t left = node * 2;
    if (prefix < nodes_[left]) {
      node = left;
    } else {
      prefix -= nodes_[left];
      node = left + 1;
    }
  }
  std::size_t leaf = node - leaf_base_;
  // Guard against floating-point drift walking past the last live leaf.
  if (leaf >= capacity_) leaf = capacity_ - 1;
  return leaf;
}

double SumTree::min_nonzero() const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < capacity_; ++i) {
    const double p = nodes_[leaf_base_ + i];
    if (p > 0.0 && p < best) best = p;
  }
  return best;
}

}  // namespace deepcat::rl
