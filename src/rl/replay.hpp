// Replay buffer interface + the conventional uniform ring buffer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "rl/transition.hpp"

namespace deepcat::rl {

/// Abstract experience replay store.
class ReplayBuffer {
 public:
  virtual ~ReplayBuffer() = default;

  virtual void add(Transition t) = 0;

  /// Samples `m` transitions (with replacement where the scheme requires
  /// it). Requires size() > 0.
  [[nodiscard]] virtual SampledBatch sample(std::size_t m,
                                            common::Rng& rng) = 0;

  /// Hook for TD-error feedback after a training step. No-op except PER.
  virtual void update_priorities(std::span<const std::uint64_t> /*ids*/,
                                 std::span<const double> /*td_errors*/) {}

  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] virtual std::size_t capacity() const noexcept = 0;
};

/// Conventional experience replay: fixed-capacity ring, uniform sampling.
class UniformReplay final : public ReplayBuffer {
 public:
  explicit UniformReplay(std::size_t capacity);

  void add(Transition t) override;
  [[nodiscard]] SampledBatch sample(std::size_t m, common::Rng& rng) override;
  [[nodiscard]] std::size_t size() const noexcept override {
    return storage_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept override {
    return capacity_;
  }

  /// Read-only view + ring cursor + bulk restore, mirroring the RDPER
  /// accessors so the checkpoint layer can round-trip either buffer kind.
  [[nodiscard]] std::span<const Transition> storage() const noexcept {
    return storage_;
  }
  [[nodiscard]] std::size_t cursor() const noexcept { return next_; }
  void restore_storage(std::vector<Transition> storage, std::size_t cursor);

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring cursor once full
  std::vector<Transition> storage_;
};

}  // namespace deepcat::rl
