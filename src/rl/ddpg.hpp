// DDPG (Lillicrap et al., 2015) — the single-critic deterministic policy
// gradient agent that CDBTune builds on. Kept deliberately faithful to the
// original: one critic, no target smoothing, actor updated every step.
#pragma once

#include <iosfwd>
#include <vector>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "rl/replay.hpp"

namespace deepcat::rl {

struct DdpgConfig {
  std::size_t state_dim = 0;
  std::size_t action_dim = 0;
  std::vector<std::size_t> hidden = {128, 128};
  double gamma = 0.99;
  double tau = 0.005;
  double actor_lr = 1e-4;
  double critic_lr = 1e-3;
  std::size_t batch_size = 64;
  double grad_clip = 5.0;
};

struct DdpgTrainStats {
  double critic_loss = 0.0;
  double actor_loss = 0.0;
};

class DdpgAgent {
 public:
  DdpgAgent(DdpgConfig config, common::Rng& rng);

  [[nodiscard]] std::vector<double> act(std::span<const double> state);
  [[nodiscard]] std::vector<double> act_noisy(std::span<const double> state,
                                              double sigma, common::Rng& rng);

  /// Q(s, a) from the (single) critic.
  [[nodiscard]] double q_value(std::span<const double> state,
                               std::span<const double> action);

  DdpgTrainStats train_step(ReplayBuffer& buffer, common::Rng& rng);

  [[nodiscard]] const DdpgConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t train_steps() const noexcept { return steps_; }

  void save(std::ostream& os);
  void load(std::istream& is);

 private:
  DdpgConfig config_;
  nn::Mlp actor_, actor_target_, critic_, critic_target_;
  nn::Adam actor_opt_, critic_opt_;
  std::size_t steps_ = 0;
};

}  // namespace deepcat::rl
