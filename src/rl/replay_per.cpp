#include "rl/replay_per.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deepcat::rl {

PrioritizedReplay::PrioritizedReplay(std::size_t capacity, PerConfig config)
    : capacity_(capacity),
      tree_(capacity),
      config_(config),
      beta_(config.beta0) {
  storage_.reserve(capacity);
}

void PrioritizedReplay::add(Transition t) {
  std::size_t slot;
  if (storage_.size() < capacity_) {
    slot = storage_.size();
    storage_.push_back(std::move(t));
  } else {
    slot = next_;
    storage_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
  tree_.set(slot, max_seen_priority_);
}

SampledBatch PrioritizedReplay::sample(std::size_t m, common::Rng& rng) {
  if (storage_.empty()) {
    throw std::logic_error("PrioritizedReplay: empty sample");
  }
  SampledBatch batch;
  batch.transitions.reserve(m);
  batch.weights.reserve(m);
  batch.ids.reserve(m);

  const double total = tree_.total();
  const double n = static_cast<double>(storage_.size());
  // Max weight corresponds to the min-probability transition.
  const double p_min = tree_.min_nonzero() / total;
  const double max_weight = std::pow(n * p_min, -beta_);

  // Stratified sampling: one draw per equal-mass segment.
  const double segment = total / static_cast<double>(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double lo = segment * static_cast<double>(i);
    const double prefix = lo + rng.uniform() * segment;
    const std::size_t idx = tree_.find_prefix(std::min(prefix, total * (1.0 - 1e-12)));
    const double p = tree_.get(idx) / total;
    const double weight =
        p > 0.0 ? std::pow(n * p, -beta_) / max_weight : 1.0;
    batch.transitions.push_back(&storage_[idx]);
    batch.weights.push_back(weight);
    batch.ids.push_back(idx);
  }
  beta_ = std::min(1.0, beta_ + config_.beta_growth);
  return batch;
}

void PrioritizedReplay::update_priorities(
    std::span<const std::uint64_t> ids, std::span<const double> td_errors) {
  if (ids.size() != td_errors.size()) {
    throw std::invalid_argument("update_priorities: size mismatch");
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const double clipped =
        std::min(std::abs(td_errors[i]), config_.max_priority);
    const double priority =
        std::pow(clipped + config_.epsilon, config_.alpha);
    tree_.set(static_cast<std::size_t>(ids[i]), priority);
    max_seen_priority_ = std::max(max_seen_priority_, priority);
  }
}

}  // namespace deepcat::rl
