// TD3 — twin delayed deep deterministic policy gradient (Fujimoto et al.,
// 2018), the algorithm DeepCAT trains (paper §3.2). Actions live in
// [0,1]^action_dim (sigmoid actor output). The twin critics double as
// DeepCAT's online execution-time indicator (paper §3.4): min(Q1, Q2) of a
// candidate action predicts whether it is worth a real evaluation.
#pragma once

#include <iosfwd>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "obs/sink.hpp"
#include "rl/replay.hpp"

namespace deepcat::rl {

struct Td3Config {
  std::size_t state_dim = 0;
  std::size_t action_dim = 0;
  std::vector<std::size_t> hidden = {128, 128};
  double gamma = 0.99;           ///< discount factor
  double tau = 0.005;            ///< target soft-update rate
  double actor_lr = 1e-4;
  double critic_lr = 1e-3;
  double policy_noise = 0.2;     ///< target policy smoothing sigma
  double noise_clip = 0.5;       ///< smoothing noise clip
  std::size_t policy_delay = 2;  ///< critic updates per actor update
  std::size_t batch_size = 64;
  double grad_clip = 5.0;
  /// Observability hand-off (non-owning; default = inert, zero overhead
  /// beyond a null check). Not serialized by checkpoints — the hosting
  /// layer re-injects its sink when it materializes an agent.
  obs::Sink obs{};
};

/// Losses from one training step (actor_loss absent on non-policy steps).
struct Td3TrainStats {
  double critic1_loss = 0.0;
  double critic2_loss = 0.0;
  std::optional<double> actor_loss;
};

class Td3Agent {
 public:
  Td3Agent(Td3Config config, common::Rng& rng);

  /// Deterministic policy output for one state, each dim in [0,1].
  [[nodiscard]] std::vector<double> act(std::span<const double> state);

  /// Policy output + exploration Gaussian noise (clamped to [0,1]).
  [[nodiscard]] std::vector<double> act_noisy(std::span<const double> state,
                                              double sigma, common::Rng& rng);

  /// Q-values of (state, action) from both critics.
  [[nodiscard]] std::pair<double, double> twin_q(std::span<const double> state,
                                                 std::span<const double> action);

  /// min(Q1, Q2) — the Twin-Q indicator used by DeepCAT's online optimizer.
  [[nodiscard]] double min_q(std::span<const double> state,
                             std::span<const double> action);

  /// One gradient step on a batch sampled from `buffer`. Also feeds TD
  /// errors back for prioritized buffers. Requires buffer.size() > 0.
  Td3TrainStats train_step(ReplayBuffer& buffer, common::Rng& rng);

  /// Bounded continuous-update hook for the serving layer: takes up to
  /// `max_steps` train_step calls and returns how many were taken. Unlike
  /// train_step it is safe on a cold buffer — it takes no steps while
  /// `buffer` holds fewer than one full batch, so a freshly materialized
  /// master never trains on a degenerate sample.
  std::size_t fine_tune(ReplayBuffer& buffer, common::Rng& rng,
                        std::size_t max_steps);

  [[nodiscard]] const Td3Config& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t train_steps() const noexcept { return steps_; }
  void set_train_steps(std::size_t steps) noexcept { steps_ = steps; }

  /// Named handles over the six networks / three optimizers, in the fixed
  /// serialization order. The checkpoint layer iterates these instead of
  /// reaching into private members.
  [[nodiscard]] std::vector<std::pair<const char*, nn::Mlp*>> networks();
  [[nodiscard]] std::vector<std::pair<const char*, nn::Adam*>> optimizers();

  /// Persists / restores the complete trainable state: all six networks,
  /// all three Adam optimizers (moment vectors + step counters) and the
  /// train-step counter. Saving only the network weights would make a
  /// loaded agent fine-tune differently from a never-saved one — the warm
  /// Adam moments and the policy-delay phase both feed the next update.
  void save(std::ostream& os);
  void load(std::istream& is);

 private:
  void update_actor(const nn::Matrix& states);

  Td3Config config_;
  nn::Mlp actor_, actor_target_;
  nn::Mlp critic1_, critic2_, critic1_target_, critic2_target_;
  nn::Adam actor_opt_, critic1_opt_, critic2_opt_;
  std::size_t steps_ = 0;
  // Metric handles resolved once at construction (registry lookups lock).
  obs::Counter* obs_train_steps_ = nullptr;
  obs::Gauge* obs_critic1_loss_ = nullptr;
  obs::Gauge* obs_critic2_loss_ = nullptr;
  obs::Gauge* obs_actor_loss_ = nullptr;
};

}  // namespace deepcat::rl
