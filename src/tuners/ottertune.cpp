#include "tuners/ottertune.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/math_util.hpp"
#include "gp/acquisition.hpp"

namespace deepcat::tuners {

OtterTuneTuner::OtterTuneTuner(OtterTuneOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

void OtterTuneTuner::collect_observations(sparksim::TuningEnvironment& env,
                                          const std::string& workload_id,
                                          std::size_t num_samples) {
  env.reset();
  for (std::size_t i = 0; i < num_samples; ++i) {
    std::vector<double> action(env.action_dim());
    for (double& a : action) a = rng_.uniform();
    const sparksim::StepResult res = env.step(action);
    repository_.add(workload_id,
                    {action, res.state, res.exec_seconds});
  }
}

std::vector<double> OtterTuneTuner::recommend(
    std::size_t action_dim, const std::vector<gp::Observation>& mapped,
    const std::vector<gp::Observation>& observed, double best_time,
    std::span<const double> incumbent, double& modeled_seconds) {
  // Assemble the GP training set: mapped history (subsampled to budget,
  // target observations win ties by being appended last with more weight
  // via lower noise — here simply included in full).
  std::vector<const gp::Observation*> train;
  train.reserve(options_.max_mapped_samples + observed.size());
  if (!mapped.empty()) {
    const std::size_t stride =
        std::max<std::size_t>(1, mapped.size() / options_.max_mapped_samples);
    for (std::size_t i = 0; i < mapped.size(); i += stride) {
      train.push_back(&mapped[i]);
    }
  }
  for (const auto& obs : observed) train.push_back(&obs);

  if (train.empty() || train.front()->config.size() != action_dim) {
    // Nothing to model yet: explore uniformly.
    std::vector<double> action(action_dim);
    for (double& a : action) a = rng_.uniform();
    return action;
  }

  const std::size_t dim = action_dim;
  nn::Matrix x(train.size(), dim);
  std::vector<double> y(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    std::copy(train[i]->config.begin(), train[i]->config.end(),
              x.row(i).begin());
    y[i] = train[i]->performance;
  }

  // GP model (re)training: select the kernel length scale by maximum log
  // marginal likelihood over the grid, refitting the full GP per
  // hypothesis — the per-request model-training cost the paper observes
  // dominating OtterTune's recommendation time.
  const auto n = static_cast<double>(train.size());
  modeled_seconds +=
      rec_cost::kGpFitPerN3 * n * n * n *
      static_cast<double>(options_.length_scale_grid.size());

  std::optional<gp::GpRegressor> model;
  double best_lml = -std::numeric_limits<double>::infinity();
  for (double length_scale : options_.length_scale_grid) {
    gp::GpRegressor candidate_model(
        std::make_unique<gp::Matern52Kernel>(length_scale, 1.0),
        options_.noise_var);
    candidate_model.set_obs(options_.obs);
    candidate_model.set_thread_pool(options_.fit_pool);
    candidate_model.fit(x, y);
    const double lml = candidate_model.log_marginal_likelihood();
    if (lml > best_lml) {
      best_lml = lml;
      model.emplace(std::move(candidate_model));
    }
  }

  // EI maximization over a random pool plus local moves around the
  // incumbent best configuration.
  std::vector<double> best_action(dim);
  double best_ei = -1.0;
  auto consider = [&](const std::vector<double>& cand) {
    const auto pred = model->predict(cand);
    const double ei =
        gp::expected_improvement(pred, best_time, options_.ei_xi);
    if (ei > best_ei) {
      best_ei = ei;
      best_action = cand;
    }
  };

  std::vector<double> cand(dim);
  std::size_t num_candidates = options_.candidate_pool;
  for (std::size_t i = 0; i < options_.candidate_pool; ++i) {
    for (double& a : cand) a = rng_.uniform();
    consider(cand);
  }
  if (!incumbent.empty()) {
    num_candidates += options_.local_candidates;
    for (std::size_t i = 0; i < options_.local_candidates; ++i) {
      for (std::size_t d = 0; d < dim; ++d) {
        cand[d] = common::clamp(
            incumbent[d] + rng_.normal(0.0, options_.local_sigma), 0.0, 1.0);
      }
      consider(cand);
    }
  }
  modeled_seconds +=
      rec_cost::kGpPredictPerN2 * n * n * static_cast<double>(num_candidates);
  return best_action;
}

TuningReport OtterTuneTuner::tune(sparksim::TuningEnvironment& env,
                                  int num_steps) {
  TuningReport report;
  report.tuner_name = name();
  report.workload_name = env.workload().name;

  const std::vector<double> initial_state = env.reset();
  report.default_time = env.default_time();
  env.reset_cost_counters();

  // Workload mapping: pick the most similar historical workload by the
  // metrics of the initial (default-configuration) run.
  std::vector<gp::Observation> mapped;
  if (!repository_.empty()) {
    const std::string& nearest = repository_.nearest_workload(initial_state);
    mapped = repository_.observations(nearest);
  }

  std::vector<gp::Observation> observed;
  std::vector<double> incumbent;  // best action evaluated on the target
  double best_time = report.default_time;

  for (int step = 1; step <= num_steps; ++step) {
    double rec_seconds = 0.0;
    std::vector<double> action =
        recommend(env.action_dim(), mapped, observed, best_time, incumbent,
                  rec_seconds);

    const sparksim::StepResult res = env.step(action);
    observed.push_back({action, res.state, res.exec_seconds});
    if (res.success && res.exec_seconds < best_time) {
      best_time = res.exec_seconds;
      incumbent = action;
    }

    TuningStepRecord rec;
    rec.step = step;
    rec.exec_seconds = res.exec_seconds;
    rec.reward = res.reward;
    rec.success = res.success;
    rec.recommendation_seconds = rec_seconds;
    rec.best_so_far = env.best_time();
    report.steps.push_back(rec);
  }

  report.best_time = env.best_time();
  report.best_config = env.best_config();
  return report;
}

}  // namespace deepcat::tuners
