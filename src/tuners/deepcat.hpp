// DeepCAT — the paper's contribution. TD3 trained offline with RDPER
// (reward-driven dual-pool replay, §3.3), then online fine-tuning where
// every actor recommendation first passes through the Twin-Q Optimizer
// (Algorithm 1, §3.4): actions whose min(Q1, Q2) falls below Q_th are
// perturbed with Gaussian noise — without touching the cluster — until a
// promising candidate emerges, and only that candidate pays for a real
// configuration evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "rl/replay_rdper.hpp"
#include "rl/td3.hpp"
#include "tuners/tuner.hpp"

namespace deepcat::tuners {

struct DeepCatOptions {
  /// state/action dims are filled in by the tuner from the environment.
  /// gamma defaults low: configuration tuning is a near-bandit MDP (the
  /// next state barely depends on the action), and a low discount keeps
  /// Q-values on the immediate-reward scale the paper's Q_th (0.1..0.5
  /// sweep, §5.4.2) is expressed in.
  rl::Td3Config td3 = {.gamma = 0.4};
  /// beta = 0.6 per §5.4.1. R_th sits above the Eq.(1) break-even so the
  /// high-reward pool holds only the scarce close-to-optimal transitions
  /// (with R_th = 0 the pool saturates once the policy is decent, and the
  /// forced 60% share turns from signal boost into sampling bias).
  rl::RdperConfig rdper = {.reward_threshold = 0.15};
  std::size_t replay_capacity_per_pool = 50'000;

  // Offline training schedule.
  std::size_t warmup_steps = 64;       ///< random actions before training
  double offline_explore_sigma = 0.25; ///< exploration noise during training
  std::size_t episode_length = 5;      ///< steps per offline episode

  // Online tuning.
  /// Extra exploration noise applied to the actor's online recommendation
  /// BEFORE Twin-Q screening. Defaults to 0: exploration happens inside
  /// Algorithm 1 itself (flagged actions are perturbed until one passes),
  /// which is what gives DeepCAT the paper's "stable online tuning phase"
  /// (§5.2.3) — every evaluated action was vetted by the twin critics.
  double online_explore_sigma = 0.0;
  double q_threshold = 0.3;        ///< Q_th (§5.4.2)
  double optimizer_sigma = 0.12;   ///< Gaussian noise sigma in Algorithm 1
  std::size_t max_optimizer_iters = 64;  ///< guard on Algorithm 1's loop
  std::size_t online_finetune_steps = 8; ///< gradient steps after each eval
  bool use_twin_q_optimizer = true;      ///< ablation switch (Fig. 5)
  bool use_rdper = true;                 ///< ablation switch (Fig. 4)

  std::uint64_t seed = 1234;

  /// Observability hand-off; propagated into td3.obs when the agent is
  /// materialized. Non-owning, inert by default, never serialized.
  obs::Sink obs{};
};

/// Per-iteration trace of offline training (drives Figs. 3 and 4).
struct OfflineIterationRecord {
  std::size_t iteration = 0;
  double reward = 0.0;         ///< real immediate reward of the action taken
  double min_q = 0.0;          ///< min(Q1,Q2) of the action before evaluation
  double exec_seconds = 0.0;
  bool success = false;
};

/// Statistics of the Twin-Q Optimizer's work during one online step.
struct TwinQOptimizerTrace {
  std::size_t iterations = 0;      ///< noise perturbations tried
  double initial_min_q = 0.0;
  double final_min_q = 0.0;
  bool accepted_original = false;  ///< actor's raw action already passed
};

class DeepCatTuner final : public OnlineTuner {
 public:
  explicit DeepCatTuner(DeepCatOptions options);

  [[nodiscard]] std::string name() const override { return "DeepCAT"; }

  /// Offline stage: interacts with `env` for `iterations` steps (each is
  /// one evaluation + one gradient step) filling the RDPER pools. Returns
  /// the per-iteration trace. May be called once; the model is then reused
  /// across many online tuning requests (paper §2).
  std::vector<OfflineIterationRecord> train_offline(
      sparksim::TuningEnvironment& env, std::size_t iterations);

  /// Online stage: fine-tunes the offline model on the target environment
  /// for `num_steps` evaluations, Twin-Q-optimizing each recommendation.
  TuningReport tune(sparksim::TuningEnvironment& env, int num_steps) override;

  /// Same, but also stops once the accumulated tuning cost (evaluation +
  /// recommendation seconds) exceeds budget.max_total_seconds.
  TuningReport tune_with_budget(sparksim::TuningEnvironment& env,
                                const TuneBudget& budget);

  /// Algorithm 1 (bounded): optimizes `action` in place for `state`.
  TwinQOptimizerTrace optimize_action(std::span<const double> state,
                                      std::vector<double>& action);

  [[nodiscard]] rl::Td3Agent& agent();
  [[nodiscard]] const DeepCatOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const std::vector<TwinQOptimizerTrace>& last_online_traces()
      const noexcept {
    return online_traces_;
  }

  void save(std::ostream& os);
  void load(std::istream& is);

  /// Builds the agent + replay buffer for the given dimensions without an
  /// environment — the checkpoint layer needs a live agent to deserialize
  /// into before any env exists in the loading process. No-op if the agent
  /// already exists with matching dims; throws on a dim mismatch.
  void materialize(std::size_t state_dim, std::size_t action_dim);

  [[nodiscard]] bool has_agent() const noexcept { return agent_ != nullptr; }

  /// The tuner's private RNG stream — checkpointed so that a reloaded tuner
  /// continues the exact exploration/optimizer noise sequence.
  [[nodiscard]] common::Rng& rng() noexcept { return rng_; }

  /// Replay buffer access + replacement (used by the checkpoint layer to
  /// restore pool contents, and by the service layer to interpose a shared
  /// thread-safe view over the master pools).
  [[nodiscard]] rl::ReplayBuffer* replay() noexcept { return replay_.get(); }
  void set_replay(std::unique_ptr<rl::ReplayBuffer> replay) {
    replay_ = std::move(replay);
  }

 private:
  [[nodiscard]] std::unique_ptr<rl::ReplayBuffer> make_replay() const;
  void ensure_agent(const sparksim::TuningEnvironment& env);

  DeepCatOptions options_;
  common::Rng rng_;
  std::unique_ptr<rl::Td3Agent> agent_;
  std::unique_ptr<rl::ReplayBuffer> replay_;
  std::vector<TwinQOptimizerTrace> online_traces_;
  // Twin-Q Optimizer instruments, resolved once at construction.
  obs::Counter* obs_twinq_runs_ = nullptr;
  obs::Counter* obs_twinq_retries_ = nullptr;
  obs::Counter* obs_twinq_accepted_ = nullptr;
  obs::Gauge* obs_twinq_initial_q_ = nullptr;
  obs::Gauge* obs_twinq_final_q_ = nullptr;
};

}  // namespace deepcat::tuners
