#include "tuners/bestconfig.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/math_util.hpp"

namespace deepcat::tuners {

BestConfigTuner::BestConfigTuner(BestConfigOptions options)
    : options_(options), rng_(options.seed) {
  if (options.round_size <= 0) {
    throw std::invalid_argument("BestConfigOptions: round_size <= 0");
  }
  if (options.shrink <= 0.0 || options.shrink >= 1.0) {
    throw std::invalid_argument("BestConfigOptions: shrink must be in (0,1)");
  }
}

std::vector<std::vector<double>> BestConfigTuner::dds_round(
    const Bounds& bounds, int samples) {
  const std::size_t dims = bounds.lo.size();
  const auto n = static_cast<std::size_t>(samples);
  // Per-dimension stratum permutations.
  std::vector<std::vector<std::size_t>> strata(dims);
  for (auto& perm : strata) {
    perm.resize(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng_.shuffle(perm);
  }
  std::vector<std::vector<double>> round(n, std::vector<double>(dims));
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < dims; ++d) {
      const double level =
          (static_cast<double>(strata[d][s]) + rng_.uniform()) /
          static_cast<double>(n);
      round[s][d] =
          common::lerp(bounds.lo[d], bounds.hi[d], level);
    }
  }
  return round;
}

TuningReport BestConfigTuner::tune(sparksim::TuningEnvironment& env,
                                   int num_steps) {
  TuningReport report;
  report.tuner_name = name();
  report.workload_name = env.workload().name;

  env.reset();
  report.default_time = env.default_time();
  env.reset_cost_counters();

  const std::size_t dims = env.action_dim();
  Bounds full{std::vector<double>(dims, 0.0), std::vector<double>(dims, 1.0)};
  Bounds bounds = full;

  double best_time = report.default_time;
  std::vector<double> best_action;
  int step = 0;
  while (step < num_steps) {
    const int this_round = std::min(options_.round_size, num_steps - step);
    const auto round = dds_round(bounds, this_round);
    bool improved = false;
    for (const auto& action : round) {
      const sparksim::StepResult res = env.step(action);
      ++step;
      TuningStepRecord rec;
      rec.step = step;
      rec.exec_seconds = res.exec_seconds;
      rec.reward = res.reward;
      rec.success = res.success;
      rec.recommendation_seconds = 0.0;
      rec.best_so_far = env.best_time();
      report.steps.push_back(rec);
      if (res.success && res.exec_seconds < best_time) {
        best_time = res.exec_seconds;
        best_action = action;
        improved = true;
      }
    }
    if (improved && !best_action.empty()) {
      // Bound: shrink the search box around the incumbent.
      for (std::size_t d = 0; d < dims; ++d) {
        const double half =
            0.5 * options_.shrink * (bounds.hi[d] - bounds.lo[d]);
        bounds.lo[d] = common::clamp(best_action[d] - half, 0.0, 1.0);
        bounds.hi[d] = common::clamp(best_action[d] + half, 0.0, 1.0);
        if (bounds.hi[d] - bounds.lo[d] < 1e-6) {
          bounds.lo[d] = common::clamp(best_action[d] - 1e-3, 0.0, 1.0);
          bounds.hi[d] = common::clamp(best_action[d] + 1e-3, 0.0, 1.0);
        }
      }
    } else {
      // Diverge: restart from the whole space.
      bounds = full;
    }
  }

  report.best_time = env.best_time();
  report.best_config = env.best_config();
  return report;
}

}  // namespace deepcat::tuners
