// CDBTune baseline (Zhang et al., SIGMOD 2019): DDPG agent with TD-error
// prioritized experience replay, trained offline by trial-and-error and
// fine-tuned online. No twin critics, no reward-driven replay, no
// recommendation-time optimizer — exactly the gap DeepCAT targets.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>

#include "rl/ddpg.hpp"
#include "rl/replay_per.hpp"
#include "tuners/tuner.hpp"

namespace deepcat::tuners {

struct CdbTuneOptions {
  rl::DdpgConfig ddpg = {.gamma = 0.4};  ///< same discount scale as DeepCAT
  rl::PerConfig per;
  std::size_t replay_capacity = 100'000;
  std::size_t warmup_steps = 64;
  double offline_explore_sigma = 0.25;
  std::size_t episode_length = 5;
  /// Online exploration noise (same magnitude as DeepCAT's). CDBTune keeps
  /// exploring while fine-tuning — every risky perturbation is evaluated
  /// for real, which is exactly the per-step cost DeepCAT's Twin-Q
  /// Optimizer screens out.
  double online_explore_sigma = 0.15;
  std::size_t online_finetune_steps = 8;
  std::uint64_t seed = 4321;
};

class CdbTuneTuner final : public OnlineTuner {
 public:
  explicit CdbTuneTuner(CdbTuneOptions options);

  [[nodiscard]] std::string name() const override { return "CDBTune"; }

  /// Offline trial-and-error training (one evaluation + one gradient step
  /// per iteration), mirroring DeepCatTuner::train_offline.
  void train_offline(sparksim::TuningEnvironment& env,
                     std::size_t iterations);

  TuningReport tune(sparksim::TuningEnvironment& env, int num_steps) override;

  [[nodiscard]] rl::DdpgAgent& agent();

  void save(std::ostream& os) { agent().save(os); }
  void load(std::istream& is) { agent().load(is); }

 private:
  void ensure_agent(const sparksim::TuningEnvironment& env);

  CdbTuneOptions options_;
  common::Rng rng_;
  std::unique_ptr<rl::DdpgAgent> agent_;
  std::unique_ptr<rl::PrioritizedReplay> replay_;
};

}  // namespace deepcat::tuners
