// BestConfig-style search tuner (Zhu et al., SoCC 2017): divide-and-
// diverge sampling (latin-hypercube over the current bounds) combined
// with recursive bound-and-search (shrink the bounds around the best
// point after a promising round; diverge back to the full space when a
// round stalls). The paper's related-work discussion uses BestConfig as
// the representative search-based method that "restarts from scratch
// whenever a new tuning request comes" — included here as the search
// baseline for that comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "tuners/tuner.hpp"

namespace deepcat::tuners {

struct BestConfigOptions {
  int round_size = 5;      ///< evaluations per DDS round
  double shrink = 0.5;     ///< bound-shrink factor around the incumbent
  std::uint64_t seed = 31337;
};

class BestConfigTuner final : public OnlineTuner {
 public:
  explicit BestConfigTuner(BestConfigOptions options = {});

  [[nodiscard]] std::string name() const override { return "BestConfig"; }

  TuningReport tune(sparksim::TuningEnvironment& env, int num_steps) override;

 private:
  struct Bounds {
    std::vector<double> lo, hi;
  };

  /// Latin-hypercube style draw: one sample per stratum per dimension,
  /// strata order permuted independently per dimension.
  [[nodiscard]] std::vector<std::vector<double>> dds_round(
      const Bounds& bounds, int samples);

  BestConfigOptions options_;
  common::Rng rng_;
};

}  // namespace deepcat::tuners
