#include "tuners/deepcat.hpp"

#include <stdexcept>

#include "common/math_util.hpp"
#include "rl/replay.hpp"

namespace deepcat::tuners {

DeepCatTuner::DeepCatTuner(DeepCatOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (options_.q_threshold < -10.0 || options_.q_threshold > 10.0) {
    throw std::invalid_argument("DeepCatOptions: implausible q_threshold");
  }
  if (options_.max_optimizer_iters == 0) {
    throw std::invalid_argument("DeepCatOptions: max_optimizer_iters == 0");
  }
  if (options_.obs.metrics != nullptr) {
    auto& reg = *options_.obs.metrics;
    obs_twinq_runs_ = &reg.counter("twinq.optimizer_runs");
    obs_twinq_retries_ = &reg.counter("twinq.retries");
    obs_twinq_accepted_ = &reg.counter("twinq.accepted_original");
    obs_twinq_initial_q_ = &reg.gauge("twinq.initial_min_q");
    obs_twinq_final_q_ = &reg.gauge("twinq.final_min_q");
  }
}

std::unique_ptr<rl::ReplayBuffer> DeepCatTuner::make_replay() const {
  if (options_.use_rdper) {
    return std::make_unique<rl::RdperReplay>(
        options_.replay_capacity_per_pool, options_.rdper);
  }
  // Ablation: conventional uniform experience replay (Fig. 4 baseline).
  return std::make_unique<rl::UniformReplay>(
      2 * options_.replay_capacity_per_pool);
}

void DeepCatTuner::ensure_agent(const sparksim::TuningEnvironment& env) {
  materialize(env.state_dim(), env.action_dim());
}

void DeepCatTuner::materialize(std::size_t state_dim, std::size_t action_dim) {
  if (agent_) {
    if (options_.td3.state_dim != state_dim ||
        options_.td3.action_dim != action_dim) {
      throw std::invalid_argument(
          "DeepCatTuner: environment dims changed after agent creation");
    }
    return;
  }
  options_.td3.state_dim = state_dim;
  options_.td3.action_dim = action_dim;
  options_.td3.obs = options_.obs;
  agent_ = std::make_unique<rl::Td3Agent>(options_.td3, rng_);
  replay_ = make_replay();
}

rl::Td3Agent& DeepCatTuner::agent() {
  if (!agent_) throw std::logic_error("DeepCatTuner: agent not built yet");
  return *agent_;
}

std::vector<OfflineIterationRecord> DeepCatTuner::train_offline(
    sparksim::TuningEnvironment& env, std::size_t iterations) {
  ensure_agent(env);
  std::vector<OfflineIterationRecord> trace;
  trace.reserve(iterations);

  std::vector<double> state = env.reset();
  for (std::size_t it = 0; it < iterations; ++it) {
    std::vector<double> action;
    if (replay_->size() < options_.warmup_steps) {
      action.resize(env.action_dim());
      for (double& a : action) a = rng_.uniform();
    } else {
      action = agent_->act_noisy(state, options_.offline_explore_sigma, rng_);
    }
    const double min_q = agent_->min_q(state, action);
    const sparksim::StepResult res = env.step(action);

    const bool done = (it + 1) % options_.episode_length == 0;
    replay_->add({state, action, res.reward, res.state, done});
    if (replay_->size() >= options_.td3.batch_size) {
      agent_->train_step(*replay_, rng_);
    }

    trace.push_back({it, res.reward, min_q, res.exec_seconds, res.success});
    state = res.state;
  }
  return trace;
}

TwinQOptimizerTrace DeepCatTuner::optimize_action(
    std::span<const double> state, std::vector<double>& action) {
  TwinQOptimizerTrace trace;
  trace.initial_min_q = agent().min_q(state, action);
  trace.final_min_q = trace.initial_min_q;
  if (obs_twinq_runs_ != nullptr) {
    obs_twinq_runs_->add(1);
    obs_twinq_initial_q_->set(trace.initial_min_q);
  }
  if (trace.initial_min_q >= options_.q_threshold) {
    trace.accepted_original = true;
    if (obs_twinq_accepted_ != nullptr) {
      obs_twinq_accepted_->add(1);
      obs_twinq_final_q_->set(trace.final_min_q);
    }
    return trace;
  }

  // Algorithm 1 with an iteration guard: keep perturbing with Gaussian
  // noise until the twin-Q indicator clears Q_th. The paper's loop is
  // unbounded; we track the best candidate seen so a pathological Q_th
  // still yields the strongest action found instead of stalling.
  std::vector<double> candidate = action;
  std::vector<double> best = action;
  double best_q = trace.initial_min_q;
  for (std::size_t i = 0; i < options_.max_optimizer_iters; ++i) {
    ++trace.iterations;
    for (double& a : candidate) {
      a = common::clamp(a + rng_.normal(0.0, options_.optimizer_sigma), 0.0,
                        1.0);
    }
    const double q = agent().min_q(state, candidate);
    if (q > best_q) {
      best_q = q;
      best = candidate;
    }
    if (q >= options_.q_threshold) break;
    // Random-walk from the best candidate so far rather than wandering off.
    candidate = best;
  }
  action = best;
  trace.final_min_q = best_q;
  if (obs_twinq_retries_ != nullptr) {
    obs_twinq_retries_->add(trace.iterations);
    obs_twinq_final_q_->set(trace.final_min_q);
  }
  return trace;
}

TuningReport DeepCatTuner::tune(sparksim::TuningEnvironment& env,
                                int num_steps) {
  return tune_with_budget(env, {.max_steps = num_steps});
}

TuningReport DeepCatTuner::tune_with_budget(sparksim::TuningEnvironment& env,
                                            const TuneBudget& budget) {
  const int num_steps = budget.max_steps;
  ensure_agent(env);
  online_traces_.clear();
  const auto span = options_.obs.scope("tune_online");

  TuningReport report;
  report.tuner_name = name();
  report.workload_name = env.workload().name;

  // The default run establishes perf_e and s_0; it is not one of the paid
  // online tuning steps (the paper's cost covers the 5 recommendations).
  std::vector<double> state = env.reset();
  report.default_time = env.default_time();
  env.reset_cost_counters();

  const int seed_count = static_cast<int>(budget.seed_actions.size());
  for (int step = 1; step <= num_steps; ++step) {
    std::vector<double> action;
    double rec_seconds = 0.0;
    if (step <= seed_count) {
      // Warm start: replay a retrieved seed action verbatim. No actor or
      // Twin-Q forwards happen — the RNG stream is untouched, so a session
      // with zero seeds is bit-identical to one that never saw this branch.
      action = budget.seed_actions[static_cast<std::size_t>(step - 1)];
      action.resize(env.action_dim(), 0.5);
      for (double& a : action) a = common::clamp(a, 0.0, 1.0);
      rec_seconds = rec_cost::kRetrievalSeed;
    } else {
      // Exploratory proposal; the Twin-Q Optimizer screens it before any
      // cluster time is spent, replacing estimated-sub-optimal candidates.
      action = agent_->act_noisy(state, options_.online_explore_sigma, rng_);
      rec_seconds = rec_cost::kActorForward;
      if (options_.use_twin_q_optimizer) {
        online_traces_.push_back(optimize_action(state, action));
        // One initial probe plus one per optimizer iteration.
        rec_seconds +=
            rec_cost::kCriticPair *
            static_cast<double>(1 + online_traces_.back().iterations);
      }
    }

    const sparksim::StepResult res = env.step(action);

    // Online fine-tuning on the fresh transition (and replayed history).
    replay_->add({state, action, res.reward, res.state, step == num_steps});
    if (replay_->size() >= options_.td3.batch_size) {
      for (std::size_t k = 0; k < options_.online_finetune_steps; ++k) {
        agent_->train_step(*replay_, rng_);
      }
      rec_seconds += rec_cost::kTrainStep *
                     static_cast<double>(options_.online_finetune_steps);
    }

    TuningStepRecord rec;
    rec.step = step;
    rec.exec_seconds = res.exec_seconds;
    rec.reward = res.reward;
    rec.success = res.success;
    rec.recommendation_seconds = rec_seconds;
    rec.best_so_far = env.best_time();
    report.steps.push_back(rec);

    state = res.state;

    if (report.total_tuning_seconds() >= budget.max_total_seconds) {
      break;  // tuning-time budget exhausted (paper §2)
    }
  }

  report.best_time = env.best_time();
  report.best_config = env.best_config();
  report.objective = env.objective();
  report.stream = env.stream_summary();
  return report;
}

void DeepCatTuner::save(std::ostream& os) { agent().save(os); }

void DeepCatTuner::load(std::istream& is) { agent().load(is); }

}  // namespace deepcat::tuners
