// Common interface for online configuration auto-tuners, plus the tuning
// report every experiment harness consumes. The cost accounting follows
// the paper (§5.2.2): total online tuning time = sum of configuration
// evaluation time (simulated seconds) + recommendation time (modeled
// seconds the tuner spent deciding).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sparksim/config_space.hpp"
#include "sparksim/environment.hpp"

namespace deepcat::tuners {

/// Deterministic model of recommendation time. Earlier revisions measured
/// host wall-clock here, which mixed real microseconds into otherwise
/// simulated seconds and made the figure data irreproducible: totals
/// shifted with machine load, and running harness sweeps in parallel
/// inflated them further. Recommendation cost is now charged from the
/// tuner's deterministic operation counts (actor forwards, twin-Q probes,
/// train steps, GP fits/predicts) times the per-operation constants below,
/// calibrated once against bench_micro wall-clock measurements on the
/// reference build. Figure data is thereby a pure function of the seeds,
/// identical across machines, runs, and thread counts.
namespace rec_cost {
inline constexpr double kActorForward = 9e-6;   ///< one policy-net forward
inline constexpr double kCriticPair = 17e-6;    ///< min_q: two critic forwards
inline constexpr double kTrainStep = 4.5e-3;    ///< one TD3/DDPG train step
inline constexpr double kGpFitPerN3 = 1.3e-10;  ///< Cholesky-dominated GP fit
inline constexpr double kGpPredictPerN2 = 2e-9; ///< triangular solve/predict
/// Replaying one retrieved warm-start action (no actor/critic forwards;
/// the k-NN lookup itself is charged once by the service layer).
inline constexpr double kRetrievalSeed = 1e-6;
}  // namespace rec_cost

struct TuningStepRecord {
  int step = 0;                       ///< 1-based online step index
  double exec_seconds = 0.0;          ///< evaluation cost of this step
  double reward = 0.0;
  bool success = false;
  double recommendation_seconds = 0.0;///< modeled cost of choosing the action
  double best_so_far = 0.0;           ///< best exec time after this step
};

struct TuningReport {
  std::string tuner_name;
  std::string workload_name;
  double default_time = 0.0;
  double best_time = 0.0;
  sparksim::ConfigValues best_config;
  std::vector<TuningStepRecord> steps;
  /// What the times above measure (streaming environments tune p95 batch
  /// latency, not job completion).
  sparksim::ObjectiveKind objective =
      sparksim::ObjectiveKind::kJobCompletionSeconds;
  /// Phase/shift re-adaptation accounting, present for streaming sessions.
  std::optional<sparksim::StreamSummary> stream;

  [[nodiscard]] double total_evaluation_seconds() const noexcept;
  [[nodiscard]] double total_recommendation_seconds() const noexcept;
  /// Evaluation + recommendation (the paper's "total online tuning time").
  [[nodiscard]] double total_tuning_seconds() const noexcept;
  [[nodiscard]] double speedup_over_default() const noexcept;
};

/// Termination rule for an online tuning session (paper §2: DeepCAT stops
/// when the step constraint is hit OR the time budget is exhausted).
struct TuneBudget {
  int max_steps = 5;
  double max_total_seconds = 1e18;  ///< evaluation + recommendation seconds
  /// Warm-start seed actions (normalized [0,1]^dim, retrieval order). The
  /// first `seed_actions.size()` online steps replay these instead of
  /// querying the actor; every step still evaluates, feeds the replay and
  /// fine-tunes, so the agent learns from the seeded evaluations. Empty
  /// (the default) leaves the cold path bit-identical.
  std::vector<std::vector<double>> seed_actions;
};

class OnlineTuner {
 public:
  virtual ~OnlineTuner() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Runs `num_steps` online tuning steps against `env` (which must be
  /// freshly constructed; the tuner calls env.reset() itself) and reports
  /// the best configuration found plus the full cost breakdown.
  virtual TuningReport tune(sparksim::TuningEnvironment& env,
                            int num_steps) = 0;
};

}  // namespace deepcat::tuners
