// Common interface for online configuration auto-tuners, plus the tuning
// report every experiment harness consumes. The cost accounting follows
// the paper (§5.2.2): total online tuning time = sum of configuration
// evaluation time (simulated seconds) + recommendation time (real seconds
// the tuner spent deciding).
#pragma once

#include <string>
#include <vector>

#include "sparksim/config_space.hpp"
#include "sparksim/environment.hpp"

namespace deepcat::tuners {

struct TuningStepRecord {
  int step = 0;                       ///< 1-based online step index
  double exec_seconds = 0.0;          ///< evaluation cost of this step
  double reward = 0.0;
  bool success = false;
  double recommendation_seconds = 0.0;///< wall-clock spent choosing the action
  double best_so_far = 0.0;           ///< best exec time after this step
};

struct TuningReport {
  std::string tuner_name;
  std::string workload_name;
  double default_time = 0.0;
  double best_time = 0.0;
  sparksim::ConfigValues best_config;
  std::vector<TuningStepRecord> steps;

  [[nodiscard]] double total_evaluation_seconds() const noexcept;
  [[nodiscard]] double total_recommendation_seconds() const noexcept;
  /// Evaluation + recommendation (the paper's "total online tuning time").
  [[nodiscard]] double total_tuning_seconds() const noexcept;
  [[nodiscard]] double speedup_over_default() const noexcept;
};

/// Termination rule for an online tuning session (paper §2: DeepCAT stops
/// when the step constraint is hit OR the time budget is exhausted).
struct TuneBudget {
  int max_steps = 5;
  double max_total_seconds = 1e18;  ///< evaluation + recommendation seconds
};

class OnlineTuner {
 public:
  virtual ~OnlineTuner() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Runs `num_steps` online tuning steps against `env` (which must be
  /// freshly constructed; the tuner calls env.reset() itself) and reports
  /// the best configuration found plus the full cost breakdown.
  virtual TuningReport tune(sparksim::TuningEnvironment& env,
                            int num_steps) = 0;
};

}  // namespace deepcat::tuners
