#include "tuners/tuner.hpp"

namespace deepcat::tuners {

double TuningReport::total_evaluation_seconds() const noexcept {
  double total = 0.0;
  for (const auto& s : steps) total += s.exec_seconds;
  return total;
}

double TuningReport::total_recommendation_seconds() const noexcept {
  double total = 0.0;
  for (const auto& s : steps) total += s.recommendation_seconds;
  return total;
}

double TuningReport::total_tuning_seconds() const noexcept {
  return total_evaluation_seconds() + total_recommendation_seconds();
}

double TuningReport::speedup_over_default() const noexcept {
  return best_time > 0.0 ? default_time / best_time : 0.0;
}

}  // namespace deepcat::tuners
