#include "tuners/cdbtune.hpp"

#include <stdexcept>

namespace deepcat::tuners {

CdbTuneTuner::CdbTuneTuner(CdbTuneOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

void CdbTuneTuner::ensure_agent(const sparksim::TuningEnvironment& env) {
  if (agent_) return;
  options_.ddpg.state_dim = env.state_dim();
  options_.ddpg.action_dim = env.action_dim();
  agent_ = std::make_unique<rl::DdpgAgent>(options_.ddpg, rng_);
  replay_ = std::make_unique<rl::PrioritizedReplay>(options_.replay_capacity,
                                                    options_.per);
}

rl::DdpgAgent& CdbTuneTuner::agent() {
  if (!agent_) throw std::logic_error("CdbTuneTuner: agent not built yet");
  return *agent_;
}

void CdbTuneTuner::train_offline(sparksim::TuningEnvironment& env,
                                 std::size_t iterations) {
  ensure_agent(env);
  std::vector<double> state = env.reset();
  for (std::size_t it = 0; it < iterations; ++it) {
    std::vector<double> action;
    if (replay_->size() < options_.warmup_steps) {
      action.resize(env.action_dim());
      for (double& a : action) a = rng_.uniform();
    } else {
      action = agent_->act_noisy(state, options_.offline_explore_sigma, rng_);
    }
    const sparksim::StepResult res = env.step(action);
    const bool done = (it + 1) % options_.episode_length == 0;
    replay_->add({state, action, res.reward, res.state, done});
    if (replay_->size() >= options_.ddpg.batch_size) {
      agent_->train_step(*replay_, rng_);
    }
    state = res.state;
  }
}

TuningReport CdbTuneTuner::tune(sparksim::TuningEnvironment& env,
                                int num_steps) {
  ensure_agent(env);

  TuningReport report;
  report.tuner_name = name();
  report.workload_name = env.workload().name;

  std::vector<double> state = env.reset();
  report.default_time = env.default_time();
  env.reset_cost_counters();

  for (int step = 1; step <= num_steps; ++step) {
    // CDBTune evaluates the actor's recommendation as-is (plus a small
    // exploration perturbation online) — every sub-optimal action pays a
    // full configuration evaluation.
    std::vector<double> action =
        agent_->act_noisy(state, options_.online_explore_sigma, rng_);
    double rec_seconds = rec_cost::kActorForward;

    const sparksim::StepResult res = env.step(action);

    replay_->add({state, action, res.reward, res.state, step == num_steps});
    if (replay_->size() >= options_.ddpg.batch_size) {
      for (std::size_t k = 0; k < options_.online_finetune_steps; ++k) {
        agent_->train_step(*replay_, rng_);
      }
      rec_seconds += rec_cost::kTrainStep *
                     static_cast<double>(options_.online_finetune_steps);
    }

    TuningStepRecord rec;
    rec.step = step;
    rec.exec_seconds = res.exec_seconds;
    rec.reward = res.reward;
    rec.success = res.success;
    rec.recommendation_seconds = rec_seconds;
    rec.best_so_far = env.best_time();
    report.steps.push_back(rec);

    state = res.state;
  }

  report.best_time = env.best_time();
  report.best_config = env.best_config();
  return report;
}

}  // namespace deepcat::tuners
