// Uniform random sampler over the knob cube. Used by the Fig. 2 harness
// (CDF of 200 random configurations) and as a simple search baseline. Also
// provides a BestConfig-flavored divide-and-diverge sampling mode that
// stratifies each dimension.
#pragma once

#include <cstdint>
#include <vector>

#include "tuners/tuner.hpp"

namespace deepcat::tuners {

struct RandomSearchOptions {
  /// When true, uses divide-and-diverge sampling (each knob's range is
  /// split into `num_steps` intervals, sampled latin-hypercube style)
  /// instead of plain uniform draws.
  bool divide_and_diverge = false;
  std::uint64_t seed = 2024;
};

class RandomSearchTuner final : public OnlineTuner {
 public:
  explicit RandomSearchTuner(RandomSearchOptions options = {});

  [[nodiscard]] std::string name() const override {
    return options_.divide_and_diverge ? "DDS-Random" : "Random";
  }

  TuningReport tune(sparksim::TuningEnvironment& env, int num_steps) override;

  /// Draws the full action sequence tune() would submit, without touching
  /// an environment. Consumes the tuner RNG exactly as tune() does, so a
  /// fresh tuner's plan matches a fresh tuner's tune() step for step. The
  /// Fig. 2 harness uses this to pre-plan all 200 configurations and then
  /// evaluate them in parallel with results identical to the serial run.
  [[nodiscard]] std::vector<std::vector<double>> plan_actions(
      std::size_t action_dim, int num_steps);

 private:
  RandomSearchOptions options_;
  common::Rng rng_;
};

}  // namespace deepcat::tuners
