// Uniform random sampler over the knob cube. Used by the Fig. 2 harness
// (CDF of 200 random configurations) and as a simple search baseline. Also
// provides a BestConfig-flavored divide-and-diverge sampling mode that
// stratifies each dimension.
#pragma once

#include <cstdint>

#include "tuners/tuner.hpp"

namespace deepcat::tuners {

struct RandomSearchOptions {
  /// When true, uses divide-and-diverge sampling (each knob's range is
  /// split into `num_steps` intervals, sampled latin-hypercube style)
  /// instead of plain uniform draws.
  bool divide_and_diverge = false;
  std::uint64_t seed = 2024;
};

class RandomSearchTuner final : public OnlineTuner {
 public:
  explicit RandomSearchTuner(RandomSearchOptions options = {});

  [[nodiscard]] std::string name() const override {
    return options_.divide_and_diverge ? "DDS-Random" : "Random";
  }

  TuningReport tune(sparksim::TuningEnvironment& env, int num_steps) override;

 private:
  RandomSearchOptions options_;
  common::Rng rng_;
};

}  // namespace deepcat::tuners
