#include "tuners/random_search.hpp"

#include <algorithm>
#include <numeric>

namespace deepcat::tuners {

RandomSearchTuner::RandomSearchTuner(RandomSearchOptions options)
    : options_(options), rng_(options.seed) {}

std::vector<std::vector<double>> RandomSearchTuner::plan_actions(
    std::size_t action_dim, int num_steps) {
  // Latin-hypercube permutations for divide-and-diverge mode: one
  // stratified level sequence per dimension.
  std::vector<std::vector<std::size_t>> strata;
  if (options_.divide_and_diverge && num_steps > 1) {
    strata.assign(action_dim, {});
    for (auto& perm : strata) {
      perm.resize(static_cast<std::size_t>(num_steps));
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      rng_.shuffle(perm);
    }
  }

  std::vector<std::vector<double>> actions;
  actions.reserve(static_cast<std::size_t>(std::max(num_steps, 0)));
  for (int step = 1; step <= num_steps; ++step) {
    std::vector<double> action(action_dim);
    if (!strata.empty()) {
      const auto n = static_cast<double>(num_steps);
      for (std::size_t d = 0; d < action.size(); ++d) {
        const double level =
            static_cast<double>(strata[d][static_cast<std::size_t>(step - 1)]);
        action[d] = (level + rng_.uniform()) / n;
      }
    } else {
      for (double& a : action) a = rng_.uniform();
    }
    actions.push_back(std::move(action));
  }
  return actions;
}

TuningReport RandomSearchTuner::tune(sparksim::TuningEnvironment& env,
                                     int num_steps) {
  TuningReport report;
  report.tuner_name = name();
  report.workload_name = env.workload().name;

  env.reset();
  report.default_time = env.default_time();
  env.reset_cost_counters();

  const auto actions = plan_actions(env.action_dim(), num_steps);
  for (int step = 1; step <= num_steps; ++step) {
    const sparksim::StepResult res =
        env.step(actions[static_cast<std::size_t>(step - 1)]);
    TuningStepRecord rec;
    rec.step = step;
    rec.exec_seconds = res.exec_seconds;
    rec.reward = res.reward;
    rec.success = res.success;
    rec.recommendation_seconds = 0.0;
    rec.best_so_far = env.best_time();
    report.steps.push_back(rec);
  }

  report.best_time = env.best_time();
  report.best_config = env.best_config();
  return report;
}

}  // namespace deepcat::tuners
