#include "tuners/random_search.hpp"

#include <numeric>

namespace deepcat::tuners {

RandomSearchTuner::RandomSearchTuner(RandomSearchOptions options)
    : options_(options), rng_(options.seed) {}

TuningReport RandomSearchTuner::tune(sparksim::TuningEnvironment& env,
                                     int num_steps) {
  TuningReport report;
  report.tuner_name = name();
  report.workload_name = env.workload().name;

  env.reset();
  report.default_time = env.default_time();
  env.reset_cost_counters();

  // Latin-hypercube permutations for divide-and-diverge mode: one
  // stratified level sequence per dimension.
  std::vector<std::vector<std::size_t>> strata;
  if (options_.divide_and_diverge && num_steps > 1) {
    strata.assign(env.action_dim(), {});
    for (auto& perm : strata) {
      perm.resize(static_cast<std::size_t>(num_steps));
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      rng_.shuffle(perm);
    }
  }

  for (int step = 1; step <= num_steps; ++step) {
    std::vector<double> action(env.action_dim());
    if (!strata.empty()) {
      const auto n = static_cast<double>(num_steps);
      for (std::size_t d = 0; d < action.size(); ++d) {
        const double level =
            static_cast<double>(strata[d][static_cast<std::size_t>(step - 1)]);
        action[d] = (level + rng_.uniform()) / n;
      }
    } else {
      for (double& a : action) a = rng_.uniform();
    }

    const sparksim::StepResult res = env.step(action);
    TuningStepRecord rec;
    rec.step = step;
    rec.exec_seconds = res.exec_seconds;
    rec.reward = res.reward;
    rec.success = res.success;
    rec.recommendation_seconds = 0.0;
    rec.best_so_far = env.best_time();
    report.steps.push_back(rec);
  }

  report.best_time = env.best_time();
  report.best_config = env.best_config();
  return report;
}

}  // namespace deepcat::tuners
