// OtterTune baseline (Van Aken et al., SIGMOD 2017): Gaussian-process
// surrogate + Expected Improvement acquisition, seeded through workload
// mapping over an offline observation repository. Each online step refits
// the GP on mapped + observed data (the recommendation-time cost the paper
// measures at ~43 s total) and maximizes EI over a candidate pool.
#pragma once

#include <cstdint>
#include <memory>

#include "gp/gp_regressor.hpp"
#include "gp/workload_map.hpp"
#include "tuners/tuner.hpp"

namespace deepcat::tuners {

struct OtterTuneOptions {
  /// Length-scale grid for per-step GP hyperparameter selection by log
  /// marginal likelihood — the model (re)training the paper's Fig. 7
  /// charges to OtterTune's recommendation time.
  std::vector<double> length_scale_grid = {0.6, 1.0, 1.8, 3.0};
  double noise_var = 0.05;
  double ei_xi = 0.01;
  std::size_t candidate_pool = 800;   ///< random EI candidates per step
  std::size_t local_candidates = 150; ///< perturbations around the incumbent
  double local_sigma = 0.08;
  std::size_t max_mapped_samples = 1200;  ///< GP budget from the repository
  std::uint64_t seed = 777;

  /// Observability hand-off; attached to every GP the tuner fits.
  obs::Sink obs{};

  /// Optional worker pool for the GP refits (kernel-matrix build and
  /// Cholesky trailing updates). Fits are bit-identical to the serial
  /// path at any pool size — see GpRegressor::set_thread_pool — so this
  /// only changes wall clock, never recommendations. Must outlive the
  /// tuner. nullptr keeps the serial fit.
  common::ThreadPool* fit_pool = nullptr;
};

class OtterTuneTuner final : public OnlineTuner {
 public:
  explicit OtterTuneTuner(OtterTuneOptions options);

  [[nodiscard]] std::string name() const override { return "OtterTune"; }

  /// Offline stage: samples `num_samples` random configurations on `env`
  /// and stores (config, metrics, runtime) observations under
  /// `workload_id` — the "thousands of offline samples" the paper feeds
  /// OtterTune for a fair comparison (§4.4).
  void collect_observations(sparksim::TuningEnvironment& env,
                            const std::string& workload_id,
                            std::size_t num_samples);

  /// Direct repository access for custom seeding in tests/ablations.
  [[nodiscard]] gp::WorkloadRepository& repository() noexcept {
    return repository_;
  }

  TuningReport tune(sparksim::TuningEnvironment& env, int num_steps) override;

 private:
  /// Picks the next configuration by maximizing EI under a freshly fitted
  /// GP; returns the chosen normalized action of length `action_dim` and
  /// adds the modeled cost of the GP retrains + candidate scans (the
  /// dominant recommendation cost of Fig. 7) to `modeled_seconds`.
  std::vector<double> recommend(
      std::size_t action_dim, const std::vector<gp::Observation>& mapped,
      const std::vector<gp::Observation>& observed, double best_time,
      std::span<const double> incumbent, double& modeled_seconds);

  OtterTuneOptions options_;
  common::Rng rng_;
  gp::WorkloadRepository repository_;
};

}  // namespace deepcat::tuners
