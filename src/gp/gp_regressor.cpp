#include "gp/gp_regressor.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/simd.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace deepcat::gp {

namespace {

// Trailing updates (and kernel-matrix rows) shorter than this run inline:
// below it the enqueue/wake cost exceeds the row arithmetic.
constexpr std::size_t kParallelRowGrain = 64;

}  // namespace

nn::Matrix cholesky(nn::Matrix a, common::ThreadPool* pool) {
  const std::size_t n = a.rows();
  if (n != a.cols()) throw std::invalid_argument("cholesky: not square");

  for (double jitter = 0.0; jitter <= 1e-2; jitter = jitter == 0.0 ? 1e-10 : jitter * 100.0) {
    nn::Matrix l(n, n);
    bool ok = true;
    // L is built row by row; every inner reduction is a contiguous dot
    // over already-finished row prefixes, so it runs on the SIMD path.
    for (std::size_t j = 0; j < n && ok; ++j) {
      const double* lrow_j = l.data() + j * n;
      const double diag =
          a(j, j) + jitter - common::simd::sum_squares(lrow_j, j);
      if (diag <= 0.0) {
        ok = false;
        break;
      }
      l(j, j) = std::sqrt(diag);
      // Trailing update: row i only reads finished columns < j of rows i
      // and j, and writes its own L(i,j) — rows are independent, so they
      // fan out across the pool. Each row evaluates the identical serial
      // expression, which keeps the factor bit-identical at every pool
      // size (see the header contract).
      const double inv_diag_row = l(j, j);
      auto update_row = [&a, &l, lrow_j, j, n, inv_diag_row](std::size_t i) {
        const double s =
            a(i, j) - common::simd::dot(l.data() + i * n, lrow_j, j);
        l(i, j) = s / inv_diag_row;
      };
      if (pool != nullptr) {
        pool->parallel_for_range(j + 1, n, kParallelRowGrain, update_row);
      } else {
        for (std::size_t i = j + 1; i < n; ++i) update_row(i);
      }
    }
    if (ok) return l;
  }
  throw std::runtime_error("cholesky: matrix not positive definite");
}

std::vector<double> cholesky_solve(const nn::Matrix& l,
                                   std::span<const double> b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("cholesky_solve: size");
  std::vector<double> z(n), x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double s = b[i] - common::simd::dot(l.data() + i * n, z.data(), i);
    z[i] = s / l(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = z[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

GpRegressor::GpRegressor(std::unique_ptr<Kernel> kernel, double noise_var)
    : kernel_(std::move(kernel)), noise_var_(noise_var) {
  if (!kernel_) throw std::invalid_argument("GpRegressor: null kernel");
  if (noise_var_ < 0.0) throw std::invalid_argument("GpRegressor: noise < 0");
}

void GpRegressor::set_obs(const obs::Sink& sink) { obs_ = sink; }

void GpRegressor::set_thread_pool(common::ThreadPool* pool) noexcept {
  pool_ = pool;
}

void GpRegressor::fit(const nn::Matrix& x, std::span<const double> y) {
  const std::size_t n = x.rows();
  if (n == 0) throw std::invalid_argument("GpRegressor::fit: no samples");
  if (y.size() != n) throw std::invalid_argument("GpRegressor::fit: |y| != n");

  const auto span = obs_.scope("gp.fit");
  const auto fit_start = std::chrono::steady_clock::now();

  y_mean_ = common::mean(y);
  y_std_ = common::stddev(y);
  if (y_std_ < 1e-12) y_std_ = 1.0;

  std::vector<double> y_norm(n);
  for (std::size_t i = 0; i < n; ++i) y_norm[i] = (y[i] - y_mean_) / y_std_;

  // Row i writes k(i, j<=i) plus the mirror elements k(j, i) — column i of
  // the rows above, which no other row's item touches — so rows build in
  // parallel with disjoint writes and value-per-element determinism.
  nn::Matrix k(n, n);
  auto build_row = [this, &k, &x](std::size_t i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = (*kernel_)(x.row(i), x.row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += noise_var_;
  };
  if (pool_ != nullptr) {
    pool_->parallel_for_range(0, n, kParallelRowGrain, build_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) build_row(i);
  }

  train_x_ = x;
  chol_ = cholesky(std::move(k), pool_);
  alpha_ = cholesky_solve(chol_, y_norm);
  y_norm_ = std::move(y_norm);

  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("gp.fits").add(1);
    obs_.metrics->gauge("gp.fit_points").set(static_cast<double>(n));
    // Wall time is scheduling-dependent by nature; flag it so the
    // deterministic snapshot export skips it.
    obs_.metrics
        ->gauge("gp.fit_seconds", /*deterministic=*/false)
        .set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           fit_start)
                 .count());
  }
}

double GpRegressor::log_marginal_likelihood() const {
  if (!fitted()) {
    throw std::logic_error("GpRegressor::log_marginal_likelihood before fit");
  }
  const std::size_t n = train_x_.rows();
  const double data_fit = common::simd::dot(y_norm_.data(), alpha_.data(), n);
  double log_det_half = 0.0;
  for (std::size_t i = 0; i < n; ++i) log_det_half += std::log(chol_(i, i));
  constexpr double kLog2Pi = 1.8378770664093453;
  return -0.5 * data_fit - log_det_half -
         0.5 * static_cast<double>(n) * kLog2Pi;
}

GpPrediction GpRegressor::predict(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("GpRegressor::predict before fit");
  const std::size_t n = train_x_.rows();
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) {
    k_star[i] = (*kernel_)(train_x_.row(i), x);
  }

  const double mean = common::simd::dot(k_star.data(), alpha_.data(), n);

  // v = L^-1 k*, var = k(x,x) - v.v
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double s =
        k_star[i] - common::simd::dot(chol_.data() + i * n, v.data(), i);
    v[i] = s / chol_(i, i);
  }
  const double var =
      (*kernel_)(x, x) - common::simd::sum_squares(v.data(), n);

  GpPrediction out;
  out.mean = mean * y_std_ + y_mean_;
  out.variance = std::max(var, 0.0) * y_std_ * y_std_;
  return out;
}

}  // namespace deepcat::gp
