// Exact Gaussian-process regression via Cholesky factorization — the
// surrogate model inside the OtterTune baseline. Targets are internally
// standardized (zero mean, unit variance) for numeric stability.
#pragma once

#include <memory>
#include <vector>

#include "gp/kernel.hpp"
#include "nn/matrix.hpp"
#include "obs/sink.hpp"

namespace deepcat::common {
class ThreadPool;
}  // namespace deepcat::common

namespace deepcat::gp {

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;
};

class GpRegressor {
 public:
  /// `noise_var` is added to the kernel diagonal (observation noise).
  explicit GpRegressor(std::unique_ptr<Kernel> kernel,
                       double noise_var = 1e-4);

  GpRegressor(const GpRegressor&) = delete;
  GpRegressor& operator=(const GpRegressor&) = delete;
  GpRegressor(GpRegressor&&) noexcept = default;
  GpRegressor& operator=(GpRegressor&&) noexcept = default;

  /// Fits on n rows of X (n x d) with targets y (length n). Requires
  /// at least one sample; refit replaces prior data.
  void fit(const nn::Matrix& x, std::span<const double> y);

  /// Posterior mean/variance at a query point. Requires fit() first.
  [[nodiscard]] GpPrediction predict(std::span<const double> x) const;

  [[nodiscard]] bool fitted() const noexcept { return !train_x_.empty(); }
  [[nodiscard]] std::size_t num_samples() const noexcept {
    return train_x_.rows();
  }

  /// Log marginal likelihood of the standardized training targets under
  /// the fitted kernel: -1/2 y^T alpha - sum(log L_ii) - n/2 log(2 pi).
  /// Used for hyperparameter (length-scale) selection. Requires fit().
  [[nodiscard]] double log_marginal_likelihood() const;

  /// Attaches observability: each fit() then records a "gp.fit" span, a
  /// gp.fits counter, the sample count, and its wall time (the wall-time
  /// gauge registers as nondeterministic — see DESIGN.md §10).
  void set_obs(const obs::Sink& sink);

  /// Runs fit() — kernel-matrix build and Cholesky trailing updates — on
  /// `pool` (nullptr restores the serial path). Results are bit-identical
  /// to the serial fit at every pool size: each parallel work item is one
  /// matrix row whose value is computed by the exact serial formula, so
  /// only the wall-clock order changes, never a summation order. The pool
  /// must outlive this regressor or be detached before destruction.
  void set_thread_pool(common::ThreadPool* pool) noexcept;

 private:
  std::unique_ptr<Kernel> kernel_;
  double noise_var_;
  common::ThreadPool* pool_ = nullptr;
  nn::Matrix train_x_;
  nn::Matrix chol_;               ///< lower-triangular L with K = L L^T
  std::vector<double> alpha_;     ///< L^-T L^-1 y~
  std::vector<double> y_norm_;    ///< standardized targets (for LML)
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  obs::Sink obs_{};
};

/// In-place Cholesky of a symmetric positive-definite matrix; returns the
/// lower factor. Adds progressive jitter if the matrix is near-singular;
/// throws std::runtime_error if it stays non-PD.
///
/// With a pool, the per-column trailing update (rows i > j) fans out over
/// the workers. Every row keeps the serial formula
///   L(i,j) = (A(i,j) - dot(L_i, L_j, j)) / L(j,j)
/// — a reduction over already-finished columns only, in the same order —
/// so the factor is bit-identical to the serial result at every thread
/// count. nullptr (the default) runs serially.
[[nodiscard]] nn::Matrix cholesky(nn::Matrix a,
                                  common::ThreadPool* pool = nullptr);

/// Solves L z = b (forward) then L^T x = z (backward).
[[nodiscard]] std::vector<double> cholesky_solve(const nn::Matrix& l,
                                                 std::span<const double> b);

}  // namespace deepcat::gp
