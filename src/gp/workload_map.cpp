#include "gp/workload_map.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace deepcat::gp {

void WorkloadRepository::add(const std::string& workload_id, Observation obs) {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == workload_id) {
      workloads_[i].push_back(std::move(obs));
      return;
    }
  }
  ids_.push_back(workload_id);
  workloads_.push_back({std::move(obs)});
}

const std::vector<Observation>& WorkloadRepository::observations(
    const std::string& workload_id) const {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == workload_id) return workloads_[i];
  }
  throw std::out_of_range("WorkloadRepository: unknown workload " +
                          workload_id);
}

const std::string& WorkloadRepository::nearest_workload(
    std::span<const double> metrics) const {
  if (empty()) throw std::logic_error("WorkloadRepository: empty");

  const std::size_t dim = metrics.size();
  // Per-dimension standard deviation over all observations, for scaling.
  std::vector<double> mean(dim, 0.0), var(dim, 0.0);
  std::size_t count = 0;
  for (const auto& obs_list : workloads_) {
    for (const auto& obs : obs_list) {
      if (obs.metrics.size() != dim) continue;
      ++count;
      for (std::size_t d = 0; d < dim; ++d) mean[d] += obs.metrics[d];
    }
  }
  if (count == 0) throw std::logic_error("WorkloadRepository: no metrics");
  for (double& m : mean) m /= static_cast<double>(count);
  for (const auto& obs_list : workloads_) {
    for (const auto& obs : obs_list) {
      if (obs.metrics.size() != dim) continue;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff = obs.metrics[d] - mean[d];
        var[d] += diff * diff;
      }
    }
  }
  for (double& v : var) v = std::max(v / static_cast<double>(count), 1e-12);

  double best_dist = std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  for (std::size_t i = 0; i < workloads_.size(); ++i) {
    // Distance to the workload centroid in standardized metric space.
    std::vector<double> centroid(dim, 0.0);
    std::size_t n = 0;
    for (const auto& obs : workloads_[i]) {
      if (obs.metrics.size() != dim) continue;
      ++n;
      for (std::size_t d = 0; d < dim; ++d) centroid[d] += obs.metrics[d];
    }
    if (n == 0) continue;
    double dist = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff =
          centroid[d] / static_cast<double>(n) - metrics[d];
      dist += diff * diff / var[d];
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return ids_[best];
}

}  // namespace deepcat::gp
