// Covariance kernels for Gaussian-process regression.
#pragma once

#include <memory>
#include <span>
#include <string>

namespace deepcat::gp {

class Kernel {
 public:
  virtual ~Kernel() = default;
  /// k(x, y); inputs must be equal length.
  [[nodiscard]] virtual double operator()(std::span<const double> x,
                                          std::span<const double> y) const = 0;
  [[nodiscard]] virtual std::unique_ptr<Kernel> clone() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Squared-exponential: sigma_f^2 * exp(-||x-y||^2 / (2 l^2)).
class RbfKernel final : public Kernel {
 public:
  explicit RbfKernel(double length_scale = 1.0, double signal_var = 1.0);
  double operator()(std::span<const double> x,
                    std::span<const double> y) const override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override;
  [[nodiscard]] std::string name() const override { return "rbf"; }

 private:
  double length_scale_, signal_var_;
};

/// Matern-5/2 — OtterTune's default GP kernel family.
class Matern52Kernel final : public Kernel {
 public:
  explicit Matern52Kernel(double length_scale = 1.0, double signal_var = 1.0);
  double operator()(std::span<const double> x,
                    std::span<const double> y) const override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override;
  [[nodiscard]] std::string name() const override { return "matern52"; }

 private:
  double length_scale_, signal_var_;
};

}  // namespace deepcat::gp
