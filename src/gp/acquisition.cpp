#include "gp/acquisition.hpp"

#include <cmath>

namespace deepcat::gp {

double norm_pdf(double z) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double norm_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double expected_improvement(const GpPrediction& pred, double best_observed,
                            double xi) {
  const double sigma = std::sqrt(pred.variance);
  if (sigma < 1e-12) return 0.0;
  const double improvement = best_observed - pred.mean - xi;
  const double z = improvement / sigma;
  return improvement * norm_cdf(z) + sigma * norm_pdf(z);
}

}  // namespace deepcat::gp
