#include "gp/kernel.hpp"

#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"

namespace deepcat::gp {

namespace {
double sq_dist(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("kernel: dimension mismatch");
  }
  return common::squared_distance(x, y);
}
}  // namespace

RbfKernel::RbfKernel(double length_scale, double signal_var)
    : length_scale_(length_scale), signal_var_(signal_var) {
  if (length_scale <= 0.0) throw std::invalid_argument("rbf: length <= 0");
}

double RbfKernel::operator()(std::span<const double> x,
                             std::span<const double> y) const {
  return signal_var_ *
         std::exp(-sq_dist(x, y) / (2.0 * length_scale_ * length_scale_));
}

std::unique_ptr<Kernel> RbfKernel::clone() const {
  return std::make_unique<RbfKernel>(*this);
}

Matern52Kernel::Matern52Kernel(double length_scale, double signal_var)
    : length_scale_(length_scale), signal_var_(signal_var) {
  if (length_scale <= 0.0) throw std::invalid_argument("matern52: length <= 0");
}

double Matern52Kernel::operator()(std::span<const double> x,
                                  std::span<const double> y) const {
  const double r = std::sqrt(sq_dist(x, y)) / length_scale_;
  const double s5r = std::sqrt(5.0) * r;
  return signal_var_ * (1.0 + s5r + 5.0 * r * r / 3.0) * std::exp(-s5r);
}

std::unique_ptr<Kernel> Matern52Kernel::clone() const {
  return std::make_unique<Matern52Kernel>(*this);
}

}  // namespace deepcat::gp
