// Acquisition functions for Bayesian-optimization-style tuning.
#pragma once

#include "gp/gp_regressor.hpp"

namespace deepcat::gp {

/// Expected Improvement for MINIMIZATION: EI(x) = E[max(best - f(x), 0)].
/// `xi` is the exploration margin. Returns 0 when variance is ~0.
[[nodiscard]] double expected_improvement(const GpPrediction& pred,
                                          double best_observed,
                                          double xi = 0.01);

/// Standard normal pdf / cdf used by EI (exposed for tests).
[[nodiscard]] double norm_pdf(double z);
[[nodiscard]] double norm_cdf(double z);

}  // namespace deepcat::gp
