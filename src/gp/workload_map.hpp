// OtterTune-style workload mapping: an observation repository keyed by
// workload, plus nearest-workload lookup over observed runtime metric
// vectors. When a tuning request arrives, the target's first metrics are
// matched against history and the closest past workload's observations
// seed the GP (Van Aken et al., 2017, §"workload mapping").
#pragma once

#include <string>
#include <vector>

#include "nn/matrix.hpp"

namespace deepcat::gp {

/// One (configuration, metrics, performance) observation.
struct Observation {
  std::vector<double> config;    ///< normalized knob vector
  std::vector<double> metrics;   ///< runtime metric vector (load averages)
  double performance = 0.0;      ///< execution time, lower is better
};

class WorkloadRepository {
 public:
  /// Appends one observation under `workload_id`.
  void add(const std::string& workload_id, Observation obs);

  [[nodiscard]] bool empty() const noexcept { return workloads_.empty(); }
  [[nodiscard]] std::size_t num_workloads() const noexcept {
    return workloads_.size();
  }
  [[nodiscard]] const std::vector<std::string>& workload_ids() const noexcept {
    return ids_;
  }
  [[nodiscard]] const std::vector<Observation>& observations(
      const std::string& workload_id) const;

  /// Finds the workload whose average metric vector is closest (Euclidean,
  /// per-dimension standardized over the whole repository) to `metrics`.
  /// Throws std::logic_error when the repository is empty.
  [[nodiscard]] const std::string& nearest_workload(
      std::span<const double> metrics) const;

 private:
  std::vector<std::string> ids_;
  std::vector<std::vector<Observation>> workloads_;
};

}  // namespace deepcat::gp
