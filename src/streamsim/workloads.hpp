// The streaming evaluation grid: long-running micro-batch cases whose
// arrival schedule shifts load mid-session. Each case names a streaming
// workload family member (sparksim::WorkloadType::kStreamAgg/kStreamJoin),
// a phase schedule, and the latency/throughput contract one evaluation
// window is scored against.
#pragma once

#include <string>
#include <vector>

#include "sparksim/workloads.hpp"
#include "streamsim/arrival.hpp"

namespace deepcat::streamsim {

/// One streaming case of the suite (the streaming analog of HiBenchCase).
struct StreamCase {
  sparksim::WorkloadType type = sparksim::WorkloadType::kStreamAgg;
  std::string id;                 ///< e.g. "SA-P1"
  PhaseSchedule schedule;
  int batches_per_window = 8;     ///< micro-batches per evaluation window
  double batch_interval_s = 15.0; ///< arrival interval between batches
  /// Fraction of the offered load the system must sustain for a window to
  /// count as a success (the throughput floor under the p95 objective).
  double throughput_floor = 0.7;
};

/// All streaming cases, ordered SA then SJ. Every case has >= 2 phases so
/// every streaming session exercises online re-adaptation.
[[nodiscard]] const std::vector<StreamCase>& stream_suite();

/// Lookup by id ("SA-P1"); throws std::out_of_range if unknown.
[[nodiscard]] const StreamCase& stream_case(const std::string& id);

}  // namespace deepcat::streamsim
