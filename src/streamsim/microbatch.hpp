// Micro-batch execution model: one evaluation window = batches_per_window
// micro-batches arriving on a fixed interval, each simulated as a resident
// application run through the existing JobSimulator (YARN allocation,
// memory model, task engine — the full batch cost model minus app startup
// and driver collect). Batch latency = queueing delay + processing time;
// the window is scored by its p95 latency and sustained throughput.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparksim/config_space.hpp"
#include "sparksim/hardware.hpp"
#include "sparksim/job_sim.hpp"
#include "streamsim/workloads.hpp"

namespace deepcat::streamsim {

/// Outcome of one evaluation window.
struct WindowResult {
  bool success = false;       ///< every batch completed
  bool oom = false;
  std::string failure_reason;
  double p95_latency_s = 0.0; ///< arrival-to-finish, 95th percentile
  double mean_latency_s = 0.0;
  double offered_mb = 0.0;    ///< total arrival volume of the window
  double processed_mb = 0.0;  ///< volume of completed batches
  /// Sustained processing rate over the offered rate; >= 1 means the
  /// system kept up with the arrival process.
  double throughput_fraction = 0.0;
  double elapsed_s = 0.0;     ///< wall time until the last batch finished
  int batches = 0;            ///< completed batches
  int executors = 0;
  int total_slots = 0;
  /// Mean per-node load averages across batches (same layout as the batch
  /// simulator: 3 values per node, node-major).
  std::vector<double> load_averages;
  double spilled_mb = 0.0;
  double cache_hit_fraction = 1.0;
  int task_retries = 0;
};

class MicroBatchSimulator {
 public:
  explicit MicroBatchSimulator(sparksim::ClusterSpec cluster);

  /// Simulates window `window` of `c` under `config`. Arrival sizes are a
  /// pure function of (arrival_seed, window); execution noise comes from
  /// exec_seed. Deterministic in all arguments.
  [[nodiscard]] WindowResult run_window(const StreamCase& c, int window,
                                        const sparksim::ConfigValues& config,
                                        std::uint64_t arrival_seed,
                                        std::uint64_t exec_seed) const;

  [[nodiscard]] const sparksim::ClusterSpec& cluster() const noexcept {
    return sim_.cluster();
  }

  /// Hot DAG-scheduler stage submission cost for resident micro-batches
  /// (vs JobSimulator::kPerStageOverheadS for cold batch stages).
  static constexpr double kStageOverheadS = 0.1;

 private:
  sparksim::JobSimulator sim_;
};

}  // namespace deepcat::streamsim
