#include "streamsim/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace deepcat::streamsim {

std::string to_string(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kSteady: return "steady";
    case PhaseKind::kBurst: return "burst";
    case PhaseKind::kDiurnal: return "diurnal";
  }
  return "?";
}

int PhaseSchedule::phase_index(int window) const {
  if (phases.empty()) {
    throw std::logic_error("PhaseSchedule: empty schedule");
  }
  int start = 0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    start += phases[i].duration_windows;
    if (window < start) return static_cast<int>(i);
  }
  return static_cast<int>(phases.size()) - 1;  // last phase holds forever
}

int PhaseSchedule::total_windows() const noexcept {
  int total = 0;
  for (const PhaseSpec& p : phases) total += p.duration_windows;
  return total;
}

std::vector<double> window_batches(const PhaseSchedule& schedule, int window,
                                   int batches, std::uint64_t stream_seed) {
  const int phase = schedule.phase_index(window);
  const PhaseSpec& spec =
      schedule.phases[static_cast<std::size_t>(phase)];
  int phase_start = 0;
  for (int i = 0; i < phase; ++i) {
    phase_start += schedule.phases[static_cast<std::size_t>(i)].duration_windows;
  }

  // One private stream per window: arrival noise never depends on how many
  // windows ran before or which session drew them.
  common::Rng rng(
      common::mix_seed(stream_seed, static_cast<std::uint64_t>(window)));
  std::vector<double> sizes;
  sizes.reserve(static_cast<std::size_t>(batches));
  constexpr double kPi = 3.14159265358979323846;
  for (int b = 0; b < batches; ++b) {
    // Poisson-like arrival jitter, normal-approximated (the common Rng has
    // no Poisson sampler; at these means the shapes are indistinguishable).
    double mb = spec.mean_batch_mb *
                std::max(0.25, 1.0 + 0.2 * rng.normal());
    switch (spec.kind) {
      case PhaseKind::kSteady:
        break;
      case PhaseKind::kBurst:
        if ((b + 1) % kBurstPeriod == 0) mb *= spec.swing;
        break;
      case PhaseKind::kDiurnal: {
        const double t =
            (static_cast<double>(window - phase_start) +
             static_cast<double>(b) / static_cast<double>(std::max(batches, 1))) /
            static_cast<double>(std::max(spec.duration_windows, 1));
        mb *= 1.0 + 0.5 * (spec.swing - 1.0) * std::sin(2.0 * kPi * t);
        break;
      }
    }
    sizes.push_back(std::max(1.0, mb));
  }
  return sizes;
}

}  // namespace deepcat::streamsim
