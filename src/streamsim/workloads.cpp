#include "streamsim/workloads.hpp"

#include <stdexcept>

namespace deepcat::streamsim {

const std::vector<StreamCase>& stream_suite() {
  static const std::vector<StreamCase> suite = [] {
    using sparksim::WorkloadType;
    std::vector<StreamCase> s;

    // SA-P1: steady warmup, then a burst regime, then a permanently higher
    // steady rate — two shifts, the canonical re-adaptation case.
    {
      StreamCase c;
      c.type = WorkloadType::kStreamAgg;
      c.id = "SA-P1";
      c.schedule.phases = {
          {PhaseKind::kSteady, 384.0, 4, 1.0},
          {PhaseKind::kBurst, 384.0, 4, 2.5},
          {PhaseKind::kSteady, 640.0, 4, 1.0},
      };
      s.push_back(c);
    }

    // SA-P2: modest steady phase into a long diurnal swing.
    {
      StreamCase c;
      c.type = WorkloadType::kStreamAgg;
      c.id = "SA-P2";
      c.schedule.phases = {
          {PhaseKind::kSteady, 256.0, 3, 1.0},
          {PhaseKind::kDiurnal, 512.0, 6, 2.0},
      };
      s.push_back(c);
    }

    // SJ-P1: the stateful join under a burst regime — the memory-pressure
    // case (cached state store + burst batches).
    {
      StreamCase c;
      c.type = WorkloadType::kStreamJoin;
      c.id = "SJ-P1";
      c.schedule.phases = {
          {PhaseKind::kSteady, 256.0, 4, 1.0},
          {PhaseKind::kBurst, 320.0, 4, 2.0},
      };
      s.push_back(c);
    }

    // SJ-P2: diurnal start, then a step up to a higher steady rate.
    {
      StreamCase c;
      c.type = WorkloadType::kStreamJoin;
      c.id = "SJ-P2";
      c.schedule.phases = {
          {PhaseKind::kDiurnal, 320.0, 4, 1.8},
          {PhaseKind::kSteady, 512.0, 4, 1.0},
      };
      s.push_back(c);
    }
    return s;
  }();
  return suite;
}

const StreamCase& stream_case(const std::string& id) {
  for (const auto& c : stream_suite()) {
    if (c.id == id) return c;
  }
  throw std::out_of_range("stream_case: unknown id " + id);
}

}  // namespace deepcat::streamsim
