// Seeded micro-batch arrival process: a schedule of load phases (steady
// Poisson-like, bursty, diurnal) that shift mid-session. Every batch size
// is a pure function of (stream seed, window index, batch index), so two
// sessions with the same seed see byte-identical load no matter how many
// shards or threads serve them — the determinism anchor the phase-shift
// stress tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace deepcat::streamsim {

enum class PhaseKind { kSteady, kBurst, kDiurnal };

[[nodiscard]] std::string to_string(PhaseKind kind);

/// One load phase of the arrival schedule.
struct PhaseSpec {
  PhaseKind kind = PhaseKind::kSteady;
  double mean_batch_mb = 64.0;   ///< offered load per batch (pre-noise)
  int duration_windows = 4;      ///< evaluation windows this phase spans
  /// kBurst: every kBurstPeriod-th batch is multiplied by this.
  /// kDiurnal: peak-to-mean swing of the sinusoid.
  double swing = 2.0;
};

/// The arrival schedule: phases play in order; the last phase holds
/// forever (a session may run longer than the scheduled windows).
struct PhaseSchedule {
  std::vector<PhaseSpec> phases;

  /// Phase active at `window` (0-based); clamps to the last phase.
  [[nodiscard]] int phase_index(int window) const;
  [[nodiscard]] const PhaseSpec& phase_at(int window) const {
    return phases[static_cast<std::size_t>(phase_index(window))];
  }
  /// Total scheduled windows (the natural session length).
  [[nodiscard]] int total_windows() const noexcept;
  /// Number of mid-session load shifts = phases - 1.
  [[nodiscard]] int shift_count() const noexcept {
    return phases.empty() ? 0 : static_cast<int>(phases.size()) - 1;
  }
};

/// Within a kBurst phase, every kBurstPeriod-th batch is a burst.
inline constexpr int kBurstPeriod = 4;

/// Batch sizes (MB) for one evaluation window: `batches` draws from the
/// window's phase, seeded by mix_seed(stream_seed, window) — independent
/// of any other window and of evaluation order.
[[nodiscard]] std::vector<double> window_batches(const PhaseSchedule& schedule,
                                                 int window, int batches,
                                                 std::uint64_t stream_seed);

}  // namespace deepcat::streamsim
