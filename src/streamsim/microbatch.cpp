#include "streamsim/microbatch.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace deepcat::streamsim {

namespace {

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

MicroBatchSimulator::MicroBatchSimulator(sparksim::ClusterSpec cluster)
    : sim_(std::move(cluster)) {}

WindowResult MicroBatchSimulator::run_window(
    const StreamCase& c, int window, const sparksim::ConfigValues& config,
    std::uint64_t arrival_seed, std::uint64_t exec_seed) const {
  const std::vector<double> sizes =
      window_batches(c.schedule, window, c.batches_per_window, arrival_seed);

  WindowResult out;
  for (const double mb : sizes) out.offered_mb += mb;
  sparksim::SimOptions opts;
  opts.resident_app = true;
  opts.per_stage_overhead_s = kStageOverheadS;

  std::vector<double> latencies;
  latencies.reserve(sizes.size());
  std::vector<double> load_sum;
  double prev_finish = 0.0;
  double latency_sum = 0.0;
  for (std::size_t b = 0; b < sizes.size(); ++b) {
    const sparksim::WorkloadSpec batch =
        sparksim::make_workload(c.type, sizes[b]);
    const sparksim::ExecutionResult r = sim_.run(
        batch, config, common::mix_seed(exec_seed, b), opts);

    const double arrival = static_cast<double>(b) * c.batch_interval_s;
    const double start = std::max(arrival, prev_finish);
    const double finish = start + r.exec_seconds;

    if (out.executors == 0) {
      out.executors = r.executors;
      out.total_slots = r.total_slots;
    }
    if (!r.success) {
      // A failed batch fails the window: a streaming job that drops a
      // batch has violated its contract; the time burned still counts.
      out.oom = r.oom;
      out.failure_reason = "batch " + std::to_string(b) + ": " +
                           (r.failure_reason.empty() ? "failed"
                                                     : r.failure_reason);
      out.elapsed_s = finish;
      out.throughput_fraction =
          out.offered_mb > 0.0 ? out.processed_mb / out.offered_mb : 0.0;
      out.p95_latency_s = quantile(latencies, 0.95);
      out.mean_latency_s = latencies.empty()
                               ? 0.0
                               : latency_sum /
                                     static_cast<double>(latencies.size());
      return out;
    }

    prev_finish = finish;
    latencies.push_back(finish - arrival);
    latency_sum += finish - arrival;
    out.processed_mb += sizes[b];
    ++out.batches;
    if (load_sum.empty()) load_sum.assign(r.load_averages.size(), 0.0);
    for (std::size_t i = 0;
         i < std::min(load_sum.size(), r.load_averages.size()); ++i) {
      load_sum[i] += r.load_averages[i];
    }
    for (const auto& s : r.stages) {
      out.spilled_mb += s.spilled_mb;
      out.task_retries += s.task_retries;
    }
    double hits = 0.0;
    for (const auto& s : r.stages) hits += s.cache_hit_fraction;
    if (!r.stages.empty()) {
      out.cache_hit_fraction =
          (out.cache_hit_fraction * static_cast<double>(out.batches - 1) +
           hits / static_cast<double>(r.stages.size())) /
          static_cast<double>(out.batches);
    }
  }

  out.success = true;
  out.elapsed_s = prev_finish;
  out.p95_latency_s = quantile(latencies, 0.95);
  out.mean_latency_s =
      latency_sum / static_cast<double>(std::max<std::size_t>(1, latencies.size()));
  // Sustained rate over offered rate: the arrival span is the window's
  // nominal duration; finishing later than that means the queue grew.
  const double span =
      static_cast<double>(sizes.size()) * c.batch_interval_s;
  out.throughput_fraction =
      out.elapsed_s > 0.0
          ? (out.processed_mb / std::max(out.elapsed_s, span)) /
                (out.offered_mb / span)
          : 1.0;
  out.load_averages = std::move(load_sum);
  for (double& v : out.load_averages) {
    v /= static_cast<double>(std::max(out.batches, 1));
  }
  return out;
}

}  // namespace deepcat::streamsim
