#include "streamsim/environment.hpp"

#include <algorithm>
#include <stdexcept>

namespace deepcat::streamsim {

StreamEnvironment::StreamEnvironment(sparksim::ClusterSpec cluster,
                                     StreamCase stream_case,
                                     sparksim::EnvOptions options)
    : sparksim::TuningEnvironment(
          cluster,
          sparksim::make_workload(
              stream_case.type,
              stream_case.schedule.phases.empty()
                  ? 64.0
                  : stream_case.schedule.phases.front().mean_batch_mb),
          options),
      case_(std::move(stream_case)),
      micro_(std::move(cluster)),
      arrival_seed_(common::mix_seed(options.seed, kArrivalStream)) {
  if (case_.schedule.phases.empty()) {
    throw std::invalid_argument("StreamEnvironment: empty phase schedule");
  }
  phase0_mean_mb_ = case_.schedule.phases.front().mean_batch_mb;
  summary_.phases = static_cast<int>(case_.schedule.phases.size());
  summary_.throughput_floor = case_.throughput_floor;
}

double StreamEnvironment::normalized(const WindowResult& r) const noexcept {
  const double mean_mb =
      r.offered_mb / static_cast<double>(std::max(case_.batches_per_window, 1));
  return r.p95_latency_s / std::max(mean_mb, 1.0);
}

std::vector<double> StreamEnvironment::reset() {
  const sparksim::ConfigValues defaults =
      sparksim::pipeline_space().defaults();
  const std::uint64_t exec_seed = rng_();
  const WindowResult r =
      micro_.run_window(case_, /*window=*/0, defaults, arrival_seed_,
                        exec_seed);
  if (!r.success) {
    throw std::logic_error(
        "StreamEnvironment: default configuration failed window 0: " +
        r.failure_reason);
  }
  if (r.throughput_fraction < case_.throughput_floor) {
    throw std::logic_error(
        "StreamEnvironment: default configuration misses the throughput "
        "floor in phase 0 of " +
        case_.id);
  }
  default_time_ = r.p95_latency_s;
  eval_seconds_ += r.elapsed_s;
  ++evals_;
  const double norm = normalized(r);
  phase_best_norm_ = norm;
  if (r.p95_latency_s < best_time_) {
    best_time_ = r.p95_latency_s;
    best_config_ = defaults;
  }
  summary_.windows = 1;
  summary_.final_p95_s = r.p95_latency_s;
  window_ = 1;
  current_phase_ = 0;
  return window_state(r);
}

void StreamEnvironment::track_shift() {
  const int phase = case_.schedule.phase_index(window_);
  if (phase == current_phase_) return;
  sparksim::ShiftRecord rec;
  rec.at_eval = static_cast<int>(evals_) + 1;  // the eval about to run
  rec.pre_shift_best = phase_best_norm_;
  summary_.shifts.push_back(rec);
  current_phase_ = phase;
  phase_best_norm_ = std::numeric_limits<double>::infinity();
  evals_since_shift_ = 0;
}

void StreamEnvironment::track_recovery(bool success, double norm) {
  if (summary_.shifts.empty()) return;
  sparksim::ShiftRecord& shift = summary_.shifts.back();
  if (shift.recovered) return;
  ++evals_since_shift_;
  if (!success) return;
  shift.post_shift_best = std::min(
      norm, shift.post_shift_best > 0.0
                ? shift.post_shift_best
                : std::numeric_limits<double>::infinity());
  if (norm <= kRecoverySlack * shift.pre_shift_best) {
    shift.recovered = true;
    shift.recovery_evals = evals_since_shift_;
  }
}

sparksim::StepResult StreamEnvironment::evaluate(
    const sparksim::ConfigValues& config) {
  if (default_time_ <= 0.0) {
    throw std::logic_error("StreamEnvironment::evaluate before reset()");
  }
  track_shift();
  const std::uint64_t exec_seed = rng_();
  const WindowResult r =
      micro_.run_window(case_, window_, config, arrival_seed_, exec_seed);

  const double norm = normalized(r);
  // Score on the phase-0 scale so the reward stays comparable across load
  // shifts: a phase with twice the offered load is not "twice as bad".
  const double scaled_p95 = norm * phase0_mean_mb_;
  const bool success =
      r.success && r.throughput_fraction >= case_.throughput_floor;

  sparksim::StepResult out;
  out.success = success;
  out.oom = r.oom;
  out.exec_seconds = r.elapsed_s;
  const double scored =
      success ? scaled_p95
              : std::max(scaled_p95,
                         options_.failure_penalty_factor * default_time_);
  out.reward = reward_for(scored);
  out.state = window_state(r);

  eval_seconds_ += r.elapsed_s;
  ++evals_;
  if (success && norm < phase_best_norm_) phase_best_norm_ = norm;
  if (success && scaled_p95 < best_time_) {
    best_time_ = scaled_p95;
    best_config_ = config;
  }
  track_recovery(success, norm);
  ++summary_.windows;
  summary_.final_p95_s = r.p95_latency_s;
  ++window_;
  return out;
}

std::vector<double> StreamEnvironment::window_state(
    const WindowResult& r) const {
  std::vector<double> state = r.load_averages;
  const double cores = static_cast<double>(cluster_.nodes.front().cores);
  for (double& x : state) x /= cores;
  state.resize(cluster_.num_nodes() * 3, 0.0);

  if (options_.extended_state) {
    const auto total_cores = static_cast<double>(cluster_.total_cores());
    state.push_back(static_cast<double>(r.executors) / total_cores);
    state.push_back(static_cast<double>(r.total_slots) / total_cores);
    state.push_back(
        std::min(1.0, r.spilled_mb / std::max(r.offered_mb, 1.0)));
    state.push_back(r.cache_hit_fraction);
    state.push_back(std::min(1.0, static_cast<double>(r.task_retries) / 32.0));
  }
  return state;
}

}  // namespace deepcat::streamsim
