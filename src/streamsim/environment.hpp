// The streaming tuning environment: a sparksim::TuningEnvironment whose
// evaluations are whole micro-batch windows scored by p95 batch latency
// under a throughput floor — and whose load shifts mid-session per the
// case's phase schedule, so an online tuner must re-adapt in place. One
// long session spans many windows; there is no restart at a shift.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "sparksim/environment.hpp"
#include "streamsim/microbatch.hpp"
#include "streamsim/workloads.hpp"

namespace deepcat::streamsim {

class StreamEnvironment final : public sparksim::TuningEnvironment {
 public:
  /// options.seed drives both the arrival process (via kArrivalStream) and
  /// the per-window execution noise — one seed, one session trajectory.
  StreamEnvironment(sparksim::ClusterSpec cluster, StreamCase stream_case,
                    sparksim::EnvOptions options = {});

  /// Runs window 0 under the default configuration; throws if the default
  /// cannot sustain phase 0 (same contract as the batch environment's
  /// default-must-succeed guard).
  std::vector<double> reset() override;

  /// One evaluation = one window: the next window of the schedule, under
  /// `config`. exec_seconds is the window's wall time; the reward scores
  /// the size-normalized p95 latency on the phase-0 scale.
  sparksim::StepResult evaluate(const sparksim::ConfigValues& config) override;

  [[nodiscard]] sparksim::ObjectiveKind objective() const noexcept override {
    return sparksim::ObjectiveKind::kBatchLatencyP95;
  }

  [[nodiscard]] std::optional<sparksim::StreamSummary> stream_summary()
      const override {
    return summary_;
  }

  [[nodiscard]] const StreamCase& current_case() const noexcept {
    return case_;
  }
  /// Next window the environment will evaluate (reset consumes window 0).
  [[nodiscard]] int window() const noexcept { return window_; }

  /// Sub-stream of the env seed feeding the arrival process.
  static constexpr std::uint64_t kArrivalStream = 0x5A7B9C1ull;
  /// Recovered = post-shift best normalized objective within 5% of the
  /// pre-shift best (the bench's re-adaptation criterion).
  static constexpr double kRecoverySlack = 1.05;

 private:
  /// Normalized objective: p95 latency per offered MB of mean batch size —
  /// the quantity that is comparable across phases of different load.
  [[nodiscard]] double normalized(const WindowResult& r) const noexcept;
  [[nodiscard]] std::vector<double> window_state(const WindowResult& r) const;
  void track_shift();
  void track_recovery(bool success, double norm);

  StreamCase case_;
  MicroBatchSimulator micro_;
  std::uint64_t arrival_seed_ = 0;
  int window_ = 0;
  int current_phase_ = 0;
  int evals_since_shift_ = 0;
  double phase_best_norm_ = std::numeric_limits<double>::infinity();
  double phase0_mean_mb_ = 0.0;
  sparksim::StreamSummary summary_;
};

}  // namespace deepcat::streamsim
