#include "common/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#if (defined(__x86_64__) || defined(__amd64__)) && defined(__GNUC__) && \
    !defined(DEEPCAT_DISABLE_SIMD)
#define DEEPCAT_SIMD_X86 1
#include <immintrin.h>
#else
#define DEEPCAT_SIMD_X86 0
#endif

#if DEEPCAT_SIMD_X86
#define DEEPCAT_TARGET_AVX2 __attribute__((target("avx2,fma")))
#endif

namespace deepcat::common::simd {

namespace {

bool detect_vector_backend() noexcept {
#if DEEPCAT_SIMD_X86
  if (const char* v = std::getenv("DEEPCAT_FORCE_SCALAR");
      v != nullptr && v[0] != '\0' && v[0] != '0') {
    return false;
  }
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// Capability is fixed at first use; force_scalar() layers on top.
const bool g_vector_capable = detect_vector_backend();
bool g_force_scalar = false;

// Dispatch accounting for the chunky kernels (GEMM family + fused Adam).
// Relaxed single atomics, not stripes: these kernels run for microseconds
// per call, so one fetch_add per call is noise.
std::atomic<unsigned long long> g_vector_dispatches{0};
std::atomic<unsigned long long> g_scalar_dispatches{0};

inline void count_dispatch(bool vectorized) noexcept {
  (vectorized ? g_vector_dispatches : g_scalar_dispatches)
      .fetch_add(1, std::memory_order_relaxed);
}

// ---- scalar reference kernels ------------------------------------------

double dot_scalar(const double* a, const double* b, std::size_t n) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double squared_distance_scalar(const double* a, const double* b,
                               std::size_t n) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double sum_scalar(const double* a, std::size_t n) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i];
  return s;
}

void axpy_scalar(double alpha, const double* x, double* y,
                 std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void adam_update_scalar(double* value, const double* grad, double* m,
                        double* v, std::size_t n, double scale, double beta1,
                        double beta2, double bc1, double bc2, double lr,
                        double eps) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double g = grad[i] * scale;
    m[i] = beta1 * m[i] + (1.0 - beta1) * g;
    v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
    const double m_hat = m[i] / bc1;
    const double v_hat = v[i] / bc2;
    value[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

void adam_update_clipped_scalar(const AdamTensor* tensors, std::size_t count,
                                double grad_clip, double beta1, double beta2,
                                double bc1, double bc2, double lr,
                                double eps) noexcept {
  double scale = 1.0;
  if (grad_clip > 0.0) {
    double sq = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      sq += dot_scalar(tensors[i].grad, tensors[i].grad, tensors[i].n);
    }
    const double norm = std::sqrt(sq);
    if (norm > grad_clip) scale = grad_clip / norm;
  }
  for (std::size_t i = 0; i < count; ++i) {
    adam_update_scalar(tensors[i].value, tensors[i].grad, tensors[i].m,
                       tensors[i].v, tensors[i].n, scale, beta1, beta2, bc1,
                       bc2, lr, eps);
  }
}

void gemm_nn_scalar(std::size_t m, std::size_t n, std::size_t k,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) noexcept {
  // ikj order streams B and C rows; the zero-skip makes post-ReLU
  // (sparse) left operands cheap.
  for (std::size_t i = 0; i < m; ++i) {
    double* crow = c + i * ldc;
    const double* arow = a + i * lda;
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = arow[p];
      if (aip == 0.0) continue;
      const double* brow = b + p * ldb;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void gemm_tn_scalar(std::size_t m, std::size_t n, std::size_t k,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) noexcept {
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a + p * lda;
    const double* brow = b + p * ldb;
    for (std::size_t i = 0; i < m; ++i) {
      const double api = arow[i];
      if (api == 0.0) continue;
      double* crow = c + i * ldc;
      for (std::size_t j = 0; j < n; ++j) crow[j] += api * brow[j];
    }
  }
}

void gemm_nt_scalar(std::size_t m, std::size_t n, std::size_t k,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * lda;
    for (std::size_t j = 0; j < n; ++j) {
      c[i * ldc + j] += dot_scalar(arow, b + j * ldb, k);
    }
  }
}

#if DEEPCAT_SIMD_X86

// ---- AVX2+FMA kernels ---------------------------------------------------

DEEPCAT_TARGET_AVX2 inline double hsum(__m256d v) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
}

DEEPCAT_TARGET_AVX2 double dot_avx2(const double* a, const double* b,
                                    std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd(), acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
  }
  double s = hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

DEEPCAT_TARGET_AVX2 double squared_distance_avx2(const double* a,
                                                 const double* b,
                                                 std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_fmadd_pd(d, d, acc0);
  }
  double s = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

DEEPCAT_TARGET_AVX2 double sum_avx2(const double* a, std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(a + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(a + i + 4));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(a + i));
  }
  double s = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i];
  return s;
}

DEEPCAT_TARGET_AVX2 void axpy_avx2(double alpha, const double* x, double* y,
                                   std::size_t n) noexcept {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(
        y + i + 4, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4),
                                   _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

DEEPCAT_TARGET_AVX2 void adam_update_avx2(double* value, const double* grad,
                                          double* m, double* v, std::size_t n,
                                          double scale, double beta1,
                                          double beta2, double bc1, double bc2,
                                          double lr, double eps) noexcept {
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vb1 = _mm256_set1_pd(beta1);
  const __m256d vb2 = _mm256_set1_pd(beta2);
  const __m256d vomb1 = _mm256_set1_pd(1.0 - beta1);
  const __m256d vomb2 = _mm256_set1_pd(1.0 - beta2);
  const __m256d vbc1 = _mm256_set1_pd(bc1);
  const __m256d vbc2 = _mm256_set1_pd(bc2);
  const __m256d vlr = _mm256_set1_pd(lr);
  const __m256d veps = _mm256_set1_pd(eps);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d g = _mm256_mul_pd(_mm256_loadu_pd(grad + i), vscale);
    const __m256d mi = _mm256_fmadd_pd(vb1, _mm256_loadu_pd(m + i),
                                       _mm256_mul_pd(vomb1, g));
    const __m256d vi = _mm256_fmadd_pd(vb2, _mm256_loadu_pd(v + i),
                                       _mm256_mul_pd(vomb2, _mm256_mul_pd(g, g)));
    _mm256_storeu_pd(m + i, mi);
    _mm256_storeu_pd(v + i, vi);
    const __m256d m_hat = _mm256_div_pd(mi, vbc1);
    const __m256d v_hat = _mm256_div_pd(vi, vbc2);
    const __m256d denom = _mm256_add_pd(_mm256_sqrt_pd(v_hat), veps);
    const __m256d update =
        _mm256_div_pd(_mm256_mul_pd(vlr, m_hat), denom);
    _mm256_storeu_pd(value + i,
                     _mm256_sub_pd(_mm256_loadu_pd(value + i), update));
  }
  if (i < n) {
    adam_update_scalar(value + i, grad + i, m + i, v + i, n - i, scale, beta1,
                       beta2, bc1, bc2, lr, eps);
  }
}

DEEPCAT_TARGET_AVX2 void adam_update_clipped_avx2(
    const AdamTensor* tensors, std::size_t count, double grad_clip,
    double beta1, double beta2, double bc1, double bc2, double lr,
    double eps) noexcept {
  double scale = 1.0;
  if (grad_clip > 0.0) {
    // Same per-tensor reduction (dot of grad with itself) in the same array
    // order as the old standalone sum_squares pass, so the clip scale is
    // bit-identical to the unfused composition.
    double sq = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      sq += dot_avx2(tensors[i].grad, tensors[i].grad, tensors[i].n);
    }
    const double norm = std::sqrt(sq);
    if (norm > grad_clip) scale = grad_clip / norm;
  }
  for (std::size_t i = 0; i < count; ++i) {
    adam_update_avx2(tensors[i].value, tensors[i].grad, tensors[i].m,
                     tensors[i].v, tensors[i].n, scale, beta1, beta2, bc1,
                     bc2, lr, eps);
  }
}

// 4x8 register-blocked micro-kernel: 8 accumulator registers stay resident
// across the whole k loop; A elements are broadcast, B rows are streamed.
DEEPCAT_TARGET_AVX2 void gemm_nn_avx2(std::size_t m, std::size_t n,
                                      std::size_t k, const double* a,
                                      std::size_t lda, const double* b,
                                      std::size_t ldb, double* c,
                                      std::size_t ldc) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* a0 = a + (i + 0) * lda;
    const double* a1 = a + (i + 1) * lda;
    const double* a2 = a + (i + 2) * lda;
    const double* a3 = a + (i + 3) * lda;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256d c00 = _mm256_loadu_pd(c + (i + 0) * ldc + j);
      __m256d c01 = _mm256_loadu_pd(c + (i + 0) * ldc + j + 4);
      __m256d c10 = _mm256_loadu_pd(c + (i + 1) * ldc + j);
      __m256d c11 = _mm256_loadu_pd(c + (i + 1) * ldc + j + 4);
      __m256d c20 = _mm256_loadu_pd(c + (i + 2) * ldc + j);
      __m256d c21 = _mm256_loadu_pd(c + (i + 2) * ldc + j + 4);
      __m256d c30 = _mm256_loadu_pd(c + (i + 3) * ldc + j);
      __m256d c31 = _mm256_loadu_pd(c + (i + 3) * ldc + j + 4);
      for (std::size_t p = 0; p < k; ++p) {
        const double* brow = b + p * ldb + j;
        const __m256d b0 = _mm256_loadu_pd(brow);
        const __m256d b1 = _mm256_loadu_pd(brow + 4);
        __m256d av = _mm256_set1_pd(a0[p]);
        c00 = _mm256_fmadd_pd(av, b0, c00);
        c01 = _mm256_fmadd_pd(av, b1, c01);
        av = _mm256_set1_pd(a1[p]);
        c10 = _mm256_fmadd_pd(av, b0, c10);
        c11 = _mm256_fmadd_pd(av, b1, c11);
        av = _mm256_set1_pd(a2[p]);
        c20 = _mm256_fmadd_pd(av, b0, c20);
        c21 = _mm256_fmadd_pd(av, b1, c21);
        av = _mm256_set1_pd(a3[p]);
        c30 = _mm256_fmadd_pd(av, b0, c30);
        c31 = _mm256_fmadd_pd(av, b1, c31);
      }
      _mm256_storeu_pd(c + (i + 0) * ldc + j, c00);
      _mm256_storeu_pd(c + (i + 0) * ldc + j + 4, c01);
      _mm256_storeu_pd(c + (i + 1) * ldc + j, c10);
      _mm256_storeu_pd(c + (i + 1) * ldc + j + 4, c11);
      _mm256_storeu_pd(c + (i + 2) * ldc + j, c20);
      _mm256_storeu_pd(c + (i + 2) * ldc + j + 4, c21);
      _mm256_storeu_pd(c + (i + 3) * ldc + j, c30);
      _mm256_storeu_pd(c + (i + 3) * ldc + j + 4, c31);
    }
    for (; j + 4 <= n; j += 4) {
      __m256d c0 = _mm256_loadu_pd(c + (i + 0) * ldc + j);
      __m256d c1 = _mm256_loadu_pd(c + (i + 1) * ldc + j);
      __m256d c2 = _mm256_loadu_pd(c + (i + 2) * ldc + j);
      __m256d c3 = _mm256_loadu_pd(c + (i + 3) * ldc + j);
      for (std::size_t p = 0; p < k; ++p) {
        const __m256d bv = _mm256_loadu_pd(b + p * ldb + j);
        c0 = _mm256_fmadd_pd(_mm256_set1_pd(a0[p]), bv, c0);
        c1 = _mm256_fmadd_pd(_mm256_set1_pd(a1[p]), bv, c1);
        c2 = _mm256_fmadd_pd(_mm256_set1_pd(a2[p]), bv, c2);
        c3 = _mm256_fmadd_pd(_mm256_set1_pd(a3[p]), bv, c3);
      }
      _mm256_storeu_pd(c + (i + 0) * ldc + j, c0);
      _mm256_storeu_pd(c + (i + 1) * ldc + j, c1);
      _mm256_storeu_pd(c + (i + 2) * ldc + j, c2);
      _mm256_storeu_pd(c + (i + 3) * ldc + j, c3);
    }
    for (; j < n; ++j) {
      for (std::size_t r = 0; r < 4; ++r) {
        const double* arow = a + (i + r) * lda;
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p) s += arow[p] * b[p * ldb + j];
        c[(i + r) * ldc + j] += s;
      }
    }
  }
  for (; i < m; ++i) {
    const double* arow = a + i * lda;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256d c0 = _mm256_loadu_pd(c + i * ldc + j);
      __m256d c1 = _mm256_loadu_pd(c + i * ldc + j + 4);
      for (std::size_t p = 0; p < k; ++p) {
        const __m256d av = _mm256_set1_pd(arow[p]);
        c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b + p * ldb + j), c0);
        c1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b + p * ldb + j + 4), c1);
      }
      _mm256_storeu_pd(c + i * ldc + j, c0);
      _mm256_storeu_pd(c + i * ldc + j + 4, c1);
    }
    for (; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * b[p * ldb + j];
      c[i * ldc + j] += s;
    }
  }
}

// Same 4x8 block shape as gemm_nn; only the A access changes (column i of
// the stored (k x m) A, i.e. strided broadcasts).
DEEPCAT_TARGET_AVX2 void gemm_tn_avx2(std::size_t m, std::size_t n,
                                      std::size_t k, const double* a,
                                      std::size_t lda, const double* b,
                                      std::size_t ldb, double* c,
                                      std::size_t ldc) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256d c00 = _mm256_loadu_pd(c + (i + 0) * ldc + j);
      __m256d c01 = _mm256_loadu_pd(c + (i + 0) * ldc + j + 4);
      __m256d c10 = _mm256_loadu_pd(c + (i + 1) * ldc + j);
      __m256d c11 = _mm256_loadu_pd(c + (i + 1) * ldc + j + 4);
      __m256d c20 = _mm256_loadu_pd(c + (i + 2) * ldc + j);
      __m256d c21 = _mm256_loadu_pd(c + (i + 2) * ldc + j + 4);
      __m256d c30 = _mm256_loadu_pd(c + (i + 3) * ldc + j);
      __m256d c31 = _mm256_loadu_pd(c + (i + 3) * ldc + j + 4);
      for (std::size_t p = 0; p < k; ++p) {
        const double* acol = a + p * lda + i;
        const double* brow = b + p * ldb + j;
        const __m256d b0 = _mm256_loadu_pd(brow);
        const __m256d b1 = _mm256_loadu_pd(brow + 4);
        __m256d av = _mm256_set1_pd(acol[0]);
        c00 = _mm256_fmadd_pd(av, b0, c00);
        c01 = _mm256_fmadd_pd(av, b1, c01);
        av = _mm256_set1_pd(acol[1]);
        c10 = _mm256_fmadd_pd(av, b0, c10);
        c11 = _mm256_fmadd_pd(av, b1, c11);
        av = _mm256_set1_pd(acol[2]);
        c20 = _mm256_fmadd_pd(av, b0, c20);
        c21 = _mm256_fmadd_pd(av, b1, c21);
        av = _mm256_set1_pd(acol[3]);
        c30 = _mm256_fmadd_pd(av, b0, c30);
        c31 = _mm256_fmadd_pd(av, b1, c31);
      }
      _mm256_storeu_pd(c + (i + 0) * ldc + j, c00);
      _mm256_storeu_pd(c + (i + 0) * ldc + j + 4, c01);
      _mm256_storeu_pd(c + (i + 1) * ldc + j, c10);
      _mm256_storeu_pd(c + (i + 1) * ldc + j + 4, c11);
      _mm256_storeu_pd(c + (i + 2) * ldc + j, c20);
      _mm256_storeu_pd(c + (i + 2) * ldc + j + 4, c21);
      _mm256_storeu_pd(c + (i + 3) * ldc + j, c30);
      _mm256_storeu_pd(c + (i + 3) * ldc + j + 4, c31);
    }
    for (; j < n; ++j) {
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double* acol = a + p * lda + i;
        const double bv = b[p * ldb + j];
        s0 += acol[0] * bv;
        s1 += acol[1] * bv;
        s2 += acol[2] * bv;
        s3 += acol[3] * bv;
      }
      c[(i + 0) * ldc + j] += s0;
      c[(i + 1) * ldc + j] += s1;
      c[(i + 2) * ldc + j] += s2;
      c[(i + 3) * ldc + j] += s3;
    }
  }
  for (; i < m; ++i) {
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256d c0 = _mm256_loadu_pd(c + i * ldc + j);
      __m256d c1 = _mm256_loadu_pd(c + i * ldc + j + 4);
      for (std::size_t p = 0; p < k; ++p) {
        const __m256d av = _mm256_set1_pd(a[p * lda + i]);
        c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b + p * ldb + j), c0);
        c1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b + p * ldb + j + 4), c1);
      }
      _mm256_storeu_pd(c + i * ldc + j, c0);
      _mm256_storeu_pd(c + i * ldc + j + 4, c1);
    }
    for (; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += a[p * lda + i] * b[p * ldb + j];
      c[i * ldc + j] += s;
    }
  }
}

// Both operands are k-contiguous, so this is a batch of vector dots: one A
// row against 4 B rows at a time, 4 running vector accumulators.
DEEPCAT_TARGET_AVX2 void gemm_nt_avx2(std::size_t m, std::size_t n,
                                      std::size_t k, const double* a,
                                      std::size_t lda, const double* b,
                                      std::size_t ldb, double* c,
                                      std::size_t ldc) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * lda;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + (j + 0) * ldb;
      const double* b1 = b + (j + 1) * ldb;
      const double* b2 = b + (j + 2) * ldb;
      const double* b3 = b + (j + 3) * ldb;
      __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd(), acc3 = _mm256_setzero_pd();
      std::size_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const __m256d av = _mm256_loadu_pd(arow + p);
        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b0 + p), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b1 + p), acc1);
        acc2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b2 + p), acc2);
        acc3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b3 + p), acc3);
      }
      double s0 = hsum(acc0), s1 = hsum(acc1), s2 = hsum(acc2),
             s3 = hsum(acc3);
      for (; p < k; ++p) {
        const double av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      c[i * ldc + j + 0] += s0;
      c[i * ldc + j + 1] += s1;
      c[i * ldc + j + 2] += s2;
      c[i * ldc + j + 3] += s3;
    }
    for (; j < n; ++j) {
      c[i * ldc + j] += dot_avx2(arow, b + j * ldb, k);
    }
  }
}

#endif  // DEEPCAT_SIMD_X86

}  // namespace

bool vectorized_active() noexcept {
  return g_vector_capable && !g_force_scalar;
}

const char* backend_name() noexcept {
  return vectorized_active() ? "avx2+fma" : "scalar";
}

void force_scalar(bool on) noexcept { g_force_scalar = on; }

bool vector_compiled() noexcept { return DEEPCAT_SIMD_X86 != 0; }

DispatchCounts dispatch_counts() noexcept {
  return {g_vector_dispatches.load(std::memory_order_relaxed),
          g_scalar_dispatches.load(std::memory_order_relaxed)};
}

void reset_dispatch_counts() noexcept {
  g_vector_dispatches.store(0, std::memory_order_relaxed);
  g_scalar_dispatches.store(0, std::memory_order_relaxed);
}

double dot(const double* a, const double* b, std::size_t n) noexcept {
#if DEEPCAT_SIMD_X86
  if (vectorized_active()) return dot_avx2(a, b, n);
#endif
  return dot_scalar(a, b, n);
}

double squared_distance(const double* a, const double* b,
                        std::size_t n) noexcept {
#if DEEPCAT_SIMD_X86
  if (vectorized_active()) return squared_distance_avx2(a, b, n);
#endif
  return squared_distance_scalar(a, b, n);
}

double sum(const double* a, std::size_t n) noexcept {
#if DEEPCAT_SIMD_X86
  if (vectorized_active()) return sum_avx2(a, n);
#endif
  return sum_scalar(a, n);
}

double sum_squares(const double* a, std::size_t n) noexcept {
#if DEEPCAT_SIMD_X86
  if (vectorized_active()) return dot_avx2(a, a, n);
#endif
  return dot_scalar(a, a, n);
}

void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept {
#if DEEPCAT_SIMD_X86
  if (vectorized_active()) {
    axpy_avx2(alpha, x, y, n);
    return;
  }
#endif
  axpy_scalar(alpha, x, y, n);
}

void adam_update(double* value, const double* grad, double* m, double* v,
                 std::size_t n, double scale, double beta1, double beta2,
                 double bc1, double bc2, double lr, double eps) noexcept {
  count_dispatch(vectorized_active());
#if DEEPCAT_SIMD_X86
  if (vectorized_active()) {
    adam_update_avx2(value, grad, m, v, n, scale, beta1, beta2, bc1, bc2, lr,
                     eps);
    return;
  }
#endif
  adam_update_scalar(value, grad, m, v, n, scale, beta1, beta2, bc1, bc2, lr,
                     eps);
}

void adam_update_clipped(const AdamTensor* tensors, std::size_t count,
                         double grad_clip, double beta1, double beta2,
                         double bc1, double bc2, double lr,
                         double eps) noexcept {
  count_dispatch(vectorized_active());
#if DEEPCAT_SIMD_X86
  if (vectorized_active()) {
    adam_update_clipped_avx2(tensors, count, grad_clip, beta1, beta2, bc1,
                             bc2, lr, eps);
    return;
  }
#endif
  adam_update_clipped_scalar(tensors, count, grad_clip, beta1, beta2, bc1,
                             bc2, lr, eps);
}

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) noexcept {
  count_dispatch(vectorized_active());
#if DEEPCAT_SIMD_X86
  if (vectorized_active()) {
    gemm_nn_avx2(m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
#endif
  gemm_nn_scalar(m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) noexcept {
  count_dispatch(vectorized_active());
#if DEEPCAT_SIMD_X86
  if (vectorized_active()) {
    gemm_tn_avx2(m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
#endif
  gemm_tn_scalar(m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) noexcept {
  count_dispatch(vectorized_active());
#if DEEPCAT_SIMD_X86
  if (vectorized_active()) {
    gemm_nt_avx2(m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
#endif
  gemm_nt_scalar(m, n, k, a, lda, b, ldb, c, ldc);
}

}  // namespace deepcat::common::simd
