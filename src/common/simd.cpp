#include "common/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>

#if (defined(__x86_64__) || defined(__amd64__)) && defined(__GNUC__) && \
    !defined(DEEPCAT_DISABLE_SIMD)
#define DEEPCAT_SIMD_X86 1
#include <immintrin.h>
#else
#define DEEPCAT_SIMD_X86 0
#endif

#if DEEPCAT_SIMD_X86
#define DEEPCAT_TARGET_AVX2 __attribute__((target("avx2,fma")))
#define DEEPCAT_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512dq,avx512bw,avx512vl,avx2,fma")))
#endif

namespace deepcat::common::simd {

namespace {

constexpr Backend min_backend(Backend a, Backend b) noexcept {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

Backend detect_cpu_backend() noexcept {
#if DEEPCAT_SIMD_X86
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    return Backend::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Backend::kAvx2;
  }
#endif
  return Backend::kScalar;
}

// Environment cap, read once at static init: DEEPCAT_SIMD names the
// highest tier the process may use; the legacy DEEPCAT_FORCE_SCALAR pin
// still works. Unknown DEEPCAT_SIMD values leave the ladder uncapped.
Backend parse_env_cap() noexcept {
  Backend cap = Backend::kAvx512;
  if (const char* v = std::getenv("DEEPCAT_SIMD"); v != nullptr) {
    if (std::strcmp(v, "scalar") == 0) cap = Backend::kScalar;
    else if (std::strcmp(v, "avx2") == 0) cap = Backend::kAvx2;
    else if (std::strcmp(v, "avx512") == 0) cap = Backend::kAvx512;
  }
  if (const char* v = std::getenv("DEEPCAT_FORCE_SCALAR");
      v != nullptr && v[0] != '\0' && v[0] != '0') {
    cap = Backend::kScalar;
  }
  return cap;
}

// CPU capability and the env cap are fixed at static init; the
// programmatic cap (force_backend / force_scalar) layers on top and can
// only lower dispatch below g_max_backend.
const Backend g_detected_backend = detect_cpu_backend();
const Backend g_max_backend = min_backend(g_detected_backend, parse_env_cap());
Backend g_forced_cap = Backend::kAvx512;
GemmPath g_gemm_path = GemmPath::kAuto;

// The m/n/k floor where kAuto switches GEMM to the L2-tiled packed path.
constexpr std::size_t kPackedMinDim = 256;

// Dispatch accounting for the chunky kernels (GEMM family + fused Adam).
// Relaxed single atomics, not stripes: these kernels run for microseconds
// per call, so one fetch_add per call is noise.
std::atomic<unsigned long long> g_scalar_calls{0};
std::atomic<unsigned long long> g_avx2_calls{0};
std::atomic<unsigned long long> g_avx512_calls{0};
std::atomic<unsigned long long> g_packed_calls{0};

inline void count_dispatch(Backend be) noexcept {
  switch (be) {
    case Backend::kAvx512:
      g_avx512_calls.fetch_add(1, std::memory_order_relaxed);
      break;
    case Backend::kAvx2:
      g_avx2_calls.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      g_scalar_calls.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

inline void count_packed() noexcept {
  g_packed_calls.fetch_add(1, std::memory_order_relaxed);
}

// ---- scalar reference kernels ------------------------------------------

double dot_scalar(const double* a, const double* b, std::size_t n) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double squared_distance_scalar(const double* a, const double* b,
                               std::size_t n) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double sum_scalar(const double* a, std::size_t n) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i];
  return s;
}

void axpy_scalar(double alpha, const double* x, double* y,
                 std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void adam_update_scalar(double* value, const double* grad, double* m,
                        double* v, std::size_t n, double scale, double beta1,
                        double beta2, double bc1, double bc2, double lr,
                        double eps) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double g = grad[i] * scale;
    m[i] = beta1 * m[i] + (1.0 - beta1) * g;
    v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
    const double m_hat = m[i] / bc1;
    const double v_hat = v[i] / bc2;
    value[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

void adam_update_clipped_scalar(const AdamTensor* tensors, std::size_t count,
                                double grad_clip, double beta1, double beta2,
                                double bc1, double bc2, double lr,
                                double eps) noexcept {
  double scale = 1.0;
  if (grad_clip > 0.0) {
    double sq = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      sq += dot_scalar(tensors[i].grad, tensors[i].grad, tensors[i].n);
    }
    const double norm = std::sqrt(sq);
    if (norm > grad_clip) scale = grad_clip / norm;
  }
  for (std::size_t i = 0; i < count; ++i) {
    adam_update_scalar(tensors[i].value, tensors[i].grad, tensors[i].m,
                       tensors[i].v, tensors[i].n, scale, beta1, beta2, bc1,
                       bc2, lr, eps);
  }
}

void gemm_nn_scalar(std::size_t m, std::size_t n, std::size_t k,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) noexcept {
  // ikj order streams B and C rows; the zero-skip makes post-ReLU
  // (sparse) left operands cheap.
  for (std::size_t i = 0; i < m; ++i) {
    double* crow = c + i * ldc;
    const double* arow = a + i * lda;
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = arow[p];
      if (aip == 0.0) continue;
      const double* brow = b + p * ldb;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void gemm_tn_scalar(std::size_t m, std::size_t n, std::size_t k,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) noexcept {
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a + p * lda;
    const double* brow = b + p * ldb;
    for (std::size_t i = 0; i < m; ++i) {
      const double api = arow[i];
      if (api == 0.0) continue;
      double* crow = c + i * ldc;
      for (std::size_t j = 0; j < n; ++j) crow[j] += api * brow[j];
    }
  }
}

void gemm_nt_scalar(std::size_t m, std::size_t n, std::size_t k,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * lda;
    for (std::size_t j = 0; j < n; ++j) {
      c[i * ldc + j] += dot_scalar(arow, b + j * ldb, k);
    }
  }
}

// Shared cosine epilogue — the identical scalar formula on every tier, so
// cross-tier divergence comes only from the three reductions feeding it.
inline double cosine_from_parts(double qq, double rr, double qr) noexcept {
  const double denom = std::sqrt(qq * rr);
  if (denom == 0.0) return 1.0;
  return 1.0 - qr / denom;
}

void squared_distances_scalar(const double* query, const double* rows,
                              std::size_t n_rows, std::size_t dim,
                              double* out) noexcept {
  for (std::size_t r = 0; r < n_rows; ++r) {
    out[r] = squared_distance_scalar(query, rows + r * dim, dim);
  }
}

void cosine_distances_scalar(const double* query, const double* rows,
                             std::size_t n_rows, std::size_t dim,
                             double* out) noexcept {
  const double qq = dot_scalar(query, query, dim);
  for (std::size_t r = 0; r < n_rows; ++r) {
    const double* row = rows + r * dim;
    out[r] = cosine_from_parts(qq, dot_scalar(row, row, dim),
                               dot_scalar(query, row, dim));
  }
}

#if DEEPCAT_SIMD_X86

// ---- AVX2+FMA kernels ---------------------------------------------------

DEEPCAT_TARGET_AVX2 inline double hsum(__m256d v) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
}

DEEPCAT_TARGET_AVX2 double dot_avx2(const double* a, const double* b,
                                    std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd(), acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
  }
  double s = hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

DEEPCAT_TARGET_AVX2 double squared_distance_avx2(const double* a,
                                                 const double* b,
                                                 std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_fmadd_pd(d, d, acc0);
  }
  double s = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

DEEPCAT_TARGET_AVX2 void squared_distances_avx2(const double* query,
                                                const double* rows,
                                                std::size_t n_rows,
                                                std::size_t dim,
                                                double* out) noexcept {
  for (std::size_t r = 0; r < n_rows; ++r) {
    out[r] = squared_distance_avx2(query, rows + r * dim, dim);
  }
}

DEEPCAT_TARGET_AVX2 void cosine_distances_avx2(const double* query,
                                               const double* rows,
                                               std::size_t n_rows,
                                               std::size_t dim,
                                               double* out) noexcept {
  const double qq = dot_avx2(query, query, dim);
  for (std::size_t r = 0; r < n_rows; ++r) {
    const double* row = rows + r * dim;
    out[r] = cosine_from_parts(qq, dot_avx2(row, row, dim),
                               dot_avx2(query, row, dim));
  }
}

DEEPCAT_TARGET_AVX2 double sum_avx2(const double* a, std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(a + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(a + i + 4));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(a + i));
  }
  double s = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i];
  return s;
}

DEEPCAT_TARGET_AVX2 void axpy_avx2(double alpha, const double* x, double* y,
                                   std::size_t n) noexcept {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(
        y + i + 4, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4),
                                   _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

DEEPCAT_TARGET_AVX2 void adam_update_avx2(double* value, const double* grad,
                                          double* m, double* v, std::size_t n,
                                          double scale, double beta1,
                                          double beta2, double bc1, double bc2,
                                          double lr, double eps) noexcept {
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vb1 = _mm256_set1_pd(beta1);
  const __m256d vb2 = _mm256_set1_pd(beta2);
  const __m256d vomb1 = _mm256_set1_pd(1.0 - beta1);
  const __m256d vomb2 = _mm256_set1_pd(1.0 - beta2);
  const __m256d vbc1 = _mm256_set1_pd(bc1);
  const __m256d vbc2 = _mm256_set1_pd(bc2);
  const __m256d vlr = _mm256_set1_pd(lr);
  const __m256d veps = _mm256_set1_pd(eps);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d g = _mm256_mul_pd(_mm256_loadu_pd(grad + i), vscale);
    const __m256d mi = _mm256_fmadd_pd(vb1, _mm256_loadu_pd(m + i),
                                       _mm256_mul_pd(vomb1, g));
    const __m256d vi = _mm256_fmadd_pd(vb2, _mm256_loadu_pd(v + i),
                                       _mm256_mul_pd(vomb2, _mm256_mul_pd(g, g)));
    _mm256_storeu_pd(m + i, mi);
    _mm256_storeu_pd(v + i, vi);
    const __m256d m_hat = _mm256_div_pd(mi, vbc1);
    const __m256d v_hat = _mm256_div_pd(vi, vbc2);
    const __m256d denom = _mm256_add_pd(_mm256_sqrt_pd(v_hat), veps);
    const __m256d update =
        _mm256_div_pd(_mm256_mul_pd(vlr, m_hat), denom);
    _mm256_storeu_pd(value + i,
                     _mm256_sub_pd(_mm256_loadu_pd(value + i), update));
  }
  if (i < n) {
    adam_update_scalar(value + i, grad + i, m + i, v + i, n - i, scale, beta1,
                       beta2, bc1, bc2, lr, eps);
  }
}

DEEPCAT_TARGET_AVX2 void adam_update_clipped_avx2(
    const AdamTensor* tensors, std::size_t count, double grad_clip,
    double beta1, double beta2, double bc1, double bc2, double lr,
    double eps) noexcept {
  double scale = 1.0;
  if (grad_clip > 0.0) {
    // Same per-tensor reduction (dot of grad with itself) in the same array
    // order as the old standalone sum_squares pass, so the clip scale is
    // bit-identical to the unfused composition.
    double sq = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      sq += dot_avx2(tensors[i].grad, tensors[i].grad, tensors[i].n);
    }
    const double norm = std::sqrt(sq);
    if (norm > grad_clip) scale = grad_clip / norm;
  }
  for (std::size_t i = 0; i < count; ++i) {
    adam_update_avx2(tensors[i].value, tensors[i].grad, tensors[i].m,
                     tensors[i].v, tensors[i].n, scale, beta1, beta2, bc1,
                     bc2, lr, eps);
  }
}

// 4x8 register-blocked micro-kernel: 8 accumulator registers stay resident
// across the whole k loop; A elements are broadcast, B rows are streamed.
DEEPCAT_TARGET_AVX2 void gemm_nn_avx2(std::size_t m, std::size_t n,
                                      std::size_t k, const double* a,
                                      std::size_t lda, const double* b,
                                      std::size_t ldb, double* c,
                                      std::size_t ldc) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* a0 = a + (i + 0) * lda;
    const double* a1 = a + (i + 1) * lda;
    const double* a2 = a + (i + 2) * lda;
    const double* a3 = a + (i + 3) * lda;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256d c00 = _mm256_loadu_pd(c + (i + 0) * ldc + j);
      __m256d c01 = _mm256_loadu_pd(c + (i + 0) * ldc + j + 4);
      __m256d c10 = _mm256_loadu_pd(c + (i + 1) * ldc + j);
      __m256d c11 = _mm256_loadu_pd(c + (i + 1) * ldc + j + 4);
      __m256d c20 = _mm256_loadu_pd(c + (i + 2) * ldc + j);
      __m256d c21 = _mm256_loadu_pd(c + (i + 2) * ldc + j + 4);
      __m256d c30 = _mm256_loadu_pd(c + (i + 3) * ldc + j);
      __m256d c31 = _mm256_loadu_pd(c + (i + 3) * ldc + j + 4);
      for (std::size_t p = 0; p < k; ++p) {
        const double* brow = b + p * ldb + j;
        const __m256d b0 = _mm256_loadu_pd(brow);
        const __m256d b1 = _mm256_loadu_pd(brow + 4);
        __m256d av = _mm256_set1_pd(a0[p]);
        c00 = _mm256_fmadd_pd(av, b0, c00);
        c01 = _mm256_fmadd_pd(av, b1, c01);
        av = _mm256_set1_pd(a1[p]);
        c10 = _mm256_fmadd_pd(av, b0, c10);
        c11 = _mm256_fmadd_pd(av, b1, c11);
        av = _mm256_set1_pd(a2[p]);
        c20 = _mm256_fmadd_pd(av, b0, c20);
        c21 = _mm256_fmadd_pd(av, b1, c21);
        av = _mm256_set1_pd(a3[p]);
        c30 = _mm256_fmadd_pd(av, b0, c30);
        c31 = _mm256_fmadd_pd(av, b1, c31);
      }
      _mm256_storeu_pd(c + (i + 0) * ldc + j, c00);
      _mm256_storeu_pd(c + (i + 0) * ldc + j + 4, c01);
      _mm256_storeu_pd(c + (i + 1) * ldc + j, c10);
      _mm256_storeu_pd(c + (i + 1) * ldc + j + 4, c11);
      _mm256_storeu_pd(c + (i + 2) * ldc + j, c20);
      _mm256_storeu_pd(c + (i + 2) * ldc + j + 4, c21);
      _mm256_storeu_pd(c + (i + 3) * ldc + j, c30);
      _mm256_storeu_pd(c + (i + 3) * ldc + j + 4, c31);
    }
    for (; j + 4 <= n; j += 4) {
      __m256d c0 = _mm256_loadu_pd(c + (i + 0) * ldc + j);
      __m256d c1 = _mm256_loadu_pd(c + (i + 1) * ldc + j);
      __m256d c2 = _mm256_loadu_pd(c + (i + 2) * ldc + j);
      __m256d c3 = _mm256_loadu_pd(c + (i + 3) * ldc + j);
      for (std::size_t p = 0; p < k; ++p) {
        const __m256d bv = _mm256_loadu_pd(b + p * ldb + j);
        c0 = _mm256_fmadd_pd(_mm256_set1_pd(a0[p]), bv, c0);
        c1 = _mm256_fmadd_pd(_mm256_set1_pd(a1[p]), bv, c1);
        c2 = _mm256_fmadd_pd(_mm256_set1_pd(a2[p]), bv, c2);
        c3 = _mm256_fmadd_pd(_mm256_set1_pd(a3[p]), bv, c3);
      }
      _mm256_storeu_pd(c + (i + 0) * ldc + j, c0);
      _mm256_storeu_pd(c + (i + 1) * ldc + j, c1);
      _mm256_storeu_pd(c + (i + 2) * ldc + j, c2);
      _mm256_storeu_pd(c + (i + 3) * ldc + j, c3);
    }
    for (; j < n; ++j) {
      for (std::size_t r = 0; r < 4; ++r) {
        const double* arow = a + (i + r) * lda;
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p) s += arow[p] * b[p * ldb + j];
        c[(i + r) * ldc + j] += s;
      }
    }
  }
  for (; i < m; ++i) {
    const double* arow = a + i * lda;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256d c0 = _mm256_loadu_pd(c + i * ldc + j);
      __m256d c1 = _mm256_loadu_pd(c + i * ldc + j + 4);
      for (std::size_t p = 0; p < k; ++p) {
        const __m256d av = _mm256_set1_pd(arow[p]);
        c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b + p * ldb + j), c0);
        c1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b + p * ldb + j + 4), c1);
      }
      _mm256_storeu_pd(c + i * ldc + j, c0);
      _mm256_storeu_pd(c + i * ldc + j + 4, c1);
    }
    for (; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * b[p * ldb + j];
      c[i * ldc + j] += s;
    }
  }
}

// Same 4x8 block shape as gemm_nn; only the A access changes (column i of
// the stored (k x m) A, i.e. strided broadcasts).
DEEPCAT_TARGET_AVX2 void gemm_tn_avx2(std::size_t m, std::size_t n,
                                      std::size_t k, const double* a,
                                      std::size_t lda, const double* b,
                                      std::size_t ldb, double* c,
                                      std::size_t ldc) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256d c00 = _mm256_loadu_pd(c + (i + 0) * ldc + j);
      __m256d c01 = _mm256_loadu_pd(c + (i + 0) * ldc + j + 4);
      __m256d c10 = _mm256_loadu_pd(c + (i + 1) * ldc + j);
      __m256d c11 = _mm256_loadu_pd(c + (i + 1) * ldc + j + 4);
      __m256d c20 = _mm256_loadu_pd(c + (i + 2) * ldc + j);
      __m256d c21 = _mm256_loadu_pd(c + (i + 2) * ldc + j + 4);
      __m256d c30 = _mm256_loadu_pd(c + (i + 3) * ldc + j);
      __m256d c31 = _mm256_loadu_pd(c + (i + 3) * ldc + j + 4);
      for (std::size_t p = 0; p < k; ++p) {
        const double* acol = a + p * lda + i;
        const double* brow = b + p * ldb + j;
        const __m256d b0 = _mm256_loadu_pd(brow);
        const __m256d b1 = _mm256_loadu_pd(brow + 4);
        __m256d av = _mm256_set1_pd(acol[0]);
        c00 = _mm256_fmadd_pd(av, b0, c00);
        c01 = _mm256_fmadd_pd(av, b1, c01);
        av = _mm256_set1_pd(acol[1]);
        c10 = _mm256_fmadd_pd(av, b0, c10);
        c11 = _mm256_fmadd_pd(av, b1, c11);
        av = _mm256_set1_pd(acol[2]);
        c20 = _mm256_fmadd_pd(av, b0, c20);
        c21 = _mm256_fmadd_pd(av, b1, c21);
        av = _mm256_set1_pd(acol[3]);
        c30 = _mm256_fmadd_pd(av, b0, c30);
        c31 = _mm256_fmadd_pd(av, b1, c31);
      }
      _mm256_storeu_pd(c + (i + 0) * ldc + j, c00);
      _mm256_storeu_pd(c + (i + 0) * ldc + j + 4, c01);
      _mm256_storeu_pd(c + (i + 1) * ldc + j, c10);
      _mm256_storeu_pd(c + (i + 1) * ldc + j + 4, c11);
      _mm256_storeu_pd(c + (i + 2) * ldc + j, c20);
      _mm256_storeu_pd(c + (i + 2) * ldc + j + 4, c21);
      _mm256_storeu_pd(c + (i + 3) * ldc + j, c30);
      _mm256_storeu_pd(c + (i + 3) * ldc + j + 4, c31);
    }
    for (; j < n; ++j) {
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double* acol = a + p * lda + i;
        const double bv = b[p * ldb + j];
        s0 += acol[0] * bv;
        s1 += acol[1] * bv;
        s2 += acol[2] * bv;
        s3 += acol[3] * bv;
      }
      c[(i + 0) * ldc + j] += s0;
      c[(i + 1) * ldc + j] += s1;
      c[(i + 2) * ldc + j] += s2;
      c[(i + 3) * ldc + j] += s3;
    }
  }
  for (; i < m; ++i) {
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256d c0 = _mm256_loadu_pd(c + i * ldc + j);
      __m256d c1 = _mm256_loadu_pd(c + i * ldc + j + 4);
      for (std::size_t p = 0; p < k; ++p) {
        const __m256d av = _mm256_set1_pd(a[p * lda + i]);
        c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b + p * ldb + j), c0);
        c1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b + p * ldb + j + 4), c1);
      }
      _mm256_storeu_pd(c + i * ldc + j, c0);
      _mm256_storeu_pd(c + i * ldc + j + 4, c1);
    }
    for (; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += a[p * lda + i] * b[p * ldb + j];
      c[i * ldc + j] += s;
    }
  }
}

// Both operands are k-contiguous, so this is a batch of vector dots: one A
// row against 4 B rows at a time, 4 running vector accumulators.
DEEPCAT_TARGET_AVX2 void gemm_nt_avx2(std::size_t m, std::size_t n,
                                      std::size_t k, const double* a,
                                      std::size_t lda, const double* b,
                                      std::size_t ldb, double* c,
                                      std::size_t ldc) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * lda;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + (j + 0) * ldb;
      const double* b1 = b + (j + 1) * ldb;
      const double* b2 = b + (j + 2) * ldb;
      const double* b3 = b + (j + 3) * ldb;
      __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd(), acc3 = _mm256_setzero_pd();
      std::size_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const __m256d av = _mm256_loadu_pd(arow + p);
        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b0 + p), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b1 + p), acc1);
        acc2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b2 + p), acc2);
        acc3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b3 + p), acc3);
      }
      double s0 = hsum(acc0), s1 = hsum(acc1), s2 = hsum(acc2),
             s3 = hsum(acc3);
      for (; p < k; ++p) {
        const double av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      c[i * ldc + j + 0] += s0;
      c[i * ldc + j + 1] += s1;
      c[i * ldc + j + 2] += s2;
      c[i * ldc + j + 3] += s3;
    }
    for (; j < n; ++j) {
      c[i * ldc + j] += dot_avx2(arow, b + j * ldb, k);
    }
  }
}

// ---- AVX-512 kernels -----------------------------------------------------
// Same shapes as the AVX2 tier, twice the lane width. Broadcast-style GEMM
// keeps per-element ascending-k FMA chains (bit-compatible with the AVX2
// tier); the dot-family reductions use wider accumulator trees and meet
// the 1e-12 contract only.

DEEPCAT_TARGET_AVX512 double dot_avx512(const double* a, const double* b,
                                        std::size_t n) noexcept {
  __m512d acc0 = _mm512_setzero_pd(), acc1 = _mm512_setzero_pd();
  __m512d acc2 = _mm512_setzero_pd(), acc3 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i),
                           _mm512_loadu_pd(b + i), acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 8),
                           _mm512_loadu_pd(b + i + 8), acc1);
    acc2 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 16),
                           _mm512_loadu_pd(b + i + 16), acc2);
    acc3 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 24),
                           _mm512_loadu_pd(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i),
                           _mm512_loadu_pd(b + i), acc0);
  }
  double s = _mm512_reduce_add_pd(_mm512_add_pd(
      _mm512_add_pd(acc0, acc1), _mm512_add_pd(acc2, acc3)));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

DEEPCAT_TARGET_AVX512 double squared_distance_avx512(const double* a,
                                                     const double* b,
                                                     std::size_t n) noexcept {
  __m512d acc0 = _mm512_setzero_pd(), acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512d d0 =
        _mm512_sub_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
    const __m512d d1 =
        _mm512_sub_pd(_mm512_loadu_pd(a + i + 8), _mm512_loadu_pd(b + i + 8));
    acc0 = _mm512_fmadd_pd(d0, d0, acc0);
    acc1 = _mm512_fmadd_pd(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m512d d =
        _mm512_sub_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
    acc0 = _mm512_fmadd_pd(d, d, acc0);
  }
  double s = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

DEEPCAT_TARGET_AVX512 void squared_distances_avx512(const double* query,
                                                    const double* rows,
                                                    std::size_t n_rows,
                                                    std::size_t dim,
                                                    double* out) noexcept {
  for (std::size_t r = 0; r < n_rows; ++r) {
    out[r] = squared_distance_avx512(query, rows + r * dim, dim);
  }
}

DEEPCAT_TARGET_AVX512 void cosine_distances_avx512(const double* query,
                                                   const double* rows,
                                                   std::size_t n_rows,
                                                   std::size_t dim,
                                                   double* out) noexcept {
  const double qq = dot_avx512(query, query, dim);
  for (std::size_t r = 0; r < n_rows; ++r) {
    const double* row = rows + r * dim;
    out[r] = cosine_from_parts(qq, dot_avx512(row, row, dim),
                               dot_avx512(query, row, dim));
  }
}

DEEPCAT_TARGET_AVX512 double sum_avx512(const double* a,
                                        std::size_t n) noexcept {
  __m512d acc0 = _mm512_setzero_pd(), acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_add_pd(acc0, _mm512_loadu_pd(a + i));
    acc1 = _mm512_add_pd(acc1, _mm512_loadu_pd(a + i + 8));
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_add_pd(acc0, _mm512_loadu_pd(a + i));
  }
  double s = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i];
  return s;
}

DEEPCAT_TARGET_AVX512 void axpy_avx512(double alpha, const double* x,
                                       double* y, std::size_t n) noexcept {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_pd(
        y + i, _mm512_fmadd_pd(va, _mm512_loadu_pd(x + i),
                               _mm512_loadu_pd(y + i)));
    _mm512_storeu_pd(
        y + i + 8, _mm512_fmadd_pd(va, _mm512_loadu_pd(x + i + 8),
                                   _mm512_loadu_pd(y + i + 8)));
  }
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_fmadd_pd(va, _mm512_loadu_pd(x + i),
                               _mm512_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

DEEPCAT_TARGET_AVX512 void adam_update_avx512(
    double* value, const double* grad, double* m, double* v, std::size_t n,
    double scale, double beta1, double beta2, double bc1, double bc2,
    double lr, double eps) noexcept {
  const __m512d vscale = _mm512_set1_pd(scale);
  const __m512d vb1 = _mm512_set1_pd(beta1);
  const __m512d vb2 = _mm512_set1_pd(beta2);
  const __m512d vomb1 = _mm512_set1_pd(1.0 - beta1);
  const __m512d vomb2 = _mm512_set1_pd(1.0 - beta2);
  const __m512d vbc1 = _mm512_set1_pd(bc1);
  const __m512d vbc2 = _mm512_set1_pd(bc2);
  const __m512d vlr = _mm512_set1_pd(lr);
  const __m512d veps = _mm512_set1_pd(eps);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d g = _mm512_mul_pd(_mm512_loadu_pd(grad + i), vscale);
    const __m512d mi = _mm512_fmadd_pd(vb1, _mm512_loadu_pd(m + i),
                                       _mm512_mul_pd(vomb1, g));
    const __m512d vi = _mm512_fmadd_pd(
        vb2, _mm512_loadu_pd(v + i),
        _mm512_mul_pd(vomb2, _mm512_mul_pd(g, g)));
    _mm512_storeu_pd(m + i, mi);
    _mm512_storeu_pd(v + i, vi);
    const __m512d m_hat = _mm512_div_pd(mi, vbc1);
    const __m512d v_hat = _mm512_div_pd(vi, vbc2);
    const __m512d denom = _mm512_add_pd(_mm512_sqrt_pd(v_hat), veps);
    const __m512d update = _mm512_div_pd(_mm512_mul_pd(vlr, m_hat), denom);
    _mm512_storeu_pd(value + i,
                     _mm512_sub_pd(_mm512_loadu_pd(value + i), update));
  }
  if (i < n) {
    adam_update_scalar(value + i, grad + i, m + i, v + i, n - i, scale, beta1,
                       beta2, bc1, bc2, lr, eps);
  }
}

DEEPCAT_TARGET_AVX512 void adam_update_clipped_avx512(
    const AdamTensor* tensors, std::size_t count, double grad_clip,
    double beta1, double beta2, double bc1, double bc2, double lr,
    double eps) noexcept {
  double scale = 1.0;
  if (grad_clip > 0.0) {
    double sq = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      sq += dot_avx512(tensors[i].grad, tensors[i].grad, tensors[i].n);
    }
    const double norm = std::sqrt(sq);
    if (norm > grad_clip) scale = grad_clip / norm;
  }
  for (std::size_t i = 0; i < count; ++i) {
    adam_update_avx512(tensors[i].value, tensors[i].grad, tensors[i].m,
                       tensors[i].v, tensors[i].n, scale, beta1, beta2, bc1,
                       bc2, lr, eps);
  }
}

// 4x16 register-blocked micro-kernel: the AVX2 4x8 tile widened to two
// zmm columns per row — still 8 resident accumulators, double the flops
// per broadcast.
DEEPCAT_TARGET_AVX512 void gemm_nn_avx512(std::size_t m, std::size_t n,
                                          std::size_t k, const double* a,
                                          std::size_t lda, const double* b,
                                          std::size_t ldb, double* c,
                                          std::size_t ldc) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* a0 = a + (i + 0) * lda;
    const double* a1 = a + (i + 1) * lda;
    const double* a2 = a + (i + 2) * lda;
    const double* a3 = a + (i + 3) * lda;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m512d c00 = _mm512_loadu_pd(c + (i + 0) * ldc + j);
      __m512d c01 = _mm512_loadu_pd(c + (i + 0) * ldc + j + 8);
      __m512d c10 = _mm512_loadu_pd(c + (i + 1) * ldc + j);
      __m512d c11 = _mm512_loadu_pd(c + (i + 1) * ldc + j + 8);
      __m512d c20 = _mm512_loadu_pd(c + (i + 2) * ldc + j);
      __m512d c21 = _mm512_loadu_pd(c + (i + 2) * ldc + j + 8);
      __m512d c30 = _mm512_loadu_pd(c + (i + 3) * ldc + j);
      __m512d c31 = _mm512_loadu_pd(c + (i + 3) * ldc + j + 8);
      for (std::size_t p = 0; p < k; ++p) {
        const double* brow = b + p * ldb + j;
        const __m512d b0 = _mm512_loadu_pd(brow);
        const __m512d b1 = _mm512_loadu_pd(brow + 8);
        __m512d av = _mm512_set1_pd(a0[p]);
        c00 = _mm512_fmadd_pd(av, b0, c00);
        c01 = _mm512_fmadd_pd(av, b1, c01);
        av = _mm512_set1_pd(a1[p]);
        c10 = _mm512_fmadd_pd(av, b0, c10);
        c11 = _mm512_fmadd_pd(av, b1, c11);
        av = _mm512_set1_pd(a2[p]);
        c20 = _mm512_fmadd_pd(av, b0, c20);
        c21 = _mm512_fmadd_pd(av, b1, c21);
        av = _mm512_set1_pd(a3[p]);
        c30 = _mm512_fmadd_pd(av, b0, c30);
        c31 = _mm512_fmadd_pd(av, b1, c31);
      }
      _mm512_storeu_pd(c + (i + 0) * ldc + j, c00);
      _mm512_storeu_pd(c + (i + 0) * ldc + j + 8, c01);
      _mm512_storeu_pd(c + (i + 1) * ldc + j, c10);
      _mm512_storeu_pd(c + (i + 1) * ldc + j + 8, c11);
      _mm512_storeu_pd(c + (i + 2) * ldc + j, c20);
      _mm512_storeu_pd(c + (i + 2) * ldc + j + 8, c21);
      _mm512_storeu_pd(c + (i + 3) * ldc + j, c30);
      _mm512_storeu_pd(c + (i + 3) * ldc + j + 8, c31);
    }
    for (; j + 8 <= n; j += 8) {
      __m512d c0 = _mm512_loadu_pd(c + (i + 0) * ldc + j);
      __m512d c1 = _mm512_loadu_pd(c + (i + 1) * ldc + j);
      __m512d c2 = _mm512_loadu_pd(c + (i + 2) * ldc + j);
      __m512d c3 = _mm512_loadu_pd(c + (i + 3) * ldc + j);
      for (std::size_t p = 0; p < k; ++p) {
        const __m512d bv = _mm512_loadu_pd(b + p * ldb + j);
        c0 = _mm512_fmadd_pd(_mm512_set1_pd(a0[p]), bv, c0);
        c1 = _mm512_fmadd_pd(_mm512_set1_pd(a1[p]), bv, c1);
        c2 = _mm512_fmadd_pd(_mm512_set1_pd(a2[p]), bv, c2);
        c3 = _mm512_fmadd_pd(_mm512_set1_pd(a3[p]), bv, c3);
      }
      _mm512_storeu_pd(c + (i + 0) * ldc + j, c0);
      _mm512_storeu_pd(c + (i + 1) * ldc + j, c1);
      _mm512_storeu_pd(c + (i + 2) * ldc + j, c2);
      _mm512_storeu_pd(c + (i + 3) * ldc + j, c3);
    }
    for (; j < n; ++j) {
      for (std::size_t r = 0; r < 4; ++r) {
        const double* arow = a + (i + r) * lda;
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p) s += arow[p] * b[p * ldb + j];
        c[(i + r) * ldc + j] += s;
      }
    }
  }
  for (; i < m; ++i) {
    const double* arow = a + i * lda;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m512d c0 = _mm512_loadu_pd(c + i * ldc + j);
      __m512d c1 = _mm512_loadu_pd(c + i * ldc + j + 8);
      for (std::size_t p = 0; p < k; ++p) {
        const __m512d av = _mm512_set1_pd(arow[p]);
        c0 = _mm512_fmadd_pd(av, _mm512_loadu_pd(b + p * ldb + j), c0);
        c1 = _mm512_fmadd_pd(av, _mm512_loadu_pd(b + p * ldb + j + 8), c1);
      }
      _mm512_storeu_pd(c + i * ldc + j, c0);
      _mm512_storeu_pd(c + i * ldc + j + 8, c1);
    }
    for (; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * b[p * ldb + j];
      c[i * ldc + j] += s;
    }
  }
}

// Same 4x16 block shape as gemm_nn_avx512; only the A access changes
// (column i of the stored (k x m) A, i.e. strided broadcasts).
DEEPCAT_TARGET_AVX512 void gemm_tn_avx512(std::size_t m, std::size_t n,
                                          std::size_t k, const double* a,
                                          std::size_t lda, const double* b,
                                          std::size_t ldb, double* c,
                                          std::size_t ldc) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m512d c00 = _mm512_loadu_pd(c + (i + 0) * ldc + j);
      __m512d c01 = _mm512_loadu_pd(c + (i + 0) * ldc + j + 8);
      __m512d c10 = _mm512_loadu_pd(c + (i + 1) * ldc + j);
      __m512d c11 = _mm512_loadu_pd(c + (i + 1) * ldc + j + 8);
      __m512d c20 = _mm512_loadu_pd(c + (i + 2) * ldc + j);
      __m512d c21 = _mm512_loadu_pd(c + (i + 2) * ldc + j + 8);
      __m512d c30 = _mm512_loadu_pd(c + (i + 3) * ldc + j);
      __m512d c31 = _mm512_loadu_pd(c + (i + 3) * ldc + j + 8);
      for (std::size_t p = 0; p < k; ++p) {
        const double* acol = a + p * lda + i;
        const double* brow = b + p * ldb + j;
        const __m512d b0 = _mm512_loadu_pd(brow);
        const __m512d b1 = _mm512_loadu_pd(brow + 8);
        __m512d av = _mm512_set1_pd(acol[0]);
        c00 = _mm512_fmadd_pd(av, b0, c00);
        c01 = _mm512_fmadd_pd(av, b1, c01);
        av = _mm512_set1_pd(acol[1]);
        c10 = _mm512_fmadd_pd(av, b0, c10);
        c11 = _mm512_fmadd_pd(av, b1, c11);
        av = _mm512_set1_pd(acol[2]);
        c20 = _mm512_fmadd_pd(av, b0, c20);
        c21 = _mm512_fmadd_pd(av, b1, c21);
        av = _mm512_set1_pd(acol[3]);
        c30 = _mm512_fmadd_pd(av, b0, c30);
        c31 = _mm512_fmadd_pd(av, b1, c31);
      }
      _mm512_storeu_pd(c + (i + 0) * ldc + j, c00);
      _mm512_storeu_pd(c + (i + 0) * ldc + j + 8, c01);
      _mm512_storeu_pd(c + (i + 1) * ldc + j, c10);
      _mm512_storeu_pd(c + (i + 1) * ldc + j + 8, c11);
      _mm512_storeu_pd(c + (i + 2) * ldc + j, c20);
      _mm512_storeu_pd(c + (i + 2) * ldc + j + 8, c21);
      _mm512_storeu_pd(c + (i + 3) * ldc + j, c30);
      _mm512_storeu_pd(c + (i + 3) * ldc + j + 8, c31);
    }
    for (; j < n; ++j) {
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double* acol = a + p * lda + i;
        const double bv = b[p * ldb + j];
        s0 += acol[0] * bv;
        s1 += acol[1] * bv;
        s2 += acol[2] * bv;
        s3 += acol[3] * bv;
      }
      c[(i + 0) * ldc + j] += s0;
      c[(i + 1) * ldc + j] += s1;
      c[(i + 2) * ldc + j] += s2;
      c[(i + 3) * ldc + j] += s3;
    }
  }
  for (; i < m; ++i) {
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m512d c0 = _mm512_loadu_pd(c + i * ldc + j);
      __m512d c1 = _mm512_loadu_pd(c + i * ldc + j + 8);
      for (std::size_t p = 0; p < k; ++p) {
        const __m512d av = _mm512_set1_pd(a[p * lda + i]);
        c0 = _mm512_fmadd_pd(av, _mm512_loadu_pd(b + p * ldb + j), c0);
        c1 = _mm512_fmadd_pd(av, _mm512_loadu_pd(b + p * ldb + j + 8), c1);
      }
      _mm512_storeu_pd(c + i * ldc + j, c0);
      _mm512_storeu_pd(c + i * ldc + j + 8, c1);
    }
    for (; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += a[p * lda + i] * b[p * ldb + j];
      c[i * ldc + j] += s;
    }
  }
}

// Batch of vector dots, one A row against 4 B rows, 8-wide accumulators.
DEEPCAT_TARGET_AVX512 void gemm_nt_avx512(std::size_t m, std::size_t n,
                                          std::size_t k, const double* a,
                                          std::size_t lda, const double* b,
                                          std::size_t ldb, double* c,
                                          std::size_t ldc) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * lda;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + (j + 0) * ldb;
      const double* b1 = b + (j + 1) * ldb;
      const double* b2 = b + (j + 2) * ldb;
      const double* b3 = b + (j + 3) * ldb;
      __m512d acc0 = _mm512_setzero_pd(), acc1 = _mm512_setzero_pd();
      __m512d acc2 = _mm512_setzero_pd(), acc3 = _mm512_setzero_pd();
      std::size_t p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m512d av = _mm512_loadu_pd(arow + p);
        acc0 = _mm512_fmadd_pd(av, _mm512_loadu_pd(b0 + p), acc0);
        acc1 = _mm512_fmadd_pd(av, _mm512_loadu_pd(b1 + p), acc1);
        acc2 = _mm512_fmadd_pd(av, _mm512_loadu_pd(b2 + p), acc2);
        acc3 = _mm512_fmadd_pd(av, _mm512_loadu_pd(b3 + p), acc3);
      }
      double s0 = _mm512_reduce_add_pd(acc0);
      double s1 = _mm512_reduce_add_pd(acc1);
      double s2 = _mm512_reduce_add_pd(acc2);
      double s3 = _mm512_reduce_add_pd(acc3);
      for (; p < k; ++p) {
        const double av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      c[i * ldc + j + 0] += s0;
      c[i * ldc + j + 1] += s1;
      c[i * ldc + j + 2] += s2;
      c[i * ldc + j + 3] += s3;
    }
    for (; j < n; ++j) {
      c[i * ldc + j] += dot_avx512(arow, b + j * ldb, k);
    }
  }
}

// ---- L2-tiled packed GEMM path -------------------------------------------
// BLIS-style loop nest for operands at or above kPackedMinDim in every
// dimension: B panels (KC x NC) and A blocks (MC x KC) are copied once into
// contiguous micro-panel layouts, so the micro-kernels stream packed memory
// instead of striding the source matrices. One generic packing routine per
// operand (parameterized on row/column element strides) serves all three
// storage variants (nn/tn/nt). Panels are zero-padded to the MR/NR register
// tile, so only full-size micro-kernel calls exist; partial edge tiles land
// in a zeroed scratch tile and add back the valid region.
//
// Block sizes: KC=256 keeps an A micro-panel column strip plus a B panel
// strip inside L2 alongside the C tile; MC=96 (a multiple of MR=4) bounds
// the packed-A block at 192 KiB; NC=1024 (a multiple of both NR widths)
// bounds packed B at 2 MiB — sized for the n in [256, 2048] band the GP
// refit and bench sweeps occupy.

constexpr std::size_t kPackKc = 256;
constexpr std::size_t kPackMc = 96;
constexpr std::size_t kPackNc = 1024;
constexpr std::size_t kPackMr = 4;

// Packs rows [i0, i0+mc) x cols [p0, p0+kc) of op(A) — element (i, p) at
// a[i*ars + p*acs] — into mc/MR k-major micro-panels of MR rows each.
void pack_a_block(const double* a, std::size_t ars, std::size_t acs,
                  std::size_t i0, std::size_t mc, std::size_t p0,
                  std::size_t kc, double* out) noexcept {
  for (std::size_t ir = 0; ir < mc; ir += kPackMr) {
    const std::size_t mr = std::min(kPackMr, mc - ir);
    for (std::size_t p = 0; p < kc; ++p) {
      const double* src = a + (i0 + ir) * ars + (p0 + p) * acs;
      for (std::size_t r = 0; r < kPackMr; ++r) {
        out[p * kPackMr + r] = (r < mr) ? src[r * ars] : 0.0;
      }
    }
    out += kc * kPackMr;
  }
}

// Packs rows [p0, p0+kc) x cols [j0, j0+nc) of op(B) — element (p, j) at
// b[p*brs + j*bcs] — into nc/NR k-major micro-panels of NR columns each.
void pack_b_block(const double* b, std::size_t brs, std::size_t bcs,
                  std::size_t p0, std::size_t kc, std::size_t j0,
                  std::size_t nc, std::size_t nr_width,
                  double* out) noexcept {
  for (std::size_t jr = 0; jr < nc; jr += nr_width) {
    const std::size_t nr = std::min(nr_width, nc - jr);
    for (std::size_t p = 0; p < kc; ++p) {
      const double* src = b + (p0 + p) * brs + (j0 + jr) * bcs;
      for (std::size_t col = 0; col < nr_width; ++col) {
        out[p * nr_width + col] = (col < nr) ? src[col * bcs] : 0.0;
      }
    }
    out += kc * nr_width;
  }
}

// Packed micro-kernels: accumulators start at zero and add into C at the
// end, so C(4 x NR) += packed_A(kc x 4) * packed_B(kc x NR). Broadcast-A /
// streamed-B with per-element ascending-k FMA chains, same as the
// register-blocked tiles.
DEEPCAT_TARGET_AVX2 void micro_4x8_avx2(std::size_t kc, const double* pa,
                                        const double* pb, double* c,
                                        std::size_t ldc) noexcept {
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(pb + p * 8);
    const __m256d b1 = _mm256_loadu_pd(pb + p * 8 + 4);
    const double* ap = pa + p * 4;
    __m256d av = _mm256_set1_pd(ap[0]);
    c00 = _mm256_fmadd_pd(av, b0, c00);
    c01 = _mm256_fmadd_pd(av, b1, c01);
    av = _mm256_set1_pd(ap[1]);
    c10 = _mm256_fmadd_pd(av, b0, c10);
    c11 = _mm256_fmadd_pd(av, b1, c11);
    av = _mm256_set1_pd(ap[2]);
    c20 = _mm256_fmadd_pd(av, b0, c20);
    c21 = _mm256_fmadd_pd(av, b1, c21);
    av = _mm256_set1_pd(ap[3]);
    c30 = _mm256_fmadd_pd(av, b0, c30);
    c31 = _mm256_fmadd_pd(av, b1, c31);
  }
  _mm256_storeu_pd(c, _mm256_add_pd(_mm256_loadu_pd(c), c00));
  _mm256_storeu_pd(c + 4, _mm256_add_pd(_mm256_loadu_pd(c + 4), c01));
  double* r1 = c + ldc;
  _mm256_storeu_pd(r1, _mm256_add_pd(_mm256_loadu_pd(r1), c10));
  _mm256_storeu_pd(r1 + 4, _mm256_add_pd(_mm256_loadu_pd(r1 + 4), c11));
  double* r2 = c + 2 * ldc;
  _mm256_storeu_pd(r2, _mm256_add_pd(_mm256_loadu_pd(r2), c20));
  _mm256_storeu_pd(r2 + 4, _mm256_add_pd(_mm256_loadu_pd(r2 + 4), c21));
  double* r3 = c + 3 * ldc;
  _mm256_storeu_pd(r3, _mm256_add_pd(_mm256_loadu_pd(r3), c30));
  _mm256_storeu_pd(r3 + 4, _mm256_add_pd(_mm256_loadu_pd(r3 + 4), c31));
}

DEEPCAT_TARGET_AVX512 void micro_4x16_avx512(std::size_t kc, const double* pa,
                                             const double* pb, double* c,
                                             std::size_t ldc) noexcept {
  __m512d c00 = _mm512_setzero_pd(), c01 = _mm512_setzero_pd();
  __m512d c10 = _mm512_setzero_pd(), c11 = _mm512_setzero_pd();
  __m512d c20 = _mm512_setzero_pd(), c21 = _mm512_setzero_pd();
  __m512d c30 = _mm512_setzero_pd(), c31 = _mm512_setzero_pd();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m512d b0 = _mm512_loadu_pd(pb + p * 16);
    const __m512d b1 = _mm512_loadu_pd(pb + p * 16 + 8);
    const double* ap = pa + p * 4;
    __m512d av = _mm512_set1_pd(ap[0]);
    c00 = _mm512_fmadd_pd(av, b0, c00);
    c01 = _mm512_fmadd_pd(av, b1, c01);
    av = _mm512_set1_pd(ap[1]);
    c10 = _mm512_fmadd_pd(av, b0, c10);
    c11 = _mm512_fmadd_pd(av, b1, c11);
    av = _mm512_set1_pd(ap[2]);
    c20 = _mm512_fmadd_pd(av, b0, c20);
    c21 = _mm512_fmadd_pd(av, b1, c21);
    av = _mm512_set1_pd(ap[3]);
    c30 = _mm512_fmadd_pd(av, b0, c30);
    c31 = _mm512_fmadd_pd(av, b1, c31);
  }
  _mm512_storeu_pd(c, _mm512_add_pd(_mm512_loadu_pd(c), c00));
  _mm512_storeu_pd(c + 8, _mm512_add_pd(_mm512_loadu_pd(c + 8), c01));
  double* r1 = c + ldc;
  _mm512_storeu_pd(r1, _mm512_add_pd(_mm512_loadu_pd(r1), c10));
  _mm512_storeu_pd(r1 + 8, _mm512_add_pd(_mm512_loadu_pd(r1 + 8), c11));
  double* r2 = c + 2 * ldc;
  _mm512_storeu_pd(r2, _mm512_add_pd(_mm512_loadu_pd(r2), c20));
  _mm512_storeu_pd(r2 + 8, _mm512_add_pd(_mm512_loadu_pd(r2 + 8), c21));
  double* r3 = c + 3 * ldc;
  _mm512_storeu_pd(r3, _mm512_add_pd(_mm512_loadu_pd(r3), c30));
  _mm512_storeu_pd(r3 + 8, _mm512_add_pd(_mm512_loadu_pd(r3 + 8), c31));
}

// Generic packed driver: C(m x n) += op(A)(m x k) * op(B)(k x n) with
// element strides (ars, acs) / (brs, bcs). Returns false if the packing
// buffers cannot be allocated (caller falls back to register-blocked).
bool gemm_packed(Backend be, std::size_t m, std::size_t n, std::size_t k,
                 const double* a, std::size_t ars, std::size_t acs,
                 const double* b, std::size_t brs, std::size_t bcs,
                 double* c, std::size_t ldc) noexcept {
  const std::size_t nr_width = (be == Backend::kAvx512) ? 16 : 8;
  std::unique_ptr<double[]> pb_buf(
      new (std::nothrow) double[kPackKc * kPackNc]);
  std::unique_ptr<double[]> pa_buf(
      new (std::nothrow) double[kPackMc * kPackKc]);
  if (pb_buf == nullptr || pa_buf == nullptr) return false;
  double* const pb = pb_buf.get();
  double* const pa = pa_buf.get();

  for (std::size_t jc = 0; jc < n; jc += kPackNc) {
    const std::size_t nc = std::min(kPackNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kPackKc) {
      const std::size_t kc = std::min(kPackKc, k - pc);
      pack_b_block(b, brs, bcs, pc, kc, jc, nc, nr_width, pb);
      for (std::size_t ic = 0; ic < m; ic += kPackMc) {
        const std::size_t mc = std::min(kPackMc, m - ic);
        pack_a_block(a, ars, acs, ic, mc, pc, kc, pa);
        for (std::size_t jr = 0; jr < nc; jr += nr_width) {
          const std::size_t nr = std::min(nr_width, nc - jr);
          const double* pbp = pb + (jr / nr_width) * kc * nr_width;
          for (std::size_t ir = 0; ir < mc; ir += kPackMr) {
            const std::size_t mr = std::min(kPackMr, mc - ir);
            const double* pap = pa + (ir / kPackMr) * kc * kPackMr;
            double* cptr = c + (ic + ir) * ldc + (jc + jr);
            if (mr == kPackMr && nr == nr_width) {
              if (be == Backend::kAvx512) {
                micro_4x16_avx512(kc, pap, pbp, cptr, ldc);
              } else {
                micro_4x8_avx2(kc, pap, pbp, cptr, ldc);
              }
            } else {
              alignas(64) double tmp[kPackMr * 16];
              std::memset(tmp, 0, sizeof(tmp));
              if (be == Backend::kAvx512) {
                micro_4x16_avx512(kc, pap, pbp, tmp, 16);
              } else {
                micro_4x8_avx2(kc, pap, pbp, tmp, 8);
              }
              for (std::size_t r = 0; r < mr; ++r) {
                for (std::size_t col = 0; col < nr; ++col) {
                  cptr[r * ldc + col] += tmp[r * nr_width + col];
                }
              }
            }
          }
        }
      }
    }
  }
  return true;
}

// kAuto path choice: packed only once every dimension reaches the floor —
// below it the packing traffic costs more than the strided loads it saves.
bool use_packed_path(std::size_t m, std::size_t n, std::size_t k) noexcept {
  switch (g_gemm_path) {
    case GemmPath::kPacked:
      return true;
    case GemmPath::kRegisterBlocked:
      return false;
    case GemmPath::kAuto:
    default:
      return m >= kPackedMinDim && n >= kPackedMinDim && k >= kPackedMinDim;
  }
}

#endif  // DEEPCAT_SIMD_X86

}  // namespace

Backend active_backend() noexcept {
  return min_backend(g_max_backend, g_forced_cap);
}

Backend detected_backend() noexcept { return g_detected_backend; }

Backend max_backend() noexcept { return g_max_backend; }

bool backend_selectable(Backend b) noexcept {
  return static_cast<int>(b) >= static_cast<int>(Backend::kScalar) &&
         static_cast<int>(b) <= static_cast<int>(g_max_backend);
}

const char* backend_label(Backend b) noexcept {
  switch (b) {
    case Backend::kAvx512:
      return "avx512";
    case Backend::kAvx2:
      return "avx2+fma";
    default:
      return "scalar";
  }
}

const char* backend_name() noexcept {
  return backend_label(active_backend());
}

const char* isa_ladder() noexcept {
  switch (g_detected_backend) {
    case Backend::kAvx512:
      return "scalar,avx2+fma,avx512";
    case Backend::kAvx2:
      return "scalar,avx2+fma";
    default:
      return "scalar";
  }
}

void force_backend(Backend cap) noexcept { g_forced_cap = cap; }

void force_scalar(bool on) noexcept {
  g_forced_cap = on ? Backend::kScalar : Backend::kAvx512;
}

bool vectorized_active() noexcept {
  return active_backend() != Backend::kScalar;
}

bool vector_compiled() noexcept { return DEEPCAT_SIMD_X86 != 0; }

void force_gemm_path(GemmPath path) noexcept { g_gemm_path = path; }

GemmPath forced_gemm_path() noexcept { return g_gemm_path; }

std::size_t packed_gemm_min_dim() noexcept { return kPackedMinDim; }

DispatchCounts dispatch_counts() noexcept {
  DispatchCounts counts;
  counts.scalar_calls = g_scalar_calls.load(std::memory_order_relaxed);
  counts.avx2_calls = g_avx2_calls.load(std::memory_order_relaxed);
  counts.avx512_calls = g_avx512_calls.load(std::memory_order_relaxed);
  counts.packed_calls = g_packed_calls.load(std::memory_order_relaxed);
  return counts;
}

void reset_dispatch_counts() noexcept {
  g_scalar_calls.store(0, std::memory_order_relaxed);
  g_avx2_calls.store(0, std::memory_order_relaxed);
  g_avx512_calls.store(0, std::memory_order_relaxed);
  g_packed_calls.store(0, std::memory_order_relaxed);
}

double dot(const double* a, const double* b, std::size_t n) noexcept {
#if DEEPCAT_SIMD_X86
  switch (active_backend()) {
    case Backend::kAvx512:
      return dot_avx512(a, b, n);
    case Backend::kAvx2:
      return dot_avx2(a, b, n);
    default:
      break;
  }
#endif
  return dot_scalar(a, b, n);
}

double squared_distance(const double* a, const double* b,
                        std::size_t n) noexcept {
#if DEEPCAT_SIMD_X86
  switch (active_backend()) {
    case Backend::kAvx512:
      return squared_distance_avx512(a, b, n);
    case Backend::kAvx2:
      return squared_distance_avx2(a, b, n);
    default:
      break;
  }
#endif
  return squared_distance_scalar(a, b, n);
}

void squared_distances(const double* query, const double* rows,
                       std::size_t n_rows, std::size_t dim,
                       double* out) noexcept {
  const Backend be = active_backend();
  count_dispatch(be);
#if DEEPCAT_SIMD_X86
  switch (be) {
    case Backend::kAvx512:
      squared_distances_avx512(query, rows, n_rows, dim, out);
      return;
    case Backend::kAvx2:
      squared_distances_avx2(query, rows, n_rows, dim, out);
      return;
    default:
      break;
  }
#endif
  squared_distances_scalar(query, rows, n_rows, dim, out);
}

void cosine_distances(const double* query, const double* rows,
                      std::size_t n_rows, std::size_t dim,
                      double* out) noexcept {
  const Backend be = active_backend();
  count_dispatch(be);
#if DEEPCAT_SIMD_X86
  switch (be) {
    case Backend::kAvx512:
      cosine_distances_avx512(query, rows, n_rows, dim, out);
      return;
    case Backend::kAvx2:
      cosine_distances_avx2(query, rows, n_rows, dim, out);
      return;
    default:
      break;
  }
#endif
  cosine_distances_scalar(query, rows, n_rows, dim, out);
}

double sum(const double* a, std::size_t n) noexcept {
#if DEEPCAT_SIMD_X86
  switch (active_backend()) {
    case Backend::kAvx512:
      return sum_avx512(a, n);
    case Backend::kAvx2:
      return sum_avx2(a, n);
    default:
      break;
  }
#endif
  return sum_scalar(a, n);
}

double sum_squares(const double* a, std::size_t n) noexcept {
#if DEEPCAT_SIMD_X86
  switch (active_backend()) {
    case Backend::kAvx512:
      return dot_avx512(a, a, n);
    case Backend::kAvx2:
      return dot_avx2(a, a, n);
    default:
      break;
  }
#endif
  return dot_scalar(a, a, n);
}

void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept {
#if DEEPCAT_SIMD_X86
  switch (active_backend()) {
    case Backend::kAvx512:
      axpy_avx512(alpha, x, y, n);
      return;
    case Backend::kAvx2:
      axpy_avx2(alpha, x, y, n);
      return;
    default:
      break;
  }
#endif
  axpy_scalar(alpha, x, y, n);
}

void adam_update(double* value, const double* grad, double* m, double* v,
                 std::size_t n, double scale, double beta1, double beta2,
                 double bc1, double bc2, double lr, double eps) noexcept {
  const Backend be = active_backend();
  count_dispatch(be);
#if DEEPCAT_SIMD_X86
  switch (be) {
    case Backend::kAvx512:
      adam_update_avx512(value, grad, m, v, n, scale, beta1, beta2, bc1, bc2,
                         lr, eps);
      return;
    case Backend::kAvx2:
      adam_update_avx2(value, grad, m, v, n, scale, beta1, beta2, bc1, bc2,
                       lr, eps);
      return;
    default:
      break;
  }
#endif
  adam_update_scalar(value, grad, m, v, n, scale, beta1, beta2, bc1, bc2, lr,
                     eps);
}

void adam_update_clipped(const AdamTensor* tensors, std::size_t count,
                         double grad_clip, double beta1, double beta2,
                         double bc1, double bc2, double lr,
                         double eps) noexcept {
  const Backend be = active_backend();
  count_dispatch(be);
#if DEEPCAT_SIMD_X86
  switch (be) {
    case Backend::kAvx512:
      adam_update_clipped_avx512(tensors, count, grad_clip, beta1, beta2,
                                 bc1, bc2, lr, eps);
      return;
    case Backend::kAvx2:
      adam_update_clipped_avx2(tensors, count, grad_clip, beta1, beta2, bc1,
                               bc2, lr, eps);
      return;
    default:
      break;
  }
#endif
  adam_update_clipped_scalar(tensors, count, grad_clip, beta1, beta2, bc1,
                             bc2, lr, eps);
}

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) noexcept {
  const Backend be = active_backend();
  count_dispatch(be);
#if DEEPCAT_SIMD_X86
  if (be != Backend::kScalar && use_packed_path(m, n, k) &&
      gemm_packed(be, m, n, k, a, lda, 1, b, ldb, 1, c, ldc)) {
    count_packed();
    return;
  }
  switch (be) {
    case Backend::kAvx512:
      gemm_nn_avx512(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case Backend::kAvx2:
      gemm_nn_avx2(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    default:
      break;
  }
#endif
  gemm_nn_scalar(m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) noexcept {
  const Backend be = active_backend();
  count_dispatch(be);
#if DEEPCAT_SIMD_X86
  if (be != Backend::kScalar && use_packed_path(m, n, k) &&
      gemm_packed(be, m, n, k, a, 1, lda, b, ldb, 1, c, ldc)) {
    count_packed();
    return;
  }
  switch (be) {
    case Backend::kAvx512:
      gemm_tn_avx512(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case Backend::kAvx2:
      gemm_tn_avx2(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    default:
      break;
  }
#endif
  gemm_tn_scalar(m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) noexcept {
  const Backend be = active_backend();
  count_dispatch(be);
#if DEEPCAT_SIMD_X86
  if (be != Backend::kScalar && use_packed_path(m, n, k) &&
      gemm_packed(be, m, n, k, a, lda, 1, b, 1, ldb, c, ldc)) {
    count_packed();
    return;
  }
  switch (be) {
    case Backend::kAvx512:
      gemm_nt_avx512(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case Backend::kAvx2:
      gemm_nt_avx2(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    default:
      break;
  }
#endif
  gemm_nt_scalar(m, n, k, a, lda, b, ldb, c, ldc);
}

}  // namespace deepcat::common::simd
