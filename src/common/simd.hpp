// Vectorized numeric kernels with runtime dispatch — the single home for
// every SIMD code path in the library (SimSIMD-style: one scalar reference
// implementation per kernel, one implementation per ISA tier, and a
// dispatcher that picks at runtime). Everything above this layer (Matrix,
// Adam, the GP solver) calls these raw-pointer kernels and never touches
// intrinsics.
//
// ISA ladder: scalar < avx2+fma < avx512. Dispatch resolves the active
// tier per call from, in priority order:
//   1. compile-time: non-x86 targets, or -DDEEPCAT_DISABLE_SIMD=ON, build
//      only the scalar kernels;
//   2. process start: DEEPCAT_SIMD=scalar|avx2|avx512 caps the ladder
//      (values above what the CPU supports clamp down); the legacy
//      DEEPCAT_FORCE_SCALAR variable (any non-empty value except "0")
//      still pins the scalar path;
//   3. runtime: force_backend()/force_scalar() lower the cap
//      programmatically (used by the property tests and bench_micro to
//      compare tiers in one process) — they can never raise it above the
//      startup cap;
//   4. otherwise the highest tier the CPU supports runs.
//
// Numerical contract: vectorized kernels may reassociate reductions and
// contract mul+add into FMA, so results can differ between tiers in the
// last bits. The property tests bound the divergence at 1e-12 for the
// shapes the library uses. Broadcast-style GEMM kernels (gemm_nn/gemm_tn)
// keep each output element's FMA chain in ascending-k order on every tier
// and on the packed path, so those agree bit-for-bit across vector tiers;
// dot-style reductions (dot, gemm_nt) use per-tier accumulator trees and
// only meet the 1e-12 contract.
#pragma once

#include <cstddef>

namespace deepcat::common::simd {

// ---- ISA ladder ----------------------------------------------------------

/// Dispatch tiers, ordered: a numerically-larger Backend is a wider ISA.
enum class Backend : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// The tier kernels dispatch to right now (CPU capability, env cap and
/// programmatic cap all applied).
[[nodiscard]] Backend active_backend() noexcept;

/// Highest tier the CPU + compile flags support, ignoring the DEEPCAT_SIMD
/// / DEEPCAT_FORCE_SCALAR caps and force_backend(). What `deepcat info`
/// reports as "detected".
[[nodiscard]] Backend detected_backend() noexcept;

/// Highest tier selectable in this process: detected_backend() clamped by
/// the environment cap fixed at startup. force_backend() can pick any tier
/// at or below this.
[[nodiscard]] Backend max_backend() noexcept;

/// True when `b` can be activated via force_backend() in this process.
[[nodiscard]] bool backend_selectable(Backend b) noexcept;

/// Stable label for a tier: "scalar", "avx2+fma" or "avx512".
[[nodiscard]] const char* backend_label(Backend b) noexcept;

/// Label of the active tier — backend_label(active_backend()).
[[nodiscard]] const char* backend_name() noexcept;

/// Comma-joined ladder of detected tiers, lowest first, e.g.
/// "scalar,avx2+fma,avx512" on an AVX-512 machine.
[[nodiscard]] const char* isa_ladder() noexcept;

/// Caps dispatch at `cap` until changed (clamped to max_backend()).
/// Backend::kAvx512 removes the programmatic cap. Not thread-safe against
/// concurrent kernel calls; toggle only from a single thread with no
/// kernels in flight.
void force_backend(Backend cap) noexcept;

/// Legacy alias: force_backend(kScalar) while `on`, else removes the
/// programmatic cap.
void force_scalar(bool on) noexcept;

/// True when any vector tier is the active backend.
[[nodiscard]] bool vectorized_active() noexcept;

/// True when the vector kernels were compiled in at all (x86 target and no
/// -DDEEPCAT_DISABLE_SIMD). vectorized_active() can still be false at
/// runtime (CPU support, env caps, force_backend()).
[[nodiscard]] bool vector_compiled() noexcept;

// ---- Packed-GEMM path selection ------------------------------------------
// For operands at or above packed_gemm_min_dim() in every dimension, the
// GEMM dispatcher leaves the register-blocked micro-kernels for an
// L2-tiled packed path: A and B panels are copied once into contiguous
// micro-panel layouts sized to the L2 cache, so the inner kernels stream
// packed memory instead of striding the source matrices. Register blocking
// alone stops paying around there — exactly the OtterTune GP refit sizes.

/// kAuto picks by size threshold; the other values pin one path for
/// benchmarking and property tests (vector tiers only — the scalar
/// backend always runs the reference loops).
enum class GemmPath : int { kAuto = 0, kRegisterBlocked = 1, kPacked = 2 };

/// Pins the GEMM path while != kAuto. Same thread-safety caveat as
/// force_backend().
void force_gemm_path(GemmPath path) noexcept;

[[nodiscard]] GemmPath forced_gemm_path() noexcept;

/// The m/n/k floor at which kAuto switches to the packed path (every
/// dimension must reach it).
[[nodiscard]] std::size_t packed_gemm_min_dim() noexcept;

// ---- Backend-dispatch accounting ----------------------------------------
// Counts how many *chunky* kernel calls resolved to each tier — the GEMM
// family and the fused Adam steps, one increment per call. The tiny
// level-1 primitives (dot/axpy/sum) are deliberately uncounted: dot runs
// per matrix row inside the GP Cholesky, so even a relaxed fetch_add
// there would be a measurable hot-path tax. The obs layer folds these
// totals into metrics snapshots and `deepcat info`.

struct DispatchCounts {
  unsigned long long scalar_calls = 0;
  unsigned long long avx2_calls = 0;
  unsigned long long avx512_calls = 0;
  /// GEMM calls that took the L2-tiled packed path (each is also counted
  /// in its tier's column above).
  unsigned long long packed_calls = 0;
};

/// Snapshot of the process-wide dispatch counters.
[[nodiscard]] DispatchCounts dispatch_counts() noexcept;

/// Zeroes all counters (tests and bench runs isolate their own windows).
void reset_dispatch_counts() noexcept;

// ---- Level-1 primitives -------------------------------------------------

/// Inner product sum(a[i] * b[i]).
[[nodiscard]] double dot(const double* a, const double* b,
                         std::size_t n) noexcept;

/// Squared Euclidean distance sum((a[i] - b[i])^2).
[[nodiscard]] double squared_distance(const double* a, const double* b,
                                      std::size_t n) noexcept;

// ---- Batched distance kernels -------------------------------------------
// One query vector against a dense row-major matrix — the retrieval
// index's k-NN scan (SimSIMD-style: the whole matrix sweep is one
// dispatched call, so these count toward DispatchCounts like the GEMM
// family). Per-row reductions use each tier's accumulator tree and meet
// the 1e-12 contract; the cosine epilogue is the identical scalar formula
// on every tier.

/// out[r] = sum_j (query[j] - rows[r*dim + j])^2 for r in [0, n_rows).
void squared_distances(const double* query, const double* rows,
                       std::size_t n_rows, std::size_t dim,
                       double* out) noexcept;

/// out[r] = 1 - dot(query, row_r) / sqrt(|query|^2 * |row_r|^2), the
/// cosine distance in [0, 2]. A zero-norm query or row yields 1.0 (no
/// directional information — maximally non-similar without being
/// anti-aligned) on every backend.
void cosine_distances(const double* query, const double* rows,
                      std::size_t n_rows, std::size_t dim,
                      double* out) noexcept;

/// sum(a[i]).
[[nodiscard]] double sum(const double* a, std::size_t n) noexcept;

/// sum(a[i]^2) — the gradient-clipping reduction.
[[nodiscard]] double sum_squares(const double* a, std::size_t n) noexcept;

/// y[i] += alpha * x[i].
void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept;

/// Fused Adam parameter update over one flat tensor:
///   g      = grad[i] * scale
///   m[i]   = beta1 * m[i] + (1 - beta1) * g
///   v[i]   = beta2 * v[i] + (1 - beta2) * g^2
///   value[i] -= lr * (m[i] / bc1) / (sqrt(v[i] / bc2) + eps)
/// Identical formula on every backend (bias corrections passed as the
/// divisors bc1/bc2, exactly like the scalar reference).
void adam_update(double* value, const double* grad, double* m, double* v,
                 std::size_t n, double scale, double beta1, double beta2,
                 double bc1, double bc2, double lr, double eps) noexcept;

/// One Adam-managed tensor: parameter values, gradients and both moment
/// vectors, all `n` elements long. The pointers alias nothing else passed
/// to the same kernel call.
struct AdamTensor {
  double* value;
  const double* grad;
  double* m;
  double* v;
  std::size_t n;
};

/// Whole-step Adam with fused global gradient-norm clipping over a set of
/// tensors. Accumulates sum(grad^2) across the tensors in array order,
/// derives scale = min(1, grad_clip / ||grad||) (grad_clip <= 0 disables
/// clipping), then applies adam_update to every tensor — one kernel call
/// per optimizer step instead of a separate norm pass per tensor. The
/// reduction order and per-element formula match the unfused composition
/// exactly, so results are bit-identical on each backend.
void adam_update_clipped(const AdamTensor* tensors, std::size_t count,
                         double grad_clip, double beta1, double beta2,
                         double bc1, double bc2, double lr,
                         double eps) noexcept;

// ---- Level-3 GEMM kernels ----------------------------------------------
// All accumulate into C (C += ...), so the caller controls the epilogue
// start state: zero-filled for a plain product, bias-broadcast rows for the
// fused linear-layer forward. Leading dimensions are element strides.
// Every variant dispatches across the ISA ladder and, at packed sizes
// (see packed_gemm_min_dim()), through the L2-tiled packed path.

/// C(m x n) += A(m x k) * B(k x n). Register-blocked broadcast-A /
/// streamed-B micro-kernel on the vector tiers (4x8 on avx2, 4x16 on
/// avx512); the scalar path is the cache-friendly ikj loop with a
/// zero-skip on A (which makes post-ReLU activations cheap).
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) noexcept;

/// C(m x n) += A^T * B where A is stored (k x m): C[i][j] += A[p][i]*B[p][j].
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) noexcept;

/// C(m x n) += A * B^T where B is stored (n x k): C[i][j] += dot(A[i], B[j]).
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) noexcept;

}  // namespace deepcat::common::simd
