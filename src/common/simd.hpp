// Vectorized numeric kernels with runtime dispatch — the single home for
// every SIMD code path in the library (SimSIMD-style: one scalar reference
// implementation per kernel, one AVX2+FMA implementation, and a dispatcher
// that picks at runtime). Everything above this layer (Matrix, Adam, the
// GP solver) calls these raw-pointer kernels and never touches intrinsics.
//
// Dispatch rules, in priority order:
//   1. compile-time: non-x86 targets, or -DDEEPCAT_DISABLE_SIMD=ON, build
//      only the scalar kernels;
//   2. process start: the DEEPCAT_FORCE_SCALAR environment variable (any
//      non-empty value except "0") pins the scalar path;
//   3. runtime: force_scalar(true/false) toggles programmatically (used by
//      the property tests to compare backends in one process);
//   4. otherwise the AVX2+FMA path runs iff the CPU supports it.
//
// Numerical contract: vectorized kernels may reassociate reductions and
// contract mul+add into FMA, so results can differ from the scalar path in
// the last bits. The property tests bound the divergence at 1e-12 for the
// shapes the library uses.
#pragma once

#include <cstddef>

namespace deepcat::common::simd {

/// True when the AVX2+FMA kernels are the active backend.
[[nodiscard]] bool vectorized_active() noexcept;

/// "avx2+fma" or "scalar" — whatever vectorized_active() resolves to.
[[nodiscard]] const char* backend_name() noexcept;

/// Pins the scalar fallback while `on` (overrides CPU detection, not the
/// compile-time gate). Not thread-safe against concurrent kernel calls;
/// toggle only from a single thread with no kernels in flight.
void force_scalar(bool on) noexcept;

/// True when the AVX2 kernels were compiled in at all (x86 target and no
/// -DDEEPCAT_DISABLE_SIMD). vectorized_active() can still be false at
/// runtime (CPU support, DEEPCAT_FORCE_SCALAR, force_scalar()).
[[nodiscard]] bool vector_compiled() noexcept;

// ---- Backend-dispatch accounting ----------------------------------------
// Counts how many *chunky* kernel calls resolved to each backend — the
// GEMM family and the fused Adam steps, one increment per call. The tiny
// level-1 primitives (dot/axpy/sum) are deliberately uncounted: dot runs
// per matrix row inside the GP Cholesky, so even a relaxed fetch_add
// there would be a measurable hot-path tax. The obs layer folds these
// totals into metrics snapshots and `deepcat info`.

struct DispatchCounts {
  unsigned long long vector_calls = 0;
  unsigned long long scalar_calls = 0;
};

/// Snapshot of the process-wide dispatch counters.
[[nodiscard]] DispatchCounts dispatch_counts() noexcept;

/// Zeroes both counters (tests and bench runs isolate their own windows).
void reset_dispatch_counts() noexcept;

// ---- Level-1 primitives -------------------------------------------------

/// Inner product sum(a[i] * b[i]).
[[nodiscard]] double dot(const double* a, const double* b,
                         std::size_t n) noexcept;

/// Squared Euclidean distance sum((a[i] - b[i])^2).
[[nodiscard]] double squared_distance(const double* a, const double* b,
                                      std::size_t n) noexcept;

/// sum(a[i]).
[[nodiscard]] double sum(const double* a, std::size_t n) noexcept;

/// sum(a[i]^2) — the gradient-clipping reduction.
[[nodiscard]] double sum_squares(const double* a, std::size_t n) noexcept;

/// y[i] += alpha * x[i].
void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept;

/// Fused Adam parameter update over one flat tensor:
///   g      = grad[i] * scale
///   m[i]   = beta1 * m[i] + (1 - beta1) * g
///   v[i]   = beta2 * v[i] + (1 - beta2) * g^2
///   value[i] -= lr * (m[i] / bc1) / (sqrt(v[i] / bc2) + eps)
/// Identical formula on both backends (bias corrections passed as the
/// divisors bc1/bc2, exactly like the scalar reference).
void adam_update(double* value, const double* grad, double* m, double* v,
                 std::size_t n, double scale, double beta1, double beta2,
                 double bc1, double bc2, double lr, double eps) noexcept;

/// One Adam-managed tensor: parameter values, gradients and both moment
/// vectors, all `n` elements long. The pointers alias nothing else passed
/// to the same kernel call.
struct AdamTensor {
  double* value;
  const double* grad;
  double* m;
  double* v;
  std::size_t n;
};

/// Whole-step Adam with fused global gradient-norm clipping over a set of
/// tensors. Accumulates sum(grad^2) across the tensors in array order,
/// derives scale = min(1, grad_clip / ||grad||) (grad_clip <= 0 disables
/// clipping), then applies adam_update to every tensor — one kernel call
/// per optimizer step instead of a separate norm pass per tensor. The
/// reduction order and per-element formula match the unfused composition
/// exactly, so results are bit-identical on each backend.
void adam_update_clipped(const AdamTensor* tensors, std::size_t count,
                         double grad_clip, double beta1, double beta2,
                         double bc1, double bc2, double lr,
                         double eps) noexcept;

// ---- Level-3 GEMM kernels ----------------------------------------------
// All accumulate into C (C += ...), so the caller controls the epilogue
// start state: zero-filled for a plain product, bias-broadcast rows for the
// fused linear-layer forward. Leading dimensions are element strides.

/// C(m x n) += A(m x k) * B(k x n). Register-blocked 4x8 micro-kernel with
/// a broadcast-A / streamed-B FMA inner loop on the vector path; the
/// scalar path is the cache-friendly ikj loop with a zero-skip on A (which
/// makes post-ReLU activations cheap).
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) noexcept;

/// C(m x n) += A^T * B where A is stored (k x m): C[i][j] += A[p][i]*B[p][j].
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) noexcept;

/// C(m x n) += A * B^T where B is stored (n x k): C[i][j] += dot(A[i], B[j]).
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) noexcept;

}  // namespace deepcat::common::simd
