#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/math_util.hpp"

namespace deepcat::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::scoped_lock lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace deepcat::common
