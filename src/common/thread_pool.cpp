#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/math_util.hpp"

namespace deepcat::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::scoped_lock lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size());
  const std::size_t per_chunk = ceil_div(n, chunks);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    futures.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace deepcat::common
