// Fixed-size thread pool with parallel_for/parallel_map helpers. The
// experiment harnesses use it to evaluate independent work items
// concurrently (Fig. 2's 200 random configs, Fig. 6/7's workload sweeps,
// repeated-seed loops). All parallelism in the library is explicit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/math_util.hpp"

namespace deepcat::common {

class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future surfaces exceptions to the caller.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), blocking until all complete.
  ///
  /// Work is block-partitioned into at most size() contiguous chunks — one
  /// task per worker, not one per index — and fn is invoked directly (no
  /// per-index std::function hop). Within a chunk, indices run in
  /// increasing order on a single worker thread.
  ///
  /// Thread-safety contract for `fn`: it is called concurrently from
  /// multiple worker threads with distinct indices. It must not mutate
  /// shared state without synchronization; writing to disjoint per-index
  /// slots (e.g. out[i]) is safe. For deterministic results independent of
  /// the pool size, derive all randomness from the index (see mix_seed in
  /// common/rng.hpp) instead of sharing an RNG across indices.
  ///
  /// Exceptions: a throwing chunk skips its own remaining indices, but the
  /// other chunks are never cancelled — all are awaited. If several chunks
  /// throw, the earliest-submitted chunk's exception is rethrown here.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    if (n == 1) {  // run inline: nothing to overlap, skip the queue
      fn(std::size_t{0});
      return;
    }
    const std::size_t chunks = std::min(n, size());
    const std::size_t per_chunk = ceil_div(n, chunks);
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (std::size_t begin = 0; begin < n; begin += per_chunk) {
      const std::size_t end = std::min(n, begin + per_chunk);
      futures.push_back(submit([&fn, begin, end] {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }));
    }
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Runs fn(i) for i in [begin, end) with the same contract as
  /// parallel_for. Ranges shorter than `grain` run inline on the calling
  /// thread: the per-column Cholesky trailing updates shrink as the
  /// factorization advances, and enqueueing a handful of rows costs more
  /// than computing them. Chunks are contiguous and ascending, so any
  /// fn whose per-index result depends only on i is pool-size invariant.
  template <typename Fn>
  void parallel_for_range(std::size_t begin, std::size_t end,
                          std::size_t grain, Fn&& fn) {
    if (end <= begin) return;
    const std::size_t n = end - begin;
    if (n < grain || size() <= 1) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      return;
    }
    parallel_for(n, [&fn, begin](std::size_t i) { fn(begin + i); });
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Evaluates fn(i) for i in [0, n) on the pool and returns the results
/// indexed by i. Because each result lands in its own slot and fn should
/// depend only on i (per-index seeding), the returned vector is identical
/// for any pool size — the harness determinism guarantee rests on this.
template <typename Fn>
[[nodiscard]] auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(n);
  pool.parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace deepcat::common
