// Fixed-size thread pool with a parallel_for helper. The experiment
// harnesses use it to evaluate independent configurations concurrently
// (Fig. 2's 200 random configs, Fig. 6/7's 12 workload sweep). All
// parallelism in the library is explicit, per the HPC guides.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace deepcat::common {

class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future surfaces exceptions to the caller.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), blocking until all complete. Work is
  /// block-partitioned across the pool. Exceptions from any chunk are
  /// rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace deepcat::common
