// Minimal leveled logger. Benches and examples use INFO for narrative
// output; the library itself logs sparingly at DEBUG so tests stay quiet.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace deepcat::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kWarn
/// so unit tests are silent unless something is wrong.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Writes one formatted line ("[LEVEL] message\n") to stderr if enabled.
void log_line(LogLevel level, std::string_view message);

/// Stream-style helper: LogStream(LogLevel::kInfo) << "x=" << x;
/// Flushes on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define DEEPCAT_LOG(level) ::deepcat::common::LogStream(level)
#define DEEPCAT_LOG_INFO DEEPCAT_LOG(::deepcat::common::LogLevel::kInfo)
#define DEEPCAT_LOG_WARN DEEPCAT_LOG(::deepcat::common::LogLevel::kWarn)

}  // namespace deepcat::common
