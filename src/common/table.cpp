#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace deepcat::common {

Table& Table::header(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << c << std::string(widths[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  print_rule();
  if (!header_.empty()) {
    print_cells(header_);
    print_rule();
  }
  for (const auto& r : rows_) print_cells(r);
  print_rule();
}

namespace {
void print_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os << ',';
    const bool quote =
        cells[i].find_first_of(",\"\n") != std::string::npos;
    if (!quote) {
      os << cells[i];
    } else {
      os << '"';
      for (char ch : cells[i]) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    }
  }
  os << '\n';
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  if (!header_.empty()) print_csv_row(os, header_);
  for (const auto& r : rows_) print_csv_row(os, r);
}

std::string cell(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string cell(std::size_t value) { return std::to_string(value); }
std::string cell(int value) { return std::to_string(value); }

std::string speedup_cell(double factor) { return cell(factor, 2) + "x"; }

std::string percent_cell(double fraction, int digits) {
  return cell(fraction * 100.0, digits) + "%";
}

}  // namespace deepcat::common
