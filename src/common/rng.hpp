// Deterministic, seedable pseudo-random number generation for the whole
// library. Every stochastic component (NN init, exploration noise, simulator
// jitter, replay sampling) draws from an explicitly seeded Rng so that
// experiments are reproducible bit-for-bit across runs.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace deepcat::common {

/// The full serializable state of an Rng: the four xoshiro lanes plus the
/// Marsaglia-polar spare cache. Restoring it resumes the stream exactly
/// where it left off — the checkpoint layer depends on this to make
/// save→load→tune bit-identical to tune-without-save.
struct RngState {
  std::array<std::uint64_t, 4> s{};
  double spare = 0.0;
  bool has_spare = false;
};

/// SplitMix64 finalizer over `base ^ index`. Gives every loop index its own
/// well-mixed 64-bit seed so parallel_for bodies can build a private Rng per
/// index: results then depend only on (base, index), never on which thread
/// ran the index or how the pool chunked the loop.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t base,
                                               std::uint64_t index) noexcept {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), wrapped in a value-semantic class. Satisfies
/// UniformRandomBitGenerator so it can drive <random> distributions,
/// although we provide our own distribution helpers to guarantee identical
/// streams across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64, which is the
  /// canonical way to expand a single word into a full xoshiro state.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit word.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Uniform index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) noexcept;

  /// Standard normal via Marsaglia polar method (cached spare).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw with probability `p` of true.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      using std::swap;
      swap(v[i], v[index(i + 1)]);
    }
  }

  /// Derives an independent child stream; used to hand each worker thread
  /// or sub-component its own generator without sharing state.
  [[nodiscard]] Rng split() noexcept;

  /// Snapshot / exact-resume of the generator state.
  [[nodiscard]] RngState state() const noexcept;
  void restore(const RngState& state) noexcept;

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace deepcat::common
