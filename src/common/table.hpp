// ASCII table and CSV emission for the benchmark harnesses. Every bench
// binary prints the rows/series the paper's corresponding table or figure
// reports, using these helpers for consistent formatting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace deepcat::common {

/// Column-aligned ASCII table with a title, header row, and data rows.
/// Cells are plain strings; use `cell()` helpers for numeric formatting.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> names);
  Table& row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Renders the table with box-drawing separators.
  void print(std::ostream& os) const;

  /// Renders the same content as CSV (header then rows).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string cell(double value, int digits = 2);
[[nodiscard]] std::string cell(std::size_t value);
[[nodiscard]] std::string cell(int value);

/// "1.45x"-style speedup cell.
[[nodiscard]] std::string speedup_cell(double factor);

/// "12.3%"-style percentage cell.
[[nodiscard]] std::string percent_cell(double fraction, int digits = 2);

}  // namespace deepcat::common
