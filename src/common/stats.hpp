// Descriptive statistics helpers used by the experiment harnesses
// (means, percentiles, CDFs) and by tests asserting on distributions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace deepcat::common {

/// Streaming accumulator (Welford) for mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact streaming quantiles by sorted insertion. add() keeps the sample
/// set ordered (binary-search insert), so quantile() is an O(1) nearest-rank
/// lookup at any point in the stream — no batch barrier, no re-sort, and the
/// answer is exact (not a sketch), identical to sorting the samples seen so
/// far. The service layer uses it for p50/p95 recommendation cost over an
/// unbounded request stream.
class QuantileTracker {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return sorted_.size(); }

  /// Nearest-rank quantile, p in [0, 1]: element at round(p * (n-1)) of the
  /// sorted samples. Returns 0 on an empty tracker.
  [[nodiscard]] double quantile(double p) const noexcept;

 private:
  std::vector<double> sorted_;
};

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;
[[nodiscard]] double sum(std::span<const double> xs) noexcept;
[[nodiscard]] double min_of(std::span<const double> xs) noexcept;
[[nodiscard]] double max_of(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Copies + sorts internally.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Geometric mean; requires all-positive inputs.
[[nodiscard]] double geomean(std::span<const double> xs);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;        ///< sample value (sorted ascending)
  double cum_prob = 0.0;     ///< P(X <= value)
};

/// Full empirical CDF of the sample set (one point per sample).
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

/// Fraction of samples <= threshold.
[[nodiscard]] double fraction_below(std::span<const double> xs,
                                    double threshold) noexcept;

/// Pearson correlation coefficient; 0 when either side is constant.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys) noexcept;

/// Spearman rank correlation; used to check that the Twin-Q indicator
/// tracks the real reward ordering (paper Fig. 3).
[[nodiscard]] double spearman(std::span<const double> xs,
                              std::span<const double> ys);

}  // namespace deepcat::common
