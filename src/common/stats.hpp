// Descriptive statistics helpers used by the experiment harnesses
// (means, percentiles, CDFs) and by tests asserting on distributions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace deepcat::common {

/// Streaming accumulator (Welford) for mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming quantiles by sorted insertion. add() keeps the sample set
/// ordered (binary-search insert), so quantile() is an O(1) nearest-rank
/// lookup at any point in the stream — no batch barrier, no re-sort.
///
/// Two modes:
///   * exact (default, max_samples = 0): every sample is retained and the
///     answer is identical to sorting the samples seen so far.
///   * bounded (max_samples > 0): once the retained set would exceed the
///     cap, it is compacted to half by keeping every second sample of the
///     sorted set (even ranks, plus the last sample so the maximum
///     survives). The retained set stays an order-statistics skeleton of
///     everything seen, so quantiles degrade gracefully (error is at most
///     one skeleton gap) while memory stays O(max_samples). Compaction is
///     a pure function of the retained sorted set, hence deterministic
///     for a given arrival multiset prefix. Long-lived streaming services
///     use this mode so an unbounded request stream cannot grow the
///     tracker without bound.
class QuantileTracker {
 public:
  QuantileTracker() = default;
  /// max_samples = 0 keeps every sample (exact mode); otherwise the
  /// retained set never exceeds max_samples (minimum enforced cap: 2).
  explicit QuantileTracker(std::size_t max_samples) noexcept;

  void add(double x);

  /// Samples currently retained (== samples seen, in exact mode).
  [[nodiscard]] std::size_t count() const noexcept { return sorted_.size(); }

  /// Total samples ever added, retained or not.
  [[nodiscard]] std::size_t total_count() const noexcept { return total_; }

  /// True when compaction has discarded samples (never in exact mode).
  [[nodiscard]] bool compacted() const noexcept { return total_ != sorted_.size(); }

  /// Nearest-rank quantile over the retained set, p in [0, 1]: element at
  /// round(p * (n-1)). Returns 0 on an empty tracker.
  [[nodiscard]] double quantile(double p) const noexcept;

 private:
  std::vector<double> sorted_;
  std::size_t max_samples_ = 0;
  std::size_t total_ = 0;
};

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;
[[nodiscard]] double sum(std::span<const double> xs) noexcept;
[[nodiscard]] double min_of(std::span<const double> xs) noexcept;
[[nodiscard]] double max_of(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Copies + sorts internally.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Geometric mean; requires all-positive inputs.
[[nodiscard]] double geomean(std::span<const double> xs);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;        ///< sample value (sorted ascending)
  double cum_prob = 0.0;     ///< P(X <= value)
};

/// Full empirical CDF of the sample set (one point per sample).
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

/// Fraction of samples <= threshold.
[[nodiscard]] double fraction_below(std::span<const double> xs,
                                    double threshold) noexcept;

/// Pearson correlation coefficient; 0 when either side is constant.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys) noexcept;

/// Spearman rank correlation; used to check that the Twin-Q indicator
/// tracks the real reward ordering (paper Fig. 3).
[[nodiscard]] double spearman(std::span<const double> xs,
                              std::span<const double> ys);

}  // namespace deepcat::common
