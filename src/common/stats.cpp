#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/simd.hpp"

namespace deepcat::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

QuantileTracker::QuantileTracker(std::size_t max_samples) noexcept
    : max_samples_(max_samples == 0 ? 0 : std::max<std::size_t>(max_samples, 2)) {}

void QuantileTracker::add(double x) {
  sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), x), x);
  ++total_;
  if (max_samples_ != 0 && sorted_.size() > max_samples_) {
    // Halve by keeping even ranks of the sorted set; force-keep the last
    // element so quantile(1.0) still reports the retained maximum.
    std::vector<double> kept;
    kept.reserve(sorted_.size() / 2 + 1);
    for (std::size_t i = 0; i < sorted_.size(); i += 2) kept.push_back(sorted_[i]);
    if (kept.back() != sorted_.back()) kept.push_back(sorted_.back());
    sorted_ = std::move(kept);
  }
}

double QuantileTracker::quantile(double p) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::clamp(p, 0.0, 1.0) * static_cast<double>(sorted_.size() - 1) + 0.5);
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

double sum(std::span<const double> xs) noexcept {
  return simd::sum(xs.data(), xs.size());
}

double min_of(std::span<const double> xs) noexcept {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      (std::clamp(p, 0.0, 100.0) / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("geomean: empty sample");
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean: non-positive sample");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

double fraction_below(std::span<const double> xs, double threshold) noexcept {
  if (xs.empty()) return 0.0;
  const auto count = std::count_if(xs.begin(), xs.end(),
                                   [&](double x) { return x <= threshold; });
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

double pearson(std::span<const double> xs,
               std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
// Average ranks (ties share the mean rank), 1-based.
std::vector<double> ranks(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(xs.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}
}  // namespace

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("spearman: size mismatch");
  }
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

}  // namespace deepcat::common
