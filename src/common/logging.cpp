#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace deepcat::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace deepcat::common
