#include "common/rng.hpp"

#include <cmath>

namespace deepcat::common {

namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>((*this)() % span);
}

std::size_t Rng::index(std::size_t n) noexcept {
  return static_cast<std::size_t>((*this)() % n);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  has_spare_ = true;
  return u * m;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::split() noexcept { return Rng((*this)() ^ 0xA5A5A5A55A5A5A5AULL); }

RngState Rng::state() const noexcept {
  RngState st;
  st.s = {s_[0], s_[1], s_[2], s_[3]};
  st.spare = spare_;
  st.has_spare = has_spare_;
  return st;
}

void Rng::restore(const RngState& state) noexcept {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  spare_ = state.spare;
  has_spare_ = state.has_spare;
}

}  // namespace deepcat::common
