// Small scalar helpers shared across modules, plus span-friendly wrappers
// over the SIMD-dispatched vector kernels in common/simd.hpp.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>

#include "common/simd.hpp"

namespace deepcat::common {

/// Clamps `x` into [lo, hi].
[[nodiscard]] constexpr double clamp(double x, double lo, double hi) noexcept {
  return std::min(std::max(x, lo), hi);
}

/// Linear interpolation: lerp(a, b, 0) == a, lerp(a, b, 1) == b (exactly —
/// the two-product form avoids the a + (b-a)*t rounding drift at t == 1).
[[nodiscard]] constexpr double lerp(double a, double b, double t) noexcept {
  return a * (1.0 - t) + b * t;
}

/// Inverse of lerp over [lo, hi]; returns t in [0,1] for x in range.
[[nodiscard]] constexpr double unlerp(double lo, double hi, double x) noexcept {
  return hi == lo ? 0.0 : (x - lo) / (hi - lo);
}

/// Numerically safe division: returns `fallback` when |den| is tiny.
[[nodiscard]] inline double safe_div(double num, double den,
                                     double fallback = 0.0) noexcept {
  return std::abs(den) < 1e-300 ? fallback : num / den;
}

/// Logistic sigmoid.
[[nodiscard]] inline double sigmoid(double x) noexcept {
  return 1.0 / (1.0 + std::exp(-x));
}

/// True if two doubles agree to a relative-or-absolute tolerance.
[[nodiscard]] inline bool almost_equal(double a, double b,
                                       double tol = 1e-9) noexcept {
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Integer ceiling division for non-negative operands.
[[nodiscard]] constexpr std::size_t ceil_div(std::size_t num,
                                             std::size_t den) noexcept {
  return den == 0 ? 0 : (num + den - 1) / den;
}

// Vectorized (runtime-dispatched) reductions. Callers guarantee matching
// lengths; the shorter span bounds the loop so a mismatch cannot overrun.

/// sum(a[i] * b[i]).
[[nodiscard]] inline double dot(std::span<const double> a,
                                std::span<const double> b) noexcept {
  return simd::dot(a.data(), b.data(), std::min(a.size(), b.size()));
}

/// sum((a[i] - b[i])^2).
[[nodiscard]] inline double squared_distance(
    std::span<const double> a, std::span<const double> b) noexcept {
  return simd::squared_distance(a.data(), b.data(),
                                std::min(a.size(), b.size()));
}

/// sum(a[i]^2).
[[nodiscard]] inline double sum_squares(std::span<const double> a) noexcept {
  return simd::sum_squares(a.data(), a.size());
}

/// y[i] += alpha * x[i].
inline void axpy(double alpha, std::span<const double> x,
                 std::span<double> y) noexcept {
  simd::axpy(alpha, x.data(), y.data(), std::min(x.size(), y.size()));
}

}  // namespace deepcat::common
