#include "net/http.hpp"

#include <sys/socket.h>

#include <cerrno>

namespace deepcat::net {

namespace {

// Case-sensitive method match on purpose: "get" is not a valid token for
// the methods grammar's registered names, and typed 405 beats guessing.
constexpr std::string_view kCrlfCrlf = "\r\n\r\n";

HttpParseResult fail(HttpError& error, int status, std::string message) {
  error.status = status;
  error.message = std::move(message);
  return HttpParseResult::kError;
}

}  // namespace

HttpParseResult parse_http_request(std::string_view buffer,
                                   HttpRequest& request, HttpError& error) {
  // A bare LF-LF terminator is tolerated (curl never sends it, humans
  // with netcat do); anything else keeps accumulating until the bound.
  std::size_t head_end = buffer.find(kCrlfCrlf);
  if (head_end == std::string_view::npos) head_end = buffer.find("\n\n");
  if (head_end == std::string_view::npos) {
    if (buffer.size() > kMaxHttpRequestBytes) {
      return fail(error, 431,
                  "request head exceeds " +
                      std::to_string(kMaxHttpRequestBytes) + " bytes");
    }
    return HttpParseResult::kNeedMore;
  }
  const std::string_view head = buffer.substr(0, head_end);
  const std::size_t line_end = head.find('\n');
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  // Request line: METHOD SP TARGET SP VERSION — exactly two spaces.
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || line.find(' ', sp2 + 1) !=
                                        std::string_view::npos) {
    return fail(error, 400, "malformed request line");
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);

  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return fail(error, 505,
                "unsupported protocol version '" + std::string(version) + "'");
  }
  if (method != "GET") {
    return fail(error, 405, "method '" + std::string(method) +
                                "' not allowed; this endpoint is GET-only");
  }
  if (target.empty() || target.front() != '/') {
    return fail(error, 400,
                "request target must be an absolute path, got '" +
                    std::string(target) + "'");
  }
  for (const char c : target) {
    if (c < 0x21 || c == 0x7f) {
      return fail(error, 400, "control byte in request target");
    }
  }

  // Headers are skipped except Content-Length: a GET with a declared body
  // is refused (413) rather than having its body bytes misparsed as a
  // second request.
  const std::string_view headers =
      line_end == std::string_view::npos ? std::string_view()
                                         : head.substr(line_end + 1);
  std::size_t pos = 0;
  while (pos < headers.size()) {
    std::size_t eol = headers.find('\n', pos);
    if (eol == std::string_view::npos) eol = headers.size();
    std::string_view header = headers.substr(pos, eol - pos);
    pos = eol + 1;
    if (!header.empty() && header.back() == '\r') header.remove_suffix(1);
    const std::size_t colon = header.find(':');
    if (header.empty() || colon == std::string_view::npos) continue;
    std::string key(header.substr(0, colon));
    for (char& c : key) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    if (key != "content-length") continue;
    std::string_view value = header.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    if (value != "0") {
      return fail(error, 413, "request bodies are not accepted");
    }
  }

  const std::size_t q = target.find('?');
  request.method = std::string(method);
  request.path = std::string(target.substr(0, q));
  request.query =
      q == std::string_view::npos ? std::string() : std::string(target.substr(q + 1));
  return HttpParseResult::kRequest;
}

std::string_view http_status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Error";
  }
}

std::string render_http_response(int status, std::string_view content_type,
                                 std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += http_status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string render_http_error(const HttpError& error) {
  std::string body = std::to_string(error.status) + " ";
  body += http_status_reason(error.status);
  body += ": " + error.message + "\n";
  return render_http_response(error.status, "text/plain; charset=utf-8", body);
}

IoStatus HttpConnection::read_some() {
  char buf[4096];
  bool progressed = false;
  // One byte past the head bound is enough for the parser to prove the
  // 431; reading further would let a hostile peer stream forever.
  while (buffer_.size() <= kMaxHttpRequestBytes) {
    const std::size_t room = kMaxHttpRequestBytes + 1 - buffer_.size();
    const ssize_t n =
        ::recv(fd_.get(), buf, room < sizeof buf ? room : sizeof buf, 0);
    if (n > 0) {
      buffer_.append(buf, static_cast<std::size_t>(n));
      progressed = true;
      continue;
    }
    if (n == 0) return IoStatus::kEof;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return progressed ? IoStatus::kOk : IoStatus::kWouldBlock;
    }
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus HttpConnection::flush_writes() {
  while (write_pos_ < write_buffer_.size()) {
    const ssize_t n =
        ::send(fd_.get(), write_buffer_.data() + write_pos_,
               write_buffer_.size() - write_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      write_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
  if (write_pos_ > 0) {
    write_buffer_.clear();
    write_pos_ = 0;
  }
  return IoStatus::kOk;
}

}  // namespace deepcat::net
