// Socket setup helpers for the serving front end: AF_UNIX and TCP
// listeners plus blocking client connects, all returning RAII-owned fds.
//
// Failure reporting is uniform: every function throws std::runtime_error
// with the failing syscall and errno text; no function returns an invalid
// fd. Listener fds are created CLOEXEC and left blocking — the event loop
// flips accepted connection fds to nonblocking, the blocking client keeps
// its fd blocking on purpose.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "net/fd.hpp"

namespace deepcat::net {

/// One bound + listening socket. For AF_UNIX listeners `socket_file` owns
/// the bound path (unlinked when the listener dies); for TCP it is empty
/// and `port` carries the actual bound port (resolving port 0 requests).
struct Listener {
  FdGuard fd;
  UnlinkGuard socket_file;
  std::uint16_t port = 0;
};

/// Binds and listens on an AF_UNIX stream socket at `path`. Any stale
/// socket file at `path` is unlinked first (the legacy serve contract).
/// Throws when the path exceeds sockaddr_un::sun_path.
[[nodiscard]] Listener listen_unix(const std::string& path, int backlog);

/// Binds and listens on IPv4 TCP `host:port` with SO_REUSEADDR. `host`
/// accepts dotted-quad or "localhost"; port 0 binds an ephemeral port
/// (the actual port is reported in Listener::port).
[[nodiscard]] Listener listen_tcp(const std::string& host, std::uint16_t port,
                                  int backlog);

/// Blocking client connects (used by `deepcat stats`, the load-gen bench
/// and the socket tests).
[[nodiscard]] FdGuard connect_unix(const std::string& path);
[[nodiscard]] FdGuard connect_tcp(const std::string& host, std::uint16_t port);

/// Sets O_NONBLOCK; throws on fcntl failure.
void set_nonblocking(int fd);

/// Splits "host:port" (host may be empty → "127.0.0.1"). Throws on a
/// missing/invalid port.
[[nodiscard]] std::pair<std::string, std::uint16_t> parse_host_port(
    const std::string& spec);

}  // namespace deepcat::net
