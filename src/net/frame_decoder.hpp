// Incremental DCWP decoder for nonblocking transports.
//
// The istream reader in service/wire.hpp blocks until a whole frame is
// present; an epoll loop instead receives arbitrary byte slices. This
// decoder buffers fed bytes and yields complete validated frames as they
// materialize, enforcing the same contract as the stream reader, in the
// same order the stream reader would discover violations:
//
//   - stream header (magic + version) validated first;
//   - unknown frame type rejected as soon as the 12-byte head is present;
//   - payload length checked against kMaxFramePayload BEFORE buffering a
//     payload, so a hostile length can never balloon the buffer;
//   - CRC over head+payload checked when the frame completes.
//
// Violations throw service::WireError with the stream reader's message
// text (both paths share known_frame_type/frame_type_name, and tests
// compare messages) — after a throw the decoder is poisoned and must be
// discarded, exactly like an unreadable stream. Truncation (EOF mid-
// frame) is the transport's call: it asks `midstream()` when the peer
// hangs up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "service/wire.hpp"

namespace deepcat::net {

class FrameDecoder {
 public:
  /// Appends received bytes to the internal buffer. Cheap; validation
  /// happens in next().
  void feed(const char* data, std::size_t size) { buffer_.append(data, size); }

  /// Returns the next complete frame, or nullopt when more bytes are
  /// needed. Throws service::WireError on any protocol violation.
  [[nodiscard]] std::optional<service::Frame> next();

  /// True once the stream header has been consumed and validated.
  [[nodiscard]] bool header_seen() const noexcept { return header_seen_; }

  /// True when EOF now would cut a frame (or the header) in half — i.e.
  /// there are buffered undecoded bytes or the header never arrived.
  [[nodiscard]] bool midstream() const noexcept {
    return available() != 0 || !header_seen_;
  }

  /// Undecoded bytes currently buffered.
  [[nodiscard]] std::size_t buffered() const noexcept { return available(); }

 private:
  std::string buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix, compacted between frames
  bool header_seen_ = false;

  void compact();
  [[nodiscard]] std::size_t available() const noexcept {
    return buffer_.size() - pos_;
  }
};

}  // namespace deepcat::net
