// Minimal HTTP/1.1 surface for the observability endpoint.
//
// This is deliberately NOT a web server: the front end exposes exactly
// four read-only GET routes (/metrics, /healthz, /varz, /timeseries) on a
// dedicated acceptor, multiplexed on the same epoll loop as the DCWP
// connections. The parser is therefore a sibling of FrameDecoder, not a
// general HTTP implementation:
//
//   - GET only (anything else is a typed 405);
//   - the whole request head is bounded by kMaxHttpRequestBytes — a head
//     that exceeds it without terminating is a 431, never an unbounded
//     buffer;
//   - HTTP/1.0 and HTTP/1.1 are accepted, anything else is a 505;
//   - bodies are ignored; every response carries Content-Length and
//     "Connection: close", and the connection closes after one exchange —
//     no keep-alive state machine to get wrong.
//
// Malformed input always yields a typed 4xx/5xx response (400 bad request
// line, 404 unknown route, 405 bad method, 413 oversized declared body,
// 431 oversized head, 505 bad version) — mirroring the wire contract that
// protocol errors are answered, never silently dropped. The HTTP fuzz leg
// drives mutated requests through parse_http_request and pins "typed
// error or request, never a crash".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/connection.hpp"
#include "net/fd.hpp"

namespace deepcat::net {

/// Upper bound on one request head (request line + headers + CRLFCRLF).
inline constexpr std::size_t kMaxHttpRequestBytes = 8192;

struct HttpRequest {
  std::string method;  ///< "GET" (anything else was already rejected)
  std::string path;    ///< origin-form target, query string stripped
  std::string query;   ///< bytes after '?' (empty when absent)
};

/// Typed parse failure -> the response to send.
struct HttpError {
  int status = 400;
  std::string message;  ///< plain-text body line (no trailing newline)
};

enum class HttpParseResult {
  kNeedMore,  ///< head not terminated yet (and still under the bound)
  kRequest,   ///< `request` is valid
  kError,     ///< `error` is valid; the connection should answer + close
};

/// Parses one request head from the front of `buffer`. Stateless and
/// incremental: feed the whole accumulated buffer each time. Never
/// throws; never reads past the head.
[[nodiscard]] HttpParseResult parse_http_request(std::string_view buffer,
                                                 HttpRequest& request,
                                                 HttpError& error);

/// Canonical reason phrase for the status codes this surface emits
/// (unknown codes map to "Error").
[[nodiscard]] std::string_view http_status_reason(int status) noexcept;

/// Renders a full response: status line, Content-Type, Content-Length,
/// Connection: close, blank line, body.
[[nodiscard]] std::string render_http_response(int status,
                                               std::string_view content_type,
                                               std::string_view body);

/// Shorthand for a typed error response (text/plain body
/// "<status> <reason>: <message>\n").
[[nodiscard]] std::string render_http_error(const HttpError& error);

/// One accepted HTTP connection on the event loop: bounded read buffer on
/// the way in, partial-write tracking on the way out. The front end owns
/// the lifecycle (exactly one request, one response, then close).
class HttpConnection {
 public:
  HttpConnection(std::uint64_t id, FdGuard fd)
      : id_(id), fd_(std::move(fd)) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

  /// Reads into the head buffer, stopping at kMaxHttpRequestBytes + 1 —
  /// one extra byte so the parser can distinguish "head exactly at the
  /// bound" from "head exceeds it" (431).
  [[nodiscard]] IoStatus read_some();

  [[nodiscard]] const std::string& buffer() const noexcept { return buffer_; }

  void queue(std::string_view bytes) { write_buffer_.append(bytes); }
  [[nodiscard]] IoStatus flush_writes();
  [[nodiscard]] bool write_pending() const noexcept {
    return write_pos_ < write_buffer_.size();
  }

  void close() noexcept { fd_.reset(); }

  bool epollout = false;   ///< EPOLLOUT currently armed for this fd
  bool responded = false;  ///< response queued; close once it drains
  std::int64_t last_activity_ms = 0;

 private:
  std::uint64_t id_;
  FdGuard fd_;
  std::string buffer_;
  std::string write_buffer_;
  std::size_t write_pos_ = 0;
};

}  // namespace deepcat::net
