#include "net/frame_decoder.hpp"

#include <cstring>

#include "service/checkpoint.hpp"  // crc32

namespace deepcat::net {

namespace {

constexpr char kWireMagic[4] = {'D', 'C', 'W', 'P'};
constexpr std::size_t kHeaderSize = 8;   // magic + u32 version
constexpr std::size_t kFrameHeadSize = 12;  // u32 type + u64 length

std::uint32_t get_u32(const char* buf) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const char* buf) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

void FrameDecoder::compact() {
  // Drop the consumed prefix once it dominates the buffer, so a long-lived
  // connection's buffer doesn't grow with its traffic history.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > 64 * 1024)) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
}

std::optional<service::Frame> FrameDecoder::next() {
  using service::WireError;
  if (!header_seen_) {
    if (available() < kHeaderSize) return std::nullopt;
    const char* head = buffer_.data() + pos_;
    if (std::memcmp(head, kWireMagic, sizeof kWireMagic) != 0) {
      throw WireError("not a DeepCAT wire stream (bad magic)");
    }
    const std::uint32_t version = get_u32(head + 4);
    if (version > service::kWireVersion) {
      throw WireError("wire protocol version " + std::to_string(version) +
                      " is newer than the supported version " +
                      std::to_string(service::kWireVersion));
    }
    pos_ += kHeaderSize;
    header_seen_ = true;
    compact();
  }

  if (available() < kFrameHeadSize) return std::nullopt;
  const char* head = buffer_.data() + pos_;
  const std::uint32_t tag = get_u32(head);
  // Type and length are judged as soon as the head is present — matching
  // the stream reader, a hostile frame is refused before its payload is
  // ever buffered into an allocation we sized from its claim.
  if (!service::known_frame_type(tag)) {
    throw WireError("unknown wire frame type '" +
                    service::frame_type_name(tag) + "'");
  }
  const std::uint64_t len = get_u64(head + 4);
  if (len > service::kMaxFramePayload) {
    throw WireError("'" + service::frame_type_name(tag) + "' frame claims " +
                    std::to_string(len) + " payload bytes (limit " +
                    std::to_string(service::kMaxFramePayload) + ")");
  }
  const std::uint64_t total = kFrameHeadSize + len + 4;  // head+payload+crc
  if (available() < total) return std::nullopt;

  service::Frame frame;
  frame.type = static_cast<service::FrameType>(tag);
  frame.payload.assign(head + kFrameHeadSize, static_cast<std::size_t>(len));
  const std::uint32_t stored =
      get_u32(head + kFrameHeadSize + static_cast<std::size_t>(len));
  std::string crc_buf;
  crc_buf.reserve(kFrameHeadSize + frame.payload.size());
  crc_buf.append(head, kFrameHeadSize);
  crc_buf.append(frame.payload);
  const std::uint32_t computed = service::crc32(
      reinterpret_cast<const unsigned char*>(crc_buf.data()), crc_buf.size());
  if (stored != computed) {
    throw WireError("checksum mismatch in '" + service::frame_type_name(tag) +
                    "' frame");
  }
  pos_ += static_cast<std::size_t>(total);
  compact();
  return frame;
}

}  // namespace deepcat::net
