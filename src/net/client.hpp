// BlockingClient: a simple synchronous DCWP peer over a connected
// socket, for `deepcat stats`, the load-generator bench and the socket
// tests. One side of the conversation at a time: send frames, then read
// replies until END.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/fd.hpp"
#include "net/frame_decoder.hpp"
#include "obs/sink.hpp"
#include "service/wire.hpp"

namespace deepcat::net {

class BlockingClient {
 public:
  /// Connect (blocking) and send nothing yet; send_header() starts the
  /// conversation.
  [[nodiscard]] static BlockingClient to_unix(const std::string& path);
  [[nodiscard]] static BlockingClient to_tcp(const std::string& host,
                                             std::uint16_t port);

  void send_header();
  void send_frame(service::FrameType type, std::string_view payload);

  /// Half-closes the write side, signalling the server that no more
  /// frames follow (rarely needed — END does this at the protocol level).
  void shutdown_writes();

  /// Blocks for the next server frame. Returns nullopt on a clean EOF at
  /// a frame boundary after the header; throws service::WireError on
  /// protocol violations or mid-frame truncation, std::runtime_error on
  /// socket errors.
  [[nodiscard]] std::optional<service::Frame> read_frame();

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

  /// Client-side tracing: with a tracer in the sink, send_frame wraps the
  /// socket write in a "client.send.<TYPE>" span and read_frame wraps the
  /// blocking receive in "client.recv", both parented under the sink's
  /// trace_parent. Default (inert sink) adds nothing.
  void set_obs(const obs::Sink& obs) { obs_ = obs; }

  /// Closes the socket outright (the midstream-disconnect tests).
  void close() noexcept { fd_.reset(); }

 private:
  explicit BlockingClient(FdGuard fd) : fd_(std::move(fd)) {}
  void send_all(std::string_view bytes);

  FdGuard fd_;
  FrameDecoder decoder_;
  obs::Sink obs_;
};

}  // namespace deepcat::net
