#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace deepcat::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

FdGuard make_socket(int domain) {
  FdGuard fd(::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket()");
  return fd;
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

in_addr resolve_host(const std::string& host) {
  const std::string name = host.empty() ? "127.0.0.1" : host;
  in_addr out{};
  if (::inet_pton(AF_INET, name.c_str(), &out) == 1) return out;
  // Not an IPv4 literal: resolve the name (localhost, /etc/hosts entries
  // and DNS alike) — the CLI documents --tcp host:port, not address:port.
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(name.c_str(), nullptr, &hints, &found);
  if (rc != 0 || found == nullptr) {
    throw std::runtime_error(
        "cannot resolve IPv4 host '" + host + "'" +
        (rc != 0 ? std::string(": ") + ::gai_strerror(rc) : ""));
  }
  std::memcpy(&out,
              &reinterpret_cast<const sockaddr_in*>(found->ai_addr)->sin_addr,
              sizeof out);
  ::freeaddrinfo(found);
  return out;
}

}  // namespace

Listener listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = unix_address(path);
  ::unlink(path.c_str());  // stale socket file from a crashed server
  Listener listener;
  listener.fd = make_socket(AF_UNIX);
  if (::bind(listener.fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw_errno("bind(" + path + ")");
  }
  // Own the path from the moment it exists on disk.
  listener.socket_file.reset(path);
  if (::listen(listener.fd.get(), backlog) != 0) {
    throw_errno("listen(" + path + ")");
  }
  // The accept loop drains until EAGAIN; a blocking listener would park
  // the event loop inside accept4 once the backlog empties.
  set_nonblocking(listener.fd.get());
  return listener;
}

Listener listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = resolve_host(host);
  addr.sin_port = htons(port);
  Listener listener;
  listener.fd = make_socket(AF_INET);
  const int one = 1;
  (void)::setsockopt(listener.fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
  if (::bind(listener.fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw_errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(listener.fd.get(), backlog) != 0) {
    throw_errno("listen(" + host + ":" + std::to_string(port) + ")");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listener.fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &len) != 0) {
    throw_errno("getsockname()");
  }
  listener.port = ntohs(bound.sin_port);
  set_nonblocking(listener.fd.get());
  return listener;
}

FdGuard connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  FdGuard fd = make_socket(AF_UNIX);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    throw_errno("connect(" + path + ")");
  }
  return fd;
}

FdGuard connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = resolve_host(host);
  addr.sin_port = htons(port);
  FdGuard fd = make_socket(AF_INET);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

std::pair<std::string, std::uint16_t> parse_host_port(
    const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) {
    throw std::runtime_error("expected host:port, got '" + spec + "'");
  }
  const std::string host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  if (port_text.empty()) {
    throw std::runtime_error("expected host:port, got '" + spec + "'");
  }
  unsigned long port = 0;
  try {
    std::size_t used = 0;
    port = std::stoul(port_text, &used);
    if (used != port_text.size()) throw std::invalid_argument(port_text);
  } catch (const std::exception&) {
    throw std::runtime_error("invalid port in '" + spec + "'");
  }
  if (port > 65535) {
    throw std::runtime_error("port out of range in '" + spec + "'");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

}  // namespace deepcat::net
