// RAII ownership for POSIX file descriptors and filesystem socket paths.
//
// The legacy `serve --socket` path leaked its listener fd (and left the
// socket file behind) on throw paths; these guards make every fd and
// every bound AF_UNIX path owned by exactly one object whose destructor
// runs on all exits, including exceptions.
#pragma once

#include <unistd.h>

#include <string>
#include <utility>

namespace deepcat::net {

/// Move-only owner of one file descriptor; closes on destruction.
class FdGuard {
 public:
  FdGuard() = default;
  explicit FdGuard(int fd) noexcept : fd_(fd) {}
  ~FdGuard() { reset(); }

  FdGuard(FdGuard&& other) noexcept : fd_(other.release()) {}
  FdGuard& operator=(FdGuard&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }

  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1) noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

/// Unlinks a filesystem path on destruction — pairs with a bound AF_UNIX
/// listener so the socket file never outlives the server, whatever path
/// the teardown takes.
class UnlinkGuard {
 public:
  UnlinkGuard() = default;
  explicit UnlinkGuard(std::string path) noexcept : path_(std::move(path)) {}
  ~UnlinkGuard() { reset(); }

  UnlinkGuard(UnlinkGuard&& other) noexcept
      : path_(std::exchange(other.path_, {})) {}
  UnlinkGuard& operator=(UnlinkGuard&& other) noexcept {
    if (this != &other) {
      reset();
      path_ = std::exchange(other.path_, {});
    }
    return *this;
  }
  UnlinkGuard(const UnlinkGuard&) = delete;
  UnlinkGuard& operator=(const UnlinkGuard&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Relinquishes ownership without unlinking.
  void release() noexcept { path_.clear(); }

  /// Unlinks now (if owning) and optionally adopts a new path.
  void reset(std::string path = {}) noexcept {
    if (!path_.empty()) ::unlink(path_.c_str());
    path_ = std::move(path);
  }

 private:
  std::string path_;
};

}  // namespace deepcat::net
