// Thin epoll wrapper for the serving front end.
//
// One EventLoop owns one epoll instance; fds register with an opaque
// u64 token (the front end uses 0/1 for listeners, connection ids above
// that). wait() fills a caller-owned vector of Event records so the hot
// loop never allocates. A WakeFd (eventfd) gives other threads — pool
// completion callbacks, signal handlers — an async-signal-safe way to
// kick the loop out of epoll_wait.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fd.hpp"

namespace deepcat::net {

struct Event {
  std::uint64_t token = 0;
  bool readable = false;
  bool writable = false;
  bool hangup = false;  ///< EPOLLHUP | EPOLLRDHUP
  bool error = false;   ///< EPOLLERR
};

class EventLoop {
 public:
  EventLoop();

  /// Registers `fd` for read (and optionally write) events under `token`.
  void add(int fd, std::uint64_t token, bool want_write = false);
  /// Re-arms `fd`'s interest set: EPOLLOUT toggling for write
  /// backpressure, EPOLLIN toggling for read backpressure (a paused fd
  /// leaves inbound bytes in the kernel socket buffer instead of user
  /// memory). EPOLLRDHUP stays armed either way so hangups are seen.
  void modify(int fd, std::uint64_t token, bool want_write,
              bool want_read = true);
  void remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) and appends ready events to
  /// `out` (cleared first). Returns the number of events. EINTR yields 0.
  std::size_t wait(std::vector<Event>& out, int timeout_ms);

 private:
  FdGuard epoll_;
};

/// Nonblocking eventfd: notify() is one 8-byte write, safe from signal
/// handlers and foreign threads; drain() resets the counter.
class WakeFd {
 public:
  WakeFd();
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  void notify() noexcept;
  void drain() noexcept;

 private:
  FdGuard fd_;
};

}  // namespace deepcat::net
