#include "net/connection.hpp"

#include <sys/socket.h>

#include <cerrno>

namespace deepcat::net {

void ConnMetrics::record(const service::StreamReport& report) {
  const service::SessionReport& session = report.session;
  if (!session.ok) {
    ++totals_.sessions_failed;
    return;
  }
  ++totals_.sessions_served;
  totals_.evaluations_paid += session.report.steps.size();
  totals_.evaluation_seconds += session.report.total_evaluation_seconds();
  const double rec = session.report.total_recommendation_seconds();
  totals_.recommendation_seconds += rec;
  rec_costs_.add(rec);
  reward_sum_ += session.mean_reward();
  speedup_sum_ += session.report.speedup_over_default();
}

service::ServiceMetrics ConnMetrics::snapshot() const {
  service::ServiceMetrics m = totals_;
  if (m.sessions_served > 0) {
    m.p50_recommendation_seconds = rec_costs_.quantile(0.50);
    m.p95_recommendation_seconds = rec_costs_.quantile(0.95);
    m.mean_session_reward =
        reward_sum_ / static_cast<double>(m.sessions_served);
    m.mean_speedup = speedup_sum_ / static_cast<double>(m.sessions_served);
  }
  return m;
}

IoStatus Connection::read_some() {
  char buf[16 * 1024];
  bool progressed = false;
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), buf, sizeof buf, 0);
    if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      progressed = true;
      continue;
    }
    if (n == 0) return IoStatus::kEof;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return progressed ? IoStatus::kOk : IoStatus::kWouldBlock;
    }
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
}

IoStatus Connection::flush_writes() {
  while (write_pos_ < write_buffer_.size()) {
    const ssize_t n =
        ::send(fd_.get(), write_buffer_.data() + write_pos_,
               write_buffer_.size() - write_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      write_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    if (errno == EINTR) continue;
    return IoStatus::kError;  // EPIPE/ECONNRESET: peer is gone
  }
  if (write_pos_ > 0) {
    write_buffer_.clear();
    write_pos_ = 0;
  }
  return IoStatus::kOk;
}

}  // namespace deepcat::net
