// Per-connection state for the serving front end.
//
// A Connection owns one accepted nonblocking socket plus everything the
// event loop needs to drive it: the incremental frame decoder on the read
// side, a byte queue with partial-write tracking on the write side
// (EPOLLOUT is armed only while the queue is nonempty), per-connection
// protocol counters, and a connection-scoped metrics accumulator so the
// TELE frames this connection receives at FLSH/END are a pure function of
// ITS requests — never of what other connections happened to be doing.
//
// Reply ordering: session completions arrive in scheduling order, which
// is nondeterministic. The connection buffers out-of-order replies in
// `pending_replies` (keyed by per-connection admission index) and
// releases them strictly in admission order, so each connection's
// transcript is byte-identical across thread counts and shard counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/stats.hpp"
#include "net/fd.hpp"
#include "net/frame_decoder.hpp"
#include "service/service.hpp"
#include "service/streaming.hpp"

namespace deepcat::net {

enum class ConnState {
  kOpen,       ///< reading and serving frames
  kFlushWait,  ///< saw FLSH; waiting for the global quiesce + merge
  kDraining,   ///< saw END / fatal error / server drain; tail pending
  kClosing,    ///< tail queued; close when the write buffer empties
  kZombie,     ///< peer gone with sessions in flight; kept for accounting
};

/// Connection-scoped session metrics: the same aggregation the
/// StreamingService keeps globally, accumulated per connection so
/// END-time TELE frames stay deterministic under multiplexing.
class ConnMetrics {
 public:
  void record(const service::StreamReport& report);
  [[nodiscard]] service::ServiceMetrics snapshot() const;

 private:
  service::ServiceMetrics totals_;
  common::QuantileTracker rec_costs_{service::kRecCostSampleCap};
  double reward_sum_ = 0.0;
  double speedup_sum_ = 0.0;
};

/// Transport result of a socket read or write attempt.
enum class IoStatus {
  kOk,        ///< progressed (or nothing to do)
  kWouldBlock,///< kernel buffer empty/full; wait for the next event
  kEof,       ///< orderly peer shutdown (reads only)
  kError,     ///< ECONNRESET/EPIPE/...; the fd is dead
};

class Connection {
 public:
  Connection(std::uint64_t id, FdGuard fd, bool is_tcp)
      : id_(id), fd_(std::move(fd)), is_tcp_(is_tcp) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool is_tcp() const noexcept { return is_tcp_; }

  ConnState state = ConnState::kOpen;
  FrameDecoder decoder;

  /// Per-connection serve counters (same meanings as StreamServeResult).
  std::size_t requests = 0;
  std::size_t failed_sessions = 0;
  std::size_t parse_errors = 0;
  std::size_t protocol_errors = 0;
  std::size_t stat_polls = 0;
  std::size_t tele_frames = 0;
  std::size_t tser_frames = 0;
  std::size_t replies = 0;
  std::size_t overloaded_requests = 0;
  bool clean_end = false;
  bool finished = false;     ///< retired into stats; awaiting reap only

  bool epollout = false;     ///< EPOLLOUT currently armed for this fd
  bool epollin = true;       ///< EPOLLIN currently armed for this fd
  std::uint64_t span = 0;    ///< obs span id covering accept..close

  /// Admission-order reply sequencing.
  std::uint64_t next_request_index = 0;  ///< assigned at REQ parse time
  std::uint64_t next_reply_index = 0;    ///< next index to release
  std::map<std::uint64_t, std::string> pending_replies;  ///< encoded frames
  std::size_t outstanding = 0;  ///< submitted, completion not yet seen

  ConnMetrics metrics;

  /// Millisecond timestamp (loop clock) of the last read/write progress.
  std::int64_t last_activity_ms = 0;

  /// Reads whatever the kernel has into the decoder. kOk means at least
  /// one byte arrived.
  [[nodiscard]] IoStatus read_some();

  /// Appends an encoded frame (or raw header bytes) to the write queue.
  void queue_bytes(std::string_view bytes) { write_buffer_.append(bytes); }
  void queue_frame(service::FrameType type, std::string_view payload) {
    write_buffer_.append(service::encode_frame(type, payload));
  }

  /// Pushes queued bytes to the kernel. kOk means the queue is empty;
  /// kWouldBlock means EPOLLOUT should stay armed.
  [[nodiscard]] IoStatus flush_writes();

  [[nodiscard]] bool write_pending() const noexcept {
    return write_pos_ < write_buffer_.size();
  }

  /// Drops buffered output (zombie path: the peer can no longer read).
  void abandon_writes() noexcept {
    write_buffer_.clear();
    write_pos_ = 0;
  }

  void close() noexcept { fd_.reset(); }

 private:
  std::uint64_t id_;
  FdGuard fd_;
  bool is_tcp_;
  std::string write_buffer_;
  std::size_t write_pos_ = 0;
};

}  // namespace deepcat::net
