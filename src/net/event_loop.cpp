#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace deepcat::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

epoll_event make_event(std::uint64_t token, bool want_write, bool want_read) {
  epoll_event ev{};
  // EPOLLRDHUP is always armed: even a fd whose reads are paused must
  // notice the peer hanging up.
  ev.events = EPOLLRDHUP;
  if (want_read) ev.events |= EPOLLIN;
  if (want_write) ev.events |= EPOLLOUT;
  ev.data.u64 = token;
  return ev;
}

}  // namespace

EventLoop::EventLoop() : epoll_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!epoll_.valid()) throw_errno("epoll_create1()");
}

void EventLoop::add(int fd, std::uint64_t token, bool want_write) {
  epoll_event ev = make_event(token, want_write, /*want_read=*/true);
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(ADD)");
  }
}

void EventLoop::modify(int fd, std::uint64_t token, bool want_write,
                       bool want_read) {
  epoll_event ev = make_event(token, want_write, want_read);
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(MOD)");
  }
}

void EventLoop::remove(int fd) {
  // Kernel copies the interest entry; a dying fd may already be gone.
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

std::size_t EventLoop::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
  epoll_event events[64];
  const int n = ::epoll_wait(epoll_.get(), events, 64, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("epoll_wait()");
  }
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event ev;
    ev.token = events[i].data.u64;
    ev.readable = (events[i].events & EPOLLIN) != 0;
    ev.writable = (events[i].events & EPOLLOUT) != 0;
    ev.hangup = (events[i].events & (EPOLLHUP | EPOLLRDHUP)) != 0;
    ev.error = (events[i].events & EPOLLERR) != 0;
    out.push_back(ev);
  }
  return static_cast<std::size_t>(n);
}

WakeFd::WakeFd() : fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (!fd_.valid()) throw_errno("eventfd()");
}

void WakeFd::notify() noexcept {
  const std::uint64_t one = 1;
  // Async-signal-safe: a plain write. EAGAIN means the counter is already
  // nonzero — the wakeup is pending, nothing to do.
  (void)::write(fd_.get(), &one, sizeof one);
}

void WakeFd::drain() noexcept {
  std::uint64_t value = 0;
  (void)::read(fd_.get(), &value, sizeof value);
}

}  // namespace deepcat::net
