#include "net/server.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/prometheus.hpp"
#include "service/jsonl.hpp"

namespace deepcat::net {

namespace {

// Loop-internal epoll tokens; connection ids start above them.
constexpr std::uint64_t kWakeToken = 0;
constexpr std::uint64_t kUnixToken = 1;
constexpr std::uint64_t kTcpToken = 2;
constexpr std::uint64_t kHttpToken = 3;

// HTTP connections are one-exchange and read-only; anything parked this
// long without completing its request is a stuck scraper (or slowloris)
// holding an fd for nothing.
constexpr std::int64_t kHttpIdleTimeoutMs = 30'000;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string strip_newline(std::string s) {
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

// Signal routing: handlers may only touch async-signal-safe state, so the
// handler body is one atomic load plus request_shutdown() (an atomic store
// and an eventfd write).
std::atomic<FrontEnd*> g_signal_target{nullptr};

void forward_signal(int) {
  if (FrontEnd* target = g_signal_target.load()) target->request_shutdown();
}

}  // namespace

FrontEnd::FrontEnd(service::ShardedStreamingService& service,
                   FrontEndOptions options)
    : service_(service), options_(std::move(options)) {
  listeners_.reserve(3);  // pointers below index into this vector
  if (!options_.unix_path.empty()) {
    listeners_.push_back(listen_unix(options_.unix_path, /*backlog=*/128));
    unix_listener_ = &listeners_.back();
  }
  if (options_.tcp_port >= 0) {
    listeners_.push_back(
        listen_tcp(options_.tcp_host,
                   static_cast<std::uint16_t>(options_.tcp_port),
                   /*backlog=*/128));
    tcp_listener_ = &listeners_.back();
  }
  if (unix_listener_ == nullptr && tcp_listener_ == nullptr) {
    throw std::runtime_error("front end needs at least one listener");
  }
  if (options_.http_port >= 0) {
    listeners_.push_back(
        listen_tcp(options_.http_host,
                   static_cast<std::uint16_t>(options_.http_port),
                   /*backlog=*/128));
    http_listener_ = &listeners_.back();
  }
  time_replies_ = service_.shard(0).options().reply_timings;
  if (auto* metrics = options_.obs.metrics) {
    obs_accepted_ = &metrics->counter("net.accepted");
    obs_rejected_ = &metrics->counter("net.rejected_overload");
    obs_overloaded_requests_ = &metrics->counter("net.overloaded_requests");
    obs_closed_ = &metrics->counter("net.closed");
    obs_idle_timeouts_ = &metrics->counter("net.idle_timeouts");
    obs_protocol_errors_ = &metrics->counter("net.protocol_errors");
    obs_open_conns_ =
        &metrics->gauge("net.open_connections", /*deterministic=*/false);
  }
}

FrontEnd::~FrontEnd() {
  if (signal_handlers_installed_) {
    g_signal_target.store(nullptr);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
  }
}

std::uint16_t FrontEnd::tcp_port() const noexcept {
  return tcp_listener_ != nullptr ? tcp_listener_->port : 0;
}

std::uint16_t FrontEnd::http_port() const noexcept {
  return http_listener_ != nullptr ? http_listener_->port : 0;
}

void FrontEnd::request_shutdown() noexcept {
  shutdown_requested_.store(true);
  wake_.notify();
}

void FrontEnd::install_signal_handlers() {
  g_signal_target.store(this);
  std::signal(SIGTERM, forward_signal);
  std::signal(SIGINT, forward_signal);
  signal_handlers_installed_ = true;
}

bool FrontEnd::accepting() const noexcept {
  if (draining_ || !listeners_open_) return false;
  if (options_.exit_after_connections != 0 &&
      stats_.accepted >= options_.exit_after_connections) {
    return false;
  }
  return true;
}

std::string FrontEnd::global_tele_payload() const {
  std::ostringstream tele;
  service::write_telemetry_payload(
      tele, service_.aggregate_metrics(), service_.build_info(),
      service_.metrics_registry(),
      options_.serve.tele_include_nondeterministic);
  return strip_newline(std::move(tele).str());
}

void FrontEnd::emit_conn_tele(Connection& conn) {
  // Connection-scoped: this connection's own session aggregates, no
  // registry instrument lines — a pure function of ITS request sequence.
  std::ostringstream tele;
  service::write_telemetry_payload(
      tele, conn.metrics.snapshot(), service_.build_info(),
      /*registry=*/nullptr, options_.serve.tele_include_nondeterministic);
  conn.queue_frame(service::FrameType::kTelemetry,
                   strip_newline(std::move(tele).str()));
  ++conn.tele_frames;
}

void FrontEnd::maybe_emit_tser(Connection& conn) {
  // Convergence time-series, emitted immediately before a TELE at the
  // same protocol points (FLSH, STAT, tail). Strictly gated on a registry
  // being attached: without one the stream stays byte-identical v2-shaped.
  const obs::TimeSeriesRegistry* series = service_.timeseries_registry();
  if (series == nullptr) return;
  std::ostringstream os;
  obs::write_timeseries_jsonl(os, series->snapshot());
  conn.queue_frame(service::FrameType::kTimeSeries,
                   strip_newline(std::move(os).str()));
  ++conn.tser_frames;
}

void FrontEnd::accept_ready(Listener& listener, bool is_tcp) {
  for (;;) {
    FdGuard fd(::accept4(listener.fd.get(), nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (!fd.valid()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    if (!accepting() || conns_.size() >= options_.max_connections) {
      // Admission control, never a silent drop: greet with a decodable
      // header + typed ERR + END, then close.
      ++stats_.rejected_overload;
      if (obs_rejected_ != nullptr) obs_rejected_->add(1);
      auto conn = std::make_unique<Connection>(next_conn_id_++, std::move(fd),
                                               is_tcp);
      conn->queue_bytes(service::encode_stream_header());
      conn->queue_frame(
          service::FrameType::kError,
          service::stream_error_payload(
              "overloaded: connection limit reached (" +
              std::to_string(options_.max_connections) + ")"));
      conn->queue_frame(service::FrameType::kEnd, "");
      conn->state = ConnState::kClosing;
      const std::uint64_t id = conn->id();
      loop_.add(conn->fd(), id);
      conn->last_activity_ms = now_ms();
      Connection& ref = *conns_.emplace(id, std::move(conn)).first->second;
      pump_writes(ref);
      continue;
    }
    ++stats_.accepted;
    if (obs_accepted_ != nullptr) obs_accepted_->add(1);
    auto conn =
        std::make_unique<Connection>(next_conn_id_++, std::move(fd), is_tcp);
    if (auto* tracer = options_.obs.tracer) {
      conn->span = tracer->begin_span("conn", options_.obs.trace_parent);
    }
    conn->queue_bytes(service::encode_stream_header());
    conn->last_activity_ms = now_ms();
    const std::uint64_t id = conn->id();
    loop_.add(conn->fd(), id);
    Connection& ref = *conns_.emplace(id, std::move(conn)).first->second;
    if (obs_open_conns_ != nullptr) {
      obs_open_conns_->set(static_cast<double>(conns_.size()));
    }
    pump_writes(ref);
  }
}

void FrontEnd::handle_frame(Connection& conn, service::Frame frame) {
  switch (frame.type) {
    case service::FrameType::kRequest: {
      const std::size_t ordinal = conn.requests++;
      if (outstanding_total_ >= options_.max_inflight) {
        ++conn.overloaded_requests;
        ++stats_.overloaded_requests;
        if (obs_overloaded_requests_ != nullptr) {
          obs_overloaded_requests_->add(1);
        }
        conn.queue_frame(
            service::FrameType::kError,
            service::stream_error_payload(
                "request " + std::to_string(ordinal) +
                ": overloaded: in-flight limit reached (" +
                std::to_string(options_.max_inflight) + ")"));
        break;
      }
      service::TuningRequest request;
      obs::Tracer* tracer = options_.obs.tracer;
      const bool time_decode = time_replies_ && tracer != nullptr;
      const std::uint64_t t_decode =
          time_decode ? tracer->clock().now_ns() : 0;
      try {
        request = service::parse_request_json(frame.payload, ordinal);
      } catch (const std::exception& e) {
        conn.queue_frame(service::FrameType::kError,
                         service::stream_error_payload(
                             "request " + std::to_string(ordinal) + ": " +
                             e.what()));
        ++conn.parse_errors;
        break;
      }
      if (!request.trace_id.empty()) {
        // Wire-propagated trace context: the session's request span
        // parents under this connection's span, so one trace shows
        // client -> conn -> request -> session.
        request.server_parent_span = conn.span;
        if (time_decode) {
          request.decode_ns = tracer->clock().now_ns() - t_decode;
        }
      }
      // Same typed-error contract as the istream driver: a warm request
      // against a missing/empty index never becomes a failed session.
      if (const auto warm_err = service_.warm_error(request)) {
        conn.queue_frame(service::FrameType::kError,
                         service::stream_error_payload(
                             "request " + std::to_string(ordinal) + ": " +
                             *warm_err));
        ++conn.parse_errors;
        break;
      }
      const std::uint64_t conn_id = conn.id();
      const std::uint64_t reply_index = conn.next_request_index++;
      ++conn.outstanding;
      ++outstanding_total_;
      service_.submit(
          std::move(request),
          [this, conn_id, reply_index](service::StreamReport report) {
            {
              std::scoped_lock lock(completions_mutex_);
              completions_.push_back(
                  {conn_id, reply_index, std::move(report)});
            }
            wake_.notify();
          });
      break;
    }
    case service::FrameType::kFlush:
      conn.state = ConnState::kFlushWait;
      ++flush_waiters_;
      admissions_paused_ = true;
      break;
    case service::FrameType::kStat: {
      if (const auto stat_error = service::stat_payload_error(frame.payload)) {
        conn.queue_frame(service::FrameType::kError,
                         service::stream_error_payload("STAT: " + *stat_error));
        ++conn.parse_errors;
      } else {
        ++conn.stat_polls;
        // STAT is the live global poll: cross-shard aggregate plus the
        // full instrument set, no barrier.
        maybe_emit_tser(conn);
        conn.queue_frame(service::FrameType::kTelemetry,
                         global_tele_payload());
        ++conn.tele_frames;
      }
      break;
    }
    case service::FrameType::kEnd:
      conn.clean_end = true;
      begin_conn_drain(conn);
      break;
    default:
      conn.queue_frame(
          service::FrameType::kError,
          service::stream_error_payload(
              "unexpected '" +
              service::frame_type_name(
                  static_cast<std::uint32_t>(frame.type)) +
              "' frame from client"));
      ++conn.parse_errors;
      break;
  }
}

void FrontEnd::process_frames(Connection& conn) {
  // Frame processing pauses globally while a FLSH barrier is pending:
  // admitting new sessions would keep the service busy forever.
  while (conn.state == ConnState::kOpen && flush_waiters_ == 0) {
    std::optional<service::Frame> frame;
    try {
      frame = conn.decoder.next();
    } catch (const service::WireError& e) {
      // Corrupt framing is unrecoverable on a length-prefixed stream:
      // one typed ERR, then the normal tail. Only THIS connection dies.
      conn.queue_frame(service::FrameType::kError,
                       service::stream_error_payload(e.what()));
      ++conn.protocol_errors;
      if (obs_protocol_errors_ != nullptr) obs_protocol_errors_->add(1);
      begin_conn_drain(conn);
      return;
    }
    if (!frame) return;
    handle_frame(conn, *std::move(frame));
  }
}

void FrontEnd::on_stream_eof(Connection& conn) {
  if (conn.state != ConnState::kOpen &&
      conn.state != ConnState::kFlushWait) {
    return;  // already draining/closing; EOF is expected
  }
  if (conn.state == ConnState::kFlushWait) {
    --flush_waiters_;
    conn.state = ConnState::kOpen;
  }
  // EOF without END is a protocol error, but the peer may be half-closed
  // and still reading — emit the ERR + tail like the stream driver does.
  conn.queue_frame(
      service::FrameType::kError,
      service::stream_error_payload(
          conn.decoder.midstream()
              ? "truncated wire stream inside a frame"
              : "wire stream ended before the 'END' frame"));
  ++conn.protocol_errors;
  if (obs_protocol_errors_ != nullptr) obs_protocol_errors_->add(1);
  begin_conn_drain(conn);
}

void FrontEnd::drain_completions() {
  std::vector<Completion> batch;
  {
    std::scoped_lock lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (auto& completion : batch) {
    --outstanding_total_;
    const auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // force-closed during drain timeout
    Connection& conn = *it->second;
    --conn.outstanding;
    if (conn.state == ConnState::kZombie) {
      // Peer gone; the session still ran (and will merge), but there is
      // nobody to reply to. Retire the husk once accounting settles.
      if (conn.outstanding == 0) finish_conn(conn);
      continue;
    }
    conn.metrics.record(completion.report);
    if (!completion.report.session.ok) ++conn.failed_sessions;
    if (completion.report.session.timings.has_value() &&
        options_.obs.tracer != nullptr) {
      // Write cost via a discarded dry-run serialization (two clock reads
      // bracketing the same encoder the real reply uses below).
      obs::Clock& clock = options_.obs.tracer->clock();
      const std::uint64_t t0 = clock.now_ns();
      (void)service::stream_reply_payload(completion.report);
      completion.report.session.timings->write_ns = clock.now_ns() - t0;
    }
    conn.pending_replies.emplace(
        completion.reply_index,
        service::stream_reply_payload(completion.report));
    release_replies(conn);
    pump_writes(conn);
    maybe_emit_tail(conn);
  }
}

void FrontEnd::release_replies(Connection& conn) {
  // Strict admission-order release: a reply that completed early waits in
  // pending_replies until every earlier admission has been written.
  for (auto it = conn.pending_replies.find(conn.next_reply_index);
       it != conn.pending_replies.end();
       it = conn.pending_replies.find(conn.next_reply_index)) {
    conn.queue_frame(service::FrameType::kReply, it->second);
    conn.pending_replies.erase(it);
    ++conn.next_reply_index;
    ++conn.replies;
    if (options_.serve.tele_every != 0 &&
        conn.replies % options_.serve.tele_every == 0) {
      emit_conn_tele(conn);
    }
  }
}

void FrontEnd::maybe_run_flush() {
  // A FLSH decoded during the re-pump below re-parks its connection AFTER
  // flush_waiters_ was reset, so the barrier must be re-evaluated until no
  // waiter remains — otherwise back-to-back FLSH frames strand the loop in
  // epoll_wait with nothing left to wake it. Terminates: each pass either
  // consumes buffered frames (no new bytes arrive while we are here) or
  // puts sessions in flight, whose completions re-invoke us from run().
  while (flush_waiters_ > 0 && outstanding_total_ == 0) {
    // Every callback has been processed, so every shard's in-flight count
    // is zero: flush() will not block.
    (void)service_.flush_all();
    for (auto& [id, conn] : conns_) {
      if (conn->state != ConnState::kFlushWait) continue;
      conn->state = ConnState::kOpen;
      maybe_emit_tser(*conn);
      emit_conn_tele(*conn);
      pump_writes(*conn);
    }
    flush_waiters_ = 0;
    resume_admissions();
  }
}

void FrontEnd::resume_admissions() {
  // Admissions were paused; re-pump every connection's buffered frames
  // and re-arm reads that were deasserted while the barrier was pending
  // (update_interest inside pump_writes re-raises EPOLLIN, so bytes that
  // backed up in the kernel during the pause trigger a fresh event).
  for (auto& [id, conn] : conns_) {
    process_frames(*conn);
    pump_writes(*conn);
    maybe_emit_tail(*conn);
  }
}

void FrontEnd::begin_conn_drain(Connection& conn) {
  if (conn.state == ConnState::kFlushWait) --flush_waiters_;
  conn.state = ConnState::kDraining;
  maybe_emit_tail(conn);
}

void FrontEnd::maybe_emit_tail(Connection& conn) {
  if (conn.state != ConnState::kDraining) return;
  if (conn.outstanding != 0 || !conn.pending_replies.empty()) return;
  if (options_.flush_on_end) {
    // Legacy single-connection tail: a global barrier before the final
    // telemetry. Deferred until the service quiesces, like FLSH.
    if (outstanding_total_ != 0) return;
    (void)service_.flush_all();
  }
  maybe_emit_tser(conn);
  emit_conn_tele(conn);
  if (options_.serve.metr_compat) {
    std::ostringstream metrics;
    service::write_metrics_jsonl(metrics, conn.metrics.snapshot(),
                                 service_.build_info());
    conn.queue_frame(service::FrameType::kMetrics,
                     strip_newline(std::move(metrics).str()));
  }
  conn.queue_frame(service::FrameType::kEnd, "");
  conn.state = ConnState::kClosing;
  pump_writes(conn);
}

void FrontEnd::begin_server_drain() {
  if (draining_) return;
  draining_ = true;
  drain_started_ms_ = now_ms();
  for (auto& listener : listeners_) {
    // The HTTP observability listener survives the drain on purpose:
    // /healthz keeps answering 503 "draining" until the loop exits, which
    // is how orchestrators see readiness flip before the process goes.
    if (&listener == http_listener_) continue;
    if (listener.fd.valid()) {
      loop_.remove(listener.fd.get());
      listener.fd.reset();
    }
    listener.socket_file.reset();
  }
  listeners_open_ = false;
  for (auto& [id, conn] : conns_) {
    if (conn->state == ConnState::kOpen ||
        conn->state == ConnState::kFlushWait) {
      // Buffered-but-unprocessed frames are dropped by design: drain
      // means "finish what was admitted", not "accept more work".
      begin_conn_drain(*conn);
    }
  }
  flush_waiters_ = 0;
}

void FrontEnd::check_timeouts(std::int64_t now) {
  if (options_.idle_timeout_seconds > 0 && !draining_) {
    const auto limit =
        static_cast<std::int64_t>(options_.idle_timeout_seconds * 1000.0);
    for (auto& [id, conn] : conns_) {
      if (conn->state != ConnState::kOpen) continue;
      if (conn->outstanding != 0 || !conn->pending_replies.empty()) continue;
      if (now - conn->last_activity_ms < limit) continue;
      ++stats_.idle_timeouts;
      if (obs_idle_timeouts_ != nullptr) obs_idle_timeouts_->add(1);
      conn->queue_frame(service::FrameType::kError,
                        service::stream_error_payload("idle timeout"));
      conn->queue_frame(service::FrameType::kEnd, "");
      conn->state = ConnState::kClosing;
      pump_writes(*conn);
    }
  }
  if (!http_conns_.empty()) {
    for (auto& [id, conn] : http_conns_) {
      if (conn->responded) continue;  // write-draining, bounded by epoll
      if (now - conn->last_activity_ms < kHttpIdleTimeoutMs) continue;
      HttpError timeout{408, "request head not received in time"};
      conn->queue(render_http_error(timeout));
      conn->responded = true;
      ++stats_.http_errors;
      pump_http_writes(*conn);
    }
    reap();  // pump may finish connections
  }
  if (draining_ && options_.drain_timeout_seconds > 0) {
    const auto limit =
        static_cast<std::int64_t>(options_.drain_timeout_seconds * 1000.0);
    if (now - drain_started_ms_ >= limit) {
      for (auto& [id, conn] : conns_) {
        // Skip conns already retired this iteration (finished, awaiting
        // reap) — they closed on their own, not by force.
        if (conn->state == ConnState::kZombie || conn->finished) continue;
        ++stats_.forced_closes;
        make_zombie(*conn);
      }
      reap();
    }
  }
}

bool FrontEnd::wants_read(const Connection& conn) const noexcept {
  // Read only while frames can actually be processed. During a FLSH
  // barrier and once a connection leaves kOpen (draining, closing), bytes
  // would pile up undecoded — kMaxFramePayload bounds one frame, not the
  // backlog — so leave them in the kernel socket buffer: that is bounded
  // backpressure the peer's send() feels. EPOLLRDHUP stays armed, so
  // hangups are still delivered to a read-paused connection.
  return conn.state == ConnState::kOpen && flush_waiters_ == 0;
}

void FrontEnd::update_interest(Connection& conn) {
  const bool want_write = conn.write_pending();
  const bool want_read = wants_read(conn);
  if (conn.fd() < 0 ||
      (want_write == conn.epollout && want_read == conn.epollin)) {
    return;
  }
  loop_.modify(conn.fd(), conn.id(), want_write, want_read);
  conn.epollout = want_write;
  conn.epollin = want_read;
}

void FrontEnd::pump_writes(Connection& conn) {
  if (conn.state == ConnState::kZombie || conn.fd() < 0) return;
  const IoStatus status = conn.flush_writes();
  if (status == IoStatus::kError) {
    make_zombie(conn);
    return;
  }
  if (status == IoStatus::kOk) {
    conn.last_activity_ms = now_ms();
    if (conn.state == ConnState::kClosing) {
      finish_conn(conn);
      return;
    }
  }
  update_interest(conn);
}

void FrontEnd::make_zombie(Connection& conn) {
  // The peer can no longer read; drop buffered output and the fd, but
  // keep the Connection until its in-flight sessions complete so the
  // outstanding accounting stays exact (no silent drops — the sessions
  // still run and merge).
  conn.abandon_writes();
  if (conn.state == ConnState::kFlushWait) --flush_waiters_;
  if (conn.fd() >= 0) {
    loop_.remove(conn.fd());
    conn.close();
  }
  conn.state = ConnState::kZombie;
  if (conn.outstanding == 0) finish_conn(conn);
}

void FrontEnd::finish_conn(Connection& conn) {
  // Idempotent: a conn queued in dead_conns_ can be reached again before
  // reap() (e.g. the drain-timeout sweep in the same loop iteration);
  // counting it twice would corrupt stats_ and end its span twice.
  if (conn.finished) return;
  conn.finished = true;
  stats_.requests += conn.requests;
  stats_.replies += conn.replies;
  stats_.failed_sessions += conn.failed_sessions;
  stats_.parse_errors += conn.parse_errors;
  stats_.protocol_errors += conn.protocol_errors;
  stats_.stat_polls += conn.stat_polls;
  stats_.tele_frames += conn.tele_frames;
  stats_.tser_frames += conn.tser_frames;
  if (conn.clean_end) ++stats_.clean_ends;
  if (obs_closed_ != nullptr) obs_closed_->add(1);
  if (conn.span != 0) {
    if (auto* tracer = options_.obs.tracer) tracer->end_span(conn.span);
  }
  if (conn.fd() >= 0) {
    loop_.remove(conn.fd());
    conn.close();
  }
  dead_conns_.push_back(conn.id());
}

void FrontEnd::reap() {
  for (const std::uint64_t id : dead_conns_) conns_.erase(id);
  if (!dead_conns_.empty() && obs_open_conns_ != nullptr) {
    obs_open_conns_->set(static_cast<double>(conns_.size()));
  }
  dead_conns_.clear();
  for (const std::uint64_t id : dead_http_conns_) http_conns_.erase(id);
  dead_http_conns_.clear();
}

void FrontEnd::accept_http_ready() {
  for (;;) {
    FdGuard fd(::accept4(http_listener_->fd.get(), nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (!fd.valid()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<HttpConnection>(id, std::move(fd));
    conn->last_activity_ms = now_ms();
    loop_.add(conn->fd(), id);
    HttpConnection& ref = *http_conns_.emplace(id, std::move(conn))
                               .first->second;
    if (http_conns_.size() > options_.max_connections) {
      // Scrapers are cheap but not free; past the cap they get the same
      // typed-refusal treatment as DCWP connections.
      HttpError overload{503, "overloaded: connection limit reached"};
      ref.queue(render_http_error(overload));
      ref.responded = true;
      ++stats_.http_errors;
      pump_http_writes(ref);
    }
  }
}

std::string FrontEnd::route_http(const HttpRequest& request) {
  if (request.path == "/healthz") {
    // Readiness, not liveness: flips to 503 the moment a drain starts (or
    // admission is closed), while the process is still up serving tails.
    if (draining_) {
      ++stats_.http_errors;
      return render_http_response(503, "text/plain; charset=utf-8",
                                  "draining\n");
    }
    if (conns_.size() >= options_.max_connections) {
      ++stats_.http_errors;
      return render_http_response(503, "text/plain; charset=utf-8",
                                  "overloaded\n");
    }
    ++stats_.http_requests;
    return render_http_response(200, "text/plain; charset=utf-8", "ok\n");
  }
  if (request.path == "/metrics") {
    const obs::MetricsRegistry* registry = service_.metrics_registry();
    std::ostringstream os;
    obs::write_prometheus_text(
        os,
        registry != nullptr ? registry->snapshot()
                            : std::vector<obs::MetricSnapshot>{},
        service_.build_info());
    ++stats_.http_requests;
    return render_http_response(
        200, "text/plain; version=0.0.4; charset=utf-8",
        std::move(os).str());
  }
  if (request.path == "/varz") {
    // The same payload a STAT poll gets, over HTTP: live cross-shard
    // aggregate plus the instrument set, flat JSON.
    ++stats_.http_requests;
    return render_http_response(200, "application/json",
                                global_tele_payload() + "\n");
  }
  if (request.path == "/timeseries") {
    const obs::TimeSeriesRegistry* series = service_.timeseries_registry();
    if (series == nullptr) {
      ++stats_.http_errors;
      HttpError off{404, "time-series retention is off (serve --series)"};
      return render_http_error(off);
    }
    std::ostringstream os;
    obs::write_timeseries_json(os, series->snapshot());
    ++stats_.http_requests;
    return render_http_response(200, "application/json", std::move(os).str());
  }
  ++stats_.http_errors;
  HttpError unknown{404, "no route '" + request.path +
                             "'; routes: /metrics /healthz /varz /timeseries"};
  return render_http_error(unknown);
}

void FrontEnd::respond_http(HttpConnection& conn) {
  if (conn.responded) return;
  HttpRequest request;
  HttpError error;
  switch (parse_http_request(conn.buffer(), request, error)) {
    case HttpParseResult::kNeedMore:
      return;
    case HttpParseResult::kRequest:
      conn.queue(route_http(request));
      break;
    case HttpParseResult::kError:
      ++stats_.http_errors;
      conn.queue(render_http_error(error));
      break;
  }
  conn.responded = true;
}

void FrontEnd::pump_http_writes(HttpConnection& conn) {
  if (conn.fd() < 0) return;
  const IoStatus status = conn.flush_writes();
  if (status == IoStatus::kError) {
    finish_http_conn(conn);
    return;
  }
  if (status == IoStatus::kOk && conn.responded) {
    finish_http_conn(conn);
    return;
  }
  const bool want_write = conn.write_pending();
  if (want_write != conn.epollout) {
    loop_.modify(conn.fd(), conn.id(), want_write, !conn.responded);
    conn.epollout = want_write;
  }
}

void FrontEnd::finish_http_conn(HttpConnection& conn) {
  if (conn.fd() >= 0) {
    loop_.remove(conn.fd());
    conn.close();
  }
  dead_http_conns_.push_back(conn.id());
}

void FrontEnd::handle_http_event(HttpConnection& conn, const Event& event) {
  if (event.error) {
    finish_http_conn(conn);
    return;
  }
  if (event.readable || event.hangup) {
    const IoStatus status = conn.read_some();
    if (status == IoStatus::kOk) conn.last_activity_ms = now_ms();
    respond_http(conn);
    if (status == IoStatus::kEof && !conn.responded) {
      // Peer closed before completing a request: nothing to answer.
      finish_http_conn(conn);
      return;
    }
    if (status == IoStatus::kError) {
      finish_http_conn(conn);
      return;
    }
  }
  pump_http_writes(conn);
}

void FrontEnd::handle_conn_event(Connection& conn, const Event& event) {
  if (conn.state == ConnState::kZombie) return;
  if (event.error) {
    make_zombie(conn);
    return;
  }
  if (event.readable || event.hangup) {
    const IoStatus status = conn.read_some();
    if (status == IoStatus::kOk) conn.last_activity_ms = now_ms();
    process_frames(conn);
    pump_writes(conn);
    if (conn.state == ConnState::kZombie) return;
    if (status == IoStatus::kEof) {
      on_stream_eof(conn);
      pump_writes(conn);
    } else if (status == IoStatus::kError) {
      make_zombie(conn);
      return;
    }
  }
  if (event.writable && conn.state != ConnState::kZombie) {
    pump_writes(conn);
  }
  if (conn.state != ConnState::kZombie) maybe_emit_tail(conn);
}

FrontEndStats FrontEnd::run() {
  loop_.add(wake_.fd(), kWakeToken);
  if (unix_listener_ != nullptr) {
    loop_.add(unix_listener_->fd.get(), kUnixToken);
  }
  if (tcp_listener_ != nullptr) {
    loop_.add(tcp_listener_->fd.get(), kTcpToken);
  }
  if (http_listener_ != nullptr) {
    loop_.add(http_listener_->fd.get(), kHttpToken);
  }
  listeners_open_ = true;

  std::vector<Event> events;
  for (;;) {
    const bool exit_after_done =
        options_.exit_after_connections != 0 &&
        stats_.accepted >= options_.exit_after_connections;
    if ((draining_ || exit_after_done) && conns_.empty() &&
        outstanding_total_ == 0) {
      break;
    }
    const bool timed = draining_ || options_.idle_timeout_seconds > 0 ||
                       !http_conns_.empty();
    (void)loop_.wait(events, timed ? 100 : -1);
    for (const Event& event : events) {
      if (event.token == kWakeToken) {
        wake_.drain();
      } else if (event.token == kUnixToken) {
        accept_ready(*unix_listener_, /*is_tcp=*/false);
      } else if (event.token == kTcpToken) {
        accept_ready(*tcp_listener_, /*is_tcp=*/true);
      } else if (event.token == kHttpToken) {
        accept_http_ready();
      } else if (const auto it = conns_.find(event.token);
                 it != conns_.end()) {
        handle_conn_event(*it->second, event);
      } else if (const auto hit = http_conns_.find(event.token);
                 hit != http_conns_.end()) {
        handle_http_event(*hit->second, event);
      }
    }
    drain_completions();
    maybe_run_flush();
    if (admissions_paused_ && flush_waiters_ == 0) {
      // The pause can also end without a merge — the last waiter hung up
      // (on_stream_eof/make_zombie decrement) or a server drain reset the
      // barrier. Re-pump and re-arm reads, or paused conns stall forever.
      admissions_paused_ = false;
      resume_admissions();
    }
    if (shutdown_requested_.load()) begin_server_drain();
    if (draining_ || (options_.flush_on_end && outstanding_total_ == 0)) {
      // Tails can unblock on GLOBAL conditions (server drain, the
      // flush-on-end quiesce), not just on this connection's own
      // completions — re-check everyone.
      for (auto& [id, conn] : conns_) maybe_emit_tail(*conn);
    }
    check_timeouts(now_ms());
    reap();
  }

  // Final barrier: merge whatever completed without an explicit FLSH so
  // checkpoints after a drain reflect every admitted session.
  (void)service_.flush_all();
  return stats_;
}

}  // namespace deepcat::net
