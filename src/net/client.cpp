#include "net/client.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "net/socket.hpp"

namespace deepcat::net {

BlockingClient BlockingClient::to_unix(const std::string& path) {
  return BlockingClient(connect_unix(path));
}

BlockingClient BlockingClient::to_tcp(const std::string& host,
                                      std::uint16_t port) {
  return BlockingClient(connect_tcp(host, port));
}

void BlockingClient::send_all(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_.get(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("send(): ") + std::strerror(errno));
  }
}

void BlockingClient::send_header() {
  send_all(service::encode_stream_header());
}

void BlockingClient::send_frame(service::FrameType type,
                                std::string_view payload) {
  std::optional<obs::Tracer::Span> span;
  if (obs_.tracer != nullptr) {
    span.emplace(obs_.tracer,
                 obs_.tracer->begin_span(
                     "client.send." +
                         std::string(service::frame_type_name(
                             static_cast<std::uint32_t>(type))),
                     obs_.trace_parent));
  }
  send_all(service::encode_frame(type, payload));
}

void BlockingClient::shutdown_writes() {
  (void)::shutdown(fd_.get(), SHUT_WR);
}

std::optional<service::Frame> BlockingClient::read_frame() {
  std::optional<obs::Tracer::Span> span;
  if (obs_.tracer != nullptr) {
    span.emplace(obs_.tracer,
                 obs_.tracer->begin_span("client.recv", obs_.trace_parent));
  }
  for (;;) {
    if (auto frame = decoder_.next()) return frame;
    char buf[16 * 1024];
    const ssize_t n = ::recv(fd_.get(), buf, sizeof buf, 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      if (decoder_.midstream()) {
        throw service::WireError("connection closed mid-frame");
      }
      return std::nullopt;
    }
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("recv(): ") + std::strerror(errno));
  }
}

}  // namespace deepcat::net
