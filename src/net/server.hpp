// FrontEnd: the epoll serving loop that multiplexes many DCWP
// connections over one ShardedStreamingService.
//
// Architecture (DESIGN.md §11):
//
//   - ONE event-loop thread owns all sockets and all Connection state;
//     sessions run on the shards' pools. Completions cross back via a
//     mutex-guarded queue plus an eventfd wakeup, so no connection state
//     is ever touched off-loop.
//   - Replies are released in per-connection ADMISSION order (buffered in
//     Connection::pending_replies until their turn), so every
//     connection's transcript is a pure function of its own request
//     sequence — independent of thread count, shard count and the other
//     connections.
//   - Admission control is typed, never silent: a connection beyond
//     --max-conns is greeted with header + ERR "overloaded" + END; a
//     request beyond --max-inflight gets an ERR naming its index. Both
//     leave the stream decodable.
//   - FLSH is a deferred barrier: the flushing connection parks in
//     kFlushWait and frame processing pauses globally (no new
//     admissions); once every outstanding session has completed the loop
//     runs flush_all() and answers each waiter with its connection-scoped
//     TELE — re-evaluating until no waiter remains, since a FLSH decoded
//     while re-pumping buffered frames re-parks after the reset. The loop
//     thread itself never blocks in flush(). While paused (and once a
//     connection is past kOpen), EPOLLIN is deasserted so inbound bytes
//     back up in the kernel socket buffer instead of growing the decoder
//     backlog without bound; EPOLLRDHUP stays armed for hangups.
//   - Graceful drain (SIGTERM/SIGINT or request_shutdown()): stop
//     accepting, let in-flight sessions finish and their replies go out,
//     run one final flush_all(), then emit each connection's TELE(+METR)
//     + END tail and close once its write buffer empties. --drain-timeout
//     bounds the wait, after which stragglers are force-closed (counted,
//     never silent).
//
// TELE scoping: FLSH- and END-tail TELE frames carry the CONNECTION's
// session aggregates (deterministic per connection; no registry
// instrument lines); STAT answers carry the live GLOBAL cross-shard
// aggregate plus the instrument set — that is what `deepcat stats` polls.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/http.hpp"
#include "net/socket.hpp"
#include "obs/sink.hpp"
#include "service/sharding.hpp"

namespace deepcat::net {

struct FrontEndOptions {
  /// AF_UNIX listener path; empty disables.
  std::string unix_path;
  /// TCP listener; port -1 disables, 0 binds an ephemeral port (read it
  /// back from FrontEnd::tcp_port()).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  /// HTTP observability listener (/metrics, /healthz, /varz,
  /// /timeseries); port -1 disables, 0 binds an ephemeral port (read it
  /// back from FrontEnd::http_port()). Stays open during drain so
  /// /healthz can report not-ready while connections finish.
  std::string http_host = "127.0.0.1";
  int http_port = -1;
  /// Admission control.
  std::size_t max_connections = 256;
  std::size_t max_inflight = 1024;
  /// Seconds a drain waits for connections to finish before force-close.
  double drain_timeout_seconds = 5.0;
  /// Disconnect connections idle this long with nothing in flight
  /// (0 = never).
  double idle_timeout_seconds = 0.0;
  /// Exit run() once this many connections have been served to
  /// completion (0 = run until shutdown). The legacy `serve --socket`
  /// contract is exit_after_connections = 1.
  std::size_t exit_after_connections = 0;
  /// Run a global flush barrier when a connection ends its stream (the
  /// legacy single-connection tail). Off by default under multiplexing:
  /// merges then happen only at explicit FLSH barriers and at drain, so
  /// one connection's END cannot reshuffle another's epochs.
  bool flush_on_end = false;
  /// TELE cadence / payload / METR-compat knobs, as in serve_frame_stream.
  service::StreamServeOptions serve;
  obs::Sink obs;
};

/// Aggregate outcome of one run(), summed over all connections.
struct FrontEndStats {
  std::size_t accepted = 0;
  std::size_t rejected_overload = 0;   ///< connections refused at the cap
  std::size_t overloaded_requests = 0; ///< requests refused at the cap
  std::size_t requests = 0;
  std::size_t replies = 0;
  std::size_t failed_sessions = 0;
  std::size_t parse_errors = 0;
  std::size_t protocol_errors = 0;
  std::size_t stat_polls = 0;
  std::size_t tele_frames = 0;
  std::size_t tser_frames = 0;         ///< convergence time-series frames
  std::size_t clean_ends = 0;          ///< connections that sent END
  std::size_t idle_timeouts = 0;
  std::size_t forced_closes = 0;       ///< drain-timeout casualties
  std::size_t http_requests = 0;       ///< HTTP exchanges answered 2xx
  std::size_t http_errors = 0;         ///< HTTP exchanges answered 4xx/5xx
};

class FrontEnd {
 public:
  /// Binds all configured listeners (throws on failure, nothing leaks —
  /// the Listener guards own fds and socket files).
  FrontEnd(service::ShardedStreamingService& service, FrontEndOptions options);

  /// Actual TCP port (resolves a port-0 request); 0 when TCP is off.
  [[nodiscard]] std::uint16_t tcp_port() const noexcept;

  /// Actual HTTP observability port; 0 when the HTTP endpoint is off.
  [[nodiscard]] std::uint16_t http_port() const noexcept;

  /// Runs the loop until shutdown/exit-after; returns the aggregate
  /// stats. Call once.
  FrontEndStats run();

  /// Thread- and signal-safe shutdown request (starts a graceful drain).
  void request_shutdown() noexcept;

  /// Routes SIGTERM/SIGINT to request_shutdown() for the lifetime of this
  /// front end. At most one front end can hold the handlers at a time.
  void install_signal_handlers();
  ~FrontEnd();

 private:
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t reply_index = 0;
    service::StreamReport report;
  };

  void accept_ready(Listener& listener, bool is_tcp);
  void handle_conn_event(Connection& conn, const Event& event);
  void process_frames(Connection& conn);
  void handle_frame(Connection& conn, service::Frame frame);
  void on_stream_eof(Connection& conn);
  void drain_completions();
  void release_replies(Connection& conn);
  void maybe_run_flush();
  void resume_admissions();
  void begin_conn_drain(Connection& conn);
  void maybe_emit_tail(Connection& conn);
  void emit_conn_tele(Connection& conn);
  void maybe_emit_tser(Connection& conn);
  void accept_http_ready();
  void handle_http_event(HttpConnection& conn, const Event& event);
  void respond_http(HttpConnection& conn);
  [[nodiscard]] std::string route_http(const HttpRequest& request);
  void pump_http_writes(HttpConnection& conn);
  void finish_http_conn(HttpConnection& conn);
  void begin_server_drain();
  void check_timeouts(std::int64_t now_ms);
  void pump_writes(Connection& conn);
  void make_zombie(Connection& conn);
  void finish_conn(Connection& conn);
  void reap();
  void update_interest(Connection& conn);
  [[nodiscard]] bool wants_read(const Connection& conn) const noexcept;
  [[nodiscard]] bool accepting() const noexcept;
  [[nodiscard]] std::string global_tele_payload() const;

  service::ShardedStreamingService& service_;
  FrontEndOptions options_;
  EventLoop loop_;
  WakeFd wake_;
  std::vector<Listener> listeners_;  ///< unix, tcp, http (when present)
  Listener* unix_listener_ = nullptr;
  Listener* tcp_listener_ = nullptr;
  Listener* http_listener_ = nullptr;
  bool listeners_open_ = false;
  /// True when traced REPs carry the per-stage timing block (read from
  /// the service options; needs the tracer's clock as a time source).
  bool time_replies_ = false;

  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  /// HTTP connections share the id/token space with DCWP connections but
  /// live in their own map — their lifecycle is one request, one
  /// response, close.
  std::map<std::uint64_t, std::unique_ptr<HttpConnection>> http_conns_;
  std::uint64_t next_conn_id_ = 8;  ///< tokens 0..7 reserved for the loop
  std::vector<std::uint64_t> dead_conns_;
  std::vector<std::uint64_t> dead_http_conns_;

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;
  std::size_t outstanding_total_ = 0;
  std::size_t flush_waiters_ = 0;
  /// True from the moment a FLSH parks until the pause is lifted and the
  /// buffered/deferred frames have been re-pumped (run() clears it).
  bool admissions_paused_ = false;
  bool draining_ = false;
  std::int64_t drain_started_ms_ = 0;
  std::atomic<bool> shutdown_requested_{false};
  bool signal_handlers_installed_ = false;

  FrontEndStats stats_;

  obs::Counter* obs_accepted_ = nullptr;
  obs::Counter* obs_rejected_ = nullptr;
  obs::Counter* obs_overloaded_requests_ = nullptr;
  obs::Counter* obs_closed_ = nullptr;
  obs::Counter* obs_idle_timeouts_ = nullptr;
  obs::Counter* obs_protocol_errors_ = nullptr;
  obs::Gauge* obs_open_conns_ = nullptr;
};

}  // namespace deepcat::net
