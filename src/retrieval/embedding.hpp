// Fixed-width experience embeddings for the warm-start retrieval index
// (DESIGN.md §12). A finished tuning session is summarized as one
// kEmbeddingDim vector:
//
//   [0, 4)    workload-type one-hot (WC, TS, PR, KM)
//   [4]       log-normalized input size: log1p(input_mb) / kInputLogScale
//   [5, 37)   per-knob sensitivity: |encode(best_config) - encode(defaults)|
//             over the 32-knob action space — which knobs the session
//             actually moved, and how far
//   [37, 41)  reward statistics of the session's online steps
//             (mean, min, max, last), each scaled by kRewardScale
//
// A *query* embedding describes a session that has not run yet, so only
// the workload one-hot and input-size slots are populated; the sensitivity
// and reward slots stay zero. Under the cosine metric those zero slots
// drop out of the inner product, leaving workload identity + input scale
// to drive the match while stored entries still carry their outcome
// signature for entry-vs-entry distances.
//
// Every function here is a pure function of its arguments — embeddings are
// deterministic, so retrieval results (and therefore warm-started session
// transcripts) stay bit-identical across shards, threads and processes.
#pragma once

#include <array>
#include <cstddef>

#include "sparksim/config_space.hpp"
#include "sparksim/workloads.hpp"
#include "tuners/tuner.hpp"

namespace deepcat::retrieval {

/// Distinct workload families in the one-hot prefix.
inline constexpr std::size_t kWorkloadTypes = 4;

/// Total embedding width: one-hot + input-size + knob sensitivity + reward
/// stats. 41 slots for the 32-knob pipeline space.
inline constexpr std::size_t kEmbeddingDim =
    kWorkloadTypes + 1 + sparksim::kNumKnobs + 4;

/// Divisor for the log1p(input_mb) slot; ~log(6.6e7 MB), so every realistic
/// dataset lands in (0, 1).
inline constexpr double kInputLogScale = 18.0;

/// Divisor for the reward-stat slots; session rewards live in roughly
/// [-4, 1], so scaled stats stay within [-1, 1] alongside the unit one-hot.
inline constexpr double kRewardScale = 4.0;

using Embedding = std::array<double, kEmbeddingDim>;

/// Embedding of a session that has not run yet: one-hot + input size only.
[[nodiscard]] Embedding embed_query(sparksim::WorkloadType type,
                                    double input_mb);

/// Full embedding of a finished session: embed_query plus the observed
/// knob-sensitivity profile (best config vs defaults, in action space) and
/// the reward statistics of the report's online steps.
[[nodiscard]] Embedding embed_report(sparksim::WorkloadType type,
                                     double input_mb,
                                     const tuners::TuningReport& report);

}  // namespace deepcat::retrieval
