// The warm-start experience index: a flat store of finished-session
// summaries answering k-nearest-neighbor queries over their embeddings
// with the batched SIMD distance kernels (common/simd: one dispatched
// call scans the whole index, scalar→avx2→avx512).
//
// Determinism contract: `query` is a pure function of (index contents,
// query embedding, k, metric). Distances are computed by one batched
// kernel call per query and ties break on ascending entry order, so the
// same index returns the same neighbors on every shard, thread and
// process — which is what keeps warm-started sessions bit-identical
// across the serving matrix. Within one SIMD tier results are exactly
// reproducible; across tiers distances agree to the 1e-12 kernel
// contract, and the suite's embedding geometry keeps every neighbor
// ordering far (>1e-6) from any tie that tolerance could flip.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "retrieval/embedding.hpp"
#include "sparksim/config_space.hpp"
#include "sparksim/workloads.hpp"
#include "tuners/tuner.hpp"

namespace deepcat::retrieval {

/// One checkpointed session outcome. `best_action` is the session's best
/// configuration in encoded [0,1]^32 action space — exactly what a warm
/// session replays as its seed evaluations.
struct ExperienceEntry {
  std::string workload;        ///< HiBench case id, e.g. "TS-D1"
  std::uint64_t seed = 0;      ///< session seed that produced the outcome
  double best_cost = 0.0;      ///< best observed execution time (seconds)
  double default_cost = 0.0;   ///< default-config execution time (seconds)
  std::array<double, sparksim::kNumKnobs> best_action{};
  Embedding embedding{};

  friend bool operator==(const ExperienceEntry&,
                         const ExperienceEntry&) = default;
};

/// Default neighbor count for warm requests and the `index query` CLI:
/// enough seed evaluations to matter inside a 5-step budget while leaving
/// the actor room to fine-tune past them.
inline constexpr std::size_t kDefaultNeighbors = 3;

/// Distance metric for queries. Cosine is the default (scale-invariant, so
/// a query's zeroed outcome slots drop out); L2 is exposed for the CLI and
/// the property tests.
enum class Metric : int { kCosine = 0, kL2 = 1 };

[[nodiscard]] const char* metric_name(Metric m) noexcept;

/// Parses "cosine" / "l2"; throws std::invalid_argument on anything else.
[[nodiscard]] Metric metric_from_name(const std::string& name);

struct Neighbor {
  std::size_t entry = 0;    ///< index into entries()
  double distance = 0.0;
};

class ExperienceIndex {
 public:
  void add(ExperienceEntry entry);

  [[nodiscard]] const std::vector<ExperienceEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// The k nearest entries to `query`, ascending by (distance, entry
  /// order). Returns fewer than k when the index is smaller.
  [[nodiscard]] std::vector<Neighbor> query(const Embedding& query,
                                            std::size_t k,
                                            Metric metric) const;

  /// Query by suite case: embeds (type, input_mb) and delegates to query.
  [[nodiscard]] std::vector<Neighbor> query_case(const sparksim::HiBenchCase& c,
                                                 std::size_t k,
                                                 Metric metric) const;

  friend bool operator==(const ExperienceIndex&,
                         const ExperienceIndex&) = default;

 private:
  std::vector<ExperienceEntry> entries_;
  std::vector<double> matrix_;  ///< row-major n x kEmbeddingDim, SIMD scan
};

/// Summarizes one finished session into an index entry (embedding included).
[[nodiscard]] ExperienceEntry entry_from_report(
    const sparksim::HiBenchCase& c, std::uint64_t seed,
    const tuners::TuningReport& report);

}  // namespace deepcat::retrieval
