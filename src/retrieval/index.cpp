#include "retrieval/index.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/simd.hpp"

namespace deepcat::retrieval {

const char* metric_name(Metric m) noexcept {
  return m == Metric::kL2 ? "l2" : "cosine";
}

Metric metric_from_name(const std::string& name) {
  if (name == "cosine") return Metric::kCosine;
  if (name == "l2") return Metric::kL2;
  throw std::invalid_argument("unknown retrieval metric: " + name);
}

void ExperienceIndex::add(ExperienceEntry entry) {
  matrix_.insert(matrix_.end(), entry.embedding.begin(),
                 entry.embedding.end());
  entries_.push_back(std::move(entry));
}

std::vector<Neighbor> ExperienceIndex::query(const Embedding& query,
                                             std::size_t k,
                                             Metric metric) const {
  std::vector<Neighbor> out;
  if (entries_.empty() || k == 0) return out;
  std::vector<double> distances(entries_.size());
  if (metric == Metric::kL2) {
    common::simd::squared_distances(query.data(), matrix_.data(),
                                    entries_.size(), kEmbeddingDim,
                                    distances.data());
  } else {
    common::simd::cosine_distances(query.data(), matrix_.data(),
                                   entries_.size(), kEmbeddingDim,
                                   distances.data());
  }
  std::vector<std::size_t> order(entries_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&distances](std::size_t a, std::size_t b) {
              if (distances[a] != distances[b]) {
                return distances[a] < distances[b];
              }
              return a < b;  // deterministic tie-break: insertion order
            });
  const std::size_t take = std::min(k, order.size());
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back({order[i], distances[order[i]]});
  }
  return out;
}

std::vector<Neighbor> ExperienceIndex::query_case(const sparksim::HiBenchCase& c,
                                                  std::size_t k,
                                                  Metric metric) const {
  return query(embed_query(c.type, sparksim::workload_for(c).input_mb), k,
               metric);
}

ExperienceEntry entry_from_report(const sparksim::HiBenchCase& c,
                                  std::uint64_t seed,
                                  const tuners::TuningReport& report) {
  ExperienceEntry entry;
  entry.workload = c.id;
  entry.seed = seed;
  entry.best_cost = report.best_time;
  entry.default_cost = report.default_time;
  const auto action = sparksim::pipeline_space().encode(report.best_config);
  std::copy(action.begin(), action.end(), entry.best_action.begin());
  const double input_mb = sparksim::workload_for(c).input_mb;
  entry.embedding = embed_report(c.type, input_mb, report);
  return entry;
}

}  // namespace deepcat::retrieval
