#include "retrieval/embedding.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace deepcat::retrieval {

Embedding embed_query(sparksim::WorkloadType type, double input_mb) {
  Embedding e{};
  const auto slot = static_cast<std::size_t>(type);
  if (slot < kWorkloadTypes) e[slot] = 1.0;
  e[kWorkloadTypes] = std::log1p(std::max(0.0, input_mb)) / kInputLogScale;
  return e;
}

Embedding embed_report(sparksim::WorkloadType type, double input_mb,
                       const tuners::TuningReport& report) {
  Embedding e = embed_query(type, input_mb);
  const auto& space = sparksim::pipeline_space();
  const auto best = space.encode(report.best_config);
  const auto base = space.encode(space.defaults());
  for (std::size_t i = 0; i < sparksim::kNumKnobs; ++i) {
    e[kWorkloadTypes + 1 + i] = std::abs(best[i] - base[i]);
  }
  if (!report.steps.empty()) {
    double sum = 0.0;
    double lo = report.steps.front().reward;
    double hi = lo;
    for (const auto& s : report.steps) {
      sum += s.reward;
      lo = std::min(lo, s.reward);
      hi = std::max(hi, s.reward);
    }
    const std::size_t stats = kWorkloadTypes + 1 + sparksim::kNumKnobs;
    e[stats + 0] = sum / static_cast<double>(report.steps.size()) / kRewardScale;
    e[stats + 1] = lo / kRewardScale;
    e[stats + 2] = hi / kRewardScale;
    e[stats + 3] = report.steps.back().reward / kRewardScale;
  }
  return e;
}

}  // namespace deepcat::retrieval
