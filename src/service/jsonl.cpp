#include "service/jsonl.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace deepcat::service {

namespace {

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
}

void expect(const std::string& s, std::size_t& i, char c,
            const char* what) {
  skip_ws(s, i);
  if (i >= s.size() || s[i] != c) {
    throw std::invalid_argument(std::string("malformed JSON: expected ") +
                                what);
  }
  ++i;
}

std::string parse_string(const std::string& s, std::size_t& i) {
  expect(s, i, '"', "'\"'");
  std::string out;
  while (i < s.size() && s[i] != '"') {
    char c = s[i++];
    if (c == '\\') {
      if (i >= s.size()) break;
      const char esc = s[i++];
      switch (esc) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case '/': c = '/'; break;
        default:
          throw std::invalid_argument(
              "malformed JSON: unsupported escape sequence");
      }
    }
    out.push_back(c);
  }
  if (i >= s.size()) {
    throw std::invalid_argument("malformed JSON: unterminated string");
  }
  ++i;  // closing quote
  return out;
}

std::string parse_scalar(const std::string& s, std::size_t& i) {
  skip_ws(s, i);
  if (i < s.size() && s[i] == '"') return parse_string(s, i);
  // Bare token: number, true, false, null — taken until , } or whitespace.
  const std::size_t start = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' &&
         std::isspace(static_cast<unsigned char>(s[i])) == 0) {
    ++i;
  }
  if (i == start) {
    throw std::invalid_argument("malformed JSON: expected a value");
  }
  return s.substr(start, i - start);
}

}  // namespace

std::map<std::string, std::string> parse_flat_json(const std::string& line) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  expect(line, i, '{', "'{'");
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') return out;
  for (;;) {
    skip_ws(line, i);
    const std::string key = parse_string(line, i);
    expect(line, i, ':', "':'");
    out[key] = parse_scalar(line, i);
    skip_ws(line, i);
    if (i >= line.size()) {
      throw std::invalid_argument("malformed JSON: missing '}'");
    }
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') break;
    throw std::invalid_argument("malformed JSON: expected ',' or '}'");
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

TuningRequest parse_request_json(const std::string& line, std::size_t index) {
  const auto fields = parse_flat_json(line);
  TuningRequest req;
  req.id = "req-" + std::to_string(index);
  req.seed = index + 1;
  if (const auto it = fields.find("id"); it != fields.end()) {
    req.id = it->second;
  }
  if (const auto it = fields.find("workload"); it != fields.end()) {
    req.workload = it->second;
  } else {
    throw std::invalid_argument("request '" + req.id +
                                "' is missing the \"workload\" key");
  }
  if (const auto it = fields.find("cluster"); it != fields.end()) {
    req.cluster = it->second;
  }
  if (const auto it = fields.find("steps"); it != fields.end()) {
    req.max_steps = std::stoi(it->second);
  }
  if (const auto it = fields.find("budget_seconds"); it != fields.end()) {
    req.max_total_seconds = std::stod(it->second);
  }
  if (const auto it = fields.find("seed"); it != fields.end()) {
    req.seed = static_cast<std::uint64_t>(std::stoull(it->second));
  }
  if (const auto it = fields.find("model"); it != fields.end()) {
    req.model = it->second;
  }
  if (const auto it = fields.find("warm"); it != fields.end()) {
    try {
      req.warm_k = std::stoi(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("request '" + req.id +
                                  "' has a non-integer \"warm\" count '" +
                                  it->second + "'");
    }
    if (req.warm_k < 0) {
      throw std::invalid_argument("request '" + req.id +
                                  "' has a negative \"warm\" count");
    }
  }
  if (const auto it = fields.find("trace"); it != fields.end()) {
    // Mirrors the "warm" precedent: a malformed trace context is a typed
    // parse error, never a silently-untraced session.
    if (it->second.empty()) {
      throw std::invalid_argument("request '" + req.id +
                                  "' has an empty \"trace\" id");
    }
    req.trace_id = it->second;
  }
  if (const auto it = fields.find("span"); it != fields.end()) {
    if (req.trace_id.empty()) {
      throw std::invalid_argument("request '" + req.id +
                                  "' has a \"span\" id without a \"trace\"");
    }
    try {
      std::size_t used = 0;
      if (!it->second.empty() && it->second[0] == '-') {
        throw std::invalid_argument("negative");
      }
      req.trace_span = std::stoull(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      throw std::invalid_argument("request '" + req.id +
                                  "' has a non-integer \"span\" id '" +
                                  it->second + "'");
    }
  }
  if (const auto it = fields.find("scope"); it != fields.end()) {
    // Mirrors the "warm" precedent: a malformed scope is a typed parse
    // error, never a silent fall-back to global routing.
    if (it->second == "global") {
      req.scope = TuneScope::kGlobal;
    } else if (it->second == "workload") {
      req.scope = TuneScope::kWorkload;
    } else if (it->second == "hardware") {
      req.scope = TuneScope::kHardware;
    } else {
      throw std::invalid_argument(
          "request '" + req.id + "' has an unknown \"scope\" '" + it->second +
          "' (use global, workload or hardware)");
    }
  }
  return req;
}

std::vector<TuningRequest> parse_requests_jsonl(std::istream& is) {
  std::vector<TuningRequest> requests;
  std::string line;
  std::size_t index = 0;
  while (std::getline(is, line)) {
    std::size_t i = 0;
    skip_ws(line, i);
    if (i >= line.size()) continue;  // blank line
    requests.push_back(parse_request_json(line, index));
    ++index;
  }
  return requests;
}

namespace {

void write_report_body(std::ostream& os, const SessionReport& r,
                       bool with_routing, std::uint64_t model_epoch) {
  os.precision(17);
  os << "{\"id\":\"" << json_escape(r.id) << "\",\"workload\":\""
     << json_escape(r.workload) << "\",\"cluster\":\""
     << json_escape(r.cluster) << "\"";
  if (with_routing) {
    os << ",\"model\":\"" << json_escape(r.model)
       << "\",\"model_epoch\":" << model_epoch;
  }
  os << ",\"ok\":" << (r.ok ? "true" : "false");
  if (!r.ok) {
    os << ",\"error\":\"" << json_escape(r.error) << "\"}\n";
    return;
  }
  // Cold sessions omit the key entirely so pre-warm transcripts (and their
  // golden files) stay byte-identical.
  if (r.warm_seeds > 0) os << ",\"warm\":" << r.warm_seeds;
  // Global-scope sessions likewise omit "scope" — legacy transcripts stay
  // byte-identical; scoped ones echo the level the model was keyed under.
  if (!r.scope.empty()) {
    os << ",\"scope\":\"" << json_escape(r.scope) << "\"";
  }
  // Traced sessions echo the client's trace id plus the deterministic
  // server span id; untraced REPs omit both keys (byte-identity again).
  if (!r.trace_id.empty()) {
    os << ",\"trace\":\"" << json_escape(r.trace_id)
       << "\",\"span\":" << r.server_span;
  }
  // Gated per-stage timing block (StreamServeOptions.reply_timings).
  if (r.timings.has_value()) {
    os << ",\"t_decode_ns\":" << r.timings->decode_ns
       << ",\"t_queue_ns\":" << r.timings->queue_ns
       << ",\"t_session_ns\":" << r.timings->session_ns
       << ",\"t_merge_ns\":" << r.timings->merge_ns
       << ",\"t_write_ns\":" << r.timings->write_ns;
  }
  os << ",\"steps\":" << r.report.steps.size()
     << ",\"default_time\":" << r.report.default_time
     << ",\"best_time\":" << r.report.best_time
     << ",\"speedup\":" << r.report.speedup_over_default()
     << ",\"eval_seconds\":" << r.report.total_evaluation_seconds()
     << ",\"rec_seconds\":" << r.report.total_recommendation_seconds()
     << ",\"mean_reward\":" << r.mean_reward();
  // Streaming sessions append their re-adaptation accounting; batch REPs
  // carry none of these keys, so existing goldens are untouched.
  if (r.report.stream.has_value()) {
    const sparksim::StreamSummary& ss = *r.report.stream;
    os << ",\"objective\":\"" << to_string(r.report.objective) << "\""
       << ",\"phases\":" << ss.phases << ",\"windows\":" << ss.windows
       << ",\"shifts\":" << ss.shifts.size()
       << ",\"recovered\":" << (ss.all_recovered() ? "true" : "false");
    os << ",\"recovery_evals\":\"";
    for (std::size_t i = 0; i < ss.shifts.size(); ++i) {
      if (i > 0) os << ',';
      os << (ss.shifts[i].recovered ? std::to_string(ss.shifts[i].recovery_evals)
                                    : std::string("-"));
    }
    os << "\",\"final_p95_s\":" << ss.final_p95_s;
  }
  os << "}\n";
}

}  // namespace

void write_report_jsonl(std::ostream& os, const SessionReport& r) {
  write_report_body(os, r, /*with_routing=*/false, 0);
}

void write_report_jsonl(std::ostream& os, const SessionReport& r,
                        std::uint64_t model_epoch) {
  write_report_body(os, r, /*with_routing=*/true, model_epoch);
}

namespace {

/// The one serializer for the aggregate metrics fields — METR and the
/// TELE aggregate line both call it, so the flat keys cannot drift apart.
/// Writes the keys only; the caller owns the braces (and any keys before
/// or after).
void write_metrics_body(std::ostream& os, const ServiceMetrics& m) {
  os.precision(17);
  os << "\"aggregate\":true,\"sessions\":" << m.sessions_served
     << ",\"failed\":" << m.sessions_failed
     << ",\"evaluations\":" << m.evaluations_paid
     << ",\"eval_seconds\":" << m.evaluation_seconds
     << ",\"rec_seconds\":" << m.recommendation_seconds
     << ",\"p50_rec_seconds\":" << m.p50_recommendation_seconds
     << ",\"p95_rec_seconds\":" << m.p95_recommendation_seconds
     << ",\"mean_reward\":" << m.mean_session_reward
     << ",\"mean_speedup\":" << m.mean_speedup
     << ",\"merges\":" << m.merges
     << ",\"merged_transitions\":" << m.merged_transitions
     << ",\"fine_tune_steps\":" << m.fine_tune_steps;
}

/// Deterministic subset: the integer fields only. The float aggregates
/// (second totals, means, tracker quantiles) accumulate in completion
/// order, so their low-order bits depend on scheduling; the deterministic
/// TELE payload leaves them to the registry's fixed-point instruments.
void write_metrics_body_deterministic(std::ostream& os,
                                      const ServiceMetrics& m) {
  os << "\"aggregate\":true,\"sessions\":" << m.sessions_served
     << ",\"failed\":" << m.sessions_failed
     << ",\"evaluations\":" << m.evaluations_paid
     << ",\"merges\":" << m.merges
     << ",\"merged_transitions\":" << m.merged_transitions
     << ",\"fine_tune_steps\":" << m.fine_tune_steps;
}

void write_build_labels(std::ostream& os, const obs::BuildInfo& build) {
  os << ",\"version\":\"" << json_escape(build.version) << "\""
     << ",\"backend\":\"" << json_escape(build.backend) << "\""
     << ",\"simd_compiled\":" << (build.simd_compiled ? "true" : "false")
     << ",\"threads\":" << build.threads;
}

}  // namespace

void write_metrics_jsonl(std::ostream& os, const ServiceMetrics& m) {
  os << '{';
  write_metrics_body(os, m);
  os << "}\n";
}

void write_metrics_jsonl(std::ostream& os, const ServiceMetrics& m,
                         const obs::BuildInfo& build) {
  os << '{';
  write_metrics_body(os, m);
  write_build_labels(os, build);
  os << "}\n";
}

void write_telemetry_payload(std::ostream& os, const ServiceMetrics& m,
                             const obs::BuildInfo& build,
                             const obs::MetricsRegistry* registry,
                             bool include_nondeterministic) {
  os << "{\"tele\":" << kTelemetrySchemaVersion << ",\"deterministic\":"
     << (include_nondeterministic ? "false" : "true") << ',';
  if (include_nondeterministic) {
    write_metrics_body(os, m);
  } else {
    write_metrics_body_deterministic(os, m);
  }
  write_build_labels(os, build);
  os << "}\n";
  if (registry != nullptr) {
    registry->write_jsonl(os, include_nondeterministic);
  }
}

}  // namespace deepcat::service
