#include "service/sharding.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"

namespace deepcat::service {

std::uint64_t shard_hash(const std::string& model) noexcept {
  // FNV-1a 64-bit: stable across platforms (unlike std::hash), so shard
  // placement — and therefore per-shard metrics — is reproducible.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : model) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

ShardedStreamingService::ShardedStreamingService(StreamingOptions base,
                                                std::size_t shards) {
  const std::size_t count = std::max<std::size_t>(1, shards);
  std::size_t total_threads = base.service.threads;
  if (total_threads == 0) {
    total_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  base.service.threads = std::max<std::size_t>(1, total_threads / count);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<StreamingService>(base));
  }
}

void ShardedStreamingService::train_model(const std::string& name,
                                          const sparksim::WorkloadSpec& workload,
                                          std::size_t iterations) {
  shard_for_model(name).train_model(name, workload, iterations);
  distribute_scope_seed(name);
}

void ShardedStreamingService::load_model(const std::string& name,
                                         std::istream& is) {
  shard_for_model(name).load_model(name, is);
  distribute_scope_seed(name);
}

void ShardedStreamingService::load_model_file(const std::string& name,
                                              const std::string& path) {
  shard_for_model(name).load_model_file(name, path);
  distribute_scope_seed(name);
}

void ShardedStreamingService::distribute_scope_seed(const std::string& name) {
  if (shards_.size() < 2) return;  // the owning shard recorded its own seed
  // A scoped key ("m@wl:...") can hash to any shard, so every shard needs
  // the base model's genesis blob to fork scoped models from. One canonical
  // serialization is shared by all shards — scoped forks therefore start
  // from identical bytes regardless of the shard count.
  auto blob = std::make_shared<const std::string>(
      shard_for_model(name).checkpoint_of(name));
  for (auto& shard : shards_) shard->set_scope_seed(name, blob);
}

bool ShardedStreamingService::has_model(const std::string& name) const {
  return shards_[shard_of(name)]->has_model(name);
}

void ShardedStreamingService::submit(
    TuningRequest request, StreamingService::CompletionCallback on_done) {
  // Route by the scope-derived key, not the raw name: every request for a
  // given scoped model lands on one shard, so scoped masters keep the
  // frozen-epoch / canonical-merge determinism contract per shard.
  StreamingService& target = shard_for_model(scoped_model_key(request));
  target.submit(std::move(request), std::move(on_done));
}

bool ShardedStreamingService::idle() const {
  for (const auto& shard : shards_) {
    if (!shard->idle()) return false;
  }
  return true;
}

std::size_t ShardedStreamingService::in_flight() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->in_flight();
  return total;
}

std::size_t ShardedStreamingService::flush_all() {
  std::size_t merged = 0;
  for (auto& shard : shards_) merged += shard->flush();
  return merged;
}

std::uint64_t ShardedStreamingService::model_epoch(
    const std::string& name) const {
  return shards_[shard_of(name)]->model_epoch(name);
}

std::string ShardedStreamingService::checkpoint_of(const std::string& name) {
  return shards_[shard_of(name)]->checkpoint_of(name);
}

ServiceMetrics ShardedStreamingService::aggregate_metrics() const {
  ServiceMetrics total;
  total.rec_buckets.assign(rec_cost_bucket_edges().size() + 1, 0);
  double reward_weighted = 0.0;
  double speedup_weighted = 0.0;
  for (const auto& shard : shards_) {
    const ServiceMetrics m = shard->metrics();
    total.sessions_served += m.sessions_served;
    total.sessions_failed += m.sessions_failed;
    total.evaluations_paid += m.evaluations_paid;
    total.evaluation_seconds += m.evaluation_seconds;
    total.recommendation_seconds += m.recommendation_seconds;
    total.merges += m.merges;
    total.merged_transitions += m.merged_transitions;
    total.fine_tune_steps += m.fine_tune_steps;
    const auto weight = static_cast<double>(m.sessions_served);
    reward_weighted += m.mean_session_reward * weight;
    speedup_weighted += m.mean_speedup * weight;
    // Every shard histograms rec cost over the same fixed edges, so the
    // bucket counts merge exactly — unlike quantiles, which do not
    // average. The fleet percentile is then one quantile query over the
    // merged counts, identical whatever the shard layout.
    for (std::size_t i = 0; i < m.rec_buckets.size(); ++i) {
      total.rec_buckets[i] += m.rec_buckets[i];
    }
  }
  if (total.sessions_served > 0) {
    const auto n = static_cast<double>(total.sessions_served);
    total.mean_session_reward = reward_weighted / n;
    total.mean_speedup = speedup_weighted / n;
    total.p50_recommendation_seconds = obs::histogram_quantile(
        rec_cost_bucket_edges(), total.rec_buckets, 0.50);
    total.p95_recommendation_seconds = obs::histogram_quantile(
        rec_cost_bucket_edges(), total.rec_buckets, 0.95);
  }
  return total;
}

void ShardedStreamingService::set_session_runner_for_test(
    StreamingService::SessionRunner runner) {
  for (auto& shard : shards_) shard->set_session_runner_for_test(runner);
}

void ShardedStreamingService::set_warm_index(
    std::shared_ptr<const retrieval::ExperienceIndex> index) {
  for (auto& shard : shards_) shard->set_warm_index(index);
}

}  // namespace deepcat::service
