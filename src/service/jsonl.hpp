// Minimal JSONL codec for the `deepcat serve` batch driver: one flat JSON
// object per line (string / number / bool values, no nesting), hand-rolled
// because the build deliberately takes no third-party dependencies. This
// is a wire format for our own CLI round trip, not a general JSON parser.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "service/service.hpp"
#include "service/session.hpp"

namespace deepcat::service {

/// Parses one flat JSON object into key -> raw value (strings unescaped,
/// numbers/bools kept as their literal text). Throws std::invalid_argument
/// on malformed input, naming what was expected.
[[nodiscard]] std::map<std::string, std::string> parse_flat_json(
    const std::string& line);

/// Escapes a string for embedding in a JSON value.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Reads tuning requests from a JSONL stream, skipping blank lines.
/// Recognized keys: id, workload, cluster, steps, budget_seconds, seed.
/// Missing id defaults to "req-<line index>"; missing seed derives from
/// the line index so every request stays individually reproducible.
[[nodiscard]] std::vector<TuningRequest> parse_requests_jsonl(
    std::istream& is);

/// One JSON report line per session; full double precision so equal
/// results serialize to equal bytes (the pool-size independence check
/// diffs these lines directly).
void write_report_jsonl(std::ostream& os, const SessionReport& r);

/// The aggregate metrics line emitted after a batch ("aggregate":true).
void write_metrics_jsonl(std::ostream& os, const ServiceMetrics& m);

}  // namespace deepcat::service
