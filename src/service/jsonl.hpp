// Minimal JSONL codec for the `deepcat serve` batch driver: one flat JSON
// object per line (string / number / bool values, no nesting), hand-rolled
// because the build deliberately takes no third-party dependencies. This
// is a wire format for our own CLI round trip, not a general JSON parser.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/build_info.hpp"
#include "service/service.hpp"
#include "service/session.hpp"

namespace deepcat::service {

/// Schema version of the TELE aggregate line ("tele" key). Bump when the
/// payload shape changes incompatibly.
inline constexpr int kTelemetrySchemaVersion = 1;

/// Parses one flat JSON object into key -> raw value (strings unescaped,
/// numbers/bools kept as their literal text). Throws std::invalid_argument
/// on malformed input, naming what was expected.
[[nodiscard]] std::map<std::string, std::string> parse_flat_json(
    const std::string& line);

/// Escapes a string for embedding in a JSON value.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Parses one tuning request from a flat JSON object line. Recognized
/// keys: id, workload, cluster, steps, budget_seconds, seed, model, warm
/// (neighbour count for warm-start retrieval; 0 = cold, negative rejected),
/// scope ("global" | "workload" | "hardware"; missing = global),
/// trace (client trace id; missing = untraced), span (client parent span
/// id, non-negative integer; requires trace).
/// Missing id defaults to "req-<index>"; missing seed derives from
/// `index` so every request stays individually reproducible. Throws
/// std::invalid_argument on malformed JSON, a missing workload key, a
/// negative warm count, an unknown scope, or a malformed trace context.
[[nodiscard]] TuningRequest parse_request_json(const std::string& line,
                                               std::size_t index);

/// Reads tuning requests from a JSONL stream, skipping blank lines;
/// one parse_request_json call per non-blank line.
[[nodiscard]] std::vector<TuningRequest> parse_requests_jsonl(
    std::istream& is);

/// One JSON report line per session; full double precision so equal
/// results serialize to equal bytes (the pool-size independence check
/// diffs these lines directly).
void write_report_jsonl(std::ostream& os, const SessionReport& r);

/// Streaming variant: also emits the routed model name and the monotonic
/// master epoch that served the session, so clients can tell which master
/// version produced each recommendation.
void write_report_jsonl(std::ostream& os, const SessionReport& r,
                        std::uint64_t model_epoch);

/// The aggregate metrics line emitted after a batch ("aggregate":true).
void write_metrics_jsonl(std::ostream& os, const ServiceMetrics& m);

/// Streaming METR variant: the same aggregate fields plus build-info
/// labels (version, dispatched numeric backend, thread count). Additive
/// keys only — PR 3 clients parse with a tolerant flat-JSON reader, so
/// old readers still accept the extended frame. The batch driver keeps
/// the unlabelled writer so its output diffs clean across --threads and
/// numeric backends. Deprecated in wire v2 in favor of the TELE payload
/// (write_telemetry_payload); still emitted by default for v1 readers.
void write_metrics_jsonl(std::ostream& os, const ServiceMetrics& m,
                         const obs::BuildInfo& build);

/// The TELE frame payload: line 1 is the aggregate object — a "tele"
/// schema version tag, then the exact METR field serializer (the two
/// writers share one implementation so the flat keys can never drift),
/// then the build labels — followed by the registry's name-sorted
/// instrument set, one JSON line per instrument (write_metric_json
/// format, histogram lines carry p50/p95/p99). registry may be null
/// (aggregate line only).
///
/// include_nondeterministic=false is the byte-stable variant the
/// determinism stress compares across thread counts and arrival
/// shuffles: it keeps only the integer aggregate fields (float sums
/// accumulate in completion order, so their low bits are scheduling
/// artifacts) and only the registry's deterministic instruments (whose
/// fixed-point accumulation is exact and commutative).
void write_telemetry_payload(std::ostream& os, const ServiceMetrics& m,
                             const obs::BuildInfo& build,
                             const obs::MetricsRegistry* registry,
                             bool include_nondeterministic = true);

}  // namespace deepcat::service
