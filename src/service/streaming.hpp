// StreamingService: the no-barrier serving pipeline over the DeepCAT
// library. Where TuningService (service.hpp) serves whole batches behind a
// barrier, StreamingService admits requests as they arrive, runs them on
// the thread pool with the same clone-on-tune sessions, and hands reports
// back in completion order. Determinism is preserved by a sequencer
// discipline instead of a barrier:
//
//   - sessions are pure functions of (master snapshot, request): every
//     request admitted between two flush boundaries is served against the
//     same frozen epoch snapshot of its model, so a report never depends
//     on thread count or arrival order;
//   - at a flush boundary (explicit FLSH frame, end of stream, or model
//     eviction) the completed sessions' experience is merged into the
//     master RDPER pools in CANONICAL order — ascending (id, seed,
//     workload), not arrival order — so the post-merge master state is a
//     pure function of the request set, not of scheduling;
//   - after each merge the master takes bounded fine-tune steps
//     (Td3Agent::fine_tune) — the "continuous master updates" that keep
//     the shared model learning between requests — and its model epoch
//     advances; every report carries the epoch that served it.
//
// Multi-model routing: requests name a model. The service lazily loads
// named checkpoints from the ModelRegistry under a shared lock and evicts
// idle least-recently-used models when more than `max_loaded_models` are
// resident (merging and republishing their learned state first).
//
// Threading contract: submit/flush/poll_completed/wait_completed are
// driver APIs — call them from one thread (the stream loop). Sessions
// complete concurrently on the pool; all shared state crossings are
// internal.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/deepcat_api.hpp"
#include "obs/build_info.hpp"
#include "obs/sink.hpp"
#include "retrieval/index.hpp"
#include "service/service.hpp"
#include "service/session.hpp"

namespace deepcat::service {

struct StreamingOptions {
  ServiceOptions service;  ///< master/env settings + session pool size
  /// Bounded fine-tune steps the master takes after each experience merge
  /// (0 disables continuous master updates).
  std::size_t master_update_steps = 4;
  /// Resident-model cap for multi-model routing; idle LRU models beyond
  /// it are merged, republished and evicted.
  std::size_t max_loaded_models = 4;
  /// Registry directory for lazy model loading; empty disables routing
  /// beyond explicitly loaded/trained models.
  std::string registry_dir;
  /// Build-info fields stamped into the METR frame. Defaults (nullopt) to
  /// the live current_build_info(); golden tests pin a fixed value so the
  /// transcripts stay byte-identical across numeric backends.
  std::optional<obs::BuildInfo> build_info;
  /// Emit the per-stage timing block ("t_*_ns" keys) in traced REPs.
  /// Requires a tracer in the sink (its clock is the time source). Off by
  /// default: tick deltas depend on global clock interleaving, so the
  /// determinism suites and goldens keep trace-timing-free transcripts.
  bool reply_timings = false;
};

/// One completed session plus its serving metadata.
struct StreamReport {
  SessionReport session;
  std::uint64_t model_epoch = 0;  ///< master epoch that served the session
  std::uint64_t sequence = 0;     ///< admission index (monotonic)
};

class StreamingService {
 public:
  /// Test seam: replaces run_session with a deterministic fake so protocol
  /// transcripts can be byte-exact without depending on model float math.
  using SessionRunner = std::function<SessionReport(const TuningRequest&)>;

  explicit StreamingService(StreamingOptions options = {});

  [[nodiscard]] const StreamingOptions& options() const noexcept {
    return options_;
  }

  /// Explicit model bootstrap (the CLI uses these for the default model;
  /// other models load lazily from the registry on first request).
  void train_model(const std::string& name,
                   const sparksim::WorkloadSpec& workload,
                   std::size_t iterations);
  void load_model(const std::string& name, std::istream& is);
  void load_model_file(const std::string& name, const std::string& path);

  [[nodiscard]] bool has_model(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> loaded_models() const;

  /// Genesis checkpoint for scope forks: a scoped model key ("m@wl:...")
  /// with no resident entry and no published registry version bootstraps
  /// from its base model's seed blob. train_model/load_model* record the
  /// seed automatically; the sharded router distributes it to every shard
  /// so a scoped fork starts from identical bytes on any shard layout.
  void set_scope_seed(const std::string& base,
                      std::shared_ptr<const std::string> blob);

  /// The live master for `name` (throws std::out_of_range when not
  /// resident). Mutating it while requests are in flight is on the caller.
  [[nodiscard]] core::DeepCat& master(const std::string& name = "default");

  /// Warm-start experience index for `warm` requests (DESIGN.md §12).
  /// Set once before serving; requests with warm_k > 0 are resolved into
  /// seed actions by k-NN retrieval against this index at admission time.
  void set_warm_index(std::shared_ptr<const retrieval::ExperienceIndex> index);
  [[nodiscard]] bool has_warm_index() const;

  /// Typed-error precheck shared by both transports (istream driver and
  /// net front end): a warm request against a missing/empty index returns
  /// the ERR message to emit; nullopt means the request is admissible.
  [[nodiscard]] std::optional<std::string> warm_error(
      const TuningRequest& request) const;

  /// Admits one request; returns immediately. Unknown models and snapshot
  /// failures surface as a completed ok=false report, never an exception.
  void submit(TuningRequest request);

  /// Completion hand-off for callers that multiplex several clients over
  /// one service (the net front end): invoked exactly once per submitted
  /// request, after the service bookkeeping settles, instead of queueing
  /// the report on the poll/wait queue. Runs on a pool worker thread (or
  /// inline on the submitting thread when admission fails synchronously);
  /// it must not block and must not call back into driver APIs.
  using CompletionCallback = std::function<void(StreamReport)>;
  void submit(TuningRequest request, CompletionCallback on_done);

  /// True when no session is in flight — the nonblocking form of the
  /// flush() precondition. The front end defers FLSH barriers on this
  /// instead of blocking its event loop in flush().
  [[nodiscard]] bool idle() const;

  /// Sessions currently in flight (admitted, not yet completed).
  [[nodiscard]] std::size_t in_flight() const;

  /// Next completed report in completion order, or nullopt if none is
  /// ready right now (poll) / none will ever arrive because the service is
  /// idle (wait — it blocks while sessions are in flight).
  [[nodiscard]] std::optional<StreamReport> poll_completed();
  [[nodiscard]] std::optional<StreamReport> wait_completed();

  /// Barrier: waits for every in-flight session, merges all pending
  /// experience (canonical order) into each model, takes the bounded
  /// master fine-tune steps and advances the epochs of models that
  /// changed. Returns the number of transitions merged.
  std::size_t flush();

  /// Monotonic epoch of a resident model (1 = as loaded/trained).
  [[nodiscard]] std::uint64_t model_epoch(
      const std::string& name = "default") const;

  /// Serialized checkpoint of a resident model's current state — the
  /// determinism stress tests hash this across arrival orders.
  [[nodiscard]] std::string checkpoint_of(
      const std::string& name = "default");

  [[nodiscard]] ServiceMetrics metrics() const;

  /// Build info for the METR/TELE frames: the configured override, else
  /// the live dispatch/thread state.
  [[nodiscard]] obs::BuildInfo build_info() const;

  /// The sink's metrics registry (null when observability is off); the
  /// TELE encoder reads the instrument set through this.
  [[nodiscard]] const obs::MetricsRegistry* metrics_registry() const noexcept {
    return options_.service.obs.metrics;
  }

  /// The sink's convergence time-series registry (null = no TSER frames,
  /// byte-identical v2-shaped streams).
  [[nodiscard]] const obs::TimeSeriesRegistry* timeseries_registry()
      const noexcept {
    return options_.service.obs.series;
  }

  void set_session_runner_for_test(SessionRunner runner) {
    runner_ = std::move(runner);
  }

 private:
  /// Experience of one completed session, keyed for the canonical merge.
  struct PendingExperience {
    std::string id;
    std::uint64_t seed = 0;
    std::string workload;
    std::vector<rl::Transition> transitions;
  };

  /// One resident master model. `mutex` freezes the model while sessions
  /// sample its pools (shared) and is taken exclusively for merges; the
  /// bookkeeping fields are guarded by state_mutex_.
  struct MasterEntry {
    MasterEntry(const sparksim::ClusterSpec& cluster,
                const core::DeepCatApiOptions& api)
        : model(cluster, api) {}
    core::DeepCat model;
    std::shared_mutex mutex;
    std::uint64_t epoch = 1;
    std::shared_ptr<const std::string> blob;  ///< current epoch snapshot
    std::size_t in_flight = 0;
    std::uint64_t last_used = 0;  ///< admission sequence, for LRU eviction
    std::vector<PendingExperience> pending;
    bool dirty = false;  ///< merged experience since load (republish on evict)
    bool stub = false;   ///< test-runner entry without a trained master
  };

  [[nodiscard]] std::unique_ptr<MasterEntry> make_entry() const;
  /// Finds or lazily loads the model; throws on unknown names.
  [[nodiscard]] MasterEntry& resolve_entry(const std::string& name);
  [[nodiscard]] MasterEntry& ensure_entry_locked(const std::string& name);
  void complete_failed(const TuningRequest& request, const std::string& error,
                       const CompletionCallback& on_done);
  void on_complete(MasterEntry& entry, const TuningRequest& request,
                   SessionReport report, std::uint64_t epoch,
                   std::uint64_t sequence, const CompletionCallback& on_done);
  /// `model_key` is the scoped routing key the session was served under,
  /// naming its "model.<key>.best_reward" convergence series.
  void record_metrics_locked(const SessionReport& report,
                             const std::string& model_key);
  /// Merges one entry's pending experience; requires state_mutex_ held and
  /// no in-flight sessions on the entry. Returns transitions merged.
  std::size_t merge_entry_locked(MasterEntry& entry);
  /// Evicts idle LRU entries down to the cap; requires registry_mutex_
  /// held exclusively.
  void evict_idle_locked();

  /// Resolves a warm request's seed actions from the index; throws on an
  /// unknown workload. Requires a non-empty index (warm_error precheck).
  void resolve_warm(TuningRequest& request,
                    const retrieval::ExperienceIndex& index);

  StreamingOptions options_;
  sparksim::ClusterSpec cluster_;
  std::optional<ModelRegistry> registry_;
  SessionRunner runner_;
  std::shared_ptr<const retrieval::ExperienceIndex> warm_index_;
  /// Base-model genesis blobs for scoped-key bootstrap (state_mutex_).
  std::map<std::string, std::shared_ptr<const std::string>> scope_seeds_;

  /// Guards the entries_ map (lookup shared, lazy load/evict exclusive).
  mutable std::shared_mutex registry_mutex_;
  std::map<std::string, std::unique_ptr<MasterEntry>> entries_;

  /// Guards the scheduler state: queues, counters, metrics, entry
  /// bookkeeping fields.
  mutable std::mutex state_mutex_;
  std::condition_variable completion_cv_;
  std::deque<StreamReport> completed_;
  std::size_t in_flight_ = 0;
  std::uint64_t next_sequence_ = 0;
  ServiceMetrics totals_;
  common::QuantileTracker rec_costs_{kRecCostSampleCap};
  double speedup_sum_ = 0.0;
  double reward_sum_ = 0.0;
  /// Per-bucket rec-cost counts over rec_cost_bucket_edges() (+overflow),
  /// maintained unconditionally (cheap) so sharded aggregation can merge
  /// exactly even when the obs registry is off.
  std::vector<std::uint64_t> rec_bucket_counts_ =
      std::vector<std::uint64_t>(rec_cost_bucket_edges().size() + 1, 0);
  /// Running best session reward per served model key, feeding the
  /// "model.<key>.best_reward" convergence series.
  std::map<std::string, double> best_reward_;

  // Registry instruments, resolved once at construction; null when the
  // sink is inert. The queue-depth gauge registers as nondeterministic —
  // how deep the queue gets is exactly what scheduling decides.
  obs::Counter* obs_admitted_ = nullptr;
  obs::Counter* obs_sessions_ok_ = nullptr;
  obs::Counter* obs_sessions_failed_ = nullptr;
  obs::Counter* obs_flushes_ = nullptr;
  obs::Counter* obs_merges_ = nullptr;
  obs::Counter* obs_merged_transitions_ = nullptr;
  obs::Counter* obs_fine_tune_steps_ = nullptr;
  obs::Counter* obs_snapshots_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
  obs::Counter* obs_warm_requests_ = nullptr;
  obs::Counter* obs_warm_hits_ = nullptr;
  obs::Histogram* obs_rec_seconds_ = nullptr;
  obs::Gauge* obs_queue_depth_ = nullptr;

  /// Declared last: its destructor runs every queued session and joins
  /// before any state above is torn down.
  common::ThreadPool pool_;
};

/// Canonical wire payload encoders shared by the istream serve driver and
/// the net front end, so both transports emit byte-identical frames.
/// stream_reply_payload is the REP body (report + model epoch, no trailing
/// newline); stream_error_payload wraps a message as the ERR body.
[[nodiscard]] std::string stream_reply_payload(const StreamReport& report);
[[nodiscard]] std::string stream_error_payload(const std::string& message);

/// Validates a STAT frame payload (must be empty or a flat JSON object).
/// Returns nullopt when well formed, else the parse error message.
[[nodiscard]] std::optional<std::string> stat_payload_error(
    const std::string& payload);

/// Knobs for one serve_frame_stream drive.
struct StreamServeOptions {
  /// Also emit a TELE frame after every Nth REP (0 = only at the
  /// protocol-mandated points: FLSH boundaries, STAT polls, before END).
  std::size_t tele_every = 0;
  /// false = byte-stable TELE payloads (deterministic instruments and
  /// integer aggregates only); the CLI sets this for --clock logical.
  bool tele_include_nondeterministic = true;
  /// Keep emitting the deprecated METR frame before END so wire-v1
  /// readers still find their flat keys. TELE is emitted either way.
  bool metr_compat = true;
};

/// Result of driving one framed stream end to end.
struct StreamServeResult {
  std::size_t requests = 0;         ///< REQ frames seen (including bad ones)
  std::size_t failed_sessions = 0;  ///< REP frames with ok=false
  std::size_t parse_errors = 0;     ///< bad payloads / misdirected frames
  std::size_t protocol_errors = 0;  ///< corrupt framing (stream abandoned)
  std::size_t stat_polls = 0;       ///< well-formed STAT frames served
  std::size_t tele_frames = 0;      ///< TELE frames emitted
  std::size_t tser_frames = 0;      ///< TSER frames emitted (v3, gated)
  bool clean_end = false;           ///< explicit END frame received
};

/// Serves one framed wire stream: reads REQ/STAT/FLSH/END frames from
/// `in`, emits REP frames in completion order, a TELE frame at every
/// FLSH boundary / STAT poll / before the end, then the final
/// (deprecated, compat-gated) METR frame and an END frame to `out`.
/// Corrupt framing is unrecoverable (the stream is length-prefixed), so
/// it yields one ERR frame and stops reading; malformed request or STAT
/// payloads yield an ERR frame each and the stream continues. In-flight
/// work is always drained and merged before the final telemetry,
/// whatever the input did.
StreamServeResult serve_frame_stream(std::istream& in, std::ostream& out,
                                     StreamingService& service,
                                     const StreamServeOptions& serve_options);
StreamServeResult serve_frame_stream(std::istream& in, std::ostream& out,
                                     StreamingService& service);

}  // namespace deepcat::service
