#include "service/session.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <utility>

#include "service/checkpoint.hpp"
#include "sparksim/hardware.hpp"
#include "sparksim/workloads.hpp"
#include "streamsim/workloads.hpp"

namespace deepcat::service {

namespace {

sparksim::ClusterSpec cluster_for(const std::string& tag) {
  if (tag == "a" || tag == "A") return sparksim::cluster_a();
  if (tag == "b" || tag == "B") return sparksim::cluster_b();
  throw std::invalid_argument("unknown cluster '" + tag + "' (use a or b)");
}

// Domain-separation constants for the per-session streams: the tuner's
// exploration noise and the environment seed must come from unrelated
// streams even though both derive from the one request seed.
constexpr std::uint64_t kTunerStream = 0x7D3EC47ULL;
constexpr std::uint64_t kEnvStream = 0x0E4B51ULL;

}  // namespace

std::string to_string(TuneScope scope) {
  switch (scope) {
    case TuneScope::kGlobal:
      return "global";
    case TuneScope::kWorkload:
      return "workload";
    case TuneScope::kHardware:
      return "hardware";
  }
  return "global";
}

std::string scoped_model_key(const TuningRequest& request) {
  switch (request.scope) {
    case TuneScope::kGlobal:
      return request.model;
    case TuneScope::kWorkload:
      return request.model + "@wl:" + request.workload;
    case TuneScope::kHardware:
      return request.model + "@hw:" + request.cluster;
  }
  return request.model;
}

std::optional<std::string> scope_base_of(const std::string& model_key) {
  for (const char* sep : {"@wl:", "@hw:"}) {
    const std::size_t pos = model_key.find(sep);
    if (pos != std::string::npos && pos > 0) {
      return model_key.substr(0, pos);
    }
  }
  return std::nullopt;
}

double SessionReport::mean_reward() const noexcept {
  if (report.steps.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : report.steps) sum += s.reward;
  return sum / static_cast<double>(report.steps.size());
}

SharedRdperReplay::SharedRdperReplay(const rl::RdperReplay& master,
                                     std::shared_mutex& mutex)
    : master_(master),
      mutex_(mutex),
      config_(master.config()),
      master_high_(master.high_pool_size()),
      master_low_(master.low_pool_size()) {}

void SharedRdperReplay::add(rl::Transition t) {
  session_log_.push_back(t);
  if (t.reward >= config_.reward_threshold) {
    local_high_.push_back(std::move(t));
  } else {
    local_low_.push_back(std::move(t));
  }
}

std::size_t SharedRdperReplay::size() const noexcept {
  return master_high_ + master_low_ + local_high_.size() + local_low_.size();
}

std::size_t SharedRdperReplay::capacity() const noexcept {
  return master_.capacity();
}

rl::SampledBatch SharedRdperReplay::sample(std::size_t m, common::Rng& rng) {
  if (size() == 0) throw std::logic_error("SharedRdperReplay: empty sample");
  const std::size_t high_total = master_high_ + local_high_.size();
  const std::size_t low_total = master_low_ + local_low_.size();

  // Same split rule as RdperReplay::sample, over the combined pool sizes.
  std::size_t from_high = static_cast<std::size_t>(
      std::llround(config_.beta * static_cast<double>(m)));
  if (high_total == 0) from_high = 0;
  if (low_total == 0) from_high = m;

  rl::SampledBatch batch;
  batch.weights.assign(m, 1.0);
  batch.ids.reserve(m);
  scratch_.clear();
  scratch_.reserve(m);
  {
    // Shared lock only for the master reads; indices below master size hit
    // the frozen master storage, the rest the private overlay. Each drawn
    // transition is copied into scratch_ so the batch's pointers stay valid
    // without holding the lock through the training step.
    std::shared_lock lock(mutex_);
    const auto draw = [&](std::span<const rl::Transition> master_pool,
                          const std::vector<rl::Transition>& local_pool,
                          std::size_t total, std::size_t count) {
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t idx = rng.index(total);
        scratch_.push_back(idx < master_pool.size()
                               ? master_pool[idx]
                               : local_pool[idx - master_pool.size()]);
        batch.ids.push_back(idx);
      }
    };
    draw(master_.high_pool(), local_high_, high_total, from_high);
    draw(master_.low_pool(), local_low_, low_total, m - from_high);
  }
  batch.transitions.reserve(m);
  for (const auto& t : scratch_) batch.transitions.push_back(&t);
  return batch;
}

SessionReport run_session(const std::string& blob,
                          const core::DeepCatApiOptions& api,
                          const TuningRequest& request,
                          const rl::RdperReplay* master_pools,
                          std::shared_mutex* master_mutex) {
  SessionReport out;
  out.id = request.id;
  out.workload = request.workload;
  out.cluster = request.cluster;
  if (request.scope != TuneScope::kGlobal) {
    out.scope = to_string(request.scope);
  }
  try {
    // Batch id ("TS-D1") or streaming id ("SA-P1")? Resolve the batch suite
    // first; a miss there falls through to the streaming suite, and only a
    // miss in both is the unknown-workload error.
    const sparksim::HiBenchCase* batch_case = nullptr;
    const streamsim::StreamCase* stream_case = nullptr;
    try {
      batch_case = &sparksim::hibench_case(request.workload);
    } catch (const std::out_of_range&) {
      stream_case = &streamsim::stream_case(request.workload);
    }

    core::DeepCat dc(cluster_for(request.cluster), api);
    checkpoint_from_string(blob, dc);

    // Per-session determinism: both streams depend only on the request
    // seed, never on scheduling, so a session's report is reproducible for
    // any pool size or batch composition.
    dc.tuner().rng() =
        common::Rng(common::mix_seed(request.seed, kTunerStream));
    dc.set_next_env_seed(common::mix_seed(request.seed, kEnvStream));

    SharedRdperReplay* shared = nullptr;
    if (master_pools != nullptr && master_mutex != nullptr) {
      auto view =
          std::make_unique<SharedRdperReplay>(*master_pools, *master_mutex);
      shared = view.get();
      dc.tuner().set_replay(std::move(view));
    }

    const tuners::TuneBudget budget{
        .max_steps = request.max_steps,
        .max_total_seconds = request.max_total_seconds,
        .seed_actions = request.warm_actions};
    out.report =
        batch_case != nullptr
            ? dc.tune_online(sparksim::workload_for(*batch_case), budget)
            : dc.tune_online_stream(cluster_for(request.cluster),
                                    *stream_case, budget);
    out.warm_seeds = static_cast<int>(
        std::min(request.warm_actions.size(), out.report.steps.size()));
    if (shared != nullptr) {
      out.new_transitions = shared->session_transitions();
    }
    out.ok = true;
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }
  return out;
}

}  // namespace deepcat::service
