// Framed wire protocol for the streaming tuning service.
//
// A wire stream is a header followed by a sequence of frames, mirroring
// the `.dckp` checkpoint container (checkpoint.hpp): magic + version up
// front, then length-prefixed CRC-checked records, then an explicit
// terminator so truncation is always detectable.
//
// Layout (all integers little-endian):
//
//   magic "DCWP" | u32 protocol version
//   repeated frames:  u32 type (FourCC) | u64 payload length
//                     | payload bytes | u32 CRC32(type | length | payload)
//   terminator frame: type "END " with zero length
//
// Unlike the checkpoint sections (whose CRC covers the payload only), a
// frame's CRC also covers its own type and length words: a checkpoint tag
// flip degrades to a skippable/missing section, but a frame-type flip
// would silently turn one imperative into another (one bit separates
// "REQ " from "REP "), so the header itself must be integrity-checked.
//
// Frame types in version 3 (payloads are the service's JSONL objects,
// without the trailing newline):
//
//   "REQ "  client -> server: one tuning request
//   "REP "  server -> client: one session report (+ model, model_epoch)
//   "METR"  server -> client: aggregate metrics flat keys, once before
//           "END " — deprecated in favor of "TELE", still emitted by
//           default for v1 readers (StreamServeOptions.metr_compat)
//   "TELE"  server -> client: versioned telemetry snapshot — one
//           aggregate JSON line ("tele" schema tag + the METR fields +
//           build labels) followed by the full name-sorted instrument
//           set, one JSON line per instrument. Emitted at every "FLSH"
//           boundary, in answer to "STAT", and before "END "
//   "STAT"  client -> server: poll an on-demand "TELE" right now, without
//           a flush barrier; payload empty or a flat JSON object
//   "TSER"  server -> client (v3): convergence time-series snapshot —
//           one {"tser":1,...} header line then one flat JSON line per
//           series (obs/timeseries.hpp encoding). Emitted immediately
//           before each "TELE" at "FLSH"/"STAT"/end-of-stream, and only
//           when the server has a TimeSeriesRegistry attached — a server
//           without one produces byte-identical v2-shaped streams
//   "ERR "  server -> client: protocol or parse error description
//   "FLSH"  client -> server: barrier — merge all completed experience
//           into the masters and take bounded fine-tune steps now
//   "END "  either direction: clean end of stream
//
// Unlike the checkpoint reader (which skips unknown *optional* sections),
// the wire reader is strict: an unknown frame type is a typed error. A
// frame is an imperative, not an annotation — silently dropping one would
// turn a corrupt tag byte into a lost request. Evolution happens through
// the version field instead.
//
// Every failure mode — bad magic, newer version, unknown type, oversized
// length, truncation mid-frame, CRC mismatch — raises WireError with a
// message naming the frame; nothing is UB and no attacker-controlled
// length ever reaches an allocation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace deepcat::service {

/// Current writer protocol version. Readers accept any version <= this.
/// v2 added the "TELE" and "STAT" frames; v3 added "TSER" and the
/// optional REQ "trace" context (both additive — v1/v2 streams parse
/// unchanged).
inline constexpr std::uint32_t kWireVersion = 3;

/// Hard cap on a single frame payload. The JSONL payloads are a few
/// hundred bytes; anything near this limit is a corrupt or hostile length
/// field, refused before allocation.
inline constexpr std::uint64_t kMaxFramePayload = 16ull << 20;

/// Raised on any malformed, truncated or corrupt wire stream.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FrameType : std::uint32_t {
  kRequest = 0x20514552u,    // "REQ "
  kReply = 0x20504552u,      // "REP "
  kMetrics = 0x5254454Du,    // "METR"
  kTelemetry = 0x454C4554u,  // "TELE"
  kStat = 0x54415453u,       // "STAT"
  kTimeSeries = 0x52455354u, // "TSER"
  kError = 0x20525245u,      // "ERR "
  kFlush = 0x48534C46u,      // "FLSH"
  kEnd = 0x20444E45u,        // "END "
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Printable name of a frame type ("REQ", "REP", ...); unknown or corrupt
/// tags render their printable bytes with '?' placeholders.
[[nodiscard]] std::string frame_type_name(std::uint32_t tag);

/// True when `tag` is one of the frame types this version understands. The
/// incremental decoder (net/frame_decoder.hpp) shares the istream reader's
/// type table through this so the two parsers can never drift.
[[nodiscard]] bool known_frame_type(std::uint32_t tag) noexcept;

/// Byte-buffer forms of the header/frame writers, for transports that own
/// their output queue instead of a std::ostream (the serving front end's
/// per-connection write buffers). Byte-identical to the stream writers.
[[nodiscard]] std::string encode_stream_header();
[[nodiscard]] std::string encode_frame(FrameType type,
                                       std::string_view payload);

/// Writes the stream header (magic + version).
void write_stream_header(std::ostream& os);

/// Reads and validates the stream header. Throws WireError on bad magic,
/// truncation, or a version newer than kWireVersion.
void read_stream_header(std::istream& is);

/// Writes one frame (type, length, payload, CRC).
void write_frame(std::ostream& os, FrameType type, std::string_view payload);

/// Reads the next frame. Returns nullopt on a clean end-of-stream exactly
/// at a frame boundary (zero bytes of a next frame present); whether that
/// EOF is legal is the caller's call — the serve driver requires an
/// explicit "END " frame first. Throws WireError on everything else.
[[nodiscard]] std::optional<Frame> read_frame(std::istream& is);

/// Convenience for tests and clients: encodes header + frames to a string
/// / decodes a whole stream, validating every frame. decode stops at the
/// "END " frame and errors if the stream ends without one.
[[nodiscard]] std::string encode_frames(
    const std::vector<std::pair<FrameType, std::string>>& frames);
[[nodiscard]] std::vector<Frame> decode_frames(const std::string& bytes);

}  // namespace deepcat::service
