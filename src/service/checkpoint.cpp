#include "service/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "rl/replay.hpp"
#include "rl/replay_rdper.hpp"

namespace deepcat::service {

namespace {

constexpr char kMagic[4] = {'D', 'C', 'K', 'P'};

// FourCC tags, encoded as the little-endian u32 of the ASCII bytes.
constexpr std::uint32_t fourcc(const char (&tag)[5]) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(tag[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(tag[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(tag[2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(tag[3]))
          << 24);
}

constexpr std::uint32_t kTagMeta = fourcc("META");
constexpr std::uint32_t kTagNets = fourcc("NETS");
constexpr std::uint32_t kTagAdam = fourcc("ADAM");
constexpr std::uint32_t kTagReplay = fourcc("RPLY");
constexpr std::uint32_t kTagRng = fourcc("RNGS");
constexpr std::uint32_t kTagWorkloadRepo = fourcc("WREP");
constexpr std::uint32_t kTagRetrievalIndex = fourcc("RIDX");
constexpr std::uint32_t kTagEnd = fourcc("END ");

std::string tag_name(std::uint32_t tag) {
  std::string s(4, ' ');
  for (int i = 0; i < 4; ++i) {
    const auto c = static_cast<unsigned char>((tag >> (8 * i)) & 0xFFu);
    // A corrupt tag can hold arbitrary bytes; keep error messages printable.
    s[static_cast<std::size_t>(i)] =
        (c >= 0x20 && c < 0x7F) ? static_cast<char>(c) : '?';
  }
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

/// Reads exactly `len` payload bytes in bounded chunks. A corrupt section
/// length can claim an absurd payload size, so the allocation grows with
/// the bytes actually present in the stream instead of trusting the header
/// — a truncated or hostile stream dies with a typed error, never an
/// attacker-sized allocation.
std::string read_payload(std::istream& is, std::uint64_t len,
                         std::uint32_t tag) {
  constexpr std::uint64_t kChunk = 64 * 1024;
  std::string payload;
  while (payload.size() < len) {
    const auto want = static_cast<std::size_t>(
        std::min(kChunk, len - payload.size()));
    const std::size_t old = payload.size();
    payload.resize(old + want);
    is.read(payload.data() + old, static_cast<std::streamsize>(want));
    if (static_cast<std::size_t>(is.gcount()) != want) {
      throw CheckpointError("truncated checkpoint while reading section '" +
                            tag_name(tag) + "'");
    }
  }
  return payload;
}

// Replay kinds stored in META/RPLY.
constexpr std::uint8_t kReplayUniform = 0;
constexpr std::uint8_t kReplayRdper = 1;

struct Crc32Table {
  std::uint32_t t[256];
  constexpr Crc32Table() : t{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

constexpr Crc32Table kCrcTable{};

// ---- byte-level codec ---------------------------------------------------

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  void doubles(const double* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) f64(data[i]);
  }
  void double_vec(const std::vector<double>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    doubles(v.data(), v.size());
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked reader over one section payload. Every overrun throws a
/// CheckpointError naming the section, so a truncated or corrupt payload
/// can never walk off the buffer.
class ByteReader {
 public:
  ByteReader(const std::string& payload, std::string section)
      : data_(payload), section_(std::move(section)) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(byte()); }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(byte()) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(byte()) << (8 * i);
    }
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s = data_.substr(off_, n);
    off_ += n;
    return s;
  }
  void doubles(double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = f64();
  }
  std::vector<double> double_vec() {
    const std::uint32_t n = u32();
    need(static_cast<std::size_t>(n) * 8);
    std::vector<double> v(n);
    doubles(v.data(), v.size());
    return v;
  }

  void expect_exhausted() const {
    if (off_ != data_.size()) {
      throw CheckpointError("trailing bytes in checkpoint section '" +
                            section_ + "'");
    }
  }

 private:
  unsigned char byte() {
    need(1);
    return static_cast<unsigned char>(data_[off_++]);
  }
  void need(std::size_t n) const {
    if (off_ + n > data_.size()) {
      throw CheckpointError("truncated payload in checkpoint section '" +
                            section_ + "'");
    }
  }

  const std::string& data_;
  std::string section_;
  std::size_t off_ = 0;
};

// ---- section encoders ---------------------------------------------------

void write_section(std::ostream& os, std::uint32_t tag,
                   const std::string& payload) {
  char head[12];
  for (int i = 0; i < 4; ++i) {
    head[i] = static_cast<char>((tag >> (8 * i)) & 0xFFu);
  }
  const auto len = static_cast<std::uint64_t>(payload.size());
  for (int i = 0; i < 8; ++i) {
    head[4 + i] = static_cast<char>((len >> (8 * i)) & 0xFFu);
  }
  os.write(head, sizeof head);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const std::uint32_t crc =
      crc32(reinterpret_cast<const unsigned char*>(payload.data()),
            payload.size());
  char cbuf[4];
  for (int i = 0; i < 4; ++i) {
    cbuf[i] = static_cast<char>((crc >> (8 * i)) & 0xFFu);
  }
  os.write(cbuf, sizeof cbuf);
}

void write_transition(ByteWriter& w, const rl::Transition& t) {
  w.double_vec(t.state);
  w.double_vec(t.action);
  w.f64(t.reward);
  w.double_vec(t.next_state);
  w.u8(t.done ? 1 : 0);
}

rl::Transition read_transition(ByteReader& r) {
  rl::Transition t;
  t.state = r.double_vec();
  t.action = r.double_vec();
  t.reward = r.f64();
  t.next_state = r.double_vec();
  t.done = r.u8() != 0;
  return t;
}

std::string encode_meta(core::DeepCat& model) {
  ByteWriter w;
  const rl::Td3Config& td3 = model.tuner().agent().config();
  w.u32(static_cast<std::uint32_t>(td3.state_dim));
  w.u32(static_cast<std::uint32_t>(td3.action_dim));
  w.u8(model.tuner().options().use_rdper ? kReplayRdper : kReplayUniform);
  w.u64(model.next_env_seed());
  return w.bytes();
}

std::string encode_nets(core::DeepCat& model) {
  ByteWriter w;
  auto nets = model.tuner().agent().networks();
  w.u32(static_cast<std::uint32_t>(nets.size()));
  for (auto& [name, net] : nets) {
    w.str(name);
    auto params = net->params();
    w.u32(static_cast<std::uint32_t>(params.size()));
    for (const auto& p : params) {
      w.u32(static_cast<std::uint32_t>(p.value->rows()));
      w.u32(static_cast<std::uint32_t>(p.value->cols()));
      w.doubles(p.value->data(), p.value->size());
    }
  }
  return w.bytes();
}

void decode_nets(const std::string& payload, core::DeepCat& model) {
  ByteReader r(payload, "NETS");
  auto nets = model.tuner().agent().networks();
  const std::uint32_t count = r.u32();
  if (count != nets.size()) {
    throw CheckpointError("section 'NETS': network count mismatch");
  }
  for (auto& [name, net] : nets) {
    const std::string stored = r.str();
    if (stored != name) {
      throw CheckpointError("section 'NETS': expected network '" +
                            std::string(name) + "', found '" + stored + "'");
    }
    auto params = net->params();
    const std::uint32_t tensors = r.u32();
    if (tensors != params.size()) {
      throw CheckpointError("section 'NETS': tensor count mismatch in '" +
                            std::string(name) + "'");
    }
    for (auto& p : params) {
      const std::uint32_t rows = r.u32();
      const std::uint32_t cols = r.u32();
      if (rows != p.value->rows() || cols != p.value->cols()) {
        throw CheckpointError("section 'NETS': shape mismatch in '" +
                              std::string(name) + "'");
      }
      r.doubles(p.value->data(), p.value->size());
    }
  }
  r.expect_exhausted();
}

std::string encode_adam(core::DeepCat& model) {
  ByteWriter w;
  rl::Td3Agent& agent = model.tuner().agent();
  auto opts = agent.optimizers();
  w.u32(static_cast<std::uint32_t>(opts.size()));
  for (auto& [name, opt] : opts) {
    w.str(name);
    w.u64(static_cast<std::uint64_t>(opt->step_count()));
    const auto& m = opt->first_moments();
    const auto& v = opt->second_moments();
    w.u32(static_cast<std::uint32_t>(m.size()));
    for (std::size_t i = 0; i < m.size(); ++i) {
      w.u32(static_cast<std::uint32_t>(m[i].rows()));
      w.u32(static_cast<std::uint32_t>(m[i].cols()));
      w.doubles(m[i].data(), m[i].size());
      w.doubles(v[i].data(), v[i].size());
    }
  }
  w.u64(static_cast<std::uint64_t>(agent.train_steps()));
  return w.bytes();
}

void decode_adam(const std::string& payload, core::DeepCat& model) {
  ByteReader r(payload, "ADAM");
  rl::Td3Agent& agent = model.tuner().agent();
  auto opts = agent.optimizers();
  const std::uint32_t count = r.u32();
  if (count != opts.size()) {
    throw CheckpointError("section 'ADAM': optimizer count mismatch");
  }
  for (auto& [name, opt] : opts) {
    const std::string stored = r.str();
    if (stored != name) {
      throw CheckpointError("section 'ADAM': expected optimizer '" +
                            std::string(name) + "', found '" + stored + "'");
    }
    const std::uint64_t steps = r.u64();
    const auto& cur_m = opt->first_moments();
    const std::uint32_t tensors = r.u32();
    if (tensors != cur_m.size()) {
      throw CheckpointError("section 'ADAM': tensor count mismatch in '" +
                            std::string(name) + "'");
    }
    std::vector<nn::Matrix> m, v;
    m.reserve(tensors);
    v.reserve(tensors);
    for (std::uint32_t i = 0; i < tensors; ++i) {
      const std::uint32_t rows = r.u32();
      const std::uint32_t cols = r.u32();
      if (rows != cur_m[i].rows() || cols != cur_m[i].cols()) {
        throw CheckpointError("section 'ADAM': shape mismatch in '" +
                              std::string(name) + "'");
      }
      nn::Matrix mi(rows, cols), vi(rows, cols);
      r.doubles(mi.data(), mi.size());
      r.doubles(vi.data(), vi.size());
      m.push_back(std::move(mi));
      v.push_back(std::move(vi));
    }
    opt->restore_state(m, v, static_cast<std::size_t>(steps));
  }
  agent.set_train_steps(static_cast<std::size_t>(r.u64()));
  r.expect_exhausted();
}

std::string encode_replay(core::DeepCat& model) {
  ByteWriter w;
  rl::ReplayBuffer* replay = model.tuner().replay();
  if (auto* rdper = dynamic_cast<rl::RdperReplay*>(replay)) {
    w.u8(kReplayRdper);
    w.f64(rdper->config().reward_threshold);
    w.f64(rdper->config().beta);
    w.u64(static_cast<std::uint64_t>(rdper->capacity() / 2));
    const auto pools = {std::pair{rdper->high_pool(), rdper->high_cursor()},
                        std::pair{rdper->low_pool(), rdper->low_cursor()}};
    for (const auto& [pool, cursor] : pools) {
      w.u64(static_cast<std::uint64_t>(cursor));
      w.u64(static_cast<std::uint64_t>(pool.size()));
      for (const auto& t : pool) write_transition(w, t);
    }
  } else if (auto* uniform = dynamic_cast<rl::UniformReplay*>(replay)) {
    w.u8(kReplayUniform);
    w.u64(static_cast<std::uint64_t>(uniform->capacity()));
    w.u64(static_cast<std::uint64_t>(uniform->cursor()));
    w.u64(static_cast<std::uint64_t>(uniform->storage().size()));
    for (const auto& t : uniform->storage()) write_transition(w, t);
  } else {
    throw CheckpointError("section 'RPLY': unsupported replay buffer type");
  }
  return w.bytes();
}

void decode_replay(const std::string& payload, core::DeepCat& model) {
  ByteReader r(payload, "RPLY");
  rl::ReplayBuffer* replay = model.tuner().replay();
  const std::uint8_t kind = r.u8();
  if (kind == kReplayRdper) {
    auto* rdper = dynamic_cast<rl::RdperReplay*>(replay);
    if (rdper == nullptr) {
      throw CheckpointError(
          "section 'RPLY': checkpoint holds RDPER pools but the model was "
          "configured with use_rdper = false");
    }
    const double r_th = r.f64();
    const double beta = r.f64();
    const std::uint64_t cap = r.u64();
    if (r_th != rdper->config().reward_threshold ||
        beta != rdper->config().beta ||
        cap != static_cast<std::uint64_t>(rdper->capacity() / 2)) {
      throw CheckpointError("section 'RPLY': RDPER config mismatch");
    }
    std::vector<std::vector<rl::Transition>> pools(2);
    std::size_t cursors[2] = {0, 0};
    for (std::size_t pi = 0; pi < 2; ++pi) {
      cursors[pi] = static_cast<std::size_t>(r.u64());
      const std::uint64_t n = r.u64();
      // A spliced stream can pair this decoder with another section's
      // CRC-valid payload, so `n` is untrusted: cap the reservation by the
      // payload size (each transition needs > 1 byte) and let the bounds-
      // checked reads raise the typed error.
      pools[pi].reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(n, payload.size())));
      for (std::uint64_t i = 0; i < n; ++i) {
        pools[pi].push_back(read_transition(r));
      }
    }
    rdper->restore_pools(std::move(pools[0]), cursors[0], std::move(pools[1]),
                         cursors[1]);
  } else if (kind == kReplayUniform) {
    auto* uniform = dynamic_cast<rl::UniformReplay*>(replay);
    if (uniform == nullptr) {
      throw CheckpointError(
          "section 'RPLY': checkpoint holds a uniform buffer but the model "
          "was configured with use_rdper = true");
    }
    const std::uint64_t cap = r.u64();
    if (cap != static_cast<std::uint64_t>(uniform->capacity())) {
      throw CheckpointError("section 'RPLY': capacity mismatch");
    }
    const auto cursor = static_cast<std::size_t>(r.u64());
    const std::uint64_t n = r.u64();
    std::vector<rl::Transition> storage;
    storage.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(n, payload.size())));
    for (std::uint64_t i = 0; i < n; ++i) {
      storage.push_back(read_transition(r));
    }
    uniform->restore_storage(std::move(storage), cursor);
  } else {
    throw CheckpointError("section 'RPLY': unknown replay kind");
  }
  r.expect_exhausted();
}

std::string encode_rng(core::DeepCat& model) {
  ByteWriter w;
  const common::RngState st = model.tuner().rng().state();
  for (const std::uint64_t lane : st.s) w.u64(lane);
  w.f64(st.spare);
  w.u8(st.has_spare ? 1 : 0);
  return w.bytes();
}

void decode_rng(const std::string& payload, core::DeepCat& model) {
  ByteReader r(payload, "RNGS");
  common::RngState st;
  for (std::uint64_t& lane : st.s) lane = r.u64();
  st.spare = r.f64();
  st.has_spare = r.u8() != 0;
  r.expect_exhausted();
  model.tuner().rng().restore(st);
}

std::string encode_workload_repo(const gp::WorkloadRepository& repo) {
  ByteWriter w;
  const auto& ids = repo.workload_ids();
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const auto& id : ids) {
    w.str(id);
    const auto& obs = repo.observations(id);
    w.u64(static_cast<std::uint64_t>(obs.size()));
    for (const auto& o : obs) {
      w.double_vec(o.config);
      w.double_vec(o.metrics);
      w.f64(o.performance);
    }
  }
  return w.bytes();
}

void decode_workload_repo(const std::string& payload,
                          gp::WorkloadRepository& repo) {
  ByteReader r(payload, "WREP");
  const std::uint32_t workloads = r.u32();
  for (std::uint32_t wi = 0; wi < workloads; ++wi) {
    const std::string id = r.str();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      gp::Observation o;
      o.config = r.double_vec();
      o.metrics = r.double_vec();
      o.performance = r.f64();
      repo.add(id, std::move(o));
    }
  }
  r.expect_exhausted();
}

std::string encode_retrieval_index(const retrieval::ExperienceIndex& index) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(retrieval::kEmbeddingDim));
  w.u32(static_cast<std::uint32_t>(sparksim::kNumKnobs));
  w.u64(static_cast<std::uint64_t>(index.size()));
  for (const auto& e : index.entries()) {
    w.str(e.workload);
    w.u64(e.seed);
    w.f64(e.best_cost);
    w.f64(e.default_cost);
    w.doubles(e.best_action.data(), e.best_action.size());
    w.doubles(e.embedding.data(), e.embedding.size());
  }
  return w.bytes();
}

retrieval::ExperienceIndex decode_retrieval_index(const std::string& payload) {
  ByteReader r(payload, "RIDX");
  const std::uint32_t dim = r.u32();
  const std::uint32_t knobs = r.u32();
  if (dim != retrieval::kEmbeddingDim || knobs != sparksim::kNumKnobs) {
    throw CheckpointError(
        "section 'RIDX': embedding layout mismatch (stored " +
        std::to_string(dim) + "/" + std::to_string(knobs) +
        ", this build expects " + std::to_string(retrieval::kEmbeddingDim) +
        "/" + std::to_string(sparksim::kNumKnobs) + ")");
  }
  const std::uint64_t n = r.u64();
  retrieval::ExperienceIndex index;
  // `n` is untrusted (spliced streams can pair this decoder with another
  // section's CRC-valid payload); the bounds-checked reads throw before any
  // attacker-sized allocation can happen.
  for (std::uint64_t i = 0; i < n; ++i) {
    retrieval::ExperienceEntry e;
    e.workload = r.str();
    e.seed = r.u64();
    e.best_cost = r.f64();
    e.default_cost = r.f64();
    r.doubles(e.best_action.data(), e.best_action.size());
    r.doubles(e.embedding.data(), e.embedding.size());
    index.add(std::move(e));
  }
  r.expect_exhausted();
  return index;
}

// ---- container walk -----------------------------------------------------

struct Section {
  std::uint32_t tag = 0;
  std::string payload;
};

std::vector<Section> read_sections(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw CheckpointError("not a DeepCAT checkpoint (bad magic)");
  }
  char vbuf[4];
  is.read(vbuf, sizeof vbuf);
  if (!is) throw CheckpointError("truncated checkpoint header");
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(static_cast<unsigned char>(vbuf[i]))
               << (8 * i);
  }
  if (version > kCheckpointVersion) {
    throw CheckpointError("checkpoint format version " +
                          std::to_string(version) +
                          " is newer than the supported version " +
                          std::to_string(kCheckpointVersion));
  }

  std::vector<Section> sections;
  for (;;) {
    char head[12];
    is.read(head, sizeof head);
    if (!is) {
      throw CheckpointError(
          "truncated checkpoint: end-of-file before 'END ' marker");
    }
    std::uint32_t tag = 0;
    for (int i = 0; i < 4; ++i) {
      tag |= static_cast<std::uint32_t>(static_cast<unsigned char>(head[i]))
             << (8 * i);
    }
    std::uint64_t len = 0;
    for (int i = 0; i < 8; ++i) {
      len |=
          static_cast<std::uint64_t>(static_cast<unsigned char>(head[4 + i]))
          << (8 * i);
    }
    std::string payload = read_payload(is, len, tag);
    char cbuf[4];
    is.read(cbuf, sizeof cbuf);
    if (!is) {
      throw CheckpointError("truncated checkpoint while reading section '" +
                            tag_name(tag) + "'");
    }
    std::uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i) {
      stored_crc |=
          static_cast<std::uint32_t>(static_cast<unsigned char>(cbuf[i]))
          << (8 * i);
    }
    const std::uint32_t actual =
        crc32(reinterpret_cast<const unsigned char*>(payload.data()),
              payload.size());
    if (stored_crc != actual) {
      throw CheckpointError("checksum mismatch in checkpoint section '" +
                            tag_name(tag) + "'");
    }
    if (tag == kTagEnd) break;
    sections.push_back({tag, std::move(payload)});
  }
  return sections;
}

const std::string& require_section(const std::vector<Section>& sections,
                                   std::uint32_t tag) {
  for (const auto& s : sections) {
    if (s.tag == tag) return s.payload;
  }
  throw CheckpointError("checkpoint missing required section '" +
                        tag_name(tag) +
                        "' (written by an incompatible or older version?)");
}

const std::string* find_section(const std::vector<Section>& sections,
                                std::uint32_t tag) {
  for (const auto& s : sections) {
    if (s.tag == tag) return &s.payload;
  }
  return nullptr;
}

}  // namespace

std::uint32_t crc32(const unsigned char* data, std::size_t size) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kCrcTable.t[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

void write_container_header(std::ostream& os) {
  os.write(kMagic, sizeof kMagic);
  char vbuf[4];
  for (int i = 0; i < 4; ++i) {
    vbuf[i] = static_cast<char>((kCheckpointVersion >> (8 * i)) & 0xFFu);
  }
  os.write(vbuf, sizeof vbuf);
}

}  // namespace

void save_checkpoint(std::ostream& os, core::DeepCat& model,
                     const gp::WorkloadRepository* repository,
                     const retrieval::ExperienceIndex* index) {
  if (!model.tuner().has_agent()) {
    throw CheckpointError(
        "save_checkpoint: model has no trained agent (call train_offline or "
        "materialize first)");
  }
  write_container_header(os);

  write_section(os, kTagMeta, encode_meta(model));
  write_section(os, kTagNets, encode_nets(model));
  write_section(os, kTagAdam, encode_adam(model));
  write_section(os, kTagReplay, encode_replay(model));
  write_section(os, kTagRng, encode_rng(model));
  if (repository != nullptr && !repository->empty()) {
    write_section(os, kTagWorkloadRepo, encode_workload_repo(*repository));
  }
  if (index != nullptr && !index->empty()) {
    write_section(os, kTagRetrievalIndex, encode_retrieval_index(*index));
  }
  write_section(os, kTagEnd, "");
  if (!os) throw CheckpointError("save_checkpoint: stream write failed");
}

void load_checkpoint(std::istream& is, core::DeepCat& model,
                     gp::WorkloadRepository* repository,
                     retrieval::ExperienceIndex* index) {
  const std::vector<Section> sections = read_sections(is);

  {
    ByteReader r(require_section(sections, kTagMeta), "META");
    const auto state_dim = static_cast<std::size_t>(r.u32());
    const auto action_dim = static_cast<std::size_t>(r.u32());
    const std::uint8_t replay_kind = r.u8();
    const std::uint64_t next_seed = r.u64();
    r.expect_exhausted();
    const bool want_rdper = model.tuner().options().use_rdper;
    if ((replay_kind == kReplayRdper) != want_rdper) {
      throw CheckpointError(
          "section 'META': replay kind mismatch (checkpoint " +
          std::string(replay_kind == kReplayRdper ? "RDPER" : "uniform") +
          ", model configured for " +
          std::string(want_rdper ? "RDPER" : "uniform") + ")");
    }
    model.tuner().materialize(state_dim, action_dim);
    model.set_next_env_seed(next_seed);
  }

  decode_nets(require_section(sections, kTagNets), model);
  decode_adam(require_section(sections, kTagAdam), model);
  decode_replay(require_section(sections, kTagReplay), model);
  decode_rng(require_section(sections, kTagRng), model);
  if (repository != nullptr) {
    if (const std::string* payload =
            find_section(sections, kTagWorkloadRepo)) {
      decode_workload_repo(*payload, *repository);
    }
  }
  if (index != nullptr) {
    if (const std::string* payload =
            find_section(sections, kTagRetrievalIndex)) {
      *index = decode_retrieval_index(*payload);
    }
  }
}

std::string checkpoint_to_string(core::DeepCat& model,
                                 const gp::WorkloadRepository* repository,
                                 const retrieval::ExperienceIndex* index) {
  std::ostringstream os(std::ios::binary);
  save_checkpoint(os, model, repository, index);
  return std::move(os).str();
}

void checkpoint_from_string(const std::string& blob, core::DeepCat& model,
                            gp::WorkloadRepository* repository,
                            retrieval::ExperienceIndex* index) {
  std::istringstream is(blob, std::ios::binary);
  load_checkpoint(is, model, repository, index);
}

void save_index(std::ostream& os, const retrieval::ExperienceIndex& index) {
  write_container_header(os);
  write_section(os, kTagRetrievalIndex, encode_retrieval_index(index));
  write_section(os, kTagEnd, "");
  if (!os) throw CheckpointError("save_index: stream write failed");
}

retrieval::ExperienceIndex load_index(std::istream& is) {
  const std::vector<Section> sections = read_sections(is);
  return decode_retrieval_index(
      require_section(sections, kTagRetrievalIndex));
}

void save_index_file(const std::string& path,
                     const retrieval::ExperienceIndex& index) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw CheckpointError("save_index_file: cannot open '" + tmp +
                            "' for writing");
    }
    save_index(os, index);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw CheckpointError("save_index_file: rename to '" + path +
                          "' failed: " + ec.message());
  }
}

retrieval::ExperienceIndex load_index_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw CheckpointError("load_index_file: cannot open '" + path + "'");
  }
  return load_index(is);
}

void save_checkpoint_file(const std::string& path, core::DeepCat& model,
                          const gp::WorkloadRepository* repository) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw CheckpointError("save_checkpoint_file: cannot open '" + tmp +
                            "' for writing");
    }
    save_checkpoint(os, model, repository);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw CheckpointError("save_checkpoint_file: rename to '" + path +
                          "' failed: " + ec.message());
  }
}

void load_checkpoint_file(const std::string& path, core::DeepCat& model,
                          gp::WorkloadRepository* repository) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw CheckpointError("load_checkpoint_file: cannot open '" + path + "'");
  }
  load_checkpoint(is, model, repository);
}

}  // namespace deepcat::service
