// ShardedStreamingService: per-model sharding of the streaming serve path.
//
// One StreamingService guards its model registry with a single
// shared_mutex, so under high fan-in every lazy load / evict serializes
// all models behind one lock. Sharding partitions the model *namespace*:
// a model's shard is a pure function of its name (FNV-1a hash mod shard
// count), every request for that model lands on the same shard, and
// shards never share masters — so the per-model determinism contract
// (frozen epoch snapshots between canonical-order merges) is untouched.
// Two models on different shards stop contending entirely.
//
// The shard count is a routing detail, not a semantic one: because a
// model's entire life (load, admissions, merges, checkpoints) happens on
// exactly one shard, reports and post-merge checkpoints are bit-identical
// across shard counts. The determinism stress test pins this.
//
// Threading: each shard keeps its own ThreadPool (total worker threads
// are divided across shards). Driver APIs follow the StreamingService
// contract — one submitting thread (the front end's event loop);
// completion callbacks arrive on pool threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "service/streaming.hpp"

namespace deepcat::service {

/// Stable model-name hash used for shard routing (FNV-1a, 64-bit). Public
/// so tests can predict placements.
[[nodiscard]] std::uint64_t shard_hash(const std::string& model) noexcept;

class ShardedStreamingService {
 public:
  /// `base` configures every shard identically except threads: the
  /// resolved thread count (options.service.threads, 0 = hardware) is
  /// divided across shards, minimum one thread each.
  explicit ShardedStreamingService(StreamingOptions base,
                                   std::size_t shards = 1);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_of(const std::string& model) const noexcept {
    return static_cast<std::size_t>(shard_hash(model) % shards_.size());
  }
  [[nodiscard]] StreamingService& shard(std::size_t index) {
    return *shards_[index];
  }
  [[nodiscard]] StreamingService& shard_for_model(const std::string& model) {
    return *shards_[shard_of(model)];
  }

  /// Model bootstrap, routed to the owning shard.
  void train_model(const std::string& name,
                   const sparksim::WorkloadSpec& workload,
                   std::size_t iterations);
  void load_model(const std::string& name, std::istream& is);
  void load_model_file(const std::string& name, const std::string& path);
  [[nodiscard]] bool has_model(const std::string& name) const;

  /// Routed admission. The callback contract is StreamingService's.
  void submit(TuningRequest request,
              StreamingService::CompletionCallback on_done);

  /// True when every shard is idle (no session in flight anywhere).
  [[nodiscard]] bool idle() const;
  /// Total sessions in flight across shards.
  [[nodiscard]] std::size_t in_flight() const;

  /// Flushes every shard (each waits for its own in-flight sessions and
  /// merges in canonical order). Returns total transitions merged. The
  /// front end only calls this when idle(), so it never blocks long.
  std::size_t flush_all();

  /// The owning shard's live master (same contract as
  /// StreamingService::master).
  [[nodiscard]] core::DeepCat& master(const std::string& name) {
    return shard_for_model(name).master(name);
  }

  [[nodiscard]] std::uint64_t model_epoch(const std::string& name) const;
  [[nodiscard]] std::string checkpoint_of(const std::string& name);

  /// Cross-shard aggregate. Integer counters and time/reward sums are
  /// exact; p50/p95 recommendation-cost quantiles come from an exact
  /// bucket-wise merge of the per-shard fixed-edge histograms
  /// (rec_cost_bucket_edges() — identical on every shard by
  /// construction), then one histogram_quantile query over the merged
  /// counts. The same request set therefore aggregates to the same
  /// quantiles on any shard layout, pinned by the cross-shard equality
  /// test in sharding_test.cpp.
  [[nodiscard]] ServiceMetrics aggregate_metrics() const;

  [[nodiscard]] obs::BuildInfo build_info() const {
    return shards_.front()->build_info();
  }
  [[nodiscard]] const obs::MetricsRegistry* metrics_registry() const noexcept {
    return shards_.front()->metrics_registry();
  }
  /// The shared convergence time-series registry (every shard's sink
  /// points at the same one; null when time-series retention is off).
  [[nodiscard]] const obs::TimeSeriesRegistry* timeseries_registry()
      const noexcept {
    return shards_.front()->timeseries_registry();
  }

  void set_session_runner_for_test(StreamingService::SessionRunner runner);

  /// Shares one warm-start index across every shard (retrieval is
  /// read-only, so one immutable index serves all shards without copies).
  void set_warm_index(std::shared_ptr<const retrieval::ExperienceIndex> index);
  [[nodiscard]] bool has_warm_index() const {
    return shards_.front()->has_warm_index();
  }
  [[nodiscard]] std::optional<std::string> warm_error(
      const TuningRequest& request) const {
    return shards_.front()->warm_error(request);
  }

 private:
  /// Shares `name`'s genesis checkpoint with every shard so scoped keys
  /// (which may hash anywhere) can fork from identical bytes.
  void distribute_scope_seed(const std::string& name);

  std::vector<std::unique_ptr<StreamingService>> shards_;
};

}  // namespace deepcat::service
