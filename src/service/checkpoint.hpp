// Versioned binary checkpoint format for the complete DeepCAT tuner state.
//
// DeepCAT's value proposition is train-once / tune-many (paper §2): the
// offline-trained model is an asset that outlives any single process, so
// everything the next fine-tune step depends on must round-trip exactly —
// the six networks, the Adam moment vectors and step counters, the RDPER
// P_high/P_low pools with their ring cursors, the tuner RNG stream, and
// (optionally) the OtterTune workload repository. A reloaded model then
// produces bit-identical tune_online reports to one that was never
// serialized.
//
// Layout (all integers little-endian):
//
//   magic "DCKP" | u32 format version
//   repeated sections:  u32 tag (FourCC) | u64 payload length
//                       | payload bytes | u32 CRC32(payload)
//   terminator section: tag "END " with zero length
//
// Section tags in version 1:
//   "META"  dims, replay kind, next environment seed   (required)
//   "NETS"  six networks, fixed order, shape-checked    (required)
//   "ADAM"  three optimizers: step counts + moments     (required)
//   "RPLY"  replay pools: contents + ring cursors       (required)
//   "RNGS"  tuner RNG stream state                      (required)
//   "WREP"  OtterTune workload repository               (optional)
//
// Forward compatibility: readers skip sections with unknown tags (their
// length and CRC still guard the walk), so old code tolerates new optional
// sections; a *newer* format version is refused outright. Every failure
// mode — bad magic, newer version, truncation, CRC mismatch, missing
// required section, in-section decode overrun — raises CheckpointError
// with a message naming the offending section; nothing is UB.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/deepcat_api.hpp"
#include "gp/workload_map.hpp"

namespace deepcat::service {

/// Current writer format version. Readers accept any version <= this.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Raised on any malformed, truncated, corrupt or incompatible checkpoint.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC32 (IEEE 802.3, poly 0xEDB88320) over `data`. Exposed for tests.
[[nodiscard]] std::uint32_t crc32(const unsigned char* data,
                                  std::size_t size) noexcept;

/// Serializes the complete tuner state. The model's agent must already be
/// built (train_offline or materialize); throws CheckpointError otherwise.
/// Pass `repository` to append the optional OtterTune section.
void save_checkpoint(std::ostream& os, core::DeepCat& model,
                     const gp::WorkloadRepository* repository = nullptr);

/// Restores a checkpoint into `model`, which must have been constructed
/// with options matching the saved dims and replay kind (the service layer
/// owns both sides, so this is a config-consistency check, not a schema
/// migration). Pass `repository` to also restore the optional OtterTune
/// section when present.
void load_checkpoint(std::istream& is, core::DeepCat& model,
                     gp::WorkloadRepository* repository = nullptr);

/// Stream-free conveniences used by the service layer to clone the master
/// model into per-session tuners (serialize once, deserialize per session).
[[nodiscard]] std::string checkpoint_to_string(
    core::DeepCat& model, const gp::WorkloadRepository* repository = nullptr);
void checkpoint_from_string(const std::string& blob, core::DeepCat& model,
                            gp::WorkloadRepository* repository = nullptr);

/// File-level helpers. Saving writes to `<path>.tmp` then renames, so a
/// concurrent reader never observes a half-written checkpoint.
void save_checkpoint_file(const std::string& path, core::DeepCat& model,
                          const gp::WorkloadRepository* repository = nullptr);
void load_checkpoint_file(const std::string& path, core::DeepCat& model,
                          gp::WorkloadRepository* repository = nullptr);

}  // namespace deepcat::service
