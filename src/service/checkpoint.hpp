// Versioned binary checkpoint format for the complete DeepCAT tuner state.
//
// DeepCAT's value proposition is train-once / tune-many (paper §2): the
// offline-trained model is an asset that outlives any single process, so
// everything the next fine-tune step depends on must round-trip exactly —
// the six networks, the Adam moment vectors and step counters, the RDPER
// P_high/P_low pools with their ring cursors, the tuner RNG stream, and
// (optionally) the OtterTune workload repository. A reloaded model then
// produces bit-identical tune_online reports to one that was never
// serialized.
//
// Layout (all integers little-endian):
//
//   magic "DCKP" | u32 format version
//   repeated sections:  u32 tag (FourCC) | u64 payload length
//                       | payload bytes | u32 CRC32(payload)
//   terminator section: tag "END " with zero length
//
// Section tags in version 2:
//   "META"  dims, replay kind, next environment seed   (required)
//   "NETS"  six networks, fixed order, shape-checked    (required)
//   "ADAM"  three optimizers: step counts + moments     (required)
//   "RPLY"  replay pools: contents + ring cursors       (required)
//   "RNGS"  tuner RNG stream state                      (required)
//   "WREP"  OtterTune workload repository               (optional)
//   "RIDX"  warm-start experience retrieval index       (optional, v2)
//
// Version 2 added the optional "RIDX" section (DESIGN.md §12). Version-1
// readers skip it by the normal unknown-tag rule, so v2 files without the
// section are byte-compatible with v1 files except for the version word.
//
// Forward compatibility: readers skip sections with unknown tags (their
// length and CRC still guard the walk), so old code tolerates new optional
// sections; a *newer* format version is refused outright. Every failure
// mode — bad magic, newer version, truncation, CRC mismatch, missing
// required section, in-section decode overrun — raises CheckpointError
// with a message naming the offending section; nothing is UB.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/deepcat_api.hpp"
#include "gp/workload_map.hpp"
#include "retrieval/index.hpp"

namespace deepcat::service {

/// Current writer format version. Readers accept any version <= this.
/// v2 added the optional "RIDX" retrieval-index section.
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Format version of the "RIDX" section payload itself, reported by
/// `deepcat info` so operators can tell which index layout a build writes.
inline constexpr std::uint32_t kIndexSectionVersion = 1;

/// Raised on any malformed, truncated, corrupt or incompatible checkpoint.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC32 (IEEE 802.3, poly 0xEDB88320) over `data`. Exposed for tests.
[[nodiscard]] std::uint32_t crc32(const unsigned char* data,
                                  std::size_t size) noexcept;

/// Serializes the complete tuner state. The model's agent must already be
/// built (train_offline or materialize); throws CheckpointError otherwise.
/// Pass `repository` to append the optional OtterTune section and `index`
/// (non-empty) to append the optional "RIDX" retrieval-index section.
void save_checkpoint(std::ostream& os, core::DeepCat& model,
                     const gp::WorkloadRepository* repository = nullptr,
                     const retrieval::ExperienceIndex* index = nullptr);

/// Restores a checkpoint into `model`, which must have been constructed
/// with options matching the saved dims and replay kind (the service layer
/// owns both sides, so this is a config-consistency check, not a schema
/// migration). Pass `repository` / `index` to also restore the optional
/// OtterTune and retrieval-index sections when present.
void load_checkpoint(std::istream& is, core::DeepCat& model,
                     gp::WorkloadRepository* repository = nullptr,
                     retrieval::ExperienceIndex* index = nullptr);

/// Standalone retrieval-index container: the same DCKP magic + version +
/// CRC-checked section walk, carrying just an "RIDX" section. This is what
/// `deepcat index build` writes and `deepcat serve --warm-index` loads.
void save_index(std::ostream& os, const retrieval::ExperienceIndex& index);
[[nodiscard]] retrieval::ExperienceIndex load_index(std::istream& is);

/// File-level index helpers; saving goes through `<path>.tmp` + rename
/// like the checkpoint writers.
void save_index_file(const std::string& path,
                     const retrieval::ExperienceIndex& index);
[[nodiscard]] retrieval::ExperienceIndex load_index_file(
    const std::string& path);

/// Stream-free conveniences used by the service layer to clone the master
/// model into per-session tuners (serialize once, deserialize per session).
[[nodiscard]] std::string checkpoint_to_string(
    core::DeepCat& model, const gp::WorkloadRepository* repository = nullptr,
    const retrieval::ExperienceIndex* index = nullptr);
void checkpoint_from_string(const std::string& blob, core::DeepCat& model,
                            gp::WorkloadRepository* repository = nullptr,
                            retrieval::ExperienceIndex* index = nullptr);

/// File-level helpers. Saving writes to `<path>.tmp` then renames, so a
/// concurrent reader never observes a half-written checkpoint.
void save_checkpoint_file(const std::string& path, core::DeepCat& model,
                          const gp::WorkloadRepository* repository = nullptr);
void load_checkpoint_file(const std::string& path, core::DeepCat& model,
                          gp::WorkloadRepository* repository = nullptr);

}  // namespace deepcat::service
