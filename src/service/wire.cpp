#include "service/wire.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "service/checkpoint.hpp"  // crc32

namespace deepcat::service {

namespace {

constexpr char kWireMagic[4] = {'D', 'C', 'W', 'P'};

constexpr std::uint32_t kKnownTypes[] = {
    static_cast<std::uint32_t>(FrameType::kRequest),
    static_cast<std::uint32_t>(FrameType::kReply),
    static_cast<std::uint32_t>(FrameType::kMetrics),
    static_cast<std::uint32_t>(FrameType::kTelemetry),
    static_cast<std::uint32_t>(FrameType::kStat),
    static_cast<std::uint32_t>(FrameType::kTimeSeries),
    static_cast<std::uint32_t>(FrameType::kError),
    static_cast<std::uint32_t>(FrameType::kFlush),
    static_cast<std::uint32_t>(FrameType::kEnd),
};

void put_u32(std::ostream& os, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  }
  os.write(buf, sizeof buf);
}

std::uint32_t get_u32(const char* buf) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const char* buf) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}


/// Reads exactly `len` payload bytes in bounded chunks (same discipline as
/// the checkpoint reader): the length field is untrusted, so allocation
/// follows the bytes actually present, never the header's claim.
std::string read_payload(std::istream& is, std::uint64_t len,
                         std::uint32_t tag) {
  constexpr std::uint64_t kChunk = 64 * 1024;
  std::string payload;
  while (payload.size() < len) {
    const auto want =
        static_cast<std::size_t>(std::min(kChunk, len - payload.size()));
    const std::size_t old = payload.size();
    payload.resize(old + want);
    is.read(payload.data() + old, static_cast<std::streamsize>(want));
    if (static_cast<std::size_t>(is.gcount()) != want) {
      throw WireError("truncated wire stream inside '" +
                      frame_type_name(tag) + "' frame payload");
    }
  }
  return payload;
}

}  // namespace

bool known_frame_type(std::uint32_t tag) noexcept {
  for (const std::uint32_t t : kKnownTypes) {
    if (t == tag) return true;
  }
  return false;
}

std::string frame_type_name(std::uint32_t tag) {
  std::string s(4, ' ');
  for (int i = 0; i < 4; ++i) {
    const auto c = static_cast<unsigned char>((tag >> (8 * i)) & 0xFFu);
    s[static_cast<std::size_t>(i)] =
        (c >= 0x20 && c < 0x7F) ? static_cast<char>(c) : '?';
  }
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

void write_stream_header(std::ostream& os) {
  os.write(kWireMagic, sizeof kWireMagic);
  put_u32(os, kWireVersion);
}

void read_stream_header(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kWireMagic, sizeof kWireMagic) != 0) {
    throw WireError("not a DeepCAT wire stream (bad magic)");
  }
  char vbuf[4];
  is.read(vbuf, sizeof vbuf);
  if (!is) throw WireError("truncated wire stream header");
  const std::uint32_t version = get_u32(vbuf);
  if (version > kWireVersion) {
    throw WireError("wire protocol version " + std::to_string(version) +
                    " is newer than the supported version " +
                    std::to_string(kWireVersion));
  }
}

namespace {

/// CRC over the 12-byte frame head plus the payload — the header words are
/// covered so a bit flip cannot convert one frame type into another.
std::uint32_t frame_crc(const char head[12], std::string_view payload) {
  std::string buf;
  buf.reserve(12 + payload.size());
  buf.append(head, 12);
  buf.append(payload.data(), payload.size());
  return crc32(reinterpret_cast<const unsigned char*>(buf.data()),
               buf.size());
}

}  // namespace

void write_frame(std::ostream& os, FrameType type, std::string_view payload) {
  char head[12];
  const auto tag = static_cast<std::uint32_t>(type);
  for (int i = 0; i < 4; ++i) {
    head[i] = static_cast<char>((tag >> (8 * i)) & 0xFFu);
  }
  const std::uint64_t len = payload.size();
  for (int i = 0; i < 8; ++i) {
    head[4 + i] = static_cast<char>((len >> (8 * i)) & 0xFFu);
  }
  os.write(head, sizeof head);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  put_u32(os, frame_crc(head, payload));
}

std::optional<Frame> read_frame(std::istream& is) {
  char head[12];
  is.read(head, sizeof head);
  const auto got = static_cast<std::size_t>(is.gcount());
  if (got == 0) return std::nullopt;  // clean EOF at a frame boundary
  if (got != sizeof head) {
    throw WireError("truncated wire stream inside a frame header");
  }
  const std::uint32_t tag = get_u32(head);
  if (!known_frame_type(tag)) {
    throw WireError("unknown wire frame type '" + frame_type_name(tag) + "'");
  }
  const std::uint64_t len = get_u64(head + 4);
  if (len > kMaxFramePayload) {
    throw WireError("'" + frame_type_name(tag) + "' frame claims " +
                    std::to_string(len) + " payload bytes (limit " +
                    std::to_string(kMaxFramePayload) + ")");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(tag);
  frame.payload = read_payload(is, len, tag);
  char cbuf[4];
  is.read(cbuf, sizeof cbuf);
  if (!is) {
    throw WireError("truncated wire stream: '" + frame_type_name(tag) +
                    "' frame is missing its checksum");
  }
  if (get_u32(cbuf) != frame_crc(head, frame.payload)) {
    throw WireError("checksum mismatch in '" + frame_type_name(tag) +
                    "' frame");
  }
  return frame;
}

std::string encode_stream_header() {
  std::ostringstream os(std::ios::binary);
  write_stream_header(os);
  return std::move(os).str();
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::ostringstream os(std::ios::binary);
  write_frame(os, type, payload);
  return std::move(os).str();
}

std::string encode_frames(
    const std::vector<std::pair<FrameType, std::string>>& frames) {
  std::ostringstream os(std::ios::binary);
  write_stream_header(os);
  for (const auto& [type, payload] : frames) write_frame(os, type, payload);
  return std::move(os).str();
}

std::vector<Frame> decode_frames(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  read_stream_header(is);
  std::vector<Frame> frames;
  for (;;) {
    std::optional<Frame> f = read_frame(is);
    if (!f) {
      throw WireError("wire stream ended without an 'END' frame");
    }
    const bool end = f->type == FrameType::kEnd;
    frames.push_back(*std::move(f));
    if (end) return frames;
  }
}

}  // namespace deepcat::service
