#include "service/streaming.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "rl/replay_rdper.hpp"
#include "service/checkpoint.hpp"
#include "service/jsonl.hpp"
#include "service/wire.hpp"
#include "sparksim/hardware.hpp"
#include "sparksim/workloads.hpp"

namespace deepcat::service {

namespace {

sparksim::ClusterSpec streaming_cluster(const std::string& tag) {
  if (tag == "b" || tag == "B") return sparksim::cluster_b();
  return sparksim::cluster_a();
}

}  // namespace

StreamingService::StreamingService(StreamingOptions options)
    : options_((options.service.api.tuner.obs = options.service.obs,
                std::move(options))),
      cluster_(streaming_cluster(options_.service.cluster)),
      pool_(options_.service.threads) {
  if (!options_.registry_dir.empty()) {
    registry_.emplace(options_.registry_dir);
  }
  if (auto* metrics = options_.service.obs.metrics) {
    obs_admitted_ = &metrics->counter("stream.requests_admitted");
    obs_sessions_ok_ = &metrics->counter("stream.sessions_ok");
    obs_sessions_failed_ = &metrics->counter("stream.sessions_failed");
    obs_flushes_ = &metrics->counter("stream.flushes");
    obs_merges_ = &metrics->counter("stream.merges");
    obs_merged_transitions_ = &metrics->counter("stream.merged_transitions");
    obs_fine_tune_steps_ = &metrics->counter("stream.fine_tune_steps");
    obs_snapshots_ = &metrics->counter("stream.snapshots");
    obs_evictions_ = &metrics->counter("stream.evictions");
    obs_warm_requests_ = &metrics->counter("stream.warm_requests");
    obs_warm_hits_ = &metrics->counter("stream.warm_hits");
    obs_rec_seconds_ = &metrics->histogram(
        "stream.rec_seconds",
        {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0});
    obs_queue_depth_ =
        &metrics->gauge("stream.queue_depth", /*deterministic=*/false);
  }
}

std::unique_ptr<StreamingService::MasterEntry> StreamingService::make_entry()
    const {
  return std::make_unique<MasterEntry>(cluster_, options_.service.api);
}

StreamingService::MasterEntry& StreamingService::ensure_entry_locked(
    const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(name, make_entry()).first;
  }
  return *it->second;
}

void StreamingService::train_model(const std::string& name,
                                   const sparksim::WorkloadSpec& workload,
                                   std::size_t iterations) {
  std::unique_lock reg(registry_mutex_);
  MasterEntry& entry = ensure_entry_locked(name);
  std::unique_lock master(entry.mutex);
  (void)entry.model.train_offline(workload, iterations);
  std::scoped_lock state(state_mutex_);
  entry.blob.reset();
  scope_seeds_[name] =
      std::make_shared<const std::string>(checkpoint_to_string(entry.model));
}

void StreamingService::load_model(const std::string& name, std::istream& is) {
  std::unique_lock reg(registry_mutex_);
  MasterEntry& entry = ensure_entry_locked(name);
  std::unique_lock master(entry.mutex);
  load_checkpoint(is, entry.model);
  std::scoped_lock state(state_mutex_);
  entry.blob.reset();
  scope_seeds_[name] =
      std::make_shared<const std::string>(checkpoint_to_string(entry.model));
}

void StreamingService::load_model_file(const std::string& name,
                                       const std::string& path) {
  std::unique_lock reg(registry_mutex_);
  MasterEntry& entry = ensure_entry_locked(name);
  std::unique_lock master(entry.mutex);
  load_checkpoint_file(path, entry.model);
  std::scoped_lock state(state_mutex_);
  entry.blob.reset();
  scope_seeds_[name] =
      std::make_shared<const std::string>(checkpoint_to_string(entry.model));
}

void StreamingService::set_scope_seed(const std::string& base,
                                      std::shared_ptr<const std::string> blob) {
  std::scoped_lock state(state_mutex_);
  scope_seeds_[base] = std::move(blob);
}

bool StreamingService::has_model(const std::string& name) const {
  std::shared_lock reg(registry_mutex_);
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> StreamingService::loaded_models() const {
  std::shared_lock reg(registry_mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

core::DeepCat& StreamingService::master(const std::string& name) {
  std::shared_lock reg(registry_mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("model '" + name + "' is not resident");
  }
  return it->second->model;
}

StreamingService::MasterEntry& StreamingService::resolve_entry(
    const std::string& name) {
  {
    std::shared_lock reg(registry_mutex_);
    if (const auto it = entries_.find(name); it != entries_.end()) {
      return *it->second;
    }
  }
  std::unique_lock reg(registry_mutex_);
  if (const auto it = entries_.find(name); it != entries_.end()) {
    return *it->second;
  }
  if (runner_) {
    // Test-runner mode never touches a real master; admit any name.
    auto entry = make_entry();
    entry->stub = true;
    return *entries_.emplace(name, std::move(entry)).first->second;
  }
  const std::optional<std::string> base = scope_base_of(name);
  if (!registry_ && !base) {
    throw std::runtime_error("unknown model '" + name +
                             "' (no registry configured)");
  }
  if (registry_) {
    if (const auto version = registry_->latest_version(name)) {
      evict_idle_locked();
      auto entry = make_entry();
      registry_->load_into(name, *version, entry->model);
      return *entries_.emplace(name, std::move(entry)).first->second;
    }
    if (!base) {
      throw std::runtime_error("unknown model '" + name +
                               "': no published version in the registry");
    }
  }
  // Scoped-key fork: no published version under the scoped key, so start
  // the scoped model from its base — the base's latest published version
  // if the registry has one, else the base's genesis seed blob. Both are
  // fixed bytes, so the fork is identical on every shard/thread layout.
  if (registry_) {
    if (const auto version = registry_->latest_version(*base)) {
      evict_idle_locked();
      auto entry = make_entry();
      registry_->load_into(*base, *version, entry->model);
      return *entries_.emplace(name, std::move(entry)).first->second;
    }
  }
  std::shared_ptr<const std::string> seed;
  {
    std::scoped_lock state(state_mutex_);
    if (const auto it = scope_seeds_.find(*base); it != scope_seeds_.end()) {
      seed = it->second;
    }
  }
  if (!seed) {
    throw std::runtime_error("unknown model '" + name + "': base model '" +
                             *base +
                             "' has no published version and is not loaded");
  }
  evict_idle_locked();
  auto entry = make_entry();
  checkpoint_from_string(*seed, entry->model);
  return *entries_.emplace(name, std::move(entry)).first->second;
}

void StreamingService::evict_idle_locked() {
  std::scoped_lock state(state_mutex_);
  const std::size_t cap = std::max<std::size_t>(1, options_.max_loaded_models);
  while (entries_.size() >= cap) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second->in_flight != 0) continue;
      if (victim == entries_.end() ||
          it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything busy: soft cap
    (void)merge_entry_locked(*victim->second);
    if (victim->second->dirty && registry_ && !victim->second->stub) {
      // Learned state survives eviction as a new registry version.
      (void)registry_->publish(victim->first, victim->second->model);
    }
    entries_.erase(victim);
    if (obs_evictions_ != nullptr) obs_evictions_->add(1);
  }
}

void StreamingService::complete_failed(const TuningRequest& request,
                                       const std::string& error,
                                       const CompletionCallback& on_done) {
  SessionReport report;
  report.id = request.id;
  report.workload = request.workload;
  report.cluster = request.cluster;
  report.model = request.model;
  if (request.scope != TuneScope::kGlobal) {
    report.scope = to_string(request.scope);
  }
  report.ok = false;
  report.error = error;
  StreamReport stream_report;
  {
    std::scoped_lock state(state_mutex_);
    record_metrics_locked(report, scoped_model_key(request));
    stream_report = {std::move(report), 0, next_sequence_++};
    if (!on_done) {
      completed_.push_back(std::move(stream_report));
      completion_cv_.notify_all();
      return;
    }
    completion_cv_.notify_all();
  }
  // Callback outside the lock: the front end re-enters its own queues.
  on_done(std::move(stream_report));
}

void StreamingService::set_warm_index(
    std::shared_ptr<const retrieval::ExperienceIndex> index) {
  std::scoped_lock state(state_mutex_);
  warm_index_ = std::move(index);
}

bool StreamingService::has_warm_index() const {
  std::scoped_lock state(state_mutex_);
  return warm_index_ != nullptr && !warm_index_->empty();
}

std::optional<std::string> StreamingService::warm_error(
    const TuningRequest& request) const {
  if (request.warm_k <= 0) return std::nullopt;
  if (!has_warm_index()) {
    return "warm request '" + request.id +
           "' but no experience index is loaded";
  }
  return std::nullopt;
}

void StreamingService::resolve_warm(TuningRequest& request,
                                    const retrieval::ExperienceIndex& index) {
  const auto retrieval_span = options_.service.obs.scope("retrieval");
  const sparksim::HiBenchCase* hibench = nullptr;
  try {
    hibench = &sparksim::hibench_case(request.workload);
  } catch (const std::out_of_range&) {
    // The experience index embeds batch (HiBench) cases only; a warm
    // streaming request has nothing to retrieve against.
    throw std::invalid_argument(
        "warm retrieval is unavailable for non-batch workload '" +
        request.workload + "'");
  }
  const sparksim::HiBenchCase& c = *hibench;
  const std::vector<retrieval::Neighbor> neighbors = index.query_case(
      c, static_cast<std::size_t>(request.warm_k), retrieval::Metric::kCosine);
  request.warm_actions.clear();
  request.warm_actions.reserve(neighbors.size());
  for (const retrieval::Neighbor& nb : neighbors) {
    const auto& action = index.entries()[nb.entry].best_action;
    request.warm_actions.emplace_back(action.begin(), action.end());
  }
  if (obs_warm_requests_ != nullptr) obs_warm_requests_->add(1);
  if (obs_warm_hits_ != nullptr) obs_warm_hits_->add(neighbors.size());
}

void StreamingService::submit(TuningRequest request) {
  submit(std::move(request), CompletionCallback{});
}

void StreamingService::submit(TuningRequest request,
                              CompletionCallback on_done) {
  if (request.warm_k > 0 && request.warm_actions.empty()) {
    std::shared_ptr<const retrieval::ExperienceIndex> index;
    {
      std::scoped_lock state(state_mutex_);
      index = warm_index_;
    }
    if (index == nullptr || index->empty()) {
      // Direct-API callers get a failed report; the wire transports
      // precheck warm_error() and emit a typed ERR frame instead.
      complete_failed(request,
                      "warm request but no experience index is loaded",
                      on_done);
      return;
    }
    try {
      resolve_warm(request, *index);
    } catch (const std::exception& e) {
      complete_failed(request, e.what(), on_done);
      return;
    }
  }
  MasterEntry* entry = nullptr;
  try {
    // Scope-keyed routing: a non-global request resolves (and, on first
    // use, forks) the scoped model derived from the requested name.
    entry = &resolve_entry(scoped_model_key(request));
  } catch (const std::exception& e) {
    complete_failed(request, e.what(), on_done);
    return;
  }

  std::shared_ptr<const std::string> blob;
  const rl::RdperReplay* master_pools = nullptr;
  std::uint64_t epoch = 0;
  std::uint64_t sequence = 0;
  try {
    std::scoped_lock state(state_mutex_);
    if (!entry->blob && !runner_) {
      // First admission of this epoch: serialize the frozen master once;
      // every session until the next flush clones from this shared blob.
      std::shared_lock master(entry->mutex);
      entry->blob = std::make_shared<const std::string>(
          checkpoint_to_string(entry->model));
      if (obs_snapshots_ != nullptr) obs_snapshots_->add(1);
    }
    blob = entry->blob;
    epoch = entry->epoch;
    if (!runner_) {
      master_pools = dynamic_cast<const rl::RdperReplay*>(
          entry->model.tuner().replay());
    }
    sequence = next_sequence_++;
    entry->last_used = sequence;
    ++in_flight_;
    ++entry->in_flight;
    if (obs_queue_depth_ != nullptr) {
      obs_queue_depth_->set(static_cast<double>(in_flight_));
    }
  } catch (const std::exception& e) {
    complete_failed(request, e.what(), on_done);
    return;
  }

  if (obs_admitted_ != nullptr) obs_admitted_->add(1);
  obs::Tracer* tracer = options_.service.obs.tracer;
  std::uint64_t request_span = 0;
  if (tracer != nullptr) {
    // Traced requests parent under the transport's span (the front end's
    // per-connection span) when one was stamped; untraced requests keep
    // the historical root so legacy trace structures are unchanged.
    const std::uint64_t parent =
        (!request.trace_id.empty() && request.server_parent_span != 0)
            ? request.server_parent_span
            : options_.service.obs.trace_parent;
    request_span = tracer->begin_span("request", parent);
  }
  const bool timed =
      options_.reply_timings && tracer != nullptr && !request.trace_id.empty();
  const std::uint64_t t_submit = timed ? tracer->clock().now_ns() : 0;

  (void)pool_.submit([this, entry, blob = std::move(blob), master_pools,
                      epoch, sequence, request_span, tracer, timed, t_submit,
                      request = std::move(request),
                      on_done = std::move(on_done)] {
    SessionReport report;
    const std::uint64_t t_start = timed ? tracer->clock().now_ns() : 0;
    {
      // Session spans (and the tuner spans beneath) parent on the request
      // span; the api copy carries the parent id across the pool thread.
      const auto session_span =
          options_.service.obs.with_parent(request_span).scope("session");
      if (runner_) {
        report = runner_(request);
      } else {
        core::DeepCatApiOptions api = options_.service.api;
        api.tuner.obs.trace_parent = session_span.id();
        // Session clones don't append convergence series: the master's
        // fine-tune losses are the model's trajectory; a clone's would
        // flood the rings with per-session noise.
        api.tuner.obs.series = nullptr;
        report = run_session(*blob, api, request, master_pools, &entry->mutex);
      }
    }
    const std::uint64_t t_done = timed ? tracer->clock().now_ns() : 0;
    report.model = request.model;
    if (request.scope != TuneScope::kGlobal) {
      report.scope = to_string(request.scope);
    }
    if (!request.trace_id.empty()) {
      report.trace_id = request.trace_id;
      report.server_span = trace_server_span(request.trace_id, request.id);
    }
    if (timed) {
      StageTimings t;
      t.decode_ns = request.decode_ns;
      t.queue_ns = t_start - t_submit;
      t.session_ns = t_done - t_start;
      report.timings = t;
    }
    // End the request span BEFORE on_complete: on_complete releases
    // waiters (wait_completed / flush), and anyone it wakes may export the
    // trace immediately — the span must already be closed by then.
    if (tracer != nullptr) tracer->end_span(request_span);
    on_complete(*entry, request, std::move(report), epoch, sequence, on_done);
  });
}

void StreamingService::on_complete(MasterEntry& entry,
                                   const TuningRequest& request,
                                   SessionReport report, std::uint64_t epoch,
                                   std::uint64_t sequence,
                                   const CompletionCallback& on_done) {
  StreamReport stream_report;
  obs::Tracer* tracer = options_.service.obs.tracer;
  const std::uint64_t t_merge0 =
      (report.timings && tracer != nullptr) ? tracer->clock().now_ns() : 0;
  {
    std::scoped_lock state(state_mutex_);
    if (report.ok && !report.new_transitions.empty()) {
      entry.pending.push_back(
          {request.id, request.seed, request.workload, report.new_transitions});
    }
    record_metrics_locked(report, scoped_model_key(request));
    if (report.timings && tracer != nullptr) {
      report.timings->merge_ns = tracer->clock().now_ns() - t_merge0;
    }
    stream_report = {std::move(report), epoch, sequence};
    if (!on_done) completed_.push_back(std::move(stream_report));
    --in_flight_;
    --entry.in_flight;
    if (obs_queue_depth_ != nullptr) {
      obs_queue_depth_->set(static_cast<double>(in_flight_));
    }
    completion_cv_.notify_all();
  }
  // The in-flight decrement happens BEFORE the callback runs, so a caller
  // observing idle() after its last callback knows the service is settled.
  if (on_done) on_done(std::move(stream_report));
}

bool StreamingService::idle() const {
  std::scoped_lock state(state_mutex_);
  return in_flight_ == 0;
}

std::size_t StreamingService::in_flight() const {
  std::scoped_lock state(state_mutex_);
  return in_flight_;
}

void StreamingService::record_metrics_locked(const SessionReport& report,
                                             const std::string& key) {
  if (!report.ok) {
    ++totals_.sessions_failed;
    if (obs_sessions_failed_ != nullptr) obs_sessions_failed_->add(1);
    return;
  }
  ++totals_.sessions_served;
  if (obs_sessions_ok_ != nullptr) obs_sessions_ok_->add(1);
  totals_.evaluations_paid += report.report.steps.size();
  totals_.evaluation_seconds += report.report.total_evaluation_seconds();
  const double rec = report.report.total_recommendation_seconds();
  totals_.recommendation_seconds += rec;
  rec_costs_.add(rec);
  if (obs_rec_seconds_ != nullptr) obs_rec_seconds_->observe(rec);
  {
    // Exact bucket counts for cross-shard percentile merges: bucket i
    // counts rec <= edges[i] (first match), mirroring obs::Histogram.
    const std::vector<double>& edges = rec_cost_bucket_edges();
    const auto it = std::lower_bound(edges.begin(), edges.end(), rec);
    ++rec_bucket_counts_[static_cast<std::size_t>(it - edges.begin())];
  }
  reward_sum_ += report.mean_reward();
  speedup_sum_ += report.report.speedup_over_default();
  if (auto* series = options_.service.obs.series) {
    // Convergence history (state lock held, so appends are ordered):
    // per-evaluation recommendation cost, running best session reward per
    // model key, and PR 9 shift-recovery outcomes (-1 = never recovered).
    for (const auto& step : report.report.steps) {
      series->append("stream.rec_cost", step.recommendation_seconds);
    }
    double& best = best_reward_
                       .try_emplace(key, report.mean_reward())
                       .first->second;
    best = std::max(best, report.mean_reward());
    series->append("model." + key + ".best_reward", best);
    if (report.report.stream.has_value()) {
      for (const auto& shift : report.report.stream->shifts) {
        series->append("stream.shift_recovery_evals",
                       shift.recovered
                           ? static_cast<double>(shift.recovery_evals)
                           : -1.0);
      }
    }
  }
}

std::optional<StreamReport> StreamingService::poll_completed() {
  std::scoped_lock state(state_mutex_);
  if (completed_.empty()) return std::nullopt;
  StreamReport report = std::move(completed_.front());
  completed_.pop_front();
  return report;
}

std::optional<StreamReport> StreamingService::wait_completed() {
  std::unique_lock state(state_mutex_);
  completion_cv_.wait(
      state, [this] { return !completed_.empty() || in_flight_ == 0; });
  if (completed_.empty()) return std::nullopt;
  StreamReport report = std::move(completed_.front());
  completed_.pop_front();
  return report;
}

std::size_t StreamingService::merge_entry_locked(MasterEntry& entry) {
  if (entry.pending.empty()) return 0;
  const auto merge_span = options_.service.obs.scope("merge");
  ++totals_.merges;
  if (obs_merges_ != nullptr) obs_merges_->add(1);
  if (entry.stub) {
    // No real master behind a test-runner entry; the epoch still advances
    // so transcripts exercise the model-epoch contract.
    entry.pending.clear();
    ++entry.epoch;
    entry.blob.reset();
    return 0;
  }
  // Canonical merge order — ascending (id, seed, workload), never arrival
  // order — makes the merged master a pure function of the request set.
  std::sort(entry.pending.begin(), entry.pending.end(),
            [](const PendingExperience& a, const PendingExperience& b) {
              return std::tie(a.id, a.seed, a.workload) <
                     std::tie(b.id, b.seed, b.workload);
            });
  std::size_t merged = 0;
  {
    std::unique_lock master(entry.mutex);
    rl::ReplayBuffer* replay = entry.model.tuner().replay();
    if (replay != nullptr) {
      for (auto& pending : entry.pending) {
        for (auto& t : pending.transitions) {
          replay->add(std::move(t));
          ++merged;
        }
      }
      if (options_.master_update_steps > 0 &&
          entry.model.tuner().has_agent()) {
        // Continuous master update: bounded fine-tune on the refreshed
        // pools, driven by the master's own checkpointed RNG stream.
        const std::size_t tuned = entry.model.tuner().agent().fine_tune(
            *replay, entry.model.tuner().rng(), options_.master_update_steps);
        totals_.fine_tune_steps += tuned;
        if (obs_fine_tune_steps_ != nullptr) obs_fine_tune_steps_->add(tuned);
      }
    }
  }
  totals_.merged_transitions += merged;
  if (obs_merged_transitions_ != nullptr) {
    obs_merged_transitions_->add(merged);
  }
  entry.pending.clear();
  ++entry.epoch;
  entry.blob.reset();
  entry.dirty = true;
  return merged;
}

std::size_t StreamingService::flush() {
  const auto flush_span = options_.service.obs.scope("flush");
  std::shared_lock reg(registry_mutex_);
  std::unique_lock state(state_mutex_);
  completion_cv_.wait(state, [this] { return in_flight_ == 0; });
  if (obs_flushes_ != nullptr) obs_flushes_->add(1);
  std::size_t merged = 0;
  for (auto& [name, entry] : entries_) merged += merge_entry_locked(*entry);
  return merged;
}

std::uint64_t StreamingService::model_epoch(const std::string& name) const {
  std::shared_lock reg(registry_mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("model '" + name + "' is not resident");
  }
  std::scoped_lock state(state_mutex_);
  return it->second->epoch;
}

std::string StreamingService::checkpoint_of(const std::string& name) {
  std::shared_lock reg(registry_mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("model '" + name + "' is not resident");
  }
  std::shared_lock master(it->second->mutex);
  return checkpoint_to_string(it->second->model);
}

obs::BuildInfo StreamingService::build_info() const {
  if (options_.build_info) return *options_.build_info;
  return obs::current_build_info(pool_.size());
}

ServiceMetrics StreamingService::metrics() const {
  std::scoped_lock state(state_mutex_);
  ServiceMetrics m = totals_;
  m.rec_buckets = rec_bucket_counts_;
  if (m.sessions_served > 0) {
    m.p50_recommendation_seconds = rec_costs_.quantile(0.50);
    m.p95_recommendation_seconds = rec_costs_.quantile(0.95);
    m.mean_session_reward =
        reward_sum_ / static_cast<double>(m.sessions_served);
    m.mean_speedup = speedup_sum_ / static_cast<double>(m.sessions_served);
  }
  return m;
}

// ---- framed stream driver -----------------------------------------------

namespace {

std::string strip_newline(std::string s) {
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

}  // namespace

std::string stream_error_payload(const std::string& message) {
  return "{\"error\":\"" + json_escape(message) + "\"}";
}

std::string stream_reply_payload(const StreamReport& report) {
  std::ostringstream os;
  write_report_jsonl(os, report.session, report.model_epoch);
  return strip_newline(std::move(os).str());
}

std::optional<std::string> stat_payload_error(const std::string& payload) {
  if (payload.empty()) return std::nullopt;
  try {
    (void)parse_flat_json(payload);
    return std::nullopt;
  } catch (const std::exception& e) {
    return std::string(e.what());
  }
}

StreamServeResult serve_frame_stream(std::istream& in, std::ostream& out,
                                     StreamingService& service,
                                     const StreamServeOptions& serve_options) {
  StreamServeResult result;
  write_stream_header(out);

  obs::Tracer* tracer = service.options().service.obs.tracer;
  const bool time_decode =
      service.options().reply_timings && tracer != nullptr;

  // TELE snapshots the live aggregates + instrument set — no barrier, so
  // a mid-stream poll reflects whatever has completed so far.
  const auto emit_tele = [&] {
    std::ostringstream tele;
    write_telemetry_payload(tele, service.metrics(), service.build_info(),
                            service.metrics_registry(),
                            serve_options.tele_include_nondeterministic);
    write_frame(out, FrameType::kTelemetry,
                strip_newline(std::move(tele).str()));
    ++result.tele_frames;
  };

  // TSER precedes TELE at the FLSH/STAT/end points (wire v3); a service
  // without a TimeSeriesRegistry emits nothing, keeping v2-shaped bytes.
  const auto emit_tser = [&] {
    const obs::TimeSeriesRegistry* series = service.timeseries_registry();
    if (series == nullptr) return;
    std::ostringstream os;
    obs::write_timeseries_jsonl(os, series->snapshot());
    write_frame(out, FrameType::kTimeSeries,
                strip_newline(std::move(os).str()));
    ++result.tser_frames;
  };

  std::size_t replies = 0;
  const auto emit_completed = [&](bool drain) {
    for (;;) {
      std::optional<StreamReport> report =
          drain ? service.wait_completed() : service.poll_completed();
      if (!report) break;
      if (!report->session.ok) ++result.failed_sessions;
      if (report->session.timings && tracer != nullptr) {
        // The write stage is the REP body serialization itself, measured
        // on a discarded dry run so the emitted frame carries the number.
        const std::uint64_t t0 = tracer->clock().now_ns();
        (void)stream_reply_payload(*report);
        report->session.timings->write_ns = tracer->clock().now_ns() - t0;
      }
      write_frame(out, FrameType::kReply, stream_reply_payload(*report));
      ++replies;
      if (serve_options.tele_every != 0 &&
          replies % serve_options.tele_every == 0) {
        emit_tele();
      }
    }
  };

  bool reading = true;
  try {
    read_stream_header(in);
  } catch (const WireError& e) {
    write_frame(out, FrameType::kError, stream_error_payload(e.what()));
    ++result.protocol_errors;
    reading = false;
  }

  std::size_t index = 0;
  while (reading) {
    std::optional<Frame> frame;
    try {
      frame = read_frame(in);
    } catch (const WireError& e) {
      // The stream is length-prefixed: after corrupt framing there is no
      // resync point, so report it and stop reading. In-flight sessions
      // still drain below.
      write_frame(out, FrameType::kError, stream_error_payload(e.what()));
      ++result.protocol_errors;
      break;
    }
    if (!frame) {
      write_frame(out, FrameType::kError,
                  stream_error_payload("wire stream ended before the 'END' frame"));
      ++result.protocol_errors;
      break;
    }
    switch (frame->type) {
      case FrameType::kRequest: {
        ++result.requests;
        try {
          const std::uint64_t t0 = time_decode ? tracer->clock().now_ns() : 0;
          TuningRequest request = parse_request_json(frame->payload, index);
          if (time_decode && !request.trace_id.empty()) {
            request.decode_ns = tracer->clock().now_ns() - t0;
          }
          // Warm requests against a missing/empty index are a typed
          // protocol error, not a failed session: the client asked for
          // retrieval the server cannot perform.
          if (const auto warm_err = service.warm_error(request)) {
            write_frame(out, FrameType::kError,
                        stream_error_payload("request " +
                                             std::to_string(index) + ": " +
                                             *warm_err));
            ++result.parse_errors;
          } else {
            service.submit(std::move(request));
          }
        } catch (const std::exception& e) {
          // Framing is intact, so a bad payload only loses this request.
          write_frame(out, FrameType::kError,
                      stream_error_payload("request " + std::to_string(index) +
                                    ": " + e.what()));
          ++result.parse_errors;
        }
        ++index;
        break;
      }
      case FrameType::kFlush:
        emit_completed(/*drain=*/true);
        (void)service.flush();
        emit_tser();
        emit_tele();
        break;
      case FrameType::kStat: {
        // On-demand telemetry poll, no flush barrier. The payload is
        // reserved for future options; it must be empty or a flat JSON
        // object, and anything else is strictly rejected so a corrupt
        // STAT cannot be half-honored.
        if (const auto stat_error = stat_payload_error(frame->payload)) {
          write_frame(out, FrameType::kError,
                      stream_error_payload("STAT: " + *stat_error));
          ++result.parse_errors;
        } else {
          ++result.stat_polls;
          emit_tser();
          emit_tele();
        }
        break;
      }
      case FrameType::kEnd:
        result.clean_end = true;
        reading = false;
        break;
      default:
        // REP/METR/ERR travel server -> client; receiving one is a client
        // bug but the framing is intact, so the stream continues.
        write_frame(
            out, FrameType::kError,
            stream_error_payload(
                "unexpected '" +
                frame_type_name(static_cast<std::uint32_t>(frame->type)) +
                "' frame from client"));
        ++result.parse_errors;
        break;
    }
    if (reading) emit_completed(/*drain=*/false);
  }

  emit_completed(/*drain=*/true);
  (void)service.flush();
  emit_tser();
  emit_tele();
  if (serve_options.metr_compat) {
    std::ostringstream metrics;
    write_metrics_jsonl(metrics, service.metrics(), service.build_info());
    write_frame(out, FrameType::kMetrics,
                strip_newline(std::move(metrics).str()));
  }
  write_frame(out, FrameType::kEnd, "");
  out.flush();
  return result;
}

StreamServeResult serve_frame_stream(std::istream& in, std::ostream& out,
                                     StreamingService& service) {
  return serve_frame_stream(in, out, service, StreamServeOptions{});
}

}  // namespace deepcat::service
