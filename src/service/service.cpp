#include "service/service.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "rl/replay_rdper.hpp"
#include "service/checkpoint.hpp"
#include "sparksim/hardware.hpp"

namespace deepcat::service {

namespace {

sparksim::ClusterSpec service_cluster(const std::string& tag) {
  if (tag == "b" || tag == "B") return sparksim::cluster_b();
  return sparksim::cluster_a();
}

}  // namespace

// ---- ModelRegistry ------------------------------------------------------

ModelRegistry::ModelRegistry(std::string directory)
    : dir_(std::move(directory)) {
  std::filesystem::create_directories(dir_);
}

std::string ModelRegistry::path_for(const std::string& name,
                                    std::uint32_t version) const {
  return dir_ + "/" + name + ".v" + std::to_string(version) + ".dckp";
}

std::optional<std::uint32_t> ModelRegistry::latest_version(
    const std::string& name) const {
  const std::string prefix = name + ".v";
  const std::string suffix = ".dckp";
  std::optional<std::uint32_t> latest;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string file = entry.path().filename().string();
    if (file.size() <= prefix.size() + suffix.size() ||
        file.compare(0, prefix.size(), prefix) != 0 ||
        file.compare(file.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string mid =
        file.substr(prefix.size(), file.size() - prefix.size() - suffix.size());
    std::uint32_t v = 0;
    const auto [ptr, parse_ec] =
        std::from_chars(mid.data(), mid.data() + mid.size(), v);
    if (parse_ec != std::errc{} || ptr != mid.data() + mid.size()) continue;
    if (!latest || v > *latest) latest = v;
  }
  return latest;
}

std::uint32_t ModelRegistry::publish(const std::string& name,
                                     core::DeepCat& model) {
  const std::uint32_t version = latest_version(name).value_or(0) + 1;
  save_checkpoint_file(path_for(name, version), model);
  return version;
}

void ModelRegistry::load_into(const std::string& name, std::uint32_t version,
                              core::DeepCat& model) const {
  load_checkpoint_file(path_for(name, version), model);
}

// ---- TuningService ------------------------------------------------------

TuningService::TuningService(ServiceOptions options)
    : options_((options.api.tuner.obs = options.obs, std::move(options))),
      master_(service_cluster(options_.cluster), options_.api),
      pool_(options_.threads) {}

void TuningService::train_master(const sparksim::WorkloadSpec& workload,
                                 std::size_t iterations) {
  std::unique_lock lock(master_mutex_);
  (void)master_.train_offline(workload, iterations);
}

void TuningService::load_master(std::istream& is) {
  std::unique_lock lock(master_mutex_);
  load_checkpoint(is, master_);
}

void TuningService::load_master_file(const std::string& path) {
  std::unique_lock lock(master_mutex_);
  load_checkpoint_file(path, master_);
}

void TuningService::save_master(std::ostream& os) {
  std::shared_lock lock(master_mutex_);
  save_checkpoint(os, master_);
}

void TuningService::save_master_file(const std::string& path) {
  std::shared_lock lock(master_mutex_);
  save_checkpoint_file(path, master_);
}

std::vector<SessionReport> TuningService::run_batch(
    const std::vector<TuningRequest>& requests) {
  const auto batch_span = options_.obs.scope("batch");
  if (options_.obs.metrics != nullptr) {
    options_.obs.metrics->counter("batch.runs").add(1);
    options_.obs.metrics->counter("batch.requests").add(requests.size());
  }

  // Serialize the master once; every session clones from this blob, so the
  // expensive network serialization is paid once per batch, not per
  // session, and all sessions see the identical frozen state.
  std::string blob;
  const rl::RdperReplay* master_pools = nullptr;
  {
    std::shared_lock lock(master_mutex_);
    blob = checkpoint_to_string(master_);
    master_pools =
        dynamic_cast<const rl::RdperReplay*>(master_.tuner().replay());
  }

  // Session spans (and the tuner spans under them) parent on the batch
  // span; the api copy carries the parent id across the pool threads.
  core::DeepCatApiOptions session_api = options_.api;
  std::vector<SessionReport> reports =
      common::parallel_map(pool_, requests.size(), [&](std::size_t i) {
        const auto session_span = options_.obs.with_parent(batch_span.id())
                                      .scope("session");
        core::DeepCatApiOptions api = session_api;
        api.tuner.obs.trace_parent = session_span.id();
        return run_session(blob, api, requests[i], master_pools,
                           &master_mutex_);
      });

  // Cross-request memory sharing (paper §3.3): fold every session's fresh
  // experience into the master pools, in request order so the merged state
  // is independent of scheduling. The exclusive lock pairs with the shared
  // locks in save_master and SharedRdperReplay::sample.
  std::size_t merged = 0;
  {
    const auto merge_span =
        options_.obs.with_parent(batch_span.id()).scope("merge");
    std::unique_lock lock(master_mutex_);
    rl::ReplayBuffer* replay = master_.tuner().replay();
    if (replay != nullptr) {
      for (const auto& r : reports) {
        for (const auto& t : r.new_transitions) {
          replay->add(t);
          ++merged;
        }
      }
    }
  }
  if (options_.obs.metrics != nullptr && merged > 0) {
    options_.obs.metrics->counter("batch.merged_transitions").add(merged);
  }

  {
    std::scoped_lock lock(metrics_mutex_);
    if (merged > 0) {
      ++totals_.merges;
      totals_.merged_transitions += merged;
    }
    for (const auto& r : reports) {
      if (!r.ok) {
        ++totals_.sessions_failed;
        continue;
      }
      ++totals_.sessions_served;
      totals_.evaluations_paid += r.report.steps.size();
      totals_.evaluation_seconds += r.report.total_evaluation_seconds();
      const double rec = r.report.total_recommendation_seconds();
      totals_.recommendation_seconds += rec;
      rec_costs_.add(rec);
      reward_sum_ += r.mean_reward();
      speedup_sum_ += r.report.speedup_over_default();
    }
  }
  return reports;
}

ServiceMetrics TuningService::metrics() const {
  std::scoped_lock lock(metrics_mutex_);
  ServiceMetrics m = totals_;
  if (m.sessions_served > 0) {
    m.p50_recommendation_seconds = rec_costs_.quantile(0.50);
    m.p95_recommendation_seconds = rec_costs_.quantile(0.95);
    m.mean_session_reward =
        reward_sum_ / static_cast<double>(m.sessions_served);
    m.mean_speedup = speedup_sum_ / static_cast<double>(m.sessions_served);
  }
  return m;
}

}  // namespace deepcat::service
