// TuningService: the serving layer over the DeepCAT library. Owns one
// shared offline-trained master model, runs batches of tuning sessions
// concurrently on the common::ThreadPool, merges session experience back
// into the master RDPER pools (the paper's cross-request memory sharing),
// and tracks aggregate serving metrics. ModelRegistry persists named,
// versioned checkpoints on disk so a service restart resumes from the
// newest published model instead of retraining.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/deepcat_api.hpp"
#include "obs/sink.hpp"
#include "service/session.hpp"

namespace deepcat::service {

/// Retained-sample cap for the service percentile trackers: exact
/// quantiles up to this many sessions, deterministic skeleton compaction
/// beyond it (common::QuantileTracker bounded mode), so an unbounded
/// request stream cannot grow service memory without limit.
inline constexpr std::size_t kRecCostSampleCap = 65536;

/// Fixed bucket upper edges for recommendation-cost histograms. Every
/// shard uses the same edges by construction, so cross-shard aggregation
/// can merge bucket counts exactly (sharding.hpp) instead of averaging
/// per-shard quantiles. Matches the "stream.rec_seconds" registry
/// histogram so wire and in-process views agree.
[[nodiscard]] inline const std::vector<double>& rec_cost_bucket_edges() {
  static const std::vector<double> edges{1.0,  2.0,   5.0,   10.0,  20.0,
                                         50.0, 100.0, 200.0, 500.0, 1000.0};
  return edges;
}

struct ServiceOptions {
  core::DeepCatApiOptions api;  ///< master model + environment settings
  std::string cluster = "a";    ///< master model's home cluster
  std::size_t threads = 0;      ///< session pool size; 0 = hardware
  /// Observability hand-off: propagated into the master's tuner options
  /// and every session clone, so losses, Twin-Q counters and spans from
  /// all layers land in one registry/tracer. Non-owning; inert by default.
  obs::Sink obs{};
};

/// Aggregate serving metrics across every batch run so far. Percentiles
/// are over per-session recommendation cost (the deterministic cost model,
/// tuners/tuner.hpp rec_cost) — the serving-latency proxy of this repo.
struct ServiceMetrics {
  std::size_t sessions_served = 0;  ///< successfully completed sessions
  std::size_t sessions_failed = 0;  ///< sessions that ended with an error
  std::size_t evaluations_paid = 0;   ///< paid config evaluations (paper cost)
  double evaluation_seconds = 0.0;
  double recommendation_seconds = 0.0;
  double p50_recommendation_seconds = 0.0;
  double p95_recommendation_seconds = 0.0;
  double mean_session_reward = 0.0;   ///< mean over sessions of mean step reward
  double mean_speedup = 0.0;          ///< mean best-vs-default speedup
  std::size_t merges = 0;             ///< experience merges into a master
  std::size_t merged_transitions = 0; ///< transitions folded into masters
  std::size_t fine_tune_steps = 0;    ///< bounded master fine-tune steps taken
  /// Per-bucket counts of per-session recommendation cost over
  /// rec_cost_bucket_edges() (+1 overflow bucket). Carried for exact
  /// cross-shard percentile aggregation only — never serialized into
  /// METR/TELE, so transcripts are unchanged. Empty when the service
  /// predates the field (aggregators treat empty as all-zero).
  std::vector<std::uint64_t> rec_buckets;
};

/// Named, versioned checkpoint store on disk: `<dir>/<name>.v<N>.dckp`.
/// publish() writes tmp-then-rename, so readers never see a torn file and
/// the newest complete version always wins.
class ModelRegistry {
 public:
  explicit ModelRegistry(std::string directory);

  [[nodiscard]] const std::string& directory() const noexcept { return dir_; }

  /// Saves `model` as the next version of `name`; returns that version.
  std::uint32_t publish(const std::string& name, core::DeepCat& model);

  /// Highest published version of `name`, or nullopt if none.
  [[nodiscard]] std::optional<std::uint32_t> latest_version(
      const std::string& name) const;

  [[nodiscard]] std::string path_for(const std::string& name,
                                     std::uint32_t version) const;

  /// Restores `name` at `version` into `model` (CheckpointError on failure).
  void load_into(const std::string& name, std::uint32_t version,
                 core::DeepCat& model) const;

 private:
  std::string dir_;
};

class TuningService {
 public:
  explicit TuningService(ServiceOptions options = {});

  [[nodiscard]] core::DeepCat& master() noexcept { return master_; }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

  /// Offline-trains the master model (paper's train-once stage).
  void train_master(const sparksim::WorkloadSpec& workload,
                    std::size_t iterations);

  /// Master checkpoint I/O. save_master takes the shared master lock, so a
  /// checkpoint written while a batch is in flight is always a consistent
  /// snapshot — never a torn read of half-merged pools.
  void load_master(std::istream& is);
  void load_master_file(const std::string& path);
  void save_master(std::ostream& os);
  void save_master_file(const std::string& path);

  /// Serves a batch of tuning requests concurrently. The master model is
  /// frozen while sessions run (each session clones it from one shared
  /// checkpoint blob), then every session's experience is merged into the
  /// master pools in request order. Reports come back in request order and
  /// are identical for any `threads` setting.
  std::vector<SessionReport> run_batch(
      const std::vector<TuningRequest>& requests);

  [[nodiscard]] ServiceMetrics metrics() const;

 private:
  ServiceOptions options_;
  core::DeepCat master_;
  common::ThreadPool pool_;
  /// Guards the master model + pools: sessions and save_master take shared
  /// locks; the post-batch merge takes an exclusive lock.
  mutable std::shared_mutex master_mutex_;
  mutable std::mutex metrics_mutex_;
  /// Streaming-safe percentile state over per-session recommendation cost;
  /// metrics() reads exact quantiles without re-sorting a history vector.
  /// Bounded so long-lived services stay O(kRecCostSampleCap).
  common::QuantileTracker rec_costs_{kRecCostSampleCap};
  ServiceMetrics totals_;
  double speedup_sum_ = 0.0;
  double reward_sum_ = 0.0;
};

}  // namespace deepcat::service
