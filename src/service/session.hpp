// One tuning session = one online tuning request served against the shared
// offline-trained model (paper §2: train once, tune many). Sessions are
// designed to run concurrently on the service thread pool:
//
//   - clone-on-tune: each session deserializes the master checkpoint blob
//     into a private DeepCat instance, so its fine-tune gradient steps
//     never touch the shared networks;
//   - shared read-mostly pools: when the master uses RDPER, the session
//     samples the master's frozen P_high/P_low pools through a
//     SharedRdperReplay view under a shared mutex instead of copying them;
//   - write-back on completion: the transitions a session generates are
//     returned in its report and merged into the master pools by the
//     service after the whole batch finishes, in request order — the
//     paper's cross-request memory sharing, kept deterministic.
//
// Because the master is frozen for the duration of a batch, a session's
// result is a pure function of (master checkpoint, request), independent
// of pool size and of which other sessions run beside it.
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/deepcat_api.hpp"
#include "rl/replay_rdper.hpp"
#include "tuners/tuner.hpp"

namespace deepcat::service {

/// AutoScope-style tuning scope: which key a session's model is tuned
/// under. kGlobal shares one model per name (today's behaviour);
/// kWorkload/kHardware fork a scoped model per workload id / cluster tag,
/// so one served name tunes independently at each configured scope.
enum class TuneScope { kGlobal, kWorkload, kHardware };

[[nodiscard]] std::string to_string(TuneScope scope);

/// One online tuning request: workload + cluster + budget + determinism
/// seed. `workload` is a HiBench suite id ("WC-D1" .. "KM-D3") or a
/// streaming suite id ("SA-P1" .. "SJ-P2"); streaming requests run one
/// long phase-shifted session where max_steps counts evaluation windows.
struct TuningRequest {
  std::string id;             ///< caller's correlation id, echoed back
  std::string workload;       ///< HiBench case id, e.g. "TS-D1"
  std::string cluster = "a";  ///< "a" (testbed) or "b" (VM cluster)
  int max_steps = 5;          ///< paid online evaluations
  double max_total_seconds = 1e18;  ///< tuning-time budget (paper §2)
  std::uint64_t seed = 1;     ///< per-session determinism seed
  /// Named master model to serve against (streaming multi-model routing;
  /// the batch service serves everything from its single master).
  std::string model = "default";
  /// Warm-start: number of experience-index neighbours requested (wire
  /// "warm" field; 0 = cold request, the default). The service resolves
  /// this into `warm_actions` before the session runs; a warm request
  /// against a service with no index loaded is a typed protocol error.
  int warm_k = 0;
  /// Retrieved seed actions (normalized [0,1]^kNumKnobs, nearest first),
  /// replayed as the first online steps before the actor takes over.
  std::vector<std::vector<double>> warm_actions;
  /// AutoScope-style scope descriptor (wire "scope" field; kGlobal = omitted
  /// = today's behaviour). Non-global scopes route the session to a
  /// scope-keyed model derived from `model` via scoped_model_key().
  TuneScope scope = TuneScope::kGlobal;
  /// Client-supplied trace id (wire "trace" field; empty = untraced
  /// request, the default). A traced REP echoes it plus a deterministic
  /// server span id; malformed values are typed parse errors like
  /// "warm"/"scope".
  std::string trace_id;
  /// Client-side parent span id accompanying trace_id (wire "span" field,
  /// optional; requires "trace"). Carried for trace-file correlation —
  /// server spans parent under server-local spans, not this foreign id.
  std::uint64_t trace_span = 0;
  /// Transport-local parent span id for the service's "request" span
  /// (e.g. the front end's per-connection span). Never serialized.
  std::uint64_t server_parent_span = 0;
  /// Transport-measured REQ decode time (clock ns), feeding the gated
  /// per-stage timing block in the REP. Never serialized.
  std::uint64_t decode_ns = 0;
};

/// The registry/routing key a request's model resolves to under its scope:
/// kGlobal -> "m", kWorkload -> "m@wl:<workload>", kHardware ->
/// "m@hw:<cluster>". Scoped keys feed both ModelRegistry lookup and shard
/// routing, so the same name tunes independently per workload or hardware
/// class while checkpoints stay bit-identical across shard/thread layouts.
[[nodiscard]] std::string scoped_model_key(const TuningRequest& request);

/// Inverse of scoped_model_key's derivation: the base model name a scoped
/// key was forked from ("m@wl:TS-D1" -> "m"), or nullopt for unscoped
/// keys. The streaming service bootstraps a scoped model that has no
/// published version from its base model's genesis checkpoint.
[[nodiscard]] std::optional<std::string> scope_base_of(
    const std::string& model_key);

/// Deterministic server span id echoed in a traced REP: 64-bit FNV-1a of
/// trace id + '\0' + request id, forced nonzero. Deliberately NOT the
/// tracer's internal span id — tracer ids are assigned in admission order
/// across all connections, so echoing them would make traced transcripts
/// depend on scheduling; this hash is a pure function of the request.
[[nodiscard]] inline std::uint64_t trace_server_span(
    const std::string& trace_id, const std::string& request_id) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  mix(trace_id);
  h ^= 0u;
  h *= 1099511628211ull;
  mix(request_id);
  return h == 0 ? 1 : h;
}

/// Per-stage server-side timings for one traced request (clock ns; tick
/// counts under LogicalClock). Emitted in the REP only when the serve
/// path opts in (StreamServeOptions.reply_timings) — tick deltas depend
/// on global clock interleaving, so determinism suites keep them off.
struct StageTimings {
  std::uint64_t decode_ns = 0;   ///< REQ payload parse
  std::uint64_t queue_ns = 0;    ///< submit -> pool thread pickup
  std::uint64_t session_ns = 0;  ///< run_session
  std::uint64_t merge_ns = 0;    ///< completion bookkeeping + master merge
  std::uint64_t write_ns = 0;    ///< REP body serialization
};

/// Outcome of one session. `new_transitions` carries the experience the
/// session generated, in insertion order, for the service's post-batch
/// merge into the master pools.
struct SessionReport {
  std::string id;
  std::string workload;
  std::string cluster;
  std::string model;  ///< master model that served this session (streaming)
  bool ok = false;
  std::string error;
  /// Warm-start seed actions actually replayed (0 for cold sessions); the
  /// REP body carries this as "warm" only when nonzero, keeping cold
  /// transcripts byte-identical.
  int warm_seeds = 0;
  /// Scope level this session tuned under ("workload"/"hardware"); empty for
  /// global scope, in which case the REP omits the "scope" key so legacy
  /// transcripts stay byte-identical.
  std::string scope;
  /// Echoed trace context: the request's trace id plus the deterministic
  /// server span id (FNV-1a of trace id + request id, never 0). Empty
  /// trace_id omits both keys, keeping untraced REPs byte-identical.
  std::string trace_id;
  std::uint64_t server_span = 0;
  /// Gated per-stage timing block ("t_*_ns" keys); absent by default.
  std::optional<StageTimings> timings;
  tuners::TuningReport report;
  std::vector<rl::Transition> new_transitions;

  [[nodiscard]] double mean_reward() const noexcept;
};

/// Thread-safe RDPER view for concurrent sessions: samples the master's
/// pools (frozen during a batch) under a shared lock and appends the
/// session's own transitions to a private overlay. Sampling replicates
/// RdperReplay::sample exactly over the combined master+overlay pools —
/// same draw order, same beta split — so a session behaves bit-identically
/// to one holding a private copy of the master pools. Sampled transitions
/// are copied into internal scratch storage (valid until the next sample
/// call), so the returned batch never points into the shared pools.
///
/// The overlay appends rather than ring-overwriting: a session adds a
/// handful of transitions against pools sized in the tens of thousands, so
/// master-capacity eviction is deferred to the service's merge step.
class SharedRdperReplay final : public rl::ReplayBuffer {
 public:
  /// Snapshots the master pool sizes (the master must stay frozen while
  /// any session holds this view) and shares `mutex` with every other
  /// concurrent view over the same master.
  SharedRdperReplay(const rl::RdperReplay& master, std::shared_mutex& mutex);

  void add(rl::Transition t) override;
  [[nodiscard]] rl::SampledBatch sample(std::size_t m,
                                        common::Rng& rng) override;
  [[nodiscard]] std::size_t size() const noexcept override;
  [[nodiscard]] std::size_t capacity() const noexcept override;

  /// Every transition added through this view, in insertion order.
  [[nodiscard]] const std::vector<rl::Transition>& session_transitions()
      const noexcept {
    return session_log_;
  }

 private:
  const rl::RdperReplay& master_;
  std::shared_mutex& mutex_;
  rl::RdperConfig config_;
  std::size_t master_high_ = 0;  ///< frozen master pool sizes
  std::size_t master_low_ = 0;
  std::vector<rl::Transition> local_high_, local_low_;
  std::vector<rl::Transition> session_log_;
  std::vector<rl::Transition> scratch_;  ///< last sampled batch's storage
};

/// Runs one session against the master checkpoint `blob`. When
/// `master_pools` is non-null the session samples them through a
/// SharedRdperReplay guarded by `master_mutex`; otherwise it fine-tunes on
/// the private replay restored from the blob. Never throws: failures come
/// back as ok = false with the error message.
[[nodiscard]] SessionReport run_session(const std::string& blob,
                                        const core::DeepCatApiOptions& api,
                                        const TuningRequest& request,
                                        const rl::RdperReplay* master_pools,
                                        std::shared_mutex* master_mutex);

}  // namespace deepcat::service
