// Tiny argument parser for the deepcat CLI: positional subcommand +
// --flag value pairs + repeatable --set knob=value assignments.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace deepcat::cli {

struct ParsedArgs {
  std::string command;                       ///< first positional token
  std::map<std::string, std::string> flags;  ///< --name value
  std::vector<std::pair<std::string, std::string>> assignments;  ///< --set k=v

  [[nodiscard]] std::optional<std::string> flag(
      const std::string& name) const;
  [[nodiscard]] std::string flag_or(const std::string& name,
                                    const std::string& fallback) const;
  [[nodiscard]] double number_or(const std::string& name,
                                 double fallback) const;
};

/// Parses argv[1..): first token is the subcommand; "--set k=v" pairs are
/// collected into `assignments`; any other "--name value" into `flags`.
/// Throws std::invalid_argument on a malformed flag (missing value,
/// missing '=' in --set).
[[nodiscard]] ParsedArgs parse_args(const std::vector<std::string>& argv);

}  // namespace deepcat::cli
