// Tiny argument parser for the deepcat CLI: positional subcommand +
// --flag value pairs + repeatable --set knob=value assignments.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace deepcat::cli {

struct ParsedArgs {
  std::string command;                       ///< first positional token
  std::string subcommand;                    ///< optional second positional
  std::map<std::string, std::string> flags;  ///< --name value
  std::vector<std::pair<std::string, std::string>> assignments;  ///< --set k=v

  [[nodiscard]] std::optional<std::string> flag(
      const std::string& name) const;
  [[nodiscard]] std::string flag_or(const std::string& name,
                                    const std::string& fallback) const;
  [[nodiscard]] double number_or(const std::string& name,
                                 double fallback) const;
};

/// Parses argv[1..): the first token is the command, an optional second
/// bare token the subcommand ("index build"); "--set k=v" pairs are
/// collected into `assignments`; any other "--name value" into `flags`.
/// Throws std::invalid_argument on a malformed flag (missing value,
/// missing '=' in --set) or a third positional token.
[[nodiscard]] ParsedArgs parse_args(const std::vector<std::string>& argv);

}  // namespace deepcat::cli
