#include "cli/commands.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/table.hpp"
#include "core/deepcat_api.hpp"
#include "service/jsonl.hpp"
#include "service/service.hpp"
#include "sparksim/config_export.hpp"
#include "sparksim/job_sim.hpp"

namespace deepcat::cli {

namespace {

using namespace deepcat::sparksim;

WorkloadType workload_from_flag(const std::string& tag) {
  if (tag == "WC" || tag == "wordcount") return WorkloadType::kWordCount;
  if (tag == "TS" || tag == "terasort") return WorkloadType::kTeraSort;
  if (tag == "PR" || tag == "pagerank") return WorkloadType::kPageRank;
  if (tag == "KM" || tag == "kmeans") return WorkloadType::kKMeans;
  throw std::invalid_argument("unknown workload '" + tag +
                              "' (use WC, TS, PR or KM)");
}

ClusterSpec cluster_from_flag(const std::string& tag) {
  if (tag == "a" || tag == "A") return cluster_a();
  if (tag == "b" || tag == "B") return cluster_b();
  throw std::invalid_argument("unknown cluster '" + tag + "' (use a or b)");
}

double default_size(WorkloadType type) {
  switch (type) {
    case WorkloadType::kWordCount:
    case WorkloadType::kTeraSort: return 3.2;
    case WorkloadType::kPageRank: return 0.5;
    case WorkloadType::kKMeans: return 20.0;
  }
  return 1.0;
}

ConfigValues config_from_assignments(const ParsedArgs& args) {
  const ConfigSpace& space = pipeline_space();
  ConfigValues values = space.defaults();
  for (const auto& [knob, value] : args.assignments) {
    const KnobId id = space.id_of(knob);  // throws on unknown knob
    values.set(id, std::stod(value));
  }
  return values;
}

void print_usage(std::ostream& os) {
  os << "usage: deepcat <command> [flags]\n\n"
        "commands:\n"
        "  knobs                       list the 32 tuned parameters\n"
        "  suite                       list the HiBench workload registry\n"
        "  simulate --workload TS      run the cluster simulator once\n"
        "      [--size 3.2] [--cluster a|b] [--seed 1] [--runs 1]\n"
        "      [--set spark.executor.memory=6144 ...]\n"
        "  tune --workload TS          train offline + tune online\n"
        "      [--size 3.2] [--cluster a|b] [--steps 5]\n"
        "      [--offline-iters 1200] [--seed 1]\n"
        "      [--export spark|yarn|hdfs|submit]\n"
        "  serve --checkpoint dir/     serve a JSONL tuning-request batch\n"
        "      [--requests file.jsonl] [--out file.jsonl] [--model default]\n"
        "      [--train-iters 0] [--train-workload TS] [--train-size 3.2]\n"
        "      [--threads 0] [--cluster a|b] [--seed 1] [--publish 1]\n";
}

}  // namespace

int cmd_knobs(const ParsedArgs& /*args*/, std::ostream& os) {
  const ConfigSpace& space = pipeline_space();
  common::Table t("Tuned configuration parameters");
  t.header({"parameter", "component", "min", "max", "default"});
  const char* comp_names[] = {"Spark", "YARN", "HDFS"};
  for (std::size_t i = 0; i < space.size(); ++i) {
    const KnobDef& k = space.knob(static_cast<KnobId>(i));
    t.row({k.name, comp_names[static_cast<int>(k.component)],
           common::cell(k.min_value, 1), common::cell(k.max_value, 1),
           common::cell(k.default_value, 1)});
  }
  t.print(os);
  return 0;
}

int cmd_suite(const ParsedArgs& /*args*/, std::ostream& os) {
  common::Table t("HiBench workload registry");
  t.header({"id", "workload", "input (MB)", "stages"});
  for (const auto& c : hibench_suite()) {
    const WorkloadSpec w = workload_for(c);
    t.row({c.id, w.name, common::cell(w.input_mb, 0),
           common::cell(w.stages.size())});
  }
  t.print(os);
  return 0;
}

int cmd_simulate(const ParsedArgs& args, std::ostream& os) {
  const WorkloadType type = workload_from_flag(args.flag_or("workload", "TS"));
  const double size = args.number_or("size", default_size(type));
  const WorkloadSpec workload = make_workload(type, size);
  const ClusterSpec cluster = cluster_from_flag(args.flag_or("cluster", "a"));
  const ConfigValues config = config_from_assignments(args);
  const auto runs = static_cast<int>(args.number_or("runs", 1));
  const auto seed0 =
      static_cast<std::uint64_t>(args.number_or("seed", 1));

  const JobSimulator sim(cluster);
  for (int run = 0; run < runs; ++run) {
    const ExecutionResult r =
        sim.run(workload, config, seed0 + static_cast<std::uint64_t>(run));
    os << workload.name << " on " << cluster.name << " (seed "
       << seed0 + static_cast<std::uint64_t>(run) << "): ";
    if (r.success) {
      os << common::cell(r.exec_seconds, 1) << " s, " << r.executors
         << " executors, " << r.total_slots << " slots\n";
    } else {
      os << "FAILED after " << common::cell(r.exec_seconds, 1) << " s ("
         << r.failure_reason << ")\n";
    }
    if (runs == 1) {
      common::Table t("stages");
      t.header({"stage", "tasks", "duration (s)", "spill (MB)", "cache hit"});
      for (const auto& s : r.stages) {
        t.row({s.name, common::cell(s.num_tasks),
               common::cell(s.duration_s, 1), common::cell(s.spilled_mb, 0),
               common::percent_cell(s.cache_hit_fraction, 0)});
      }
      t.print(os);
    }
  }
  return 0;
}

int cmd_tune(const ParsedArgs& args, std::ostream& os) {
  const WorkloadType type = workload_from_flag(args.flag_or("workload", "TS"));
  const double size = args.number_or("size", default_size(type));
  const ClusterSpec cluster = cluster_from_flag(args.flag_or("cluster", "a"));
  const auto steps = static_cast<int>(args.number_or("steps", 5));
  const auto offline_iters =
      static_cast<std::size_t>(args.number_or("offline-iters", 1200));
  const auto seed = static_cast<std::uint64_t>(args.number_or("seed", 1));

  core::DeepCatApiOptions options;
  options.tuner.seed = seed;
  options.env.seed = seed + 1000;
  core::DeepCat tuner(cluster, options);

  os << "offline: training " << offline_iters << " iterations...\n";
  (void)tuner.train_offline(make_workload(type, size), offline_iters);

  const auto report =
      tuner.tune_online(make_workload(type, size), {.max_steps = steps});
  common::Table t("online tuning report");
  t.header({"step", "exec (s)", "best so far (s)"});
  for (const auto& s : report.steps) {
    t.row({common::cell(s.step), common::cell(s.exec_seconds, 1),
           common::cell(s.best_so_far, 1)});
  }
  t.print(os);
  os << "default " << common::cell(report.default_time, 1) << " s -> best "
     << common::cell(report.best_time, 1) << " s ("
     << common::speedup_cell(report.speedup_over_default())
     << "), tuning cost " << common::cell(report.total_tuning_seconds(), 1)
     << " s\n";

  if (const auto format = args.flag("export")) {
    os << '\n';
    if (*format == "spark") {
      write_spark_defaults(os, report.best_config);
    } else if (*format == "yarn") {
      write_yarn_site_xml(os, report.best_config);
    } else if (*format == "hdfs") {
      write_hdfs_site_xml(os, report.best_config);
    } else if (*format == "submit") {
      os << spark_submit_flags(report.best_config) << '\n';
    } else {
      throw std::invalid_argument("unknown --export format '" + *format +
                                  "' (use spark, yarn, hdfs or submit)");
    }
  }
  return 0;
}

int cmd_serve(const ParsedArgs& args, std::ostream& os) {
  const auto checkpoint_dir = args.flag("checkpoint");
  if (!checkpoint_dir) {
    throw std::invalid_argument("serve: --checkpoint dir/ is required");
  }
  const std::string model_name = args.flag_or("model", "default");
  const auto train_iters =
      static_cast<std::size_t>(args.number_or("train-iters", 0));
  const auto seed = static_cast<std::uint64_t>(args.number_or("seed", 1));

  service::ServiceOptions options;
  options.cluster = args.flag_or("cluster", "a");
  options.threads = static_cast<std::size_t>(args.number_or("threads", 0));
  options.api.tuner.seed = seed;
  options.api.env.seed = seed + 1000;

  service::TuningService svc(options);
  service::ModelRegistry registry(*checkpoint_dir);

  const auto version = registry.latest_version(model_name);
  if (version) {
    svc.load_master_file(registry.path_for(model_name, *version));
    os << "loaded model '" << model_name << "' v" << *version << " from "
       << registry.directory() << '\n';
  } else if (train_iters > 0) {
    const WorkloadType type =
        workload_from_flag(args.flag_or("train-workload", "TS"));
    const double size = args.number_or("train-size", default_size(type));
    os << "no published model '" << model_name << "'; training "
       << train_iters << " offline iterations...\n";
    svc.train_master(make_workload(type, size), train_iters);
    const std::uint32_t v = registry.publish(model_name, svc.master());
    os << "published model '" << model_name << "' v" << v << '\n';
  } else {
    throw std::invalid_argument(
        "serve: no published model '" + model_name +
        "' in the registry and --train-iters is 0; train one first");
  }

  const auto requests_path = args.flag("requests");
  if (!requests_path) return 0;  // train/publish-only invocation

  std::ifstream req_stream(*requests_path);
  if (!req_stream) {
    throw std::invalid_argument("serve: cannot open requests file '" +
                                *requests_path + "'");
  }
  const auto requests = service::parse_requests_jsonl(req_stream);
  os << "serving " << requests.size() << " requests on "
     << (options.threads == 0 ? std::string("hardware")
                              : std::to_string(options.threads))
     << " threads...\n";
  const auto reports = svc.run_batch(requests);

  std::ostringstream body;
  for (const auto& r : reports) service::write_report_jsonl(body, r);
  service::write_metrics_jsonl(body, svc.metrics());
  if (const auto out_path = args.flag("out")) {
    std::ofstream out(*out_path, std::ios::trunc);
    if (!out) {
      throw std::invalid_argument("serve: cannot open output file '" +
                                  *out_path + "'");
    }
    out << body.str();
    os << "wrote " << reports.size() << " report lines + metrics to "
       << *out_path << '\n';
  } else {
    os << body.str();
  }

  if (args.number_or("publish", 0) != 0.0) {
    const std::uint32_t v = registry.publish(model_name, svc.master());
    os << "published post-batch model '" << model_name << "' v" << v << '\n';
  }

  std::size_t failed = 0;
  for (const auto& r : reports) {
    if (!r.ok) ++failed;
  }
  return failed == 0 ? 0 : 1;
}

int run_cli(const std::vector<std::string>& argv, std::ostream& os) {
  try {
    const ParsedArgs args = parse_args(argv);
    if (args.command == "knobs") return cmd_knobs(args, os);
    if (args.command == "suite") return cmd_suite(args, os);
    if (args.command == "simulate") return cmd_simulate(args, os);
    if (args.command == "tune") return cmd_tune(args, os);
    if (args.command == "serve") return cmd_serve(args, os);
    print_usage(os);
    return args.command.empty() ? 0 : 2;
  } catch (const std::exception& e) {
    os << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace deepcat::cli
