#include "cli/commands.hpp"

#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/simd.hpp"
#include "common/table.hpp"
#include "core/deepcat_api.hpp"
#include "obs/build_info.hpp"
#include "obs/clock.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/tracer.hpp"
#include "retrieval/index.hpp"
#include "service/checkpoint.hpp"
#include "service/jsonl.hpp"
#include "service/session.hpp"
#include "service/service.hpp"
#include "service/sharding.hpp"
#include "service/streaming.hpp"
#include "service/wire.hpp"
#include "sparksim/config_export.hpp"
#include "sparksim/job_sim.hpp"
#include "streamsim/workloads.hpp"

#if !defined(_WIN32)
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#endif

namespace deepcat::cli {

namespace {

using namespace deepcat::sparksim;

WorkloadType workload_from_flag(const std::string& tag) {
  if (tag == "WC" || tag == "wordcount") return WorkloadType::kWordCount;
  if (tag == "TS" || tag == "terasort") return WorkloadType::kTeraSort;
  if (tag == "PR" || tag == "pagerank") return WorkloadType::kPageRank;
  if (tag == "KM" || tag == "kmeans") return WorkloadType::kKMeans;
  if (tag == "SA" || tag == "streamagg") return WorkloadType::kStreamAgg;
  if (tag == "SJ" || tag == "streamjoin") return WorkloadType::kStreamJoin;
  throw std::invalid_argument("unknown workload '" + tag +
                              "' (use WC, TS, PR, KM, SA or SJ)");
}

ClusterSpec cluster_from_flag(const std::string& tag) {
  if (tag == "a" || tag == "A") return cluster_a();
  if (tag == "b" || tag == "B") return cluster_b();
  throw std::invalid_argument("unknown cluster '" + tag + "' (use a or b)");
}

double default_size(WorkloadType type) {
  switch (type) {
    case WorkloadType::kWordCount:
    case WorkloadType::kTeraSort: return 3.2;
    case WorkloadType::kPageRank: return 0.5;
    case WorkloadType::kKMeans: return 20.0;
    // Streaming families size in MB per micro-batch, not GB of input.
    case WorkloadType::kStreamAgg: return 384.0;
    case WorkloadType::kStreamJoin: return 256.0;
  }
  return 1.0;
}

ConfigValues config_from_assignments(const ParsedArgs& args) {
  const ConfigSpace& space = pipeline_space();
  ConfigValues values = space.defaults();
  for (const auto& [knob, value] : args.assignments) {
    const KnobId id = space.id_of(knob);  // throws on unknown knob
    values.set(id, std::stod(value));
  }
  return values;
}

void print_usage(std::ostream& os) {
  os << "usage: deepcat <command> [flags]\n\n"
        "commands:\n"
        "  info [--json 1]             build version, numeric backend,\n"
        "      [--threads 0]           thread-pool size\n"
        "  knobs                       list the 32 tuned parameters\n"
        "  suite                       list the HiBench + streaming\n"
        "                              workload registries\n"
        "  simulate --workload TS      run the cluster simulator once\n"
        "      [--size 3.2] [--cluster a|b] [--seed 1] [--runs 1]\n"
        "      [--set spark.executor.memory=6144 ...]\n"
        "  tune --workload TS          train offline + tune online\n"
        "      [--size 3.2] [--cluster a|b] [--steps 5]\n"
        "      [--offline-iters 1200] [--seed 1]\n"
        "      [--export spark|yarn|hdfs|submit]\n"
        "  serve --checkpoint dir/     serve a JSONL tuning-request batch\n"
        "      [--requests file.jsonl] [--out file.jsonl] [--model default]\n"
        "                              (request lines may carry \"scope\":\n"
        "                               global|workload|hardware and\n"
        "                               streaming workload ids SA-P1..SJ-P2)\n"
        "      [--train-iters 0] [--train-workload TS] [--train-size 3.2]\n"
        "      [--threads 0] [--cluster a|b] [--seed 1] [--publish 1]\n"
        "  serve --stream 1            serve a framed wire stream (DCWP)\n"
        "      --checkpoint dir/ [--in wire.bin] [--out wire.bin]\n"
        "      [--requests file.jsonl]  (framed as REQ* + END; excludes --in)\n"
        "      [--warm-index index.bin] (enables \"warm\" request retrieval)\n"
        "      [--socket /path.sock] [--tcp host:port] [--shards 1]\n"
        "      [--max-conns 256] [--max-inflight 1024] [--drain-timeout 5]\n"
        "      [--idle-timeout 0] [--exit-after N] [--flush-on-end 0|1]\n"
        "      [--model default] [--master-steps 4]\n"
        "      [--max-models 4] [--train-iters 0] [--train-workload TS]\n"
        "      [--threads 0] [--cluster a|b] [--seed 1]\n"
        "      [--trace-out trace.json] [--metrics-out metrics.jsonl]\n"
        "      [--trace-stream trace.json] [--trace-ring 256]\n"
        "      [--tele-every 0] [--clock steady|logical]\n"
        "      [--http host:port]      (GET /metrics /healthz /varz\n"
        "                               /timeseries on the same epoll loop;\n"
        "                               needs --socket or --tcp)\n"
        "      [--series N]            (retain convergence time-series, ~N\n"
        "                               points per series; exported as TSER\n"
        "                               frames and GET /timeseries)\n"
        "      [--reply-timings 1]     (echo per-stage t_*_ns in traced REPs;\n"
        "                               needs --trace-out/--trace-stream)\n"
        "      (--socket/--tcp run the multiplexing front end; --socket\n"
        "       alone keeps the legacy exit-after-one-connection contract.\n"
        "       without --in/--socket/--tcp reads stdin; without\n"
        "       --out/--socket/--tcp writes wire bytes to stdout silently)\n"
        "  stats --socket /path.sock   poll a streaming server for one TELE\n"
        "      [--tcp host:port]       telemetry snapshot (STAT over DCWP)\n"
        "      [--requests file.jsonl] (first send each line as a REQ and\n"
        "                               print every REP/ERR payload)\n"
        "      [--series 1]            (render sparklines from the server's\n"
        "                               TSER time-series frame)\n"
        "      [--trace-out trace.json] [--trace-id deepcat-stats]\n"
        "                              (tag REQs with a trace id, collect\n"
        "                               client spans + echoed server stage\n"
        "                               timings into one Chrome trace)\n"
        "  index build --checkpoint dir/ --out index.bin\n"
        "      [--model default] [--workloads TS-D1,WC-D1 | all]\n"
        "      [--seeds 2] [--steps 5] [--cluster a|b]\n"
        "                              replay deterministic sessions against\n"
        "                              the registry model into a warm-start\n"
        "                              experience index\n"
        "  index query --index index.bin --workload TS-D1\n"
        "      [--k 3] [--metric cosine|l2] [--json 1]\n"
        "                              k-NN query against a saved index\n";
}

int stream_exit_code(const service::StreamServeResult& result) {
  return (result.failed_sessions == 0 && result.parse_errors == 0 &&
          result.protocol_errors == 0 && result.clean_end)
             ? 0
             : 1;
}

#if !defined(_WIN32)
int front_end_exit_code(const net::FrontEndStats& stats) {
  // Overload rejections are the protocol working as designed, not a
  // failure; anything lost or corrupted is.
  return (stats.failed_sessions == 0 && stats.parse_errors == 0 &&
          stats.protocol_errors == 0 && stats.forced_closes == 0)
             ? 0
             : 1;
}
#endif

int cmd_serve_stream(const ParsedArgs& args, std::ostream& os,
                     const std::string& checkpoint_dir) {
  const std::string model_name = args.flag_or("model", "default");
  const auto train_iters =
      static_cast<std::size_t>(args.number_or("train-iters", 0));
  const auto seed = static_cast<std::uint64_t>(args.number_or("seed", 1));
  const auto socket_path = args.flag("socket");
  const auto tcp_spec = args.flag("tcp");
#if defined(_WIN32)
  if (socket_path || tcp_spec) {
    throw std::invalid_argument(
        "serve: --socket/--tcp are not supported on this platform");
  }
#endif
  const bool front_end = socket_path.has_value() || tcp_spec.has_value();
  const auto http_spec = args.flag("http");
  if (http_spec && !front_end) {
    throw std::invalid_argument(
        "serve: --http requires --socket or --tcp (the observability "
        "endpoint shares the front end's epoll loop)");
  }
  const auto shards =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.number_or("shards", 1)));
  if (shards > 1 && !front_end) {
    throw std::invalid_argument(
        "serve: --shards requires --socket or --tcp (the in-memory stream "
        "driver is single-connection)");
  }

  service::StreamingOptions options;
  options.service.cluster = args.flag_or("cluster", "a");
  options.service.threads =
      static_cast<std::size_t>(args.number_or("threads", 0));
  options.service.api.tuner.seed = seed;
  options.service.api.env.seed = seed + 1000;
  options.master_update_steps =
      static_cast<std::size_t>(args.number_or("master-steps", 4));
  options.max_loaded_models =
      static_cast<std::size_t>(args.number_or("max-models", 4));
  options.registry_dir = checkpoint_dir;

  // Observability taps: --trace-out (retained) / --trace-stream
  // (incremental export) / --metrics-out turn the sink on for the whole
  // stack (service spans, tuner losses, GP timings). --clock logical
  // makes the trace/metrics — and the TELE payloads — deterministic for
  // golden comparisons.
  const auto trace_out = args.flag("trace-out");
  const auto trace_stream = args.flag("trace-stream");
  const auto metrics_out = args.flag("metrics-out");
  if (trace_out && trace_stream) {
    throw std::invalid_argument(
        "serve: --trace-out and --trace-stream are mutually exclusive");
  }
  const std::string clock_kind = args.flag_or("clock", "steady");
  std::unique_ptr<obs::Clock> clock;
  std::unique_ptr<obs::ChromeTraceFileSink> trace_sink;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::MetricsRegistry> metrics_registry;
  // --http implies a metrics registry (GET /metrics must serve real
  // instruments, not just the build-info join gauge) but not a tracer:
  // a long-running server should not retain spans nobody will export.
  const bool obs_on =
      trace_out || trace_stream || metrics_out || http_spec.has_value();
  if (obs_on) {
    if (clock_kind == "logical") {
      clock = std::make_unique<obs::LogicalClock>();
    } else if (clock_kind == "steady") {
      clock = std::make_unique<obs::SteadyClock>();
    } else {
      throw std::invalid_argument("serve: unknown --clock '" + clock_kind +
                                  "' (use steady or logical)");
    }
    metrics_registry = std::make_unique<obs::MetricsRegistry>();
    if (trace_out || trace_stream) {
      obs::TracerOptions tracer_options;
      tracer_options.health = metrics_registry.get();
      if (trace_stream) {
        trace_sink =
            std::make_unique<obs::ChromeTraceFileSink>(*trace_stream,
                                                       clock_kind);
        tracer_options.exporter = trace_sink.get();
        tracer_options.ring_capacity = static_cast<std::size_t>(
            args.number_or("trace-ring", 256));
      }
      tracer = std::make_unique<obs::Tracer>(*clock, tracer_options);
      options.service.obs.tracer = tracer.get();
    }
    options.service.obs.metrics = metrics_registry.get();
  }

  // Convergence time-series retention is independent of the trace/metrics
  // gate: --series alone turns it on (for TSER frames + GET /timeseries)
  // without paying for span bookkeeping.
  std::unique_ptr<obs::TimeSeriesRegistry> series_registry;
  if (const double series_n = args.number_or("series", 0); series_n != 0.0) {
    auto capacity = static_cast<std::size_t>(series_n);
    if (capacity < 2) capacity = 128;  // --series 1 means "just enable it"
    if (capacity % 2 != 0) ++capacity;
    series_registry = std::make_unique<obs::TimeSeriesRegistry>(capacity);
    options.service.obs.series = series_registry.get();
  }
  options.reply_timings = args.number_or("reply-timings", 0) != 0.0;
  if (options.reply_timings && tracer == nullptr) {
    throw std::invalid_argument(
        "serve: --reply-timings needs a tracer (--trace-out or "
        "--trace-stream)");
  }

  service::StreamServeOptions serve_options;
  serve_options.tele_every =
      static_cast<std::size_t>(args.number_or("tele-every", 0));
  // Logical-clock runs promise byte-identical telemetry across thread
  // counts; scheduling-dependent fields would break that promise.
  serve_options.tele_include_nondeterministic =
      !(obs_on && clock_kind == "logical");

  // Wire bytes to stdout (no --out / --socket / --tcp) must stay pure
  // protocol, so status text is suppressed in that mode.
  const bool quiet = !args.flag("out") && !front_end;
  service::ShardedStreamingService svc(options, shards);
  service::ModelRegistry registry(checkpoint_dir);

  const auto version = registry.latest_version(model_name);
  if (version) {
    svc.load_model_file(model_name, registry.path_for(model_name, *version));
    if (!quiet) {
      os << "loaded model '" << model_name << "' v" << *version << " from "
         << registry.directory() << '\n';
    }
  } else if (train_iters > 0) {
    const WorkloadType type =
        workload_from_flag(args.flag_or("train-workload", "TS"));
    const double size = args.number_or("train-size", default_size(type));
    if (!quiet) {
      os << "no published model '" << model_name << "'; training "
         << train_iters << " offline iterations...\n";
    }
    svc.train_model(model_name, make_workload(type, size), train_iters);
    const std::uint32_t v = registry.publish(model_name, svc.master(model_name));
    if (!quiet) os << "published model '" << model_name << "' v" << v << '\n';
  } else {
    throw std::invalid_argument(
        "serve: no published model '" + model_name +
        "' in the registry and --train-iters is 0; train one first");
  }

  if (const auto warm_path = args.flag("warm-index")) {
    auto index = std::make_shared<retrieval::ExperienceIndex>(
        service::load_index_file(*warm_path));
    if (index->empty()) {
      throw std::invalid_argument("serve: warm index '" + *warm_path +
                                  "' is empty");
    }
    if (!quiet) {
      os << "loaded warm index (" << index->size() << " entries) from "
         << *warm_path << '\n';
    }
    svc.set_warm_index(std::move(index));
  }

  service::StreamServeResult result;
  int exit_code = 0;
  if (front_end) {
#if !defined(_WIN32)
    net::FrontEndOptions fe;
    if (socket_path) fe.unix_path = *socket_path;
    if (tcp_spec) {
      const auto [host, port] = net::parse_host_port(*tcp_spec);
      fe.tcp_host = host.empty() ? "127.0.0.1" : host;
      fe.tcp_port = port;
    }
    fe.max_connections =
        static_cast<std::size_t>(args.number_or("max-conns", 256));
    fe.max_inflight =
        static_cast<std::size_t>(args.number_or("max-inflight", 1024));
    fe.drain_timeout_seconds = args.number_or("drain-timeout", 5);
    fe.idle_timeout_seconds = args.number_or("idle-timeout", 0);
    // --socket alone keeps the legacy contract: serve exactly one
    // connection with the flush-on-END tail, then exit. Adding --tcp (or
    // overriding the flags) runs the long-lived multiplexing server.
    const bool legacy_single = socket_path.has_value() && !tcp_spec;
    fe.exit_after_connections = static_cast<std::size_t>(
        args.number_or("exit-after", legacy_single ? 1 : 0));
    fe.flush_on_end =
        args.number_or("flush-on-end", legacy_single ? 1 : 0) != 0.0;
    fe.serve = serve_options;
    fe.obs = options.service.obs;
    if (http_spec) {
      const auto [http_host, http_port] = net::parse_host_port(*http_spec);
      fe.http_host = http_host.empty() ? "127.0.0.1" : http_host;
      fe.http_port = http_port;
    }
    net::FrontEnd server(svc, fe);
    if (fe.exit_after_connections == 0) server.install_signal_handlers();
    if (socket_path) os << "listening on " << *socket_path << '\n';
    if (tcp_spec) {
      os << "listening on " << fe.tcp_host << ':' << server.tcp_port()
         << '\n';
    }
    if (http_spec) {
      os << "observability http on " << fe.http_host << ':'
         << server.http_port() << '\n';
    }
    os << std::flush;
    const net::FrontEndStats stats = server.run();
    os << "serve done: " << stats.accepted << " connections ("
       << stats.clean_ends << " clean), " << stats.requests << " requests, "
       << stats.replies << " replies, " << stats.failed_sessions
       << " failed sessions, " << stats.parse_errors << " parse errors, "
       << stats.protocol_errors << " protocol errors, "
       << stats.rejected_overload + stats.overloaded_requests
       << " overload rejections, " << stats.forced_closes
       << " forced closes";
    if (http_spec) {
      os << ", " << stats.http_requests << " http requests, "
         << stats.http_errors << " http errors";
    }
    os << '\n';
    exit_code = front_end_exit_code(stats);
#endif
  } else {
    std::ifstream in_file;
    std::istringstream synth_in(std::ios::binary);
    std::istream* in = &std::cin;
    if (const auto req_path = args.flag("requests")) {
      // Human-writable bridge: frame each JSONL request line as a REQ and
      // append a clean END, so smoke tests don't need a wire encoder.
      if (args.flag("in")) {
        throw std::invalid_argument(
            "serve: --requests and --in are mutually exclusive in stream "
            "mode");
      }
      std::ifstream req(*req_path);
      if (!req) {
        throw std::invalid_argument("serve: cannot open requests file '" +
                                    *req_path + "'");
      }
      std::vector<std::pair<service::FrameType, std::string>> frames;
      std::string line;
      while (std::getline(req, line)) {
        if (!line.empty()) {
          frames.emplace_back(service::FrameType::kRequest, line);
        }
      }
      frames.emplace_back(service::FrameType::kEnd, "");
      synth_in.str(service::encode_frames(frames));
      in = &synth_in;
    } else if (const auto in_path = args.flag("in")) {
      in_file.open(*in_path, std::ios::binary);
      if (!in_file) {
        throw std::invalid_argument("serve: cannot open wire input '" +
                                    *in_path + "'");
      }
      in = &in_file;
    }
    std::ofstream out_file;
    std::ostream* out = &os;  // quiet mode: wire bytes into the CLI stream
    if (const auto out_path = args.flag("out")) {
      out_file.open(*out_path, std::ios::binary | std::ios::trunc);
      if (!out_file) {
        throw std::invalid_argument("serve: cannot open wire output '" +
                                    *out_path + "'");
      }
      out = &out_file;
    }
    result = service::serve_frame_stream(*in, *out, svc.shard(0),
                                         serve_options);
    exit_code = stream_exit_code(result);
  }

  if (trace_stream) {
    tracer->flush_exporter();
    if (!quiet) {
      os << "streamed trace to " << *trace_stream << " ("
         << trace_sink->exported_spans() << " spans, ring highwater "
         << tracer->ring_highwater() << ", dropped "
         << tracer->dropped_spans() << ")\n";
    }
  }
  if (trace_out) {
    std::ofstream tf(*trace_out, std::ios::trunc);
    if (!tf) {
      throw std::invalid_argument("serve: cannot open trace output '" +
                                  *trace_out + "'");
    }
    tracer->write_chrome_trace(tf);
    if (!quiet) os << "wrote trace to " << *trace_out << '\n';
  }
  if (metrics_out) {
    std::ofstream mf(*metrics_out, std::ios::trunc);
    if (!mf) {
      throw std::invalid_argument("serve: cannot open metrics output '" +
                                  *metrics_out + "'");
    }
    metrics_registry->write_jsonl(mf);
    if (!quiet) os << "wrote metrics to " << *metrics_out << '\n';
  }

  if (!quiet && !front_end) {
    os << "stream done: " << result.requests << " requests, "
       << result.failed_sessions << " failed sessions, "
       << result.parse_errors << " parse errors, " << result.protocol_errors
       << " protocol errors"
       << (result.clean_end ? "" : " (no clean END frame)") << '\n';
  }
  return exit_code;
}

}  // namespace

namespace {

/// Comma-joined enumerations of the tuning surface (flat strings, not
/// arrays, so the info JSON stays parseable by the flat reader).
std::string workload_family_list() {
  std::string out;
  for (const WorkloadType t :
       {WorkloadType::kWordCount, WorkloadType::kTeraSort,
        WorkloadType::kPageRank, WorkloadType::kKMeans,
        WorkloadType::kStreamAgg, WorkloadType::kStreamJoin}) {
    if (!out.empty()) out += ',';
    out += to_string(t);
  }
  return out;
}

std::string objective_kind_list() {
  return std::string(to_string(ObjectiveKind::kJobCompletionSeconds)) + "," +
         to_string(ObjectiveKind::kBatchLatencyP95);
}

std::string scope_level_list() {
  return to_string(service::TuneScope::kGlobal) + "," +
         to_string(service::TuneScope::kWorkload) + "," +
         to_string(service::TuneScope::kHardware);
}

}  // namespace

int cmd_info(const ParsedArgs& args, std::ostream& os) {
  // Reports what THIS process would actually use: the backend comes from
  // the live dispatch decision (CPU features + the DEEPCAT_SIMD /
  // DEEPCAT_FORCE_SCALAR caps), not from compile flags alone. The ladder
  // lists every tier the CPU + compile flags expose, whether or not an
  // env cap keeps it inactive.
  namespace simd = common::simd;
  const obs::BuildInfo info = obs::current_build_info(
      static_cast<std::size_t>(args.number_or("threads", 0)));
  if (args.number_or("json", 0) != 0.0) {
    // Flat object (cli_test parses it with a flat-JSON reader): the
    // ladder is a comma-joined string, not an array.
    os << '{';
    obs::write_build_info_json_fields(os, info);
    os << ",\"isa_ladder\":\"" << simd::isa_ladder() << "\",\"detected\":\""
       << simd::backend_label(simd::detected_backend())
       << "\",\"packed_gemm_min_dim\":" << simd::packed_gemm_min_dim()
       << ",\"embedding_dim\":" << retrieval::kEmbeddingDim
       << ",\"warm_default_k\":" << retrieval::kDefaultNeighbors
       << ",\"index_section_version\":" << service::kIndexSectionVersion
       << ",\"workload_families\":\"" << workload_family_list()
       << "\",\"objective_kinds\":\"" << objective_kind_list()
       << "\",\"scope_levels\":\"" << scope_level_list()
       << "\",\"stream_cases\":" << streamsim::stream_suite().size()
       << "}\n";
    return 0;
  }
  os << "deepcat " << info.version << '\n'
     << "numeric backend:  " << info.backend << '\n'
     << "isa ladder:       " << simd::isa_ladder() << '\n'
     << "detected tier:    " << simd::backend_label(simd::detected_backend())
     << '\n'
     << "simd compiled:    " << (info.simd_compiled ? "yes" : "no") << '\n'
     << "packed gemm from: " << simd::packed_gemm_min_dim() << "^3\n"
     << "thread-pool size: " << info.threads << '\n'
     << "warm embedding:   " << retrieval::kEmbeddingDim << " dims\n"
     << "warm default k:   " << retrieval::kDefaultNeighbors << '\n'
     << "index section:    v" << service::kIndexSectionVersion << '\n'
     << "workload families:" << ' ' << workload_family_list() << '\n'
     << "objective kinds:  " << objective_kind_list() << '\n'
     << "scope levels:     " << scope_level_list() << '\n'
     << "stream cases:     " << streamsim::stream_suite().size() << '\n';
  return 0;
}

int cmd_knobs(const ParsedArgs& /*args*/, std::ostream& os) {
  const ConfigSpace& space = pipeline_space();
  common::Table t("Tuned configuration parameters");
  t.header({"parameter", "component", "min", "max", "default"});
  const char* comp_names[] = {"Spark", "YARN", "HDFS"};
  for (std::size_t i = 0; i < space.size(); ++i) {
    const KnobDef& k = space.knob(static_cast<KnobId>(i));
    t.row({k.name, comp_names[static_cast<int>(k.component)],
           common::cell(k.min_value, 1), common::cell(k.max_value, 1),
           common::cell(k.default_value, 1)});
  }
  t.print(os);
  return 0;
}

int cmd_suite(const ParsedArgs& /*args*/, std::ostream& os) {
  common::Table t("HiBench workload registry");
  t.header({"id", "workload", "input (MB)", "stages"});
  for (const auto& c : hibench_suite()) {
    const WorkloadSpec w = workload_for(c);
    t.row({c.id, w.name, common::cell(w.input_mb, 0),
           common::cell(w.stages.size())});
  }
  t.print(os);
  common::Table s("Streaming workload registry (micro-batch)");
  s.header({"id", "workload", "phases", "windows", "floor"});
  for (const auto& c : streamsim::stream_suite()) {
    s.row({c.id, to_string(c.type), common::cell(c.schedule.phases.size()),
           common::cell(c.schedule.total_windows()),
           common::percent_cell(c.throughput_floor, 0)});
  }
  s.print(os);
  return 0;
}

int cmd_simulate(const ParsedArgs& args, std::ostream& os) {
  const WorkloadType type = workload_from_flag(args.flag_or("workload", "TS"));
  const double size = args.number_or("size", default_size(type));
  const WorkloadSpec workload = make_workload(type, size);
  const ClusterSpec cluster = cluster_from_flag(args.flag_or("cluster", "a"));
  const ConfigValues config = config_from_assignments(args);
  const auto runs = static_cast<int>(args.number_or("runs", 1));
  const auto seed0 =
      static_cast<std::uint64_t>(args.number_or("seed", 1));

  const JobSimulator sim(cluster);
  for (int run = 0; run < runs; ++run) {
    const ExecutionResult r =
        sim.run(workload, config, seed0 + static_cast<std::uint64_t>(run));
    os << workload.name << " on " << cluster.name << " (seed "
       << seed0 + static_cast<std::uint64_t>(run) << "): ";
    if (r.success) {
      os << common::cell(r.exec_seconds, 1) << " s, " << r.executors
         << " executors, " << r.total_slots << " slots\n";
    } else {
      os << "FAILED after " << common::cell(r.exec_seconds, 1) << " s ("
         << r.failure_reason << ")\n";
    }
    if (runs == 1) {
      common::Table t("stages");
      t.header({"stage", "tasks", "duration (s)", "spill (MB)", "cache hit"});
      for (const auto& s : r.stages) {
        t.row({s.name, common::cell(s.num_tasks),
               common::cell(s.duration_s, 1), common::cell(s.spilled_mb, 0),
               common::percent_cell(s.cache_hit_fraction, 0)});
      }
      t.print(os);
    }
  }
  return 0;
}

int cmd_tune(const ParsedArgs& args, std::ostream& os) {
  const WorkloadType type = workload_from_flag(args.flag_or("workload", "TS"));
  const double size = args.number_or("size", default_size(type));
  const ClusterSpec cluster = cluster_from_flag(args.flag_or("cluster", "a"));
  const auto steps = static_cast<int>(args.number_or("steps", 5));
  const auto offline_iters =
      static_cast<std::size_t>(args.number_or("offline-iters", 1200));
  const auto seed = static_cast<std::uint64_t>(args.number_or("seed", 1));

  core::DeepCatApiOptions options;
  options.tuner.seed = seed;
  options.env.seed = seed + 1000;
  core::DeepCat tuner(cluster, options);

  os << "offline: training " << offline_iters << " iterations...\n";
  (void)tuner.train_offline(make_workload(type, size), offline_iters);

  const auto report =
      tuner.tune_online(make_workload(type, size), {.max_steps = steps});
  common::Table t("online tuning report");
  t.header({"step", "exec (s)", "best so far (s)"});
  for (const auto& s : report.steps) {
    t.row({common::cell(s.step), common::cell(s.exec_seconds, 1),
           common::cell(s.best_so_far, 1)});
  }
  t.print(os);
  os << "default " << common::cell(report.default_time, 1) << " s -> best "
     << common::cell(report.best_time, 1) << " s ("
     << common::speedup_cell(report.speedup_over_default())
     << "), tuning cost " << common::cell(report.total_tuning_seconds(), 1)
     << " s\n";

  if (const auto format = args.flag("export")) {
    os << '\n';
    if (*format == "spark") {
      write_spark_defaults(os, report.best_config);
    } else if (*format == "yarn") {
      write_yarn_site_xml(os, report.best_config);
    } else if (*format == "hdfs") {
      write_hdfs_site_xml(os, report.best_config);
    } else if (*format == "submit") {
      os << spark_submit_flags(report.best_config) << '\n';
    } else {
      throw std::invalid_argument("unknown --export format '" + *format +
                                  "' (use spark, yarn, hdfs or submit)");
    }
  }
  return 0;
}

int cmd_serve(const ParsedArgs& args, std::ostream& os) {
  const auto checkpoint_dir = args.flag("checkpoint");
  if (!checkpoint_dir) {
    throw std::invalid_argument("serve: --checkpoint dir/ is required");
  }
  if (args.number_or("stream", 0) != 0.0) {
    return cmd_serve_stream(args, os, *checkpoint_dir);
  }
  const std::string model_name = args.flag_or("model", "default");
  const auto train_iters =
      static_cast<std::size_t>(args.number_or("train-iters", 0));
  const auto seed = static_cast<std::uint64_t>(args.number_or("seed", 1));

  service::ServiceOptions options;
  options.cluster = args.flag_or("cluster", "a");
  options.threads = static_cast<std::size_t>(args.number_or("threads", 0));
  options.api.tuner.seed = seed;
  options.api.env.seed = seed + 1000;

  service::TuningService svc(options);
  service::ModelRegistry registry(*checkpoint_dir);

  const auto version = registry.latest_version(model_name);
  if (version) {
    svc.load_master_file(registry.path_for(model_name, *version));
    os << "loaded model '" << model_name << "' v" << *version << " from "
       << registry.directory() << '\n';
  } else if (train_iters > 0) {
    const WorkloadType type =
        workload_from_flag(args.flag_or("train-workload", "TS"));
    const double size = args.number_or("train-size", default_size(type));
    os << "no published model '" << model_name << "'; training "
       << train_iters << " offline iterations...\n";
    svc.train_master(make_workload(type, size), train_iters);
    const std::uint32_t v = registry.publish(model_name, svc.master());
    os << "published model '" << model_name << "' v" << v << '\n';
  } else {
    throw std::invalid_argument(
        "serve: no published model '" + model_name +
        "' in the registry and --train-iters is 0; train one first");
  }

  const auto requests_path = args.flag("requests");
  if (!requests_path) return 0;  // train/publish-only invocation

  std::ifstream req_stream(*requests_path);
  if (!req_stream) {
    throw std::invalid_argument("serve: cannot open requests file '" +
                                *requests_path + "'");
  }
  const auto requests = service::parse_requests_jsonl(req_stream);
  os << "serving " << requests.size() << " requests on "
     << (options.threads == 0 ? std::string("hardware")
                              : std::to_string(options.threads))
     << " threads...\n";
  const auto reports = svc.run_batch(requests);

  std::ostringstream body;
  for (const auto& r : reports) service::write_report_jsonl(body, r);
  service::write_metrics_jsonl(body, svc.metrics());
  if (const auto out_path = args.flag("out")) {
    std::ofstream out(*out_path, std::ios::trunc);
    if (!out) {
      throw std::invalid_argument("serve: cannot open output file '" +
                                  *out_path + "'");
    }
    out << body.str();
    os << "wrote " << reports.size() << " report lines + metrics to "
       << *out_path << '\n';
  } else {
    os << body.str();
  }

  if (args.number_or("publish", 0) != 0.0) {
    const std::uint32_t v = registry.publish(model_name, svc.master());
    os << "published post-batch model '" << model_name << "' v" << v << '\n';
  }

  std::size_t failed = 0;
  for (const auto& r : reports) {
    if (!r.ok) ++failed;
  }
  return failed == 0 ? 0 : 1;
}

int cmd_stats(const ParsedArgs& args, std::ostream& os) {
#if defined(_WIN32)
  (void)args;
  (void)os;
  throw std::invalid_argument("stats: --socket is not supported on this "
                              "platform");
#else
  const auto socket_path = args.flag("socket");
  const auto tcp_spec = args.flag("tcp");
  if (!socket_path && !tcp_spec) {
    throw std::invalid_argument(
        "stats: --socket /path.sock or --tcp host:port is required");
  }
  const std::string endpoint = socket_path ? *socket_path : *tcp_spec;
  net::BlockingClient client = [&] {
    if (socket_path) return net::BlockingClient::to_unix(*socket_path);
    const auto [host, port] = net::parse_host_port(*tcp_spec);
    return net::BlockingClient::to_tcp(host.empty() ? "127.0.0.1" : host,
                                       port);
  }();

  // --trace-out: open a client-side trace, tag every request with a trace
  // id + parent span, and graft the server's echoed t_*_ns stage block
  // back in as server.* child spans — one Chrome-trace file then shows a
  // request's full life across both processes.
  const auto trace_out = args.flag("trace-out");
  if (args.flag("trace-id") && !trace_out) {
    throw std::invalid_argument("stats: --trace-id needs --trace-out");
  }
  const std::string trace_id = args.flag_or("trace-id", "deepcat-stats");
  std::unique_ptr<obs::SteadyClock> clock;
  std::unique_ptr<obs::Tracer> tracer;
  std::uint64_t root_span = 0;
  if (trace_out) {
    clock = std::make_unique<obs::SteadyClock>();
    tracer = std::make_unique<obs::Tracer>(*clock);
    root_span = tracer->begin_span("client.stats");
    obs::Sink sink;
    sink.tracer = tracer.get();
    sink.trace_parent = root_span;
    client.set_obs(sink);
  }

  // Optional request leg (the warm-start smoke path in CI drives warm
  // queries over the socket this way): each JSONL line goes out as one
  // REQ frame before the STAT poll; the loop below prints every REP/ERR
  // payload the server answers with.
  struct OpenRpc {
    std::uint64_t span = 0;
    std::uint64_t t0_ns = 0;
  };
  std::deque<OpenRpc> open_rpcs;  // REPs arrive in admission order
  client.send_header();
  if (const auto requests_path = args.flag("requests")) {
    std::ifstream req(*requests_path);
    if (!req) {
      throw std::invalid_argument("stats: cannot open requests file '" +
                                  *requests_path + "'");
    }
    std::string line;
    while (std::getline(req, line)) {
      if (line.empty()) continue;
      if (tracer != nullptr) {
        const std::uint64_t rpc = tracer->begin_span("client.rpc", root_span);
        open_rpcs.push_back({rpc, clock->now_ns()});
        const std::size_t brace = line.rfind('}');
        if (brace != std::string::npos) {
          line.insert(brace, ",\"trace\":\"" + service::json_escape(trace_id) +
                                 "\",\"span\":" + std::to_string(rpc));
        }
      }
      client.send_frame(service::FrameType::kRequest, line);
    }
  }
  // STAT asks for one mid-stream TELE; END lets the server finish its
  // tail (final TELE + compat METR + END) and close.
  client.send_frame(service::FrameType::kStat, "");
  client.send_frame(service::FrameType::kEnd, "");

  std::string tele;
  std::string tser;
  std::size_t errors = 0;
  for (;;) {
    const auto frame = client.read_frame();
    if (!frame) break;  // server closed without END: report what we got
    if (frame->type == service::FrameType::kReply) {
      os << frame->payload << '\n';
      if (tracer != nullptr && !open_rpcs.empty()) {
        const OpenRpc rpc = open_rpcs.front();
        open_rpcs.pop_front();
        const auto fields = service::parse_flat_json(frame->payload);
        std::uint64_t t = rpc.t0_ns;
        for (const char* stage :
             {"decode", "queue", "session", "merge", "write"}) {
          const auto it = fields.find(std::string("t_") + stage + "_ns");
          if (it == fields.end()) continue;
          const auto dur =
              static_cast<std::uint64_t>(std::stoull(it->second));
          tracer->add_complete_span(std::string("server.") + stage, rpc.span,
                                    t, dur);
          t += dur;
        }
        tracer->end_span(rpc.span);
      }
    }
    if (frame->type == service::FrameType::kError) {
      os << frame->payload << '\n';
      ++errors;
      if (tracer != nullptr && !open_rpcs.empty()) {
        tracer->end_span(open_rpcs.front().span);
        open_rpcs.pop_front();
      }
    }
    if (frame->type == service::FrameType::kTelemetry && tele.empty()) {
      tele = frame->payload;  // the STAT answer is the first TELE
    }
    if (frame->type == service::FrameType::kTimeSeries) {
      tser = frame->payload;  // keep the freshest snapshot
    }
    if (frame->type == service::FrameType::kEnd) break;
  }
  if (tele.empty()) {
    os << "error: no TELE frame received from '" << endpoint << "'\n";
    return 1;
  }
  os << tele << '\n';

  if (args.number_or("series", 0) != 0.0) {
    if (tser.empty()) {
      os << "no TSER frame received (start the server with --series N)\n";
    } else {
      std::istringstream lines(tser);
      std::string line;
      bool header = true;
      while (std::getline(lines, line)) {
        if (line.empty()) continue;
        if (header) {  // {"tser":1,"series":N}
          header = false;
          continue;
        }
        const auto fields = service::parse_flat_json(line);
        const auto name = fields.find("name");
        const auto points_field = fields.find("points");
        if (name == fields.end() || points_field == fields.end()) continue;
        const auto points = obs::parse_timeseries_points(points_field->second);
        os << name->second << " (n=" << fields.at("count") << ", stride "
           << fields.at("stride") << ") " << obs::render_sparkline(points);
        if (!points.empty()) os << " last=" << points.back().last;
        os << '\n';
      }
    }
  }

  if (trace_out) {
    for (const OpenRpc& rpc : open_rpcs) tracer->end_span(rpc.span);
    tracer->end_span(root_span);
    std::ofstream tf(*trace_out, std::ios::trunc);
    if (!tf) {
      throw std::invalid_argument("stats: cannot open trace output '" +
                                  *trace_out + "'");
    }
    tracer->write_chrome_trace(tf);
    os << "wrote trace to " << *trace_out << " (" << tracer->span_count()
       << " spans, trace id '" << trace_id << "')\n";
  }
  return errors == 0 ? 0 : 1;
#endif
}

namespace {

int cmd_index_build(const ParsedArgs& args, std::ostream& os) {
  const auto checkpoint_dir = args.flag("checkpoint");
  const auto out_path = args.flag("out");
  if (!checkpoint_dir || !out_path) {
    throw std::invalid_argument(
        "index build: --checkpoint dir/ and --out index.bin are required");
  }
  const std::string model_name = args.flag_or("model", "default");
  const std::string cluster_tag = args.flag_or("cluster", "a");
  const auto seeds =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     args.number_or("seeds", 2)));
  const auto steps = static_cast<int>(args.number_or("steps", 5));

  service::ModelRegistry registry(*checkpoint_dir);
  const auto version = registry.latest_version(model_name);
  if (!version) {
    throw std::invalid_argument("index build: no published model '" +
                                model_name + "' in the registry");
  }
  // The registry file IS the checkpoint blob sessions clone from.
  std::ifstream ck(registry.path_for(model_name, *version), std::ios::binary);
  if (!ck) {
    throw std::invalid_argument("index build: cannot open checkpoint for '" +
                                model_name + "'");
  }
  std::ostringstream blob_stream;
  blob_stream << ck.rdbuf();
  const std::string blob = std::move(blob_stream).str();

  std::vector<HiBenchCase> cases;
  const std::string which = args.flag_or("workloads", "all");
  if (which == "all") {
    for (const auto& c : hibench_suite()) cases.push_back(c);
  } else {
    std::istringstream list(which);
    std::string id;
    while (std::getline(list, id, ',')) {
      if (!id.empty()) cases.push_back(hibench_case(id));  // throws on unknown
    }
  }
  if (cases.empty()) {
    throw std::invalid_argument("index build: --workloads selected nothing");
  }

  // Sessions are pure functions of (blob, request), so the index built
  // here is bit-identical on every machine that holds the same model.
  retrieval::ExperienceIndex index;
  const core::DeepCatApiOptions api;
  for (const auto& c : cases) {
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      service::TuningRequest request;
      request.id = c.id + "-s" + std::to_string(seed);
      request.workload = c.id;
      request.cluster = cluster_tag;
      request.max_steps = steps;
      request.seed = seed;
      const service::SessionReport report =
          service::run_session(blob, api, request, nullptr, nullptr);
      if (!report.ok) {
        os << "error: session " << request.id << " failed: " << report.error
           << '\n';
        return 1;
      }
      index.add(retrieval::entry_from_report(c, seed, report.report));
    }
  }

  service::save_index_file(*out_path, index);
  os << "built index: " << index.size() << " entries (" << cases.size()
     << " workloads x " << seeds << " seeds, " << steps
     << " steps each), embedding dim " << retrieval::kEmbeddingDim
     << ", wrote " << *out_path << '\n';
  return 0;
}

int cmd_index_query(const ParsedArgs& args, std::ostream& os) {
  const auto index_path = args.flag("index");
  const auto workload = args.flag("workload");
  if (!index_path || !workload) {
    throw std::invalid_argument(
        "index query: --index index.bin and --workload TS-D1 are required");
  }
  const auto k = static_cast<std::size_t>(args.number_or(
      "k", static_cast<double>(retrieval::kDefaultNeighbors)));
  const retrieval::Metric metric =
      retrieval::metric_from_name(args.flag_or("metric", "cosine"));

  const retrieval::ExperienceIndex index =
      service::load_index_file(*index_path);
  const HiBenchCase& c = hibench_case(*workload);
  const std::vector<retrieval::Neighbor> neighbors =
      index.query_case(c, k, metric);
  if (neighbors.empty()) {
    os << "error: index '" << *index_path << "' has no entries\n";
    return 1;
  }

  if (args.number_or("json", 0) != 0.0) {
    os.precision(17);
    std::size_t rank = 0;
    for (const auto& nb : neighbors) {
      const retrieval::ExperienceEntry& e = index.entries()[nb.entry];
      os << "{\"rank\":" << rank++ << ",\"workload\":\""
         << service::json_escape(e.workload) << "\",\"seed\":" << e.seed
         << ",\"distance\":" << nb.distance
         << ",\"best_cost\":" << e.best_cost
         << ",\"default_cost\":" << e.default_cost << "}\n";
    }
    return 0;
  }
  common::Table t(std::string("nearest neighbors (") +
                  retrieval::metric_name(metric) + ")");
  t.header({"rank", "workload", "seed", "distance", "best (s)", "speedup"});
  std::size_t rank = 0;
  for (const auto& nb : neighbors) {
    const retrieval::ExperienceEntry& e = index.entries()[nb.entry];
    const double speedup =
        e.best_cost > 0.0 ? e.default_cost / e.best_cost : 0.0;
    t.row({common::cell(rank++), e.workload, common::cell(e.seed),
           common::cell(nb.distance, 6), common::cell(e.best_cost, 1),
           common::speedup_cell(speedup)});
  }
  t.print(os);
  return 0;
}

}  // namespace

int cmd_index(const ParsedArgs& args, std::ostream& os) {
  if (args.subcommand == "build") return cmd_index_build(args, os);
  if (args.subcommand == "query") return cmd_index_query(args, os);
  throw std::invalid_argument("index: unknown subcommand '" +
                              args.subcommand + "' (use build or query)");
}

int run_cli(const std::vector<std::string>& argv, std::ostream& os) {
  try {
    const ParsedArgs args = parse_args(argv);
    if (!args.subcommand.empty() && args.command != "index") {
      throw std::invalid_argument("unexpected positional argument '" +
                                  args.subcommand + "'");
    }
    if (args.command == "info") return cmd_info(args, os);
    if (args.command == "knobs") return cmd_knobs(args, os);
    if (args.command == "suite") return cmd_suite(args, os);
    if (args.command == "simulate") return cmd_simulate(args, os);
    if (args.command == "tune") return cmd_tune(args, os);
    if (args.command == "serve") return cmd_serve(args, os);
    if (args.command == "stats") return cmd_stats(args, os);
    if (args.command == "index") return cmd_index(args, os);
    print_usage(os);
    return args.command.empty() ? 0 : 2;
  } catch (const std::exception& e) {
    os << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace deepcat::cli
