#include "cli/args.hpp"

#include <stdexcept>

namespace deepcat::cli {

std::optional<std::string> ParsedArgs::flag(const std::string& name) const {
  const auto it = flags.find(name);
  if (it == flags.end()) return std::nullopt;
  return it->second;
}

std::string ParsedArgs::flag_or(const std::string& name,
                                const std::string& fallback) const {
  return flag(name).value_or(fallback);
}

double ParsedArgs::number_or(const std::string& name, double fallback) const {
  const auto value = flag(name);
  if (!value) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name +
                                " expects a number, got '" + *value + "'");
  }
}

ParsedArgs parse_args(const std::vector<std::string>& argv) {
  ParsedArgs out;
  std::size_t i = 0;
  if (i < argv.size() && argv[i].rfind("--", 0) != 0) {
    out.command = argv[i++];
    if (i < argv.size() && argv[i].rfind("--", 0) != 0) {
      out.subcommand = argv[i++];
    }
  }
  while (i < argv.size()) {
    const std::string& token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument '" + token +
                                  "'");
    }
    const std::string name = token.substr(2);
    if (i + 1 >= argv.size()) {
      throw std::invalid_argument("flag --" + name + " is missing a value");
    }
    const std::string& value = argv[++i];
    ++i;
    if (name == "set") {
      const auto eq = value.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument("--set expects knob=value, got '" +
                                    value + "'");
      }
      out.assignments.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else {
      out.flags[name] = value;
    }
  }
  return out;
}

}  // namespace deepcat::cli
