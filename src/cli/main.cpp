// deepcat — command-line front end for the library: inspect knobs, run
// the cluster simulator, train & tune, export configurations.
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return deepcat::cli::run_cli(args, std::cout);
}
