// The deepcat CLI subcommands, separated from main() so they are unit-
// testable. Each returns a process exit code and writes to the provided
// stream.
#pragma once

#include <iosfwd>

#include "cli/args.hpp"

namespace deepcat::cli {

/// `deepcat info [--json 1] [--threads N]` — print build version, the
/// numeric backend the live dispatch actually selects, and pool size.
int cmd_info(const ParsedArgs& args, std::ostream& os);

/// `deepcat knobs` — print the 32-knob inventory.
int cmd_knobs(const ParsedArgs& args, std::ostream& os);

/// `deepcat suite` — print the HiBench workload registry.
int cmd_suite(const ParsedArgs& args, std::ostream& os);

/// `deepcat simulate --workload TS --size 3.2 [--cluster a|b] [--seed N]
///  [--runs K] [--set knob=value ...]` — run the cluster simulator.
int cmd_simulate(const ParsedArgs& args, std::ostream& os);

/// `deepcat tune --workload TS --size 3.2 [--steps 5] [--offline-iters N]
///  [--seed N] [--export spark|yarn|hdfs|submit]` — train offline, tune
///  online, print the report (and optionally the exported config).
int cmd_tune(const ParsedArgs& args, std::ostream& os);

/// `deepcat serve --requests file.jsonl --checkpoint dir/ [--model NAME]
///  [--train-iters N] [--train-workload TS] [--train-size 3.2]
///  [--threads N] [--out file.jsonl] [--cluster a|b] [--publish 1]` —
///  load (or train + publish) the master model, serve the JSONL request
///  batch concurrently, write one report line per request plus an
///  aggregate metrics line.
int cmd_serve(const ParsedArgs& args, std::ostream& os);

/// `deepcat stats --socket /path.sock [--requests file.jsonl]` — connect
/// to a streaming server, optionally send each JSONL line as a REQ frame
/// (printing every REP/ERR payload), then one STAT poll, print the TELE
/// telemetry payload it answers with. Exit 0 iff a TELE frame arrived and
/// no ERR frames did.
int cmd_stats(const ParsedArgs& args, std::ostream& os);

/// `deepcat index build --checkpoint dir/ --out index.bin` /
/// `deepcat index query --index index.bin --workload TS-D1` — build a
/// warm-start experience index by replaying deterministic sessions against
/// the registry model, or run a k-NN query against a saved index.
int cmd_index(const ParsedArgs& args, std::ostream& os);

/// Dispatches to the subcommand; prints usage on unknown/empty command.
int run_cli(const std::vector<std::string>& argv, std::ostream& os);

}  // namespace deepcat::cli
