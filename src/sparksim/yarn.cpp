#include "sparksim/yarn.hpp"

#include <algorithm>
#include <cmath>

namespace deepcat::sparksim {

YarnModel::YarnModel(const ClusterSpec& cluster, const ConfigValues& config)
    : cluster_(&cluster), config_(&config) {}

YarnAllocation YarnModel::allocate() const {
  const ConfigValues& c = *config_;
  YarnAllocation out;

  const double exec_mem = c.get(KnobId::kExecutorMemoryMb);
  const double overhead =
      std::max(c.get(KnobId::kMemoryOverheadMb), 0.10 * exec_mem);
  const double requested = exec_mem + overhead;

  const double increment = std::max(1.0, c.get(KnobId::kSchedIncrementMb));
  const double min_alloc = c.get(KnobId::kSchedMinAllocMb);
  const double max_alloc = c.get(KnobId::kSchedMaxAllocMb);
  const int max_vcores = c.get_int(KnobId::kSchedMaxAllocVcores);

  // Round the ask up to the scheduler increment, then apply the floor.
  double container = std::ceil(requested / increment) * increment;
  container = std::max(container, min_alloc);

  // Asks above the scheduler maxima are clipped to the boundary rather
  // than rejected — the paper's own rule for out-of-scope recommendations
  // (§5.3.2). The clipped executor keeps its overhead reservation and
  // loses heap, so an over-ask still costs performance.
  double exec_heap = exec_mem;
  if (container > max_alloc) {
    container = std::floor(max_alloc / increment) * increment;
    container = std::max(container, min_alloc);
    exec_heap = std::max(container - overhead, 512.0);
  }
  const int asked_cores =
      std::min(c.get_int(KnobId::kExecutorCores), max_vcores);

  // Per-node capacity from NodeManager limits AND physical hardware. A
  // NodeManager advertising more memory than the box has will overcommit;
  // we cap at physical to keep the failure mode in the memory model (OOM)
  // rather than letting impossible capacity appear.
  const NodeSpec& node = cluster_->nodes.front();
  const double nm_mem = std::min(c.get(KnobId::kNmMemoryMb), node.memory_mb);
  const int nm_vcores = std::min(c.get_int(KnobId::kNmVcores), node.cores);

  // A container bigger than any NodeManager is clipped to node scope too
  // (same §5.3.2 rule): the executor shrinks until it fits somewhere.
  if (container > nm_mem) {
    container = std::max(std::floor(nm_mem / increment) * increment,
                         increment);
    exec_heap = std::max(container - overhead, 512.0);
  }

  const int cores = std::max(1, std::min(asked_cores, nm_vcores));
  const int by_mem = static_cast<int>(nm_mem / container);
  const int by_cores = nm_vcores / cores;
  const int per_node = std::max(0, std::min(by_mem, by_cores));

  if (per_node == 0) {
    out.reject_reason = "no NodeManager can fit one executor container";
    return out;
  }

  const int cluster_capacity =
      per_node * static_cast<int>(cluster_->num_nodes());
  // One container-equivalent is reserved for the ApplicationMaster/driver.
  const int usable = std::max(1, cluster_capacity - 1);

  out.accepted = true;
  out.executors = std::min(c.get_int(KnobId::kExecutorInstances), usable);
  out.executor_cores = cores;
  out.container_mb = container;
  out.heap_mb = std::min(exec_heap, container);
  out.overhead_mb = container - out.heap_mb;
  out.vmem_limit_mb = container * c.get(KnobId::kVmemPmemRatio);
  return out;
}

}  // namespace deepcat::sparksim
