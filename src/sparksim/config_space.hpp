// The 32-knob configuration space of the HDFS + YARN + Spark pipeline
// (paper Table 2: 20 Spark knobs including the Spark-YARN connector,
// 7 YARN knobs, 5 HDFS knobs). Knob values are held as doubles in a
// fixed-size ConfigValues vector; actions are the same knobs normalized
// into [0,1]^32 (paper §3.1).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace deepcat::sparksim {

/// Stable indices for every tuned knob. Order defines the action layout.
enum class KnobId : std::size_t {
  // --- Spark (20, incl. the Spark-YARN connector memoryOverhead) ---
  kExecutorInstances = 0,   ///< spark.executor.instances
  kExecutorCores,           ///< spark.executor.cores
  kExecutorMemoryMb,        ///< spark.executor.memory
  kDriverMemoryMb,          ///< spark.driver.memory
  kMemoryOverheadMb,        ///< spark.yarn.executor.memoryOverhead
  kDefaultParallelism,      ///< spark.default.parallelism
  kShuffleFileBufferKb,     ///< spark.shuffle.file.buffer
  kReducerMaxSizeInFlightMb,///< spark.reducer.maxSizeInFlight
  kShuffleCompress,         ///< spark.shuffle.compress
  kShuffleSpillCompress,    ///< spark.shuffle.spill.compress
  kBroadcastCompress,       ///< spark.broadcast.compress
  kRddCompress,             ///< spark.rdd.compress
  kIoCompressionCodec,      ///< spark.io.compression.codec
  kSerializer,              ///< spark.serializer
  kKryoBufferMaxMb,         ///< spark.kryoserializer.buffer.max
  kMemoryFraction,          ///< spark.memory.fraction
  kMemoryStorageFraction,   ///< spark.memory.storageFraction
  kLocalityWaitS,           ///< spark.locality.wait
  kSpeculation,             ///< spark.speculation
  kBroadcastBlockSizeMb,    ///< spark.broadcast.blockSize
  // --- YARN (7) ---
  kNmMemoryMb,              ///< yarn.nodemanager.resource.memory-mb
  kNmVcores,                ///< yarn.nodemanager.resource.cpu-vcores
  kSchedMaxAllocMb,         ///< yarn.scheduler.maximum-allocation-mb
  kSchedMinAllocMb,         ///< yarn.scheduler.minimum-allocation-mb
  kSchedMaxAllocVcores,     ///< yarn.scheduler.maximum-allocation-vcores
  kVmemPmemRatio,           ///< yarn.nodemanager.vmem-pmem-ratio
  kSchedIncrementMb,        ///< yarn.scheduler.increment-allocation-mb
  // --- HDFS (5) ---
  kDfsBlockSizeMb,          ///< dfs.blocksize
  kDfsReplication,          ///< dfs.replication
  kNamenodeHandlers,        ///< dfs.namenode.handler.count
  kDatanodeHandlers,        ///< dfs.datanode.handler.count
  kIoFileBufferKb,          ///< io.file.buffer.size
  kCount
};

inline constexpr std::size_t kNumKnobs = static_cast<std::size_t>(KnobId::kCount);

enum class KnobType { kInt, kDouble, kBool, kCategorical };
enum class Component { kSpark, kYarn, kHdfs };

/// Compression codecs for spark.io.compression.codec.
enum class Codec : int { kLz4 = 0, kLzf, kSnappy, kZstd };
/// Serializers for spark.serializer.
enum class Serializer : int { kJava = 0, kKryo };

struct KnobDef {
  std::string name;
  Component component = Component::kSpark;
  KnobType type = KnobType::kInt;
  double min_value = 0.0;   ///< for categorical: 0
  double max_value = 1.0;   ///< for categorical: category count - 1
  double default_value = 0.0;
};

/// Concrete values for all 32 knobs (denormalized units: MB, KB, counts…).
class ConfigValues {
 public:
  ConfigValues() = default;

  [[nodiscard]] double get(KnobId id) const noexcept {
    return values_[static_cast<std::size_t>(id)];
  }
  void set(KnobId id, double value) noexcept {
    values_[static_cast<std::size_t>(id)] = value;
  }
  [[nodiscard]] int get_int(KnobId id) const noexcept {
    return static_cast<int>(get(id));
  }
  [[nodiscard]] bool get_bool(KnobId id) const noexcept {
    return get(id) >= 0.5;
  }
  [[nodiscard]] Codec codec() const noexcept {
    return static_cast<Codec>(get_int(KnobId::kIoCompressionCodec));
  }
  [[nodiscard]] Serializer serializer() const noexcept {
    return static_cast<Serializer>(get_int(KnobId::kSerializer));
  }

  [[nodiscard]] std::span<const double> raw() const noexcept { return values_; }

  friend bool operator==(const ConfigValues&, const ConfigValues&) = default;

 private:
  std::array<double, kNumKnobs> values_{};
};

/// The knob registry plus action encoding/decoding.
class ConfigSpace {
 public:
  /// Builds the full 32-knob pipeline space described in the paper.
  ConfigSpace();

  [[nodiscard]] const KnobDef& knob(KnobId id) const noexcept {
    return knobs_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<KnobDef>& knobs() const noexcept {
    return knobs_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return knobs_.size(); }

  /// Count of knobs belonging to a pipeline component (paper Table 2).
  [[nodiscard]] std::size_t count(Component c) const noexcept;

  /// Spark 2.2 / Hadoop 2.7-style default configuration.
  [[nodiscard]] ConfigValues defaults() const;

  /// Maps a [0,1]^32 action onto concrete knob values. Out-of-range action
  /// coordinates are clamped to [0,1] first (paper §5.3.2: recommendations
  /// outside the new environment's scope are clipped to the boundary).
  [[nodiscard]] ConfigValues decode(std::span<const double> action) const;

  /// Inverse of decode (bools/categoricals map to bucket centers).
  [[nodiscard]] std::vector<double> encode(const ConfigValues& values) const;

  /// Knob lookup by config-file name; throws std::out_of_range if unknown.
  [[nodiscard]] KnobId id_of(std::string_view name) const;

 private:
  std::vector<KnobDef> knobs_;
};

/// Shared immutable instance of the pipeline's configuration space.
[[nodiscard]] const ConfigSpace& pipeline_space();

}  // namespace deepcat::sparksim
