// HDFS performance model: effective read/write bandwidth seen by one
// Spark task as a function of the HDFS knobs (block size, replication,
// handler counts, io buffer) and cluster-wide concurrency. The model
// captures the first-order real-world behaviours: small blocks pay seek
// overhead and NameNode round-trips, undersized handler pools queue
// concurrent clients, replication multiplies write traffic across disk
// and network, and tiny io buffers throttle streaming.
#pragma once

#include "sparksim/config_space.hpp"
#include "sparksim/hardware.hpp"

namespace deepcat::sparksim {

class HdfsModel {
 public:
  HdfsModel(const ClusterSpec& cluster, const ConfigValues& config);

  /// MB/s a single task reading from HDFS observes while `concurrent_readers`
  /// tasks are reading cluster-wide. Requires concurrent_readers >= 1.
  [[nodiscard]] double read_mbps(int concurrent_readers) const;

  /// MB/s for one writing task at the given cluster-wide write concurrency.
  /// Write cost includes the replication pipeline (disk on every replica +
  /// network transfer for replicas beyond the first).
  [[nodiscard]] double write_mbps(int concurrent_writers) const;

  /// Fraction of task input expected to be node-local (better block
  /// placement odds with higher replication).
  [[nodiscard]] double locality_fraction() const noexcept {
    return locality_fraction_;
  }

  [[nodiscard]] double block_size_mb() const noexcept { return block_mb_; }

 private:
  /// Handler-pool queueing multiplier: >= 1, grows once concurrent clients
  /// per handler exceed 1.
  [[nodiscard]] double handler_penalty(int concurrent, int handlers) const;

  const ClusterSpec* cluster_;
  double block_mb_;
  int replication_;
  int namenode_handlers_;
  int datanode_handlers_;
  double io_buffer_kb_;
  double locality_fraction_;
};

}  // namespace deepcat::sparksim
