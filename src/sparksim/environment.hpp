// The RL-facing tuning environment (paper §3.1): wraps the job simulator
// behind reset()/step(). State is the per-node `uptime` load averages
// observed during the last evaluation (normalized by core count), actions
// are points in the [0,1]^32 knob cube, and the immediate reward follows
// Eq. (1):  r_t = (perf_e - perf_t) / perf_e,  with perf_e the expected
// execution time — a fixed target speedup over the default configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "sparksim/config_space.hpp"
#include "sparksim/hardware.hpp"
#include "sparksim/job_sim.hpp"
#include "sparksim/workloads.hpp"

namespace deepcat::sparksim {

/// What one evaluation's exec_seconds measures. Batch environments tune
/// job completion time; streaming environments (src/streamsim) tune the
/// p95 micro-batch latency of one evaluation window, subject to a
/// throughput floor.
enum class ObjectiveKind { kJobCompletionSeconds, kBatchLatencyP95 };

[[nodiscard]] std::string to_string(ObjectiveKind kind);

/// One mid-session load shift of a streaming environment, with the online
/// re-adaptation accounting the paper's cost argument needs: how many paid
/// evaluations the tuner spent after the shift before its objective came
/// back to within 5% of the best it had achieved before the shift
/// (size-normalized, so phases of different offered load are comparable).
struct ShiftRecord {
  int at_eval = 0;          ///< 1-based evaluation index of the first
                            ///< window in the new phase
  int recovery_evals = 0;   ///< evaluations in the new phase until
                            ///< recovered (0 while not yet recovered)
  double pre_shift_best = 0.0;   ///< best normalized objective before
  double post_shift_best = 0.0;  ///< best normalized objective after
  bool recovered = false;
};

/// Session-level streaming facts, carried through TuningReport into REP
/// payloads and BENCH_stream.json.
struct StreamSummary {
  int phases = 0;             ///< phases of the arrival schedule
  int windows = 0;            ///< evaluation windows consumed
  double throughput_floor = 0.0;  ///< required fraction of offered load
  double final_p95_s = 0.0;   ///< p95 batch latency of the last window
  std::vector<ShiftRecord> shifts;

  [[nodiscard]] bool all_recovered() const noexcept {
    for (const ShiftRecord& s : shifts) {
      if (!s.recovered) return false;
    }
    return true;
  }
};

struct EnvOptions {
  double target_speedup = 4.0;          ///< perf_e = default_time / this
  double failure_penalty_factor = 3.0;  ///< failed run counts as this x default
  /// When true, the state vector is extended beyond the paper's 9 load
  /// averages with 5 normalized internal metrics (executor count, slot
  /// count, spill volume, cache hit rate, task retries) — the CDBTune-
  /// style "internal metrics" variant, exposed for state ablations.
  bool extended_state = false;
  std::uint64_t seed = 42;
};

struct StepResult {
  std::vector<double> state;   ///< next state s_{t+1}
  double reward = 0.0;
  double exec_seconds = 0.0;   ///< evaluation cost of this step
  bool success = false;
  bool oom = false;
};

class TuningEnvironment {
 public:
  TuningEnvironment(ClusterSpec cluster, WorkloadSpec workload,
                    EnvOptions options = {});
  virtual ~TuningEnvironment() = default;

  /// Evaluates the default configuration to establish the baseline
  /// (perf_e) and the initial state. Counts toward evaluation cost.
  virtual std::vector<double> reset();

  /// Evaluates the decoded action on the simulated cluster (virtual via
  /// evaluate(), so derived environments redefine what one step costs).
  StepResult step(std::span<const double> action);

  /// Evaluates a concrete configuration (used by non-RL tuners); updates
  /// best/cost tracking exactly like step().
  virtual StepResult evaluate(const ConfigValues& config);

  /// What exec_seconds / best_time measure in this environment.
  [[nodiscard]] virtual ObjectiveKind objective() const noexcept {
    return ObjectiveKind::kJobCompletionSeconds;
  }

  /// Streaming environments report their phase/shift accounting here;
  /// batch environments have none.
  [[nodiscard]] virtual std::optional<StreamSummary> stream_summary() const {
    return std::nullopt;
  }

  [[nodiscard]] std::size_t state_dim() const noexcept {
    return cluster_.num_nodes() * 3 +
           (options_.extended_state ? kExtendedMetrics : 0);
  }

  /// Number of internal metrics appended in extended-state mode.
  static constexpr std::size_t kExtendedMetrics = 5;
  [[nodiscard]] std::size_t action_dim() const noexcept { return kNumKnobs; }

  [[nodiscard]] double default_time() const noexcept { return default_time_; }
  /// perf_e in Eq. (1).
  [[nodiscard]] double expected_time() const noexcept {
    return default_time_ / options_.target_speedup;
  }
  [[nodiscard]] double reward_for(double exec_seconds) const noexcept;

  [[nodiscard]] double best_time() const noexcept { return best_time_; }
  [[nodiscard]] const ConfigValues& best_config() const noexcept {
    return best_config_;
  }

  /// Cumulative simulated seconds spent on configuration evaluations
  /// (the dominant term of the paper's online tuning cost).
  [[nodiscard]] double total_evaluation_seconds() const noexcept {
    return eval_seconds_;
  }
  [[nodiscard]] std::size_t evaluations() const noexcept { return evals_; }
  void reset_cost_counters() noexcept {
    eval_seconds_ = 0.0;
    evals_ = 0;
  }

  [[nodiscard]] const WorkloadSpec& workload() const noexcept {
    return workload_;
  }
  [[nodiscard]] const ClusterSpec& cluster() const noexcept {
    return cluster_;
  }
  [[nodiscard]] const JobSimulator& simulator() const noexcept { return sim_; }

  /// Draws the simulator seed the NEXT evaluation would use, advancing the
  /// environment RNG exactly as step()/evaluate() would. Harnesses that
  /// parallelize a batch of evaluations pre-draw one seed per config here
  /// (serially, in submission order) and call simulator().run() directly —
  /// the results are then bit-identical to running the same batch through
  /// step() one at a time.
  [[nodiscard]] std::uint64_t draw_eval_seed() noexcept { return rng_(); }

 protected:
  [[nodiscard]] std::vector<double> normalize_state(
      const ExecutionResult& result) const;

  ClusterSpec cluster_;
  WorkloadSpec workload_;
  EnvOptions options_;
  JobSimulator sim_;
  common::Rng rng_;
  double default_time_ = 0.0;
  double best_time_ = 0.0;
  ConfigValues best_config_;
  double eval_seconds_ = 0.0;
  std::size_t evals_ = 0;
};

}  // namespace deepcat::sparksim
