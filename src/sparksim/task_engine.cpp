#include "sparksim/task_engine.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

#include "common/math_util.hpp"

namespace deepcat::sparksim {

StageRunResult run_stage(int num_tasks, double base_task_s,
                         const TaskEngineConfig& config, common::Rng& rng) {
  if (num_tasks <= 0) throw std::invalid_argument("run_stage: no tasks");
  if (config.slots <= 0) throw std::invalid_argument("run_stage: no slots");
  if (base_task_s < 0.0) {
    throw std::invalid_argument("run_stage: negative task time");
  }

  StageRunResult result;
  result.num_tasks = num_tasks;

  // Locality economics: waiting trades scheduler idle time against remote
  // reads. A longer wait converts more tasks to node-local placement
  // (diminishing returns past a few seconds) but delays every conversion.
  const double wait = config.locality_wait_s;
  const double conversion = 1.0 - std::exp(-wait / 3.0);
  const double effective_local =
      common::clamp(config.local_fraction +
                        (1.0 - config.local_fraction) * conversion,
                    0.0, 1.0);
  const double wait_cost_s = 0.25 * wait;

  // Draw all task durations first.
  std::vector<double> durations;
  durations.reserve(static_cast<std::size_t>(num_tasks));
  for (int t = 0; t < num_tasks; ++t) {
    double d = base_task_s * std::exp(rng.normal(0.0, config.jitter_sigma));
    if (rng.bernoulli(config.straggler_prob)) {
      d *= rng.uniform(1.5, 2.2);
      ++result.stragglers;
    }
    if (!rng.bernoulli(effective_local)) {
      d += config.remote_penalty_s;
      d += wait_cost_s;  // the slot idled while waiting before giving up
    }
    durations.push_back(d + config.schedule_overhead_s);
  }

  // Speculation (spark.speculation): once most of the stage is done, slow
  // attempts are duplicated; the copy usually finishes near the median.
  if (config.speculation && num_tasks >= 4) {
    std::vector<double> sorted = durations;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    const double threshold = 1.8 * median;
    for (double& d : durations) {
      if (d > threshold) {
        const double copy = median * rng.uniform(1.1, 1.5) + 0.5;
        // Original keeps running until the copy wins; both consume slots.
        result.busy_core_seconds += std::min(d, copy);
        d = std::min(d, copy);
        ++result.speculative_copies;
      }
    }
  }

  // Wave scheduling over a min-heap of slot free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> slots;
  const int active_slots = std::min(config.slots, num_tasks);
  for (int s = 0; s < active_slots; ++s) slots.push(0.0);

  double makespan = 0.0;
  for (double d : durations) {
    const double free_at = slots.top();
    slots.pop();
    const double done_at = free_at + d;
    slots.push(done_at);
    makespan = std::max(makespan, done_at);
    result.busy_core_seconds += d;
  }

  result.duration_s = makespan;
  return result;
}

}  // namespace deepcat::sparksim
