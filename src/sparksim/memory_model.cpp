#include "sparksim/memory_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"

namespace deepcat::sparksim {

MemoryModel::MemoryModel(const YarnAllocation& alloc,
                         const ConfigValues& config)
    : heap_mb_(alloc.heap_mb),
      overhead_mb_(alloc.overhead_mb),
      vmem_limit_mb_(alloc.vmem_limit_mb),
      container_mb_(alloc.container_mb) {
  const double fraction = config.get(KnobId::kMemoryFraction);
  const double storage_fraction = config.get(KnobId::kMemoryStorageFraction);
  usable_mb_ = std::max(0.0, (heap_mb_ - kReservedMb) * fraction);
  storage_mb_ = usable_mb_ * storage_fraction;
}

MemoryOutcome MemoryModel::evaluate(double task_working_set_mb,
                                    int concurrent_tasks,
                                    double cache_request_mb,
                                    double offheap_demand_mb,
                                    double min_mem_fraction) const {
  MemoryOutcome out;
  const int tasks = std::max(1, concurrent_tasks);

  // Storage side: cache demand beyond the storage pool is evicted. (Unified
  // memory lets storage borrow free execution memory, modeled by allowing
  // cache into the whole usable region when execution demand is light.)
  const double exec_demand =
      task_working_set_mb * static_cast<double>(tasks);
  const double exec_pool = std::max(usable_mb_ - storage_mb_, 0.0);
  double storage_available = storage_mb_;
  if (exec_demand < exec_pool) {
    storage_available += (exec_pool - exec_demand) * 0.8;
  }
  out.cache_fraction =
      cache_request_mb <= 0.0
          ? 1.0
          : common::clamp(storage_available / cache_request_mb, 0.0, 1.0);

  // Execution side: each running task gets an equal share; Spark guarantees
  // each task at least 1/(2N) and at most 1/N of the pool.
  const double cache_resident = cache_request_mb * out.cache_fraction;
  const double exec_available =
      std::max(usable_mb_ - std::min(cache_resident, storage_mb_), 1.0);
  out.exec_mem_per_task_mb = exec_available / static_cast<double>(tasks);

  // Spill: working set beyond per-task execution memory goes to disk.
  if (task_working_set_mb > out.exec_mem_per_task_mb) {
    out.spill_fraction = common::clamp(
        (task_working_set_mb - out.exec_mem_per_task_mb) /
            task_working_set_mb,
        0.0, 1.0);
  }

  // GC: pressure from live data vs heap. Squared growth mirrors how GC
  // time explodes as old-gen occupancy approaches capacity.
  const double live_mb =
      cache_resident + std::min(exec_demand, exec_available) + kReservedMb;
  const double pressure = common::clamp(live_mb / std::max(heap_mb_, 1.0),
                                        0.0, 1.5);
  out.gc_factor = 1.0 + 1.2 * pressure * pressure;

  // OOM paths.
  // (1) Java heap: a task whose minimum in-memory footprint (the stage's
  //     irreducible live share of the working set: record batches, merge
  //     or aggregation buffers) exceeds its guaranteed share risks
  //     OutOfMemoryError even with spilling.
  const double min_footprint = min_mem_fraction * task_working_set_mb;
  const double guaranteed = exec_available / (2.0 * static_cast<double>(tasks));
  double oom = 0.0;
  if (min_footprint > guaranteed) {
    oom = common::clamp(0.12 * (min_footprint / guaranteed - 1.0), 0.0, 0.9);
  }
  // (2) YARN container kill: physical container use (heap high-water +
  //     off-heap buffers) above the container, or total virtual memory
  //     above the vmem-pmem limit.
  const double physical_use = heap_mb_ * std::min(1.0, pressure + 0.15) +
                              offheap_demand_mb;
  if (physical_use > container_mb_) {
    oom = std::max(
        oom, common::clamp(0.25 * (physical_use / container_mb_ - 1.0) * 4.0,
                           0.0, 0.95));
  }
  const double vmem_use = physical_use * 1.6;  // JVM vmem over-reservation
  if (vmem_use > vmem_limit_mb_) {
    oom = std::max(
        oom, common::clamp(0.2 * (vmem_use / vmem_limit_mb_ - 1.0) * 4.0,
                           0.0, 0.95));
  }
  // A roomy off-heap overhead reservation absorbs both container-kill paths.
  const double relief = common::clamp(
      (overhead_mb_ - offheap_demand_mb) / std::max(overhead_mb_, 1.0), 0.0,
      1.0);
  out.oom_probability = oom * (1.0 - 0.5 * relief);
  return out;
}

}  // namespace deepcat::sparksim
