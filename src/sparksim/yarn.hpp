// YARN container-allocation model. Decides how many executors the Spark
// application actually gets — one of the strongest levers in the whole
// space, and the place where mis-set YARN knobs silently cap or reject a
// job exactly as they do on a real cluster.
#pragma once

#include <string>

#include "sparksim/config_space.hpp"
#include "sparksim/hardware.hpp"

namespace deepcat::sparksim {

/// Outcome of sizing the application's containers.
struct YarnAllocation {
  bool accepted = false;       ///< false => job cannot launch (oversized ask)
  std::string reject_reason;
  int executors = 0;           ///< granted executor count (cluster-wide)
  int executor_cores = 0;      ///< vcores per executor actually granted
  double container_mb = 0.0;   ///< memory granted per executor container
  double heap_mb = 0.0;        ///< JVM heap inside the container
  double overhead_mb = 0.0;    ///< off-heap overhead reservation
  double vmem_limit_mb = 0.0;  ///< virtual-memory kill threshold
};

class YarnModel {
 public:
  YarnModel(const ClusterSpec& cluster, const ConfigValues& config);

  /// Applies YARN's sizing rules to the Spark ask: round the request up to
  /// the scheduler increment, clamp to [min, max] allocation, reject asks
  /// above maximum-allocation-mb/-vcores, then fit containers per node by
  /// both NodeManager memory and vcores, capped by the physical node.
  [[nodiscard]] YarnAllocation allocate() const;

 private:
  const ClusterSpec* cluster_;
  const ConfigValues* config_;
};

}  // namespace deepcat::sparksim
