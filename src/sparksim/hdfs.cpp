#include "sparksim/hdfs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"

namespace deepcat::sparksim {

HdfsModel::HdfsModel(const ClusterSpec& cluster, const ConfigValues& config)
    : cluster_(&cluster),
      block_mb_(config.get(KnobId::kDfsBlockSizeMb)),
      replication_(config.get_int(KnobId::kDfsReplication)),
      namenode_handlers_(config.get_int(KnobId::kNamenodeHandlers)),
      datanode_handlers_(config.get_int(KnobId::kDatanodeHandlers)),
      io_buffer_kb_(config.get(KnobId::kIoFileBufferKb)) {
  if (cluster.nodes.empty()) {
    throw std::invalid_argument("HdfsModel: empty cluster");
  }
  // With R replicas over N nodes, the chance some replica of a block lives
  // on the reading node is ~min(1, R/N).
  locality_fraction_ = std::min(
      1.0, static_cast<double>(replication_) /
               static_cast<double>(cluster.num_nodes()));
}

double HdfsModel::handler_penalty(int concurrent, int handlers) const {
  const double load =
      static_cast<double>(concurrent) / std::max(1, handlers);
  // Below one client per handler there is no queueing; above it, service
  // time degrades roughly linearly with queue depth.
  return std::max(1.0, 0.35 * load + 0.65);
}

double HdfsModel::read_mbps(int concurrent_readers) const {
  if (concurrent_readers < 1) {
    throw std::invalid_argument("HdfsModel::read_mbps: readers < 1");
  }
  const NodeSpec& node = cluster_->nodes.front();

  // Disk bandwidth shared by readers co-located per node.
  const double readers_per_node = std::max(
      1.0, static_cast<double>(concurrent_readers) /
               static_cast<double>(cluster_->num_nodes()));
  double bw = node.disk_seq_mbps / readers_per_node;

  // Seek + NameNode metadata overhead per block: small blocks lose more.
  const double per_block_overhead_s =
      node.disk_seek_ms / 1000.0 +
      0.002 * handler_penalty(concurrent_readers, namenode_handlers_);
  const double transfer_s = block_mb_ / std::max(bw, 1e-6);
  bw *= transfer_s / (transfer_s + per_block_overhead_s);

  // Remote (non-local) reads traverse the network.
  const double remote = 1.0 - locality_fraction_;
  const double net_bw = node.net_mbps / std::max(1.0, readers_per_node * remote);
  const double effective_remote = std::min(bw, net_bw);
  bw = locality_fraction_ * bw + remote * effective_remote;

  // DataNode handler queueing.
  bw /= handler_penalty(concurrent_readers, datanode_handlers_);

  // Undersized stream buffer (Hadoop default 4 KB) costs syscall overhead;
  // benefit saturates past ~64 KB.
  const double buffer_eff =
      common::clamp(0.75 + 0.25 * (io_buffer_kb_ / 64.0), 0.75, 1.0);
  bw *= buffer_eff;

  return std::max(bw, 0.5);
}

double HdfsModel::write_mbps(int concurrent_writers) const {
  if (concurrent_writers < 1) {
    throw std::invalid_argument("HdfsModel::write_mbps: writers < 1");
  }
  const NodeSpec& node = cluster_->nodes.front();
  const double writers_per_node = std::max(
      1.0, static_cast<double>(concurrent_writers) /
               static_cast<double>(cluster_->num_nodes()));

  // Every replica hits a disk; total disk work scales with R. The pipeline
  // also pushes (R-1) copies over the network.
  const double disk_bw =
      node.disk_seq_mbps / (writers_per_node * static_cast<double>(replication_));
  double bw = disk_bw;
  if (replication_ > 1) {
    const double net_bw = node.net_mbps /
                          (writers_per_node * static_cast<double>(replication_ - 1));
    bw = std::min(bw, net_bw);
  }

  bw /= handler_penalty(concurrent_writers, datanode_handlers_);
  const double buffer_eff =
      common::clamp(0.75 + 0.25 * (io_buffer_kb_ / 64.0), 0.75, 1.0);
  bw *= buffer_eff;

  return std::max(bw, 0.5);
}

}  // namespace deepcat::sparksim
