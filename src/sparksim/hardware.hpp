// Hardware descriptions of the simulated clusters. Cluster-A mirrors the
// paper's physical testbed (3 nodes, 16 cores / 16 GB / 1 TB HDD / 1 GbE
// each); Cluster-B mirrors the smaller VM cluster from the hardware-
// adaptability experiment (24 total cores, 24 GB, 150 GB — paper §5.3.2).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace deepcat::sparksim {

struct NodeSpec {
  int cores = 16;
  double memory_mb = 16 * 1024.0;
  double cpu_speed = 1.0;        ///< relative per-core throughput factor
  double disk_seq_mbps = 140.0;  ///< sequential disk bandwidth
  double disk_seek_ms = 8.0;     ///< average seek latency (HDD-like)
  double net_mbps = 117.0;       ///< usable NIC bandwidth (1 GbE ~ 117 MB/s)
};

struct ClusterSpec {
  std::string name;
  std::vector<NodeSpec> nodes;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes.size(); }
  [[nodiscard]] int total_cores() const noexcept;
  [[nodiscard]] double total_memory_mb() const noexcept;
};

/// The paper's physical 3-node testbed (§4.1).
[[nodiscard]] ClusterSpec cluster_a();

/// The paper's 3-node VM cluster: 24 cores, 24 GB total, faster virtual
/// disks but fewer resources (§5.3.2).
[[nodiscard]] ClusterSpec cluster_b();

}  // namespace deepcat::sparksim
