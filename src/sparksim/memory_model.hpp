// Executor JVM memory model following Spark's unified memory manager
// (Spark 1.6+): usable = (heap - reserved) * spark.memory.fraction, split
// between storage (RDD cache) and execution (shuffle/sort/aggregation) by
// spark.memory.storageFraction. Produces the per-stage consequences the
// real system exhibits: spilling when execution memory is short, cache
// misses when storage is short, GC pressure as the heap fills, task OOM
// when a partition cannot fit even after spilling, and YARN container
// kills when off-heap use exceeds the vmem limit.
#pragma once

#include "sparksim/config_space.hpp"
#include "sparksim/yarn.hpp"

namespace deepcat::sparksim {

/// Memory consequences for one stage on one executor.
struct MemoryOutcome {
  double exec_mem_per_task_mb = 0.0;  ///< execution memory each task gets
  double spill_fraction = 0.0;        ///< fraction of task working set spilled
  double cache_fraction = 1.0;        ///< fraction of requested cache resident
  double gc_factor = 1.0;             ///< CPU-time multiplier (>= 1)
  double oom_probability = 0.0;       ///< per-task probability of fatal OOM
};

class MemoryModel {
 public:
  MemoryModel(const YarnAllocation& alloc, const ConfigValues& config);

  /// Evaluates one stage:
  ///   task_working_set_mb - deserialized per-task data (sort buffers etc.)
  ///   concurrent_tasks    - tasks sharing this executor simultaneously
  ///   cache_request_mb    - storage-cache demand on this executor
  ///   offheap_demand_mb   - network/shuffle buffers outside the heap
  ///   min_mem_fraction    - irreducible heap-resident share of the working
  ///                         set (low for spill-friendly sorts, high for
  ///                         hash aggregations / cache builds)
  [[nodiscard]] MemoryOutcome evaluate(double task_working_set_mb,
                                       int concurrent_tasks,
                                       double cache_request_mb,
                                       double offheap_demand_mb,
                                       double min_mem_fraction = 0.35) const;

  [[nodiscard]] double usable_mb() const noexcept { return usable_mb_; }
  [[nodiscard]] double storage_target_mb() const noexcept {
    return storage_mb_;
  }

  /// JVM reserved system memory (matches Spark's RESERVED_SYSTEM_MEMORY).
  static constexpr double kReservedMb = 300.0;

 private:
  double heap_mb_;
  double overhead_mb_;
  double vmem_limit_mb_;
  double container_mb_;
  double usable_mb_;
  double storage_mb_;
};

}  // namespace deepcat::sparksim
