#include "sparksim/config_space.hpp"

#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"

namespace deepcat::sparksim {

namespace {

KnobDef make(std::string name, Component comp, KnobType type, double lo,
             double hi, double def) {
  KnobDef k;
  k.name = std::move(name);
  k.component = comp;
  k.type = type;
  k.min_value = lo;
  k.max_value = hi;
  k.default_value = def;
  return k;
}

}  // namespace

ConfigSpace::ConfigSpace() {
  knobs_.resize(kNumKnobs);
  auto def = [&](KnobId id, KnobDef k) {
    knobs_[static_cast<std::size_t>(id)] = std::move(k);
  };
  using C = Component;
  using T = KnobType;

  // --- Spark. Defaults follow Spark 2.2 out-of-the-box values, which are
  // famously undersized for a 3-node/48-core cluster — that headroom is
  // exactly where the paper's 3-5x tuned speedups come from.
  def(KnobId::kExecutorInstances,
      make("spark.executor.instances", C::kSpark, T::kInt, 1, 24, 2));
  def(KnobId::kExecutorCores,
      make("spark.executor.cores", C::kSpark, T::kInt, 1, 16, 1));
  def(KnobId::kExecutorMemoryMb,
      make("spark.executor.memory", C::kSpark, T::kInt, 512, 14336, 1024));
  def(KnobId::kDriverMemoryMb,
      make("spark.driver.memory", C::kSpark, T::kInt, 512, 8192, 1024));
  def(KnobId::kMemoryOverheadMb,
      make("spark.yarn.executor.memoryOverhead", C::kSpark, T::kInt, 256,
           4096, 384));
  def(KnobId::kDefaultParallelism,
      make("spark.default.parallelism", C::kSpark, T::kInt, 8, 1000, 16));
  def(KnobId::kShuffleFileBufferKb,
      make("spark.shuffle.file.buffer", C::kSpark, T::kInt, 16, 1024, 32));
  def(KnobId::kReducerMaxSizeInFlightMb,
      make("spark.reducer.maxSizeInFlight", C::kSpark, T::kInt, 8, 128, 48));
  def(KnobId::kShuffleCompress,
      make("spark.shuffle.compress", C::kSpark, T::kBool, 0, 1, 1));
  def(KnobId::kShuffleSpillCompress,
      make("spark.shuffle.spill.compress", C::kSpark, T::kBool, 0, 1, 1));
  def(KnobId::kBroadcastCompress,
      make("spark.broadcast.compress", C::kSpark, T::kBool, 0, 1, 1));
  def(KnobId::kRddCompress,
      make("spark.rdd.compress", C::kSpark, T::kBool, 0, 1, 0));
  def(KnobId::kIoCompressionCodec,
      make("spark.io.compression.codec", C::kSpark, T::kCategorical, 0, 3, 0));
  def(KnobId::kSerializer,
      make("spark.serializer", C::kSpark, T::kCategorical, 0, 1, 0));
  def(KnobId::kKryoBufferMaxMb,
      make("spark.kryoserializer.buffer.max", C::kSpark, T::kInt, 8, 128, 64));
  def(KnobId::kMemoryFraction,
      make("spark.memory.fraction", C::kSpark, T::kDouble, 0.3, 0.9, 0.6));
  def(KnobId::kMemoryStorageFraction,
      make("spark.memory.storageFraction", C::kSpark, T::kDouble, 0.1, 0.9,
           0.5));
  def(KnobId::kLocalityWaitS,
      make("spark.locality.wait", C::kSpark, T::kDouble, 0.0, 10.0, 3.0));
  def(KnobId::kSpeculation,
      make("spark.speculation", C::kSpark, T::kBool, 0, 1, 0));
  def(KnobId::kBroadcastBlockSizeMb,
      make("spark.broadcast.blockSize", C::kSpark, T::kInt, 1, 32, 4));

  // --- YARN.
  def(KnobId::kNmMemoryMb,
      make("yarn.nodemanager.resource.memory-mb", C::kYarn, T::kInt, 4096,
           15360, 8192));
  def(KnobId::kNmVcores,
      make("yarn.nodemanager.resource.cpu-vcores", C::kYarn, T::kInt, 4, 16,
           8));
  def(KnobId::kSchedMaxAllocMb,
      make("yarn.scheduler.maximum-allocation-mb", C::kYarn, T::kInt, 1024,
           15360, 8192));
  def(KnobId::kSchedMinAllocMb,
      make("yarn.scheduler.minimum-allocation-mb", C::kYarn, T::kInt, 256,
           4096, 1024));
  def(KnobId::kSchedMaxAllocVcores,
      make("yarn.scheduler.maximum-allocation-vcores", C::kYarn, T::kInt, 1,
           16, 4));
  def(KnobId::kVmemPmemRatio,
      make("yarn.nodemanager.vmem-pmem-ratio", C::kYarn, T::kDouble, 1.0, 5.0,
           2.1));
  def(KnobId::kSchedIncrementMb,
      make("yarn.scheduler.increment-allocation-mb", C::kYarn, T::kInt, 128,
           1024, 512));

  // --- HDFS.
  def(KnobId::kDfsBlockSizeMb,
      make("dfs.blocksize", C::kHdfs, T::kInt, 32, 512, 128));
  def(KnobId::kDfsReplication,
      make("dfs.replication", C::kHdfs, T::kInt, 1, 3, 3));
  def(KnobId::kNamenodeHandlers,
      make("dfs.namenode.handler.count", C::kHdfs, T::kInt, 5, 100, 10));
  def(KnobId::kDatanodeHandlers,
      make("dfs.datanode.handler.count", C::kHdfs, T::kInt, 5, 100, 10));
  def(KnobId::kIoFileBufferKb,
      make("io.file.buffer.size", C::kHdfs, T::kInt, 4, 256, 4));
}

std::size_t ConfigSpace::count(Component c) const noexcept {
  std::size_t n = 0;
  for (const auto& k : knobs_) {
    if (k.component == c) ++n;
  }
  return n;
}

ConfigValues ConfigSpace::defaults() const {
  ConfigValues v;
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    v.set(static_cast<KnobId>(i), knobs_[i].default_value);
  }
  return v;
}

ConfigValues ConfigSpace::decode(std::span<const double> action) const {
  if (action.size() != knobs_.size()) {
    throw std::invalid_argument("ConfigSpace::decode: action dim mismatch");
  }
  ConfigValues v;
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    const KnobDef& k = knobs_[i];
    const double x = common::clamp(action[i], 0.0, 1.0);
    double value = 0.0;
    switch (k.type) {
      case KnobType::kDouble:
        value = common::lerp(k.min_value, k.max_value, x);
        break;
      case KnobType::kInt:
        value = std::round(common::lerp(k.min_value, k.max_value, x));
        break;
      case KnobType::kBool:
        value = x >= 0.5 ? 1.0 : 0.0;
        break;
      case KnobType::kCategorical: {
        const double n = k.max_value - k.min_value + 1.0;
        value = common::clamp(std::floor(x * n), 0.0, n - 1.0) + k.min_value;
        break;
      }
    }
    v.set(static_cast<KnobId>(i), value);
  }
  return v;
}

std::vector<double> ConfigSpace::encode(const ConfigValues& values) const {
  std::vector<double> action(knobs_.size());
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    const KnobDef& k = knobs_[i];
    const double v = values.get(static_cast<KnobId>(i));
    switch (k.type) {
      case KnobType::kDouble:
      case KnobType::kInt:
        action[i] = common::clamp(
            common::unlerp(k.min_value, k.max_value, v), 0.0, 1.0);
        break;
      case KnobType::kBool:
        action[i] = v >= 0.5 ? 0.75 : 0.25;  // bucket centers
        break;
      case KnobType::kCategorical: {
        const double n = k.max_value - k.min_value + 1.0;
        action[i] = ((v - k.min_value) + 0.5) / n;
        break;
      }
    }
  }
  return action;
}

KnobId ConfigSpace::id_of(std::string_view name) const {
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    if (knobs_[i].name == name) return static_cast<KnobId>(i);
  }
  throw std::out_of_range("ConfigSpace: unknown knob " + std::string(name));
}

const ConfigSpace& pipeline_space() {
  static const ConfigSpace space;
  return space;
}

}  // namespace deepcat::sparksim
