#include "sparksim/workloads.hpp"

#include <stdexcept>

namespace deepcat::sparksim {

std::string to_string(WorkloadType type) {
  switch (type) {
    case WorkloadType::kWordCount: return "WordCount";
    case WorkloadType::kTeraSort: return "TeraSort";
    case WorkloadType::kPageRank: return "PageRank";
    case WorkloadType::kKMeans: return "KMeans";
    case WorkloadType::kStreamAgg: return "StreamAgg";
    case WorkloadType::kStreamJoin: return "StreamJoin";
  }
  return "?";
}

namespace {

constexpr int kPageRankIterations = 5;
constexpr int kKMeansIterations = 5;

WorkloadSpec word_count(double gigabytes) {
  WorkloadSpec w;
  w.type = WorkloadType::kWordCount;
  w.input_mb = gigabytes * 1024.0;
  w.compressibility = 0.75;  // natural-language text compresses well
  w.java_ser_bloat = 1.5;

  StageSpec map;
  map.name = "map+combine";
  map.hdfs_read_mb = w.input_mb;
  map.cpu_ms_per_mb = 8.5;           // tokenize + local combine
  map.shuffle_write_mb = 0.06 * w.input_mb;  // combiner collapses duplicates
  map.ws_multiplier = 0.9;           // streaming aggregation, small hash map
  map.min_mem_fraction = 0.12;       // streams; only the combiner map is live
  w.stages.push_back(map);

  StageSpec reduce;
  reduce.name = "reduceByKey";
  reduce.shuffle_read_mb = map.shuffle_write_mb;
  reduce.cpu_ms_per_mb = 3.0;
  reduce.hdfs_write_mb = 0.03 * w.input_mb;
  reduce.ws_multiplier = 1.3;
  reduce.min_mem_fraction = 0.22;    // hash aggregation of word counts
  w.stages.push_back(reduce);
  return w;
}

WorkloadSpec tera_sort(double gigabytes) {
  WorkloadSpec w;
  w.type = WorkloadType::kTeraSort;
  w.input_mb = gigabytes * 1024.0;
  w.compressibility = 0.25;  // near-random keys barely compress
  w.java_ser_bloat = 1.6;

  StageSpec map;
  map.name = "range-partition";
  map.hdfs_read_mb = w.input_mb;
  map.cpu_ms_per_mb = 2.2;
  map.shuffle_write_mb = w.input_mb;  // the whole dataset moves
  map.ws_multiplier = 1.1;
  map.min_mem_fraction = 0.08;        // range partitioner streams records
  w.stages.push_back(map);

  StageSpec sort;
  sort.name = "sort+write";
  sort.shuffle_read_mb = w.input_mb;
  sort.cpu_ms_per_mb = 4.5;           // in-partition sort
  sort.hdfs_write_mb = w.input_mb;    // replicated output write
  sort.ws_multiplier = 2.4;           // sort buffers hold the partition
  sort.min_mem_fraction = 0.08;       // ExternalSorter spills to disk freely
  w.stages.push_back(sort);
  return w;
}

WorkloadSpec page_rank(double million_pages) {
  WorkloadSpec w;
  w.type = WorkloadType::kPageRank;
  w.input_mb = million_pages * 1400.0;  // HiBench edge lists, ~1.4 GB/Mpage
  w.compressibility = 0.6;
  w.java_ser_bloat = 1.9;   // linked graph structures bloat badly
  w.max_record_mb = 24.0;   // hub pages carry huge adjacency lists

  const double links_mb = 1.1 * w.input_mb;
  StageSpec load;
  load.name = "load+cache-links";
  load.hdfs_read_mb = w.input_mb;
  load.cpu_ms_per_mb = 3.5;
  load.cache_put_mb = links_mb;
  load.shuffle_write_mb = 0.45 * w.input_mb;
  load.ws_multiplier = 1.5;
  load.min_mem_fraction = 0.3;
  w.stages.push_back(load);

  for (int i = 0; i < kPageRankIterations; ++i) {
    StageSpec iter;
    iter.name = "iteration-" + std::to_string(i + 1);
    iter.shuffle_read_mb = 0.45 * w.input_mb;
    iter.cache_get_mb = links_mb;
    iter.cpu_ms_per_mb = 2.8;          // join + contribution aggregate
    iter.shuffle_write_mb = 0.45 * w.input_mb;
    iter.ws_multiplier = 1.7;          // co-grouped join buffers
    iter.min_mem_fraction = 0.3;       // both relations of the join are live
    if (i + 1 == kPageRankIterations) {
      iter.hdfs_write_mb = 0.04 * w.input_mb;  // final ranks
      iter.shuffle_write_mb = 0.0;
    }
    w.stages.push_back(iter);
  }
  return w;
}

WorkloadSpec k_means(double million_points) {
  WorkloadSpec w;
  w.type = WorkloadType::kKMeans;
  // HiBench KMeans: ~20-dim double samples, ~160 MB per million points.
  w.input_mb = million_points * 160.0;
  w.compressibility = 0.35;
  w.java_ser_bloat = 1.9;  // boxed vectors: the paper's OOM magnifier

  StageSpec load;
  load.name = "load+cache-points";
  load.hdfs_read_mb = w.input_mb;
  load.cpu_ms_per_mb = 2.0;
  load.cache_put_mb = w.input_mb;
  load.ws_multiplier = 1.2;
  w.stages.push_back(load);

  for (int i = 0; i < kKMeansIterations; ++i) {
    StageSpec iter;
    iter.name = "lloyd-iteration-" + std::to_string(i + 1);
    iter.cache_get_mb = w.input_mb;
    iter.cpu_ms_per_mb = 6.0;          // distance computation dominates
    iter.shuffle_write_mb = 0.002 * w.input_mb;  // per-centroid partial sums
    iter.broadcast_mb = 2.0;           // centroids to every executor
    iter.ws_multiplier = 1.35;         // point batches + partial aggregates
    w.stages.push_back(iter);
  }

  StageSpec write;
  write.name = "write-model";
  write.cache_get_mb = 0.02 * w.input_mb;
  write.cpu_ms_per_mb = 1.0;
  write.hdfs_write_mb = 0.01 * w.input_mb;
  w.stages.push_back(write);
  return w;
}

WorkloadSpec stream_agg(double mb_per_batch) {
  // One micro-batch of a windowed streaming aggregation: receiver ingest +
  // local pre-aggregation, then a keyed window-state update. No app
  // startup or dataset-scale caching — the per-batch DAG is intentionally
  // shallow so batch latency tracks the arrival process, not DAG depth.
  WorkloadSpec w;
  w.type = WorkloadType::kStreamAgg;
  w.input_mb = mb_per_batch;
  w.compressibility = 0.65;  // event streams (logs/metrics) compress well
  w.java_ser_bloat = 1.5;

  StageSpec ingest;
  ingest.name = "ingest+map";
  ingest.hdfs_read_mb = mb_per_batch;  // receiver input for this batch
  ingest.cpu_ms_per_mb = 3.0;          // parse + project + local combine
  ingest.shuffle_write_mb = 0.25 * mb_per_batch;  // combiner collapses keys
  ingest.ws_multiplier = 0.9;
  ingest.min_mem_fraction = 0.12;      // streaming pre-aggregation
  w.stages.push_back(ingest);

  StageSpec window;
  window.name = "window-agg";
  window.shuffle_read_mb = ingest.shuffle_write_mb;
  window.cpu_ms_per_mb = 4.5;          // merge into keyed window state
  window.hdfs_write_mb = 0.05 * mb_per_batch;  // sink: aggregated rollups
  window.ws_multiplier = 1.4;
  window.min_mem_fraction = 0.25;      // live hash state per key
  w.stages.push_back(window);
  return w;
}

WorkloadSpec stream_join(double mb_per_batch) {
  // One micro-batch of a stream-stream join: both sides ingested, one side
  // maintained as a cached state store the join probes every batch — the
  // memory-pressure magnifier of the streaming family (the KMeans analog).
  WorkloadSpec w;
  w.type = WorkloadType::kStreamJoin;
  w.input_mb = mb_per_batch;
  w.compressibility = 0.45;
  w.java_ser_bloat = 1.8;  // retained join state bloats like a graph

  const double state_mb = 0.6 * mb_per_batch;
  StageSpec ingest;
  ingest.name = "ingest-both";
  ingest.hdfs_read_mb = mb_per_batch;
  ingest.cpu_ms_per_mb = 2.5;
  ingest.shuffle_write_mb = 0.8 * mb_per_batch;  // co-partition both sides
  ingest.cache_put_mb = state_mb;                // refresh the state store
  ingest.ws_multiplier = 1.2;
  ingest.min_mem_fraction = 0.2;
  w.stages.push_back(ingest);

  StageSpec join;
  join.name = "stream-join";
  join.shuffle_read_mb = 0.8 * mb_per_batch;
  join.cache_get_mb = state_mb;        // probe the retained window
  join.cpu_ms_per_mb = 5.5;            // hash probe + emit matches
  join.hdfs_write_mb = 0.1 * mb_per_batch;
  join.ws_multiplier = 1.7;            // both relations live during probe
  join.min_mem_fraction = 0.3;
  w.stages.push_back(join);
  return w;
}

std::string size_label(WorkloadType type, double units) {
  char buf[48];
  switch (type) {
    case WorkloadType::kWordCount:
    case WorkloadType::kTeraSort:
      std::snprintf(buf, sizeof buf, "%.1fGB", units);
      break;
    case WorkloadType::kPageRank:
      std::snprintf(buf, sizeof buf, "%.1fMpages", units);
      break;
    case WorkloadType::kKMeans:
      std::snprintf(buf, sizeof buf, "%.0fMpoints", units);
      break;
    case WorkloadType::kStreamAgg:
    case WorkloadType::kStreamJoin:
      std::snprintf(buf, sizeof buf, "%.0fMB/batch", units);
      break;
  }
  return buf;
}

}  // namespace

WorkloadSpec make_workload(WorkloadType type, double input_units) {
  if (input_units <= 0.0) {
    throw std::invalid_argument("make_workload: non-positive input size");
  }
  WorkloadSpec w;
  switch (type) {
    case WorkloadType::kWordCount: w = word_count(input_units); break;
    case WorkloadType::kTeraSort: w = tera_sort(input_units); break;
    case WorkloadType::kPageRank: w = page_rank(input_units); break;
    case WorkloadType::kKMeans: w = k_means(input_units); break;
    case WorkloadType::kStreamAgg: w = stream_agg(input_units); break;
    case WorkloadType::kStreamJoin: w = stream_join(input_units); break;
  }
  w.name = to_string(type) + "(" + size_label(type, input_units) + ")";
  return w;
}

const std::vector<HiBenchCase>& hibench_suite() {
  static const std::vector<HiBenchCase> suite = [] {
    std::vector<HiBenchCase> s;
    auto add = [&](WorkloadType t, const char* prefix,
                   std::initializer_list<double> sizes) {
      int d = 1;
      for (double size : sizes) {
        s.push_back({t, d, size, std::string(prefix) + "-D" + std::to_string(d)});
        ++d;
      }
    };
    add(WorkloadType::kWordCount, "WC", {3.2, 10.0, 20.0});
    add(WorkloadType::kTeraSort, "TS", {3.2, 6.0, 10.0});
    add(WorkloadType::kPageRank, "PR", {0.5, 1.0, 1.6});
    add(WorkloadType::kKMeans, "KM", {20.0, 30.0, 40.0});
    return s;
  }();
  return suite;
}

const HiBenchCase& hibench_case(const std::string& id) {
  for (const auto& c : hibench_suite()) {
    if (c.id == id) return c;
  }
  throw std::out_of_range("hibench_case: unknown id " + id);
}

WorkloadSpec workload_for(const HiBenchCase& c) {
  return make_workload(c.type, c.input_units);
}

}  // namespace deepcat::sparksim
