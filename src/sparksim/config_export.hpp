// Export a tuned ConfigValues to the formats the real pipeline consumes:
// spark-defaults.conf lines, Hadoop *-site.xml property blocks, and
// spark-submit command-line flags. This is the hand-off surface between
// the tuner and a production deployment.
#pragma once

#include <iosfwd>
#include <string>

#include "sparksim/config_space.hpp"

namespace deepcat::sparksim {

/// Formats one knob's value the way its config file expects it
/// ("6144m" for memory, "true"/"false" for flags, codec names, ...).
[[nodiscard]] std::string format_knob_value(KnobId id, const ConfigValues& v);

/// Writes the 20 Spark knobs as spark-defaults.conf lines
/// ("spark.executor.memory 6144m").
void write_spark_defaults(std::ostream& os, const ConfigValues& v);

/// Writes the 7 YARN knobs as a yarn-site.xml <configuration> block.
void write_yarn_site_xml(std::ostream& os, const ConfigValues& v);

/// Writes the 5 HDFS knobs as an hdfs-site.xml <configuration> block.
void write_hdfs_site_xml(std::ostream& os, const ConfigValues& v);

/// Renders the Spark knobs as "--conf k=v" arguments for spark-submit.
[[nodiscard]] std::string spark_submit_flags(const ConfigValues& v);

}  // namespace deepcat::sparksim
