// End-to-end Spark job simulator: configuration in, execution result out.
// Composes the YARN allocation model, the HDFS I/O model, the executor
// memory model and the discrete-event task engine over a workload's stage
// DAG. This is the stand-in for the paper's physical 3-node cluster — see
// DESIGN.md §2 for the substitution argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparksim/config_space.hpp"
#include "sparksim/hardware.hpp"
#include "sparksim/workloads.hpp"

namespace deepcat::sparksim {

/// Per-stage accounting, exposed for tests and diagnostics.
struct StageMetrics {
  std::string name;
  int num_tasks = 0;
  double duration_s = 0.0;
  double task_cpu_s = 0.0;      ///< nominal per-task CPU component
  double task_io_s = 0.0;       ///< nominal per-task I/O component
  double spilled_mb = 0.0;
  double cache_hit_fraction = 1.0;
  double oom_probability = 0.0;
  int task_retries = 0;
  int stragglers = 0;
  int speculative_copies = 0;
};

struct ExecutionResult {
  bool success = false;
  bool oom = false;                ///< failure (or retries) caused by memory
  std::string failure_reason;
  double exec_seconds = 0.0;       ///< wall-clock of the whole application
  int executors = 0;
  int total_slots = 0;
  /// Per-node simulated `uptime` load averages, 3 values (1/5/15 min) per
  /// node, concatenated node-major: the DRL state (paper §3.1).
  std::vector<double> load_averages;
  std::vector<StageMetrics> stages;
};

/// Variant knobs for one simulated run. The defaults reproduce the classic
/// batch-application behaviour exactly; streamsim's micro-batch model runs
/// each batch as a resident application (executors already up, no driver
/// collect, scheduler overhead of a hot DAG scheduler instead of a cold
/// stage submission).
struct SimOptions {
  /// Long-running app: skip the AM/JVM startup cost and the driver-side
  /// collect (a streaming driver never funnels per-batch results).
  bool resident_app = false;
  /// Fixed per-stage submission overhead (JobSimulator::kPerStageOverheadS
  /// for cold batch stages; micro-batches on a hot scheduler pay less).
  double per_stage_overhead_s = 0.6;
};

class JobSimulator {
 public:
  explicit JobSimulator(ClusterSpec cluster);

  /// Simulates one application run. Deterministic for a given seed; pass
  /// different seeds to observe run-to-run variance.
  [[nodiscard]] ExecutionResult run(const WorkloadSpec& workload,
                                    const ConfigValues& config,
                                    std::uint64_t seed) const;

  /// Same with variant knobs; run(w, c, s) == run(w, c, s, SimOptions{}).
  [[nodiscard]] ExecutionResult run(const WorkloadSpec& workload,
                                    const ConfigValues& config,
                                    std::uint64_t seed,
                                    const SimOptions& opts) const;

  [[nodiscard]] const ClusterSpec& cluster() const noexcept {
    return cluster_;
  }

  /// Fixed startup cost: AM negotiation + executor JVM launch.
  static constexpr double kAppStartupS = 9.0;
  static constexpr double kPerStageOverheadS = 0.6;

 private:
  ClusterSpec cluster_;
};

}  // namespace deepcat::sparksim
