#include "sparksim/hardware.hpp"

namespace deepcat::sparksim {

int ClusterSpec::total_cores() const noexcept {
  int total = 0;
  for (const auto& n : nodes) total += n.cores;
  return total;
}

double ClusterSpec::total_memory_mb() const noexcept {
  double total = 0.0;
  for (const auto& n : nodes) total += n.memory_mb;
  return total;
}

ClusterSpec cluster_a() {
  NodeSpec node;
  node.cores = 16;
  node.memory_mb = 16 * 1024.0;
  node.cpu_speed = 1.0;
  node.disk_seq_mbps = 140.0;
  node.disk_seek_ms = 8.0;
  node.net_mbps = 117.0;
  return {"Cluster-A", {node, node, node}};
}

ClusterSpec cluster_b() {
  NodeSpec node;
  node.cores = 8;
  node.memory_mb = 8 * 1024.0;
  node.cpu_speed = 0.85;         // virtualization overhead
  node.disk_seq_mbps = 220.0;    // VM-backed SSD-ish storage
  node.disk_seek_ms = 1.0;
  node.net_mbps = 200.0;         // virtio network
  return {"Cluster-B", {node, node, node}};
}

}  // namespace deepcat::sparksim
