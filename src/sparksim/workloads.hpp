// The four HiBench applications the paper evaluates (Table 1), expressed
// as stage DAGs over the simulator's cost primitives. Each generator
// mirrors the real application's structure:
//   WordCount - I/O-bound map + tiny aggregated shuffle
//   TeraSort  - full-data shuffle + memory-hungry sort + replicated write
//   PageRank  - iterative join/aggregate with a cached link structure
//   KMeans    - iterative, CPU-heavy, whole-dataset cache; OOM-prone
// plus the streaming micro-batch family served by src/streamsim (input
// units are MB per micro-batch; the stage DAG describes ONE batch):
//   StreamAgg  - windowed aggregation: ingest/map + keyed window state
//   StreamJoin - stream-stream join against a cached state store
#pragma once

#include <string>
#include <vector>

namespace deepcat::sparksim {

enum class WorkloadType {
  kWordCount,
  kTeraSort,
  kPageRank,
  kKMeans,
  kStreamAgg,
  kStreamJoin,
};

[[nodiscard]] std::string to_string(WorkloadType type);

/// One Spark stage: data movement + compute demands used by the simulator.
struct StageSpec {
  std::string name;
  double hdfs_read_mb = 0.0;
  double hdfs_write_mb = 0.0;
  double shuffle_read_mb = 0.0;   ///< pre-compression logical bytes
  double shuffle_write_mb = 0.0;
  double cpu_ms_per_mb = 1.0;     ///< CPU milliseconds per MB of stage input
  double cache_put_mb = 0.0;      ///< inserted into the RDD cache
  double cache_get_mb = 0.0;      ///< read back from the cache (recompute on miss)
  double broadcast_mb = 0.0;      ///< driver-to-executor broadcast payload
  double ws_multiplier = 1.2;     ///< working set per task vs its input share
  /// Fraction of the working set that MUST be heap-resident even with full
  /// spilling. Sort-like stages stream through ExternalSorter and need only
  /// buffers (~0.1); hash aggregations and cache builds hold live object
  /// graphs (~0.35) — the paper's KMeans OOM behaviour comes from here.
  double min_mem_fraction = 0.35;

  /// Bytes a task of this stage pulls through (drives task count & time).
  [[nodiscard]] double input_mb() const noexcept {
    return hdfs_read_mb + shuffle_read_mb + cache_get_mb;
  }
};

struct WorkloadSpec {
  WorkloadType type = WorkloadType::kWordCount;
  std::string name;            ///< e.g. "TeraSort(3.2GB)"
  double input_mb = 0.0;       ///< raw dataset size on HDFS
  double compressibility = 0.5;///< 0 = incompressible, 1 = trivially compressible
  double java_ser_bloat = 1.6; ///< in-memory object bloat with the Java serializer
  double max_record_mb = 1.0;  ///< largest single record (Kryo buffer hazard)
  std::vector<StageSpec> stages;
};

/// Builds a workload in the unit the paper's Table 1 uses:
///   WordCount / TeraSort: gigabytes,
///   PageRank: millions of pages,
///   KMeans: millions of points,
///   StreamAgg / StreamJoin: MB per micro-batch (one batch's stage DAG).
[[nodiscard]] WorkloadSpec make_workload(WorkloadType type,
                                         double input_units);

/// One (workload, dataset) pair of the paper's 12-case evaluation grid.
struct HiBenchCase {
  WorkloadType type;
  int dataset_index;      ///< 1..3 (D1..D3)
  double input_units;     ///< Table 1 value
  std::string id;         ///< e.g. "TS-D1"
};

/// All 12 workload-input pairs from Table 1, ordered WC, TS, PR, KM.
[[nodiscard]] const std::vector<HiBenchCase>& hibench_suite();

/// Lookup by id ("WC-D2"); throws std::out_of_range if unknown.
[[nodiscard]] const HiBenchCase& hibench_case(const std::string& id);

/// Convenience: workload spec for a suite case.
[[nodiscard]] WorkloadSpec workload_for(const HiBenchCase& c);

}  // namespace deepcat::sparksim
