// Discrete-event task scheduler: runs one stage's tasks over the granted
// executor slots in waves, with log-normal task-duration jitter, straggler
// injection, data-locality waits, and optional speculative re-execution —
// the mechanisms that make wall-clock stage time a non-linear function of
// parallelism on a real cluster.
#pragma once

#include "common/rng.hpp"

namespace deepcat::sparksim {

struct TaskEngineConfig {
  int slots = 1;                  ///< total concurrent task slots (execs * cores)
  int num_nodes = 3;
  bool speculation = false;       ///< spark.speculation
  double locality_wait_s = 3.0;   ///< spark.locality.wait
  double local_fraction = 1.0;    ///< share of tasks with node-local input
  double remote_penalty_s = 0.0;  ///< extra time for a rack/any-local task
  double jitter_sigma = 0.12;     ///< log-normal sigma on task durations
  double straggler_prob = 0.03;   ///< chance a task runs 1.5-2.2x long
  double schedule_overhead_s = 0.01;  ///< per-task driver-side latency
};

struct StageRunResult {
  double duration_s = 0.0;         ///< stage wall-clock
  double busy_core_seconds = 0.0;  ///< total slot-seconds consumed
  int num_tasks = 0;
  int stragglers = 0;
  int speculative_copies = 0;      ///< extra attempts launched by speculation
};

/// Simulates a stage of `num_tasks` tasks whose nominal duration is
/// `base_task_s`. Deterministic given the Rng state.
[[nodiscard]] StageRunResult run_stage(int num_tasks, double base_task_s,
                                       const TaskEngineConfig& config,
                                       common::Rng& rng);

}  // namespace deepcat::sparksim
