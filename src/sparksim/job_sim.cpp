#include "sparksim/job_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "sparksim/hdfs.hpp"
#include "sparksim/memory_model.hpp"
#include "sparksim/task_engine.hpp"
#include "sparksim/yarn.hpp"

namespace deepcat::sparksim {

namespace {

/// Compression codec characteristics (ratio on fully compressible data,
/// CPU cost per MB compressed or decompressed).
struct CodecProps {
  double ratio;
  double cpu_ms_per_mb;
};

CodecProps codec_props(Codec codec) {
  switch (codec) {
    case Codec::kLz4: return {0.55, 1.1};
    case Codec::kLzf: return {0.62, 1.4};
    case Codec::kSnappy: return {0.58, 1.0};
    case Codec::kZstd: return {0.42, 3.0};
  }
  return {1.0, 0.0};
}

/// Serializer characteristics: CPU per MB serialized/deserialized, on-wire
/// size factor, and whether the workload's in-memory bloat factor applies.
struct SerializerProps {
  double cpu_ms_per_mb;
  double size_factor;
};

SerializerProps serializer_props(Serializer s) {
  switch (s) {
    case Serializer::kJava: return {8.0, 1.0};
    case Serializer::kKryo: return {4.0, 0.70};
  }
  return {8.0, 1.0};
}

double compressed_size(double mb, Codec codec, double compressibility) {
  const CodecProps p = codec_props(codec);
  return mb * (1.0 - compressibility * (1.0 - p.ratio));
}

constexpr double kMemoryReadMbps = 2000.0;  ///< cache-hit scan rate
constexpr double kFetchRoundTripS = 0.02;   ///< shuffle fetch chunk latency

}  // namespace

JobSimulator::JobSimulator(ClusterSpec cluster) : cluster_(std::move(cluster)) {}

ExecutionResult JobSimulator::run(const WorkloadSpec& workload,
                                  const ConfigValues& config,
                                  std::uint64_t seed) const {
  return run(workload, config, seed, SimOptions{});
}

ExecutionResult JobSimulator::run(const WorkloadSpec& workload,
                                  const ConfigValues& config,
                                  std::uint64_t seed,
                                  const SimOptions& opts) const {
  common::Rng rng(seed);
  ExecutionResult result;

  // --- Resource negotiation.
  const YarnAllocation alloc = YarnModel(cluster_, config).allocate();
  if (!alloc.accepted) {
    result.failure_reason = alloc.reject_reason;
    result.load_averages.assign(cluster_.num_nodes() * 3, 0.1);
    return result;
  }
  result.executors = alloc.executors;
  const int slots = alloc.executors * alloc.executor_cores;
  result.total_slots = slots;

  const HdfsModel hdfs(cluster_, config);
  const MemoryModel memory(alloc, config);
  const NodeSpec& node = cluster_.nodes.front();
  const auto num_nodes = static_cast<double>(cluster_.num_nodes());

  const Serializer ser = config.serializer();
  const SerializerProps ser_props = serializer_props(ser);
  const Codec codec = config.codec();
  const CodecProps codec_cpu = codec_props(codec);
  // In-memory object bloat: Java serialization keeps fat object graphs;
  // Kryo-serialized caching stays close to binary size.
  const double mem_bloat =
      ser == Serializer::kJava ? workload.java_ser_bloat : 1.15;

  // Kryo buffer overflow: a record larger than kryoserializer.buffer.max
  // kills its task deterministically (KryoException), failing the stage
  // after Spark's 4 attempts.
  const bool kryo_overflow =
      ser == Serializer::kKryo &&
      config.get(KnobId::kKryoBufferMaxMb) < workload.max_record_mb;

  const bool shuffle_compress = config.get_bool(KnobId::kShuffleCompress);
  const bool spill_compress = config.get_bool(KnobId::kShuffleSpillCompress);
  const bool broadcast_compress = config.get_bool(KnobId::kBroadcastCompress);
  const bool rdd_compress = config.get_bool(KnobId::kRddCompress);
  const double inflight_mb =
      config.get(KnobId::kReducerMaxSizeInFlightMb);
  const double file_buffer_kb = config.get(KnobId::kShuffleFileBufferKb);
  // Small shuffle-file buffers force frequent flushes & syscalls.
  const double write_buffer_eff =
      common::clamp(0.70 + 0.30 * (file_buffer_kb / 128.0), 0.70, 1.05);

  double elapsed = opts.resident_app ? 0.0 : kAppStartupS;
  double busy_core_seconds = 0.0;

  const int parallelism = config.get_int(KnobId::kDefaultParallelism);

  for (const StageSpec& stage : workload.stages) {
    StageMetrics metrics;
    metrics.name = stage.name;

    // --- Task layout.
    int tasks;
    if (stage.hdfs_read_mb > 0.0) {
      tasks = static_cast<int>(
          std::ceil(stage.hdfs_read_mb / hdfs.block_size_mb()));
    } else {
      tasks = parallelism;
    }
    tasks = std::max(tasks, 1);
    metrics.num_tasks = tasks;
    // Contention is driven by the AVERAGE number of concurrently running
    // tasks over the stage (tasks / wave count), not by the peak slot
    // count — a final ragged wave does not thrash disks for the whole
    // stage. Keeps more-slots >= fewer-slots monotone.
    const int peak = std::min(slots, tasks);
    const int waves = static_cast<int>(common::ceil_div(
        static_cast<std::size_t>(tasks), static_cast<std::size_t>(slots)));
    const int active = std::max(1, tasks / std::max(1, waves));
    const int concurrent_per_exec = std::max(
        1, peak / std::max(1, alloc.executors));
    const double active_per_node = std::max(1.0, static_cast<double>(active) / num_nodes);

    const double input_per_task =
        stage.input_mb() / static_cast<double>(tasks);

    // --- Memory consequences.
    const double working_set = input_per_task * stage.ws_multiplier * mem_bloat;
    const double cache_demand_total =
        std::max(stage.cache_put_mb, stage.cache_get_mb) *
        (rdd_compress ? compressed_size(1.0, codec, workload.compressibility)
                      : mem_bloat);
    const double cache_per_exec =
        cache_demand_total / std::max(1, alloc.executors);
    const double offheap_mb =
        64.0 + inflight_mb * concurrent_per_exec * 0.6 +
        file_buffer_kb / 1024.0 * concurrent_per_exec * 4.0;
    const MemoryOutcome mem =
        memory.evaluate(working_set, concurrent_per_exec, cache_per_exec,
                        offheap_mb, stage.min_mem_fraction);
    metrics.cache_hit_fraction = mem.cache_fraction;

    // --- Per-task CPU.
    double cpu_s = input_per_task * stage.cpu_ms_per_mb / 1000.0;
    // Ser/deser of shuffled data.
    const double shuffle_logical_per_task =
        (stage.shuffle_read_mb + stage.shuffle_write_mb) /
        static_cast<double>(tasks);
    cpu_s += shuffle_logical_per_task * ser_props.cpu_ms_per_mb / 1000.0;
    // Compression CPU on shuffled bytes.
    const double shuffle_wire_write =
        shuffle_compress
            ? compressed_size(stage.shuffle_write_mb * ser_props.size_factor,
                              codec, workload.compressibility)
            : stage.shuffle_write_mb * ser_props.size_factor;
    const double shuffle_wire_read =
        shuffle_compress
            ? compressed_size(stage.shuffle_read_mb * ser_props.size_factor,
                              codec, workload.compressibility)
            : stage.shuffle_read_mb * ser_props.size_factor;
    if (shuffle_compress) {
      cpu_s += (shuffle_wire_write + shuffle_wire_read) /
               static_cast<double>(tasks) * codec_cpu.cpu_ms_per_mb / 1000.0;
    }
    // Decompress cached blocks on access.
    if (rdd_compress && stage.cache_get_mb > 0.0) {
      cpu_s += stage.cache_get_mb / static_cast<double>(tasks) *
               codec_cpu.cpu_ms_per_mb / 1000.0;
    }
    cpu_s *= mem.gc_factor / node.cpu_speed;
    metrics.task_cpu_s = cpu_s;

    // --- Per-task I/O.
    double io_s = 0.0;
    if (stage.hdfs_read_mb > 0.0) {
      io_s += input_per_task / hdfs.read_mbps(active);
    }
    if (stage.cache_get_mb > 0.0) {
      const double per_task_cache =
          stage.cache_get_mb / static_cast<double>(tasks);
      const double hit = mem.cache_fraction;
      io_s += per_task_cache * hit / kMemoryReadMbps;
      // Cache miss: MEMORY_AND_DISK persistence falls back to the local
      // disk copy (sequential re-read) plus a light deserialization pass.
      const double miss_mb = per_task_cache * (1.0 - hit);
      if (miss_mb > 0.0) {
        io_s += miss_mb / (node.disk_seq_mbps / active_per_node);
        cpu_s += miss_mb * 0.8 / 1000.0 * mem.gc_factor;
      }
    }
    if (stage.shuffle_read_mb > 0.0) {
      const double per_task = shuffle_wire_read / static_cast<double>(tasks);
      const double net_rate = node.net_mbps / active_per_node;
      const double disk_rate = node.disk_seq_mbps / active_per_node;
      io_s += per_task / std::min(net_rate, disk_rate);
      // Fetch round trips limited by reducer.maxSizeInFlight.
      io_s += std::ceil(per_task / std::max(inflight_mb, 1.0)) *
              kFetchRoundTripS;
    }
    if (stage.shuffle_write_mb > 0.0) {
      const double per_task = shuffle_wire_write / static_cast<double>(tasks);
      const double disk_rate =
          node.disk_seq_mbps / active_per_node * write_buffer_eff;
      io_s += per_task / disk_rate;
    }
    // Spill: excess working set cycles to disk and back.
    if (mem.spill_fraction > 0.0) {
      double spill_mb = mem.spill_fraction * input_per_task *
                        stage.ws_multiplier * ser_props.size_factor;
      if (spill_compress) {
        spill_mb = compressed_size(spill_mb, codec, workload.compressibility);
        cpu_s += spill_mb * codec_cpu.cpu_ms_per_mb / 1000.0;
      }
      const double disk_rate =
          node.disk_seq_mbps / active_per_node * write_buffer_eff;
      io_s += 2.0 * spill_mb / disk_rate;  // write + read back
      metrics.spilled_mb = spill_mb * static_cast<double>(tasks);
    }
    if (stage.hdfs_write_mb > 0.0) {
      const double per_task =
          stage.hdfs_write_mb / static_cast<double>(tasks);
      io_s += per_task / (hdfs.write_mbps(active) * write_buffer_eff);
    }
    metrics.task_io_s = io_s;

    const double base_task_s = cpu_s + io_s;

    // --- Schedule the stage.
    TaskEngineConfig engine;
    engine.slots = slots;
    engine.num_nodes = static_cast<int>(cluster_.num_nodes());
    engine.speculation = config.get_bool(KnobId::kSpeculation);
    engine.locality_wait_s = config.get(KnobId::kLocalityWaitS);
    engine.local_fraction =
        stage.hdfs_read_mb > 0.0 ? hdfs.locality_fraction() : 0.85;
    engine.remote_penalty_s =
        stage.hdfs_read_mb > 0.0
            ? 0.4 * input_per_task / (node.net_mbps / active_per_node)
            : 0.1 * base_task_s;
    const StageRunResult run = run_stage(tasks, base_task_s, engine, rng);
    metrics.duration_s = run.duration_s;
    metrics.stragglers = run.stragglers;
    metrics.speculative_copies = run.speculative_copies;

    // --- Broadcast (once per executor, pipelined over the network).
    double stage_time = run.duration_s + opts.per_stage_overhead_s;
    if (stage.broadcast_mb > 0.0) {
      const double payload =
          broadcast_compress
              ? compressed_size(stage.broadcast_mb, codec,
                                workload.compressibility)
              : stage.broadcast_mb;
      const double block_mb = config.get(KnobId::kBroadcastBlockSizeMb);
      // BitTorrent-style distribution: cost grows with log(executors) and
      // with per-block latency for tiny blocks.
      const double blocks = std::max(1.0, payload / block_mb);
      stage_time +=
          payload / node.net_mbps *
              std::log2(2.0 + static_cast<double>(alloc.executors)) +
          blocks * 0.003;
    }

    // --- Failure paths.
    double task_failure_prob = mem.oom_probability;
    if (kryo_overflow &&
        (stage.shuffle_write_mb > 0.0 || stage.cache_put_mb > 0.0)) {
      task_failure_prob = std::max(task_failure_prob, 0.9);
    }
    metrics.oom_probability = task_failure_prob;
    if (task_failure_prob > 0.0) {
      // Expected retries lengthen the stage; Spark aborts after a task
      // fails 4 consecutive attempts.
      const double expected_retries =
          static_cast<double>(tasks) * task_failure_prob;
      const int retries = static_cast<int>(
          std::floor(expected_retries + rng.uniform()));
      metrics.task_retries = retries;
      stage_time += static_cast<double>(std::min(retries, tasks)) *
                    base_task_s /
                    std::max(1.0, static_cast<double>(slots) * 0.5);
      const double p4 = std::pow(task_failure_prob, 4.0);
      const double stage_abort_prob = common::clamp(
          static_cast<double>(tasks) * p4, 0.0, 0.98);
      if (rng.bernoulli(stage_abort_prob)) {
        elapsed += stage_time * 2.5;  // attempts before the abort surfaced
        result.oom = true;
        result.failure_reason = "stage " + stage.name +
                                " aborted: task failed 4 times (OOM)";
        result.exec_seconds = elapsed;
        result.stages.push_back(metrics);
        result.load_averages.assign(cluster_.num_nodes() * 3, 0.5);
        return result;
      }
    }

    elapsed += stage_time;
    busy_core_seconds += run.busy_core_seconds;
    result.stages.push_back(metrics);
  }

  // --- Driver-side collect: results funnel through spark.driver.memory.
  // A resident streaming app never collects per batch.
  const double collect_mb = std::max(50.0, 0.004 * workload.input_mb);
  const double driver_mb = config.get(KnobId::kDriverMemoryMb);
  if (!opts.resident_app && collect_mb * mem_bloat > 0.5 * driver_mb) {
    const double p = common::clamp(
        0.3 * (collect_mb * mem_bloat / (0.5 * driver_mb) - 1.0), 0.0, 0.9);
    if (rng.bernoulli(p)) {
      result.oom = true;
      result.failure_reason = "driver OOM collecting results";
      result.exec_seconds = elapsed * 1.2;
      result.load_averages.assign(cluster_.num_nodes() * 3, 0.5);
      return result;
    }
  }

  // --- Run-to-run noise.
  elapsed *= std::exp(rng.normal(0.0, 0.03));

  // --- Simulated `uptime` load averages (the DRL state).
  result.load_averages.reserve(cluster_.num_nodes() * 3);
  const double util_cores =
      busy_core_seconds / std::max(elapsed, 1.0) / num_nodes;
  for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
    const double base = 0.15 + 0.1 * rng.uniform();
    const double l1 = base + util_cores * (1.0 + 0.08 * rng.normal());
    const double l5 = base + util_cores * (0.92 + 0.05 * rng.normal());
    const double l15 = base + util_cores * (0.85 + 0.05 * rng.normal());
    result.load_averages.push_back(std::max(0.0, l1));
    result.load_averages.push_back(std::max(0.0, l5));
    result.load_averages.push_back(std::max(0.0, l15));
  }

  result.success = true;
  result.exec_seconds = elapsed;
  return result;
}

}  // namespace deepcat::sparksim
