#include "sparksim/environment.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace deepcat::sparksim {

std::string to_string(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kJobCompletionSeconds: return "job_completion_seconds";
    case ObjectiveKind::kBatchLatencyP95: return "batch_latency_p95";
  }
  return "?";
}

TuningEnvironment::TuningEnvironment(ClusterSpec cluster,
                                     WorkloadSpec workload, EnvOptions options)
    : cluster_(std::move(cluster)),
      workload_(std::move(workload)),
      options_(options),
      sim_(cluster_),
      rng_(options.seed),
      best_time_(std::numeric_limits<double>::infinity()) {
  if (options_.target_speedup <= 0.0) {
    throw std::invalid_argument("EnvOptions: target_speedup must be > 0");
  }
}

std::vector<double> TuningEnvironment::reset() {
  const ConfigValues defaults = pipeline_space().defaults();
  ExecutionResult r = sim_.run(workload_, defaults, rng_());
  // The default configuration is conservative: it may be slow but always
  // completes (tiny executors never overcommit). Guard anyway.
  if (!r.success) {
    throw std::logic_error(
        "TuningEnvironment: default configuration failed: " +
        r.failure_reason);
  }
  default_time_ = r.exec_seconds;
  eval_seconds_ += r.exec_seconds;
  ++evals_;
  if (r.exec_seconds < best_time_) {
    best_time_ = r.exec_seconds;
    best_config_ = defaults;
  }
  return normalize_state(r);
}

double TuningEnvironment::reward_for(double exec_seconds) const noexcept {
  const double perf_e = expected_time();
  return (perf_e - exec_seconds) / perf_e;
}

StepResult TuningEnvironment::step(std::span<const double> action) {
  if (default_time_ <= 0.0) {
    throw std::logic_error("TuningEnvironment::step before reset()");
  }
  return evaluate(pipeline_space().decode(action));
}

StepResult TuningEnvironment::evaluate(const ConfigValues& config) {
  if (default_time_ <= 0.0) {
    throw std::logic_error("TuningEnvironment::evaluate before reset()");
  }
  ExecutionResult r = sim_.run(workload_, config, rng_());

  StepResult out;
  out.success = r.success;
  out.oom = r.oom;
  // Tuning cost is the time actually burned: a failed attempt stops when
  // the job aborts. The REWARD, however, scores a failure as if the job
  // had taken failure_penalty_factor x the default time — the paper
  // treats OOM configurations as the worst transitions, and an agent must
  // never learn that failing fast is cheap.
  out.exec_seconds = r.exec_seconds;
  const double scored_seconds =
      r.success ? r.exec_seconds
                : std::max(r.exec_seconds,
                           options_.failure_penalty_factor * default_time_);
  out.reward = reward_for(scored_seconds);
  out.state = normalize_state(r);

  eval_seconds_ += out.exec_seconds;
  ++evals_;
  if (r.success && r.exec_seconds < best_time_) {
    best_time_ = r.exec_seconds;
    best_config_ = config;
  }
  return out;
}

std::vector<double> TuningEnvironment::normalize_state(
    const ExecutionResult& result) const {
  std::vector<double> state = result.load_averages;
  const double cores = static_cast<double>(cluster_.nodes.front().cores);
  for (double& x : state) x /= cores;
  state.resize(cluster_.num_nodes() * 3, 0.0);

  if (options_.extended_state) {
    const auto total_cores = static_cast<double>(cluster_.total_cores());
    double spilled = 0.0, cache_hit = 0.0, retries = 0.0;
    for (const auto& s : result.stages) {
      spilled += s.spilled_mb;
      cache_hit += s.cache_hit_fraction;
      retries += s.task_retries;
    }
    const double num_stages =
        static_cast<double>(std::max<std::size_t>(result.stages.size(), 1));
    state.push_back(static_cast<double>(result.executors) / total_cores);
    state.push_back(static_cast<double>(result.total_slots) / total_cores);
    state.push_back(
        std::min(1.0, spilled / std::max(workload_.input_mb, 1.0)));
    state.push_back(cache_hit / num_stages);
    state.push_back(std::min(1.0, retries / 32.0));
  }
  return state;
}

}  // namespace deepcat::sparksim
