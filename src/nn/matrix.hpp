// Row-major dense matrix of doubles: the numeric workhorse under the NN
// library and the Gaussian-process regressor. BLAS-free by design (offline
// build); the GEMM entry points dispatch to the register-blocked AVX2+FMA
// micro-kernels in common/simd.hpp (scalar fallback always available), so
// the actor/critic updates run as fast as the host allows.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace deepcat::nn {

class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);
  /// Filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value);
  /// From nested initializer list; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// 1 x n row vector view of a span.
  static Matrix row_vector(std::span<const double> values);
  /// n x 1 column vector.
  static Matrix col_vector(std::span<const double> values);
  /// n x n identity.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<double> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }

  /// Mutable/const view of one row.
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  void fill(double value) noexcept;
  void set_zero() noexcept { fill(0.0); }

  /// In-place element-wise operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;

  [[nodiscard]] Matrix transposed() const;

  /// Frobenius norm.
  [[nodiscard]] double norm() const noexcept;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] Matrix operator+(Matrix a, const Matrix& b);
[[nodiscard]] Matrix operator-(Matrix a, const Matrix& b);
[[nodiscard]] Matrix operator*(Matrix a, double s);
[[nodiscard]] Matrix operator*(double s, Matrix a);

/// C = A * B (register-blocked, SIMD-dispatched). Dimension mismatch throws.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A^T * B without materializing A^T.
[[nodiscard]] Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A * B^T without materializing B^T.
[[nodiscard]] Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// Element-wise nonlinearity applied in a GEMM epilogue / activation layer.
enum class Activation { kNone, kRelu, kTanh, kSigmoid };

/// Fused dense-layer forward: act(x * w + bias) in one pass. The bias row
/// (1 x w.cols()) seeds the accumulators, so no intermediate x*w or
/// bias-broadcast matrix is ever materialized.
[[nodiscard]] Matrix matmul_bias_act(const Matrix& x, const Matrix& w,
                                     const Matrix& bias, Activation act);

/// y = act(y) element-wise, in place.
void apply_activation(Matrix& y, Activation act) noexcept;

/// grad *= act'(y) element-wise, where `y` is the activation OUTPUT (all
/// supported activations have output-expressible derivatives).
void apply_activation_grad(Matrix& grad, const Matrix& y,
                           Activation act) noexcept;

/// Element-wise (Hadamard) product.
[[nodiscard]] Matrix hadamard(const Matrix& a, const Matrix& b);

/// Adds row vector `bias` (1 x cols) to every row of `m` in place.
void add_row_broadcast(Matrix& m, const Matrix& bias);

/// Column-wise sum producing a 1 x cols row vector.
[[nodiscard]] Matrix col_sums(const Matrix& m);

}  // namespace deepcat::nn
