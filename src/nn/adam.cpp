#include "nn/adam.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/simd.hpp"

namespace deepcat::nn {

Adam::Adam(std::vector<Param> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->rows(), p.value->cols());
    v_.emplace_back(p.value->rows(), p.value->cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  std::vector<common::simd::AdamTensor> tensors;
  tensors.reserve(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    tensors.push_back({params_[i].value->data(), params_[i].grad->data(),
                       m_[i].data(), v_[i].data(), params_[i].value->size()});
  }
  common::simd::adam_update_clipped(tensors.data(), tensors.size(),
                                    config_.grad_clip, config_.beta1,
                                    config_.beta2, bc1, bc2, config_.lr,
                                    config_.eps);
}

void Adam::restore_state(const std::vector<Matrix>& m,
                         const std::vector<Matrix>& v,
                         std::size_t step_count) {
  if (m.size() != m_.size() || v.size() != v_.size()) {
    throw std::runtime_error("Adam::restore_state: tensor count mismatch");
  }
  for (std::size_t i = 0; i < m_.size(); ++i) {
    if (m[i].rows() != m_[i].rows() || m[i].cols() != m_[i].cols() ||
        v[i].rows() != v_[i].rows() || v[i].cols() != v_[i].cols()) {
      throw std::runtime_error("Adam::restore_state: shape mismatch");
    }
  }
  m_ = m;
  v_ = v;
  t_ = step_count;
}

void Adam::save(std::ostream& os) const {
  os << t_ << ' ' << m_.size() << '\n';
  os.precision(17);
  for (std::size_t i = 0; i < m_.size(); ++i) {
    os << m_[i].rows() << ' ' << m_[i].cols() << '\n';
    for (double x : m_[i].flat()) os << x << ' ';
    os << '\n';
    for (double x : v_[i].flat()) os << x << ' ';
    os << '\n';
  }
}

void Adam::load(std::istream& is) {
  std::size_t t = 0, count = 0;
  is >> t >> count;
  if (count != m_.size()) {
    throw std::runtime_error("Adam::load: moment tensor count mismatch");
  }
  for (std::size_t i = 0; i < m_.size(); ++i) {
    std::size_t r = 0, c = 0;
    is >> r >> c;
    if (r != m_[i].rows() || c != m_[i].cols()) {
      throw std::runtime_error("Adam::load: shape mismatch");
    }
    for (double& x : m_[i].flat()) is >> x;
    for (double& x : v_[i].flat()) is >> x;
  }
  if (!is) throw std::runtime_error("Adam::load: truncated stream");
  t_ = t;
}

}  // namespace deepcat::nn
