#include "nn/adam.hpp"

#include <cmath>

#include "common/simd.hpp"

namespace deepcat::nn {

Adam::Adam(std::vector<Param> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->rows(), p.value->cols());
    v_.emplace_back(p.value->rows(), p.value->cols());
  }
}

void Adam::step() {
  ++t_;
  double scale = 1.0;
  if (config_.grad_clip > 0.0) {
    double sq = 0.0;
    for (const auto& p : params_) {
      sq += common::simd::sum_squares(p.grad->data(), p.grad->size());
    }
    const double norm = std::sqrt(sq);
    if (norm > config_.grad_clip) scale = config_.grad_clip / norm;
  }
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    common::simd::adam_update(params_[i].value->data(),
                              params_[i].grad->data(), m_[i].data(),
                              v_[i].data(), params_[i].value->size(), scale,
                              config_.beta1, config_.beta2, bc1, bc2,
                              config_.lr, config_.eps);
  }
}

}  // namespace deepcat::nn
