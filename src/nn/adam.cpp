#include "nn/adam.hpp"

#include <cmath>

namespace deepcat::nn {

Adam::Adam(std::vector<Param> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->rows(), p.value->cols());
    v_.emplace_back(p.value->rows(), p.value->cols());
  }
}

void Adam::step() {
  ++t_;
  double scale = 1.0;
  if (config_.grad_clip > 0.0) {
    double sq = 0.0;
    for (const auto& p : params_) {
      for (double g : p.grad->flat()) sq += g * g;
    }
    const double norm = std::sqrt(sq);
    if (norm > config_.grad_clip) scale = config_.grad_clip / norm;
  }
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& value = *params_[i].value;
    const auto& grad = *params_[i].grad;
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t k = 0; k < value.size(); ++k) {
      const double g = grad.flat()[k] * scale;
      m.flat()[k] = config_.beta1 * m.flat()[k] + (1.0 - config_.beta1) * g;
      v.flat()[k] = config_.beta2 * v.flat()[k] + (1.0 - config_.beta2) * g * g;
      const double m_hat = m.flat()[k] / bc1;
      const double v_hat = v.flat()[k] / bc2;
      value.flat()[k] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.eps);
    }
  }
}

}  // namespace deepcat::nn
