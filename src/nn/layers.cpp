#include "nn/layers.hpp"

#include <cmath>

#include "nn/init.hpp"

namespace deepcat::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features,
               common::Rng& rng, Init init)
    : w_(in_features, out_features),
      b_(1, out_features),
      gw_(in_features, out_features),
      gb_(1, out_features) {
  switch (init) {
    case Init::kKaiming: kaiming_uniform(w_, rng); break;
    case Init::kXavier: xavier_uniform(w_, rng); break;
    case Init::kSmallUniform: uniform_init(w_, rng, 3e-3); break;
  }
}

Matrix Linear::forward(const Matrix& x) {
  input_cache_ = x;
  Matrix y = matmul(x, w_);
  add_row_broadcast(y, b_);
  return y;
}

Matrix Linear::backward(const Matrix& grad_out) {
  gw_ += matmul_tn(input_cache_, grad_out);
  gb_ += col_sums(grad_out);
  return matmul_nt(grad_out, w_);
}

std::vector<Param> Linear::params() {
  return {{"w", &w_, &gw_}, {"b", &b_, &gb_}};
}

void Linear::zero_grad() {
  gw_.set_zero();
  gb_.set_zero();
}

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(*this);
  copy->input_cache_ = Matrix{};
  return copy;
}

Matrix ReLU::forward(const Matrix& x) {
  input_cache_ = x;
  Matrix y = x;
  for (double& v : y.flat()) v = v > 0.0 ? v : 0.0;
  return y;
}

Matrix ReLU::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (input_cache_.flat()[i] <= 0.0) g.flat()[i] = 0.0;
  }
  return g;
}

std::unique_ptr<Layer> ReLU::clone() const {
  return std::make_unique<ReLU>();
}

Matrix Tanh::forward(const Matrix& x) {
  Matrix y = x;
  for (double& v : y.flat()) v = std::tanh(v);
  output_cache_ = y;
  return y;
}

Matrix Tanh::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const double y = output_cache_.flat()[i];
    g.flat()[i] *= 1.0 - y * y;
  }
  return g;
}

std::unique_ptr<Layer> Tanh::clone() const {
  return std::make_unique<Tanh>();
}

Matrix Sigmoid::forward(const Matrix& x) {
  Matrix y = x;
  for (double& v : y.flat()) v = 1.0 / (1.0 + std::exp(-v));
  output_cache_ = y;
  return y;
}

Matrix Sigmoid::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const double y = output_cache_.flat()[i];
    g.flat()[i] *= y * (1.0 - y);
  }
  return g;
}

std::unique_ptr<Layer> Sigmoid::clone() const {
  return std::make_unique<Sigmoid>();
}

}  // namespace deepcat::nn
