#include "nn/layers.hpp"

#include <cmath>

#include "nn/init.hpp"

namespace deepcat::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features,
               common::Rng& rng, Init init)
    : w_(in_features, out_features),
      b_(1, out_features),
      gw_(in_features, out_features),
      gb_(1, out_features) {
  switch (init) {
    case Init::kKaiming: kaiming_uniform(w_, rng); break;
    case Init::kXavier: xavier_uniform(w_, rng); break;
    case Init::kSmallUniform: uniform_init(w_, rng, 3e-3); break;
  }
}

Matrix Linear::forward(const Matrix& x) {
  return forward_fused(x, Activation::kNone);
}

Matrix Linear::forward_fused(const Matrix& x, Activation act) {
  input_cache_ = x;
  return matmul_bias_act(x, w_, b_, act);
}

Matrix Linear::backward(const Matrix& grad_out) {
  gw_ += matmul_tn(input_cache_, grad_out);
  gb_ += col_sums(grad_out);
  return matmul_nt(grad_out, w_);
}

std::vector<Param> Linear::params() {
  return {{"w", &w_, &gw_}, {"b", &b_, &gb_}};
}

void Linear::zero_grad() {
  gw_.set_zero();
  gb_.set_zero();
}

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(*this);
  copy->input_cache_ = Matrix{};
  return copy;
}

Matrix ActivationLayer::forward(const Matrix& x) {
  Matrix y = x;
  apply_activation(y, kind());
  output_cache_ = y;
  return y;
}

Matrix ActivationLayer::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  apply_activation_grad(g, output_cache_, kind());
  return g;
}

std::unique_ptr<Layer> ReLU::clone() const {
  return std::make_unique<ReLU>();
}

std::unique_ptr<Layer> Tanh::clone() const {
  return std::make_unique<Tanh>();
}

std::unique_ptr<Layer> Sigmoid::clone() const {
  return std::make_unique<Sigmoid>();
}

}  // namespace deepcat::nn
