// Dense layers with explicit forward/backward passes. Batches are
// row-major: x is (batch x features). Each layer caches what it needs for
// the backward pass, so forward() must precede backward() on the same batch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace deepcat::nn {

/// One named parameter tensor paired with its gradient accumulator.
struct Param {
  std::string name;
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
};

/// Abstract differentiable layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// y = f(x); caches activations needed by backward().
  virtual Matrix forward(const Matrix& x) = 0;

  /// Given dL/dy, accumulates parameter gradients and returns dL/dx.
  virtual Matrix backward(const Matrix& grad_out) = 0;

  /// Parameter/gradient handles (empty for activations).
  virtual std::vector<Param> params() { return {}; }

  virtual void zero_grad() {}

  /// Deep copy (weights included, caches excluded).
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Fully connected layer: y = x W + b, W is (in x out), b is (1 x out).
class Linear final : public Layer {
 public:
  enum class Init { kKaiming, kXavier, kSmallUniform };

  Linear(std::size_t in_features, std::size_t out_features, common::Rng& rng,
         Init init = Init::kKaiming);

  Matrix forward(const Matrix& x) override;
  /// Fused act(x W + b) in one kernel pass (no intermediate pre-activation
  /// matrix). Caches x for backward exactly like forward(); the caller is
  /// responsible for priming the downstream activation layer's cache with
  /// the returned output (see Mlp::forward).
  Matrix forward_fused(const Matrix& x, Activation act);
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param> params() override;
  void zero_grad() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Linear"; }

  [[nodiscard]] std::size_t in_features() const noexcept { return w_.rows(); }
  [[nodiscard]] std::size_t out_features() const noexcept { return w_.cols(); }
  [[nodiscard]] const Matrix& weights() const noexcept { return w_; }
  [[nodiscard]] Matrix& weights() noexcept { return w_; }
  [[nodiscard]] const Matrix& bias() const noexcept { return b_; }
  [[nodiscard]] Matrix& bias() noexcept { return b_; }

 private:
  Matrix w_, b_, gw_, gb_, input_cache_;
};

/// Base for element-wise activations. All supported activations have
/// derivatives expressible in terms of their OUTPUT, so backward only needs
/// the output cache — which lets Mlp::forward fuse the preceding Linear's
/// GEMM with the activation and install the fused result directly via
/// prime_from_output().
class ActivationLayer : public Layer {
 public:
  [[nodiscard]] virtual Activation kind() const noexcept = 0;

  Matrix forward(const Matrix& x) final;
  Matrix backward(const Matrix& grad_out) final;

  /// Installs an already-activated output as this layer's backward cache
  /// (the fused forward path computed it inside the GEMM epilogue).
  void prime_from_output(const Matrix& y) { output_cache_ = y; }

 private:
  Matrix output_cache_;
};

/// Rectified linear unit.
class ReLU final : public ActivationLayer {
 public:
  [[nodiscard]] Activation kind() const noexcept override {
    return Activation::kRelu;
  }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }
};

/// Hyperbolic tangent; used on actor outputs before mapping to [0,1].
class Tanh final : public ActivationLayer {
 public:
  [[nodiscard]] Activation kind() const noexcept override {
    return Activation::kTanh;
  }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }
};

/// Logistic sigmoid; maps actor outputs directly onto the [0,1] knob cube.
class Sigmoid final : public ActivationLayer {
 public:
  [[nodiscard]] Activation kind() const noexcept override {
    return Activation::kSigmoid;
  }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Sigmoid"; }
};

}  // namespace deepcat::nn
