// Dense layers with explicit forward/backward passes. Batches are
// row-major: x is (batch x features). Each layer caches what it needs for
// the backward pass, so forward() must precede backward() on the same batch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace deepcat::nn {

/// One named parameter tensor paired with its gradient accumulator.
struct Param {
  std::string name;
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
};

/// Abstract differentiable layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// y = f(x); caches activations needed by backward().
  virtual Matrix forward(const Matrix& x) = 0;

  /// Given dL/dy, accumulates parameter gradients and returns dL/dx.
  virtual Matrix backward(const Matrix& grad_out) = 0;

  /// Parameter/gradient handles (empty for activations).
  virtual std::vector<Param> params() { return {}; }

  virtual void zero_grad() {}

  /// Deep copy (weights included, caches excluded).
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Fully connected layer: y = x W + b, W is (in x out), b is (1 x out).
class Linear final : public Layer {
 public:
  enum class Init { kKaiming, kXavier, kSmallUniform };

  Linear(std::size_t in_features, std::size_t out_features, common::Rng& rng,
         Init init = Init::kKaiming);

  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param> params() override;
  void zero_grad() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Linear"; }

  [[nodiscard]] std::size_t in_features() const noexcept { return w_.rows(); }
  [[nodiscard]] std::size_t out_features() const noexcept { return w_.cols(); }
  [[nodiscard]] const Matrix& weights() const noexcept { return w_; }
  [[nodiscard]] Matrix& weights() noexcept { return w_; }
  [[nodiscard]] const Matrix& bias() const noexcept { return b_; }
  [[nodiscard]] Matrix& bias() noexcept { return b_; }

 private:
  Matrix w_, b_, gw_, gb_, input_cache_;
};

/// Rectified linear unit.
class ReLU final : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Matrix input_cache_;
};

/// Hyperbolic tangent; used on actor outputs before mapping to [0,1].
class Tanh final : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }

 private:
  Matrix output_cache_;
};

/// Logistic sigmoid; maps actor outputs directly onto the [0,1] knob cube.
class Sigmoid final : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Sigmoid"; }

 private:
  Matrix output_cache_;
};

}  // namespace deepcat::nn
