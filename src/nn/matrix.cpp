#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/simd.hpp"

namespace deepcat::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::row_vector(std::span<const double> values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::col_vector(std::span<const double> values) {
  Matrix m(values.size(), 1);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

namespace {
void require_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string("Matrix ") + op +
                                ": shape mismatch");
  }
}
}  // namespace

Matrix& Matrix::operator+=(const Matrix& other) {
  require_same_shape(*this, other, "+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require_same_shape(*this, other, "-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  // Cache-blocked: both the source row walk and the destination column
  // walk stay inside one 32x32 tile (8 KiB working set) at a time.
  constexpr std::size_t kTile = 32;
  for (std::size_t r0 = 0; r0 < rows_; r0 += kTile) {
    const std::size_t r_end = std::min(rows_, r0 + kTile);
    for (std::size_t c0 = 0; c0 < cols_; c0 += kTile) {
      const std::size_t c_end = std::min(cols_, c0 + kTile);
      for (std::size_t r = r0; r < r_end; ++r) {
        const double* src = data_.data() + r * cols_;
        for (std::size_t c = c0; c < c_end; ++c) {
          t.data_[c * rows_ + r] = src[c];
        }
      }
    }
  }
  return t;
}

double Matrix::norm() const noexcept {
  return std::sqrt(common::simd::sum_squares(data_.data(), data_.size()));
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimension mismatch");
  }
  Matrix c(a.rows(), b.cols());
  common::simd::gemm_nn(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                        b.data(), b.cols(), c.data(), c.cols());
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_tn: inner dimension mismatch");
  }
  Matrix c(a.cols(), b.cols());
  common::simd::gemm_tn(a.cols(), b.cols(), a.rows(), a.data(), a.cols(),
                        b.data(), b.cols(), c.data(), c.cols());
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_nt: inner dimension mismatch");
  }
  Matrix c(a.rows(), b.rows());
  common::simd::gemm_nt(a.rows(), b.rows(), a.cols(), a.data(), a.cols(),
                        b.data(), b.cols(), c.data(), c.cols());
  return c;
}

Matrix matmul_bias_act(const Matrix& x, const Matrix& w, const Matrix& bias,
                       Activation act) {
  if (x.cols() != w.rows()) {
    throw std::invalid_argument("matmul_bias_act: inner dimension mismatch");
  }
  if (bias.rows() != 1 || bias.cols() != w.cols()) {
    throw std::invalid_argument("matmul_bias_act: bias shape mismatch");
  }
  Matrix c(x.rows(), w.cols());
  // Seed every output row with the bias so the GEMM accumulates on top of
  // it — the broadcast costs one streaming write instead of a second pass.
  for (std::size_t r = 0; r < c.rows(); ++r) {
    std::copy(bias.row(0).begin(), bias.row(0).end(), c.row(r).begin());
  }
  common::simd::gemm_nn(x.rows(), w.cols(), x.cols(), x.data(), x.cols(),
                        w.data(), w.cols(), c.data(), c.cols());
  apply_activation(c, act);
  return c;
}

void apply_activation(Matrix& y, Activation act) noexcept {
  switch (act) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      for (double& v : y.flat()) v = v > 0.0 ? v : 0.0;
      break;
    case Activation::kTanh:
      for (double& v : y.flat()) v = std::tanh(v);
      break;
    case Activation::kSigmoid:
      for (double& v : y.flat()) v = 1.0 / (1.0 + std::exp(-v));
      break;
  }
}

void apply_activation_grad(Matrix& grad, const Matrix& y,
                           Activation act) noexcept {
  switch (act) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      for (std::size_t i = 0; i < grad.size(); ++i) {
        if (y.flat()[i] <= 0.0) grad.flat()[i] = 0.0;
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < grad.size(); ++i) {
        const double v = y.flat()[i];
        grad.flat()[i] *= 1.0 - v * v;
      }
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < grad.size(); ++i) {
        const double v = y.flat()[i];
        grad.flat()[i] *= v * (1.0 - v);
      }
      break;
  }
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  require_same_shape(a, b, "hadamard");
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c.flat()[i] *= b.flat()[i];
  return c;
}

void add_row_broadcast(Matrix& m, const Matrix& bias) {
  if (bias.rows() != 1 || bias.cols() != m.cols()) {
    throw std::invalid_argument("add_row_broadcast: bias shape mismatch");
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias(0, c);
  }
}

Matrix col_sums(const Matrix& m) {
  Matrix s(1, m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) s(0, c) += row[c];
  }
  return s;
}

}  // namespace deepcat::nn
