#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deepcat::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::row_vector(std::span<const double> values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::col_vector(std::span<const double> values) {
  Matrix m(values.size(), 1);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

namespace {
void require_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string("Matrix ") + op +
                                ": shape mismatch");
  }
}
}  // namespace

Matrix& Matrix::operator+=(const Matrix& other) {
  require_same_shape(*this, other, "+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require_same_shape(*this, other, "-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::norm() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimension mismatch");
  }
  Matrix c(a.rows(), b.cols());
  // ikj loop order: streams through b and c rows, friendly to row-major.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* crow = c.data() + i * c.cols();
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data() + k * b.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_tn: inner dimension mismatch");
  }
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.data() + k * a.cols();
    const double* brow = b.data() + k * b.cols();
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.data() + i * c.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_nt: inner dimension mismatch");
  }
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.data() + i * a.cols();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.data() + j * b.cols();
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += arow[k] * brow[k];
      c(i, j) = s;
    }
  }
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  require_same_shape(a, b, "hadamard");
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c.flat()[i] *= b.flat()[i];
  return c;
}

void add_row_broadcast(Matrix& m, const Matrix& bias) {
  if (bias.rows() != 1 || bias.cols() != m.cols()) {
    throw std::invalid_argument("add_row_broadcast: bias shape mismatch");
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias(0, c);
  }
}

Matrix col_sums(const Matrix& m) {
  Matrix s(1, m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) s(0, c) += row[c];
  }
  return s;
}

}  // namespace deepcat::nn
