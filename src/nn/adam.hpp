// Adam optimizer (Kingma & Ba, 2015) over a set of Param handles.
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/layers.hpp"

namespace deepcat::nn {

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  /// Optional global gradient-norm clip; 0 disables clipping.
  double grad_clip = 0.0;
};

class Adam {
 public:
  /// Binds to the given parameters; the Param pointers must outlive the
  /// optimizer (they point into the network's layers).
  explicit Adam(std::vector<Param> params, AdamConfig config = {});

  /// Applies one update using the gradients currently accumulated in the
  /// bound parameters, then leaves gradients untouched (call zero_grad on
  /// the network afterwards / before the next backward).
  void step();

  [[nodiscard]] const AdamConfig& config() const noexcept { return config_; }
  void set_lr(double lr) noexcept { config_.lr = lr; }
  [[nodiscard]] std::size_t step_count() const noexcept { return t_; }

  /// First/second moment estimates, one Matrix per bound parameter tensor,
  /// in binding order. Exposed (with restore_state) so checkpoints can
  /// round-trip the optimizer: dropping the moments makes a reloaded agent
  /// fine-tune differently from a never-saved one.
  [[nodiscard]] const std::vector<Matrix>& first_moments() const noexcept {
    return m_;
  }
  [[nodiscard]] const std::vector<Matrix>& second_moments() const noexcept {
    return v_;
  }

  /// Overwrites the moment vectors and step counter. Shapes must match the
  /// bound parameters exactly (throws std::runtime_error otherwise).
  void restore_state(const std::vector<Matrix>& m, const std::vector<Matrix>& v,
                     std::size_t step_count);

  /// Writes/reads the optimizer state (step counter + both moment vectors)
  /// as a flat text stream, shape-checked on load, same style as Mlp.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::vector<Param> params_;
  std::vector<Matrix> m_, v_;
  AdamConfig config_;
  std::size_t t_ = 0;
};

}  // namespace deepcat::nn
