#include "nn/init.hpp"

#include <cmath>

namespace deepcat::nn {

namespace {
void fill_uniform(Matrix& w, common::Rng& rng, double bound) {
  for (double& x : w.flat()) x = rng.uniform(-bound, bound);
}
}  // namespace

void kaiming_uniform(Matrix& w, common::Rng& rng) {
  const double fan_in = static_cast<double>(w.rows());
  fill_uniform(w, rng, std::sqrt(6.0 / fan_in));
}

void xavier_uniform(Matrix& w, common::Rng& rng) {
  const double fan_sum = static_cast<double>(w.rows() + w.cols());
  fill_uniform(w, rng, std::sqrt(6.0 / fan_sum));
}

void uniform_init(Matrix& w, common::Rng& rng, double bound) {
  fill_uniform(w, rng, bound);
}

}  // namespace deepcat::nn
