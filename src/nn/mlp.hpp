// Multi-layer perceptron container plus the target-network utilities
// (soft updates, hard copies) that DDPG/TD3 need.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "nn/layers.hpp"

namespace deepcat::nn {

/// Output squashing applied after the last Linear layer.
enum class OutputActivation { kNone, kTanh, kSigmoid };

/// Sequential stack of layers with convenience builders for the DRL nets.
class Mlp {
 public:
  Mlp() = default;

  /// Builds Linear+ReLU hidden stack, final Linear (small-uniform init) and
  /// optional squashing. `dims` = {in, h1, ..., out}; needs >= 2 entries.
  Mlp(const std::vector<std::size_t>& dims, common::Rng& rng,
      OutputActivation out_act = OutputActivation::kNone);

  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&&) noexcept = default;
  Mlp& operator=(Mlp&&) noexcept = default;

  [[nodiscard]] Matrix forward(const Matrix& x);
  /// Backward through the whole stack; returns dL/dx.
  Matrix backward(const Matrix& grad_out);

  void zero_grad();
  [[nodiscard]] std::vector<Param> params();

  /// Single-sample convenience: forward on a 1 x n input.
  [[nodiscard]] std::vector<double> forward_one(std::span<const double> x);

  /// this = tau * src + (1 - tau) * this, parameter-wise. Shapes must match.
  void soft_update_from(Mlp& src, double tau);
  /// this = src (hard copy of parameters).
  void copy_params_from(Mlp& src);

  /// Total scalar parameter count.
  [[nodiscard]] std::size_t num_parameters();

  /// Writes/reads parameters as a flat text stream (shape-checked on load).
  void save(std::ostream& os);
  void load(std::istream& is);

  [[nodiscard]] std::size_t num_layers() const noexcept {
    return layers_.size();
  }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Mean-squared-error loss over a batch: L = mean((pred - target)^2).
/// Returns the loss and writes dL/dpred into `grad`.
[[nodiscard]] double mse_loss(const Matrix& pred, const Matrix& target,
                              Matrix& grad);

}  // namespace deepcat::nn
