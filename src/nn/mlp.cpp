#include "nn/mlp.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace deepcat::nn {

Mlp::Mlp(const std::vector<std::size_t>& dims, common::Rng& rng,
         OutputActivation out_act) {
  if (dims.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output dims");
  }
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = i + 2 == dims.size();
    layers_.push_back(std::make_unique<Linear>(
        dims[i], dims[i + 1], rng,
        last ? Linear::Init::kSmallUniform : Linear::Init::kKaiming));
    if (!last) {
      layers_.push_back(std::make_unique<ReLU>());
    }
  }
  switch (out_act) {
    case OutputActivation::kNone: break;
    case OutputActivation::kTanh: layers_.push_back(std::make_unique<Tanh>()); break;
    case OutputActivation::kSigmoid:
      layers_.push_back(std::make_unique<Sigmoid>());
      break;
  }
}

Mlp::Mlp(const Mlp& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this == &other) return *this;
  Mlp tmp(other);
  layers_ = std::move(tmp.layers_);
  return *this;
}

Matrix Mlp::forward(const Matrix& x) {
  Matrix y = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    // Fuse Linear -> activation pairs into one kernel pass: the activation
    // runs in the GEMM epilogue and the pre-activation matrix is never
    // materialized. The activation layer only needs its output cached for
    // backward, which the fused result provides directly.
    auto* linear = dynamic_cast<Linear*>(layers_[i].get());
    auto* act = linear && i + 1 < layers_.size()
                    ? dynamic_cast<ActivationLayer*>(layers_[i + 1].get())
                    : nullptr;
    if (linear && act) {
      y = linear->forward_fused(y, act->kind());
      act->prime_from_output(y);
      ++i;
    } else {
      y = layers_[i]->forward(y);
    }
  }
  return y;
}

Matrix Mlp::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Mlp::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::vector<Param> Mlp::params() {
  std::vector<Param> all;
  for (auto& layer : layers_) {
    for (auto& p : layer->params()) all.push_back(p);
  }
  return all;
}

std::vector<double> Mlp::forward_one(std::span<const double> x) {
  const Matrix y = forward(Matrix::row_vector(x));
  return {y.flat().begin(), y.flat().end()};
}

void Mlp::soft_update_from(Mlp& src, double tau) {
  auto dst_params = params();
  auto src_params = src.params();
  if (dst_params.size() != src_params.size()) {
    throw std::invalid_argument("soft_update_from: layer structure mismatch");
  }
  for (std::size_t i = 0; i < dst_params.size(); ++i) {
    Matrix& d = *dst_params[i].value;
    const Matrix& s = *src_params[i].value;
    if (d.rows() != s.rows() || d.cols() != s.cols()) {
      throw std::invalid_argument("soft_update_from: shape mismatch");
    }
    for (std::size_t k = 0; k < d.size(); ++k) {
      d.flat()[k] = tau * s.flat()[k] + (1.0 - tau) * d.flat()[k];
    }
  }
}

void Mlp::copy_params_from(Mlp& src) { soft_update_from(src, 1.0); }

std::size_t Mlp::num_parameters() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.value->size();
  return n;
}

void Mlp::save(std::ostream& os) {
  auto ps = params();
  os << ps.size() << '\n';
  os.precision(17);
  for (const auto& p : ps) {
    os << p.value->rows() << ' ' << p.value->cols() << '\n';
    for (double v : p.value->flat()) os << v << ' ';
    os << '\n';
  }
}

void Mlp::load(std::istream& is) {
  auto ps = params();
  std::size_t count = 0;
  is >> count;
  if (count != ps.size()) {
    throw std::runtime_error("Mlp::load: parameter tensor count mismatch");
  }
  for (auto& p : ps) {
    std::size_t r = 0, c = 0;
    is >> r >> c;
    if (r != p.value->rows() || c != p.value->cols()) {
      throw std::runtime_error("Mlp::load: shape mismatch");
    }
    for (double& v : p.value->flat()) is >> v;
  }
  if (!is) throw std::runtime_error("Mlp::load: truncated stream");
}

double mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad) {
  if (pred.rows() != target.rows() || pred.cols() != target.cols()) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  grad = Matrix(pred.rows(), pred.cols());
  double loss = 0.0;
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double diff = pred.flat()[i] - target.flat()[i];
    loss += diff * diff;
    grad.flat()[i] = 2.0 * diff * inv_n;
  }
  return loss * inv_n;
}

}  // namespace deepcat::nn
