// Weight initialization schemes for the dense layers.
#pragma once

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace deepcat::nn {

/// Kaiming-uniform for ReLU networks: U(-b, b), b = sqrt(6 / fan_in).
void kaiming_uniform(Matrix& w, common::Rng& rng);

/// Xavier/Glorot-uniform for tanh networks: b = sqrt(6 / (fan_in+fan_out)).
void xavier_uniform(Matrix& w, common::Rng& rng);

/// Plain uniform U(-bound, bound); DDPG/TD3 conventionally initialize the
/// final layer with a small bound (3e-3) so initial actions are near zero.
void uniform_init(Matrix& w, common::Rng& rng, double bound);

}  // namespace deepcat::nn
