// High-level public API: one object that owns a cluster description, a
// DeepCAT tuner, and the environment plumbing. A downstream user's whole
// integration is:
//
//   deepcat::core::DeepCat dc(deepcat::sparksim::cluster_a());
//   dc.train_offline(make_workload(WorkloadType::kTeraSort, 3.2), 2000);
//   auto report = dc.tune_online(make_workload(WorkloadType::kPageRank, 1.0),
//                                {.max_steps = 5});
//   use(report.best_config);
//
// The lower-level pieces (tuners::DeepCatTuner, sparksim::TuningEnvironment)
// remain available for research-grade control.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sparksim/environment.hpp"
#include "sparksim/hardware.hpp"
#include "sparksim/workloads.hpp"
#include "streamsim/workloads.hpp"
#include "tuners/deepcat.hpp"

namespace deepcat::core {

struct DeepCatApiOptions {
  tuners::DeepCatOptions tuner;
  sparksim::EnvOptions env;   ///< reward/target-speedup/penalty settings
};

class DeepCat {
 public:
  explicit DeepCat(sparksim::ClusterSpec cluster,
                   DeepCatApiOptions options = {});

  /// Offline stage against a "standard environment" running `workload`.
  /// Returns the iteration trace (rewards, twin-Q values, costs).
  std::vector<tuners::OfflineIterationRecord> train_offline(
      const sparksim::WorkloadSpec& workload, std::size_t iterations);

  /// Online stage for a fresh tuning request. Each call builds a new
  /// environment (fresh seed) and fine-tunes the shared offline model.
  tuners::TuningReport tune_online(const sparksim::WorkloadSpec& workload,
                                   const tuners::TuneBudget& budget);

  /// Like tune_online but against a different (e.g. new) cluster — the
  /// hardware-adaptability scenario of paper §5.3.2.
  tuners::TuningReport tune_online_on(const sparksim::ClusterSpec& cluster,
                                      const sparksim::WorkloadSpec& workload,
                                      const tuners::TuneBudget& budget);

  /// Streaming: one long session against a phase-shifted micro-batch
  /// environment (budget.max_steps = evaluation windows). The same shared
  /// model fine-tunes across the load shifts — there is no restart.
  tuners::TuningReport tune_online_stream(
      const sparksim::ClusterSpec& cluster,
      const streamsim::StreamCase& stream_case,
      const tuners::TuneBudget& budget);

  [[nodiscard]] tuners::DeepCatTuner& tuner() noexcept { return tuner_; }
  [[nodiscard]] const sparksim::ClusterSpec& cluster() const noexcept {
    return cluster_;
  }
  [[nodiscard]] const DeepCatApiOptions& api_options() const noexcept {
    return options_;
  }

  /// The seed the next environment will be built from. Checkpointed so a
  /// reloaded instance draws the same environment sequence as one that was
  /// never serialized.
  [[nodiscard]] std::uint64_t next_env_seed() const noexcept {
    return next_env_seed_;
  }
  void set_next_env_seed(std::uint64_t seed) noexcept {
    next_env_seed_ = seed;
  }

  /// Persists / restores the trained networks.
  void save_model(std::ostream& os);
  void load_model(std::istream& is);

 private:
  sparksim::ClusterSpec cluster_;
  DeepCatApiOptions options_;
  tuners::DeepCatTuner tuner_;
  std::uint64_t next_env_seed_;
};

}  // namespace deepcat::core
