#include "core/deepcat_api.hpp"

#include "streamsim/environment.hpp"

namespace deepcat::core {

DeepCat::DeepCat(sparksim::ClusterSpec cluster, DeepCatApiOptions options)
    : cluster_(std::move(cluster)),
      options_(options),
      tuner_(options.tuner),
      next_env_seed_(options.env.seed) {}

std::vector<tuners::OfflineIterationRecord> DeepCat::train_offline(
    const sparksim::WorkloadSpec& workload, std::size_t iterations) {
  sparksim::EnvOptions env_options = options_.env;
  env_options.seed = next_env_seed_++;
  sparksim::TuningEnvironment env(cluster_, workload, env_options);
  return tuner_.train_offline(env, iterations);
}

tuners::TuningReport DeepCat::tune_online(
    const sparksim::WorkloadSpec& workload, const tuners::TuneBudget& budget) {
  return tune_online_on(cluster_, workload, budget);
}

tuners::TuningReport DeepCat::tune_online_on(
    const sparksim::ClusterSpec& cluster,
    const sparksim::WorkloadSpec& workload, const tuners::TuneBudget& budget) {
  sparksim::EnvOptions env_options = options_.env;
  env_options.seed = next_env_seed_++;
  sparksim::TuningEnvironment env(cluster, workload, env_options);
  return tuner_.tune_with_budget(env, budget);
}

tuners::TuningReport DeepCat::tune_online_stream(
    const sparksim::ClusterSpec& cluster,
    const streamsim::StreamCase& stream_case,
    const tuners::TuneBudget& budget) {
  sparksim::EnvOptions env_options = options_.env;
  env_options.seed = next_env_seed_++;
  streamsim::StreamEnvironment env(cluster, stream_case, env_options);
  return tuner_.tune_with_budget(env, budget);
}

void DeepCat::save_model(std::ostream& os) { tuner_.save(os); }

void DeepCat::load_model(std::istream& is) { tuner_.load(is); }

}  // namespace deepcat::core
