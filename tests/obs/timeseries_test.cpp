// TimeSeriesRegistry unit tests: stride-doubling fold semantics, the
// determinism contract (state is a pure function of the append prefix),
// the compact JSONL / nested JSON writers, the points-string round trip,
// and the sparkline renderer the stats CLI uses.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeseries.hpp"

namespace deepcat::obs {
namespace {

TEST(ObsTimeSeriesTest, AppendsAtStrideOneUntilCapacity) {
  TimeSeriesRegistry registry(8);
  for (int i = 0; i < 8; ++i) {
    registry.append("s", static_cast<double>(i));
  }
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  const TimeSeriesSnapshot& s = snaps[0];
  EXPECT_EQ(s.name, "s");
  EXPECT_EQ(s.total, 8u);
  EXPECT_EQ(s.stride, 1u);
  ASSERT_EQ(s.points.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(s.points[i].index, i);
    EXPECT_EQ(s.points[i].count, 1u);
    EXPECT_DOUBLE_EQ(s.points[i].last, static_cast<double>(i));
  }
}

TEST(ObsTimeSeriesTest, FoldDoublesStrideAndMergesPairs) {
  TimeSeriesRegistry registry(4);
  for (int i = 0; i < 5; ++i) {
    registry.append("s", static_cast<double>(i));
  }
  const auto s = registry.snapshot()[0];
  EXPECT_EQ(s.total, 5u);
  EXPECT_EQ(s.stride, 2u);
  // 0..3 folded into two sealed pairs, then 4 starts a fresh point.
  ASSERT_EQ(s.points.size(), 3u);
  EXPECT_EQ(s.points[0].count, 2u);
  EXPECT_DOUBLE_EQ(s.points[0].sum, 1.0);   // 0 + 1
  EXPECT_DOUBLE_EQ(s.points[0].min, 0.0);
  EXPECT_DOUBLE_EQ(s.points[0].max, 1.0);
  EXPECT_DOUBLE_EQ(s.points[0].last, 1.0);  // later sample wins
  EXPECT_EQ(s.points[1].count, 2u);
  EXPECT_DOUBLE_EQ(s.points[1].sum, 5.0);   // 2 + 3
  EXPECT_EQ(s.points[2].count, 1u);
  EXPECT_DOUBLE_EQ(s.points[2].last, 4.0);
}

TEST(ObsTimeSeriesTest, MemoryStaysBoundedOverLongStreams) {
  TimeSeriesRegistry registry(16);
  for (int i = 0; i < 100000; ++i) {
    registry.append("s", static_cast<double>(i % 97));
  }
  const auto s = registry.snapshot()[0];
  EXPECT_EQ(s.total, 100000u);
  EXPECT_LE(s.points.size(), 16u);
  // Commutative stats survive every fold exactly.
  std::uint64_t count = 0;
  for (const TimeSeriesPoint& p : s.points) count += p.count;
  EXPECT_EQ(count, 100000u);
  EXPECT_DOUBLE_EQ(s.points.back().last, static_cast<double>(99999 % 97));
}

TEST(ObsTimeSeriesTest, StateIsPureFunctionOfAppendPrefix) {
  // Same appends -> identical snapshot, regardless of when it is taken
  // relative to other series' traffic (the TSER determinism contract).
  TimeSeriesRegistry a(8);
  TimeSeriesRegistry b(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = std::sin(static_cast<double>(i));
    a.append("x", v);
    b.append("noise", static_cast<double>(i));
    b.append("x", v);
  }
  const auto sa = a.snapshot()[0];
  auto sbs = b.snapshot();
  ASSERT_EQ(sbs.size(), 2u);
  const auto& sb = sbs[1];  // name-sorted: "noise" < "x"
  EXPECT_EQ(sb.name, "x");
  EXPECT_EQ(sa.stride, sb.stride);
  ASSERT_EQ(sa.points.size(), sb.points.size());
  for (std::size_t i = 0; i < sa.points.size(); ++i) {
    EXPECT_EQ(sa.points[i].index, sb.points[i].index);
    EXPECT_EQ(sa.points[i].count, sb.points[i].count);
    EXPECT_DOUBLE_EQ(sa.points[i].sum, sb.points[i].sum);
    EXPECT_DOUBLE_EQ(sa.points[i].last, sb.points[i].last);
  }
}

TEST(ObsTimeSeriesTest, NonFiniteValuesRecordAsZero) {
  TimeSeriesRegistry registry(4);
  registry.append("s", std::numeric_limits<double>::quiet_NaN());
  registry.append("s", std::numeric_limits<double>::infinity());
  const auto s = registry.snapshot()[0];
  EXPECT_DOUBLE_EQ(s.points[0].sum, 0.0);
  EXPECT_DOUBLE_EQ(s.points[1].last, 0.0);
}

TEST(ObsTimeSeriesTest, SnapshotIsNameSorted) {
  TimeSeriesRegistry registry(4);
  registry.append("zeta", 1.0);
  registry.append("alpha", 2.0);
  registry.append("mid", 3.0);
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "alpha");
  EXPECT_EQ(snaps[1].name, "mid");
  EXPECT_EQ(snaps[2].name, "zeta");
}

TEST(ObsTimeSeriesTest, ConcurrentAppendsLoseNothing) {
  TimeSeriesRegistry registry(32);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      const std::string name = "t" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        registry.append(name, 1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), static_cast<std::size_t>(kThreads));
  for (const auto& s : snaps) {
    EXPECT_EQ(s.total, static_cast<std::uint64_t>(kPerThread));
    double sum = 0.0;
    for (const TimeSeriesPoint& p : s.points) sum += p.sum;
    EXPECT_DOUBLE_EQ(sum, static_cast<double>(kPerThread));
  }
}

TEST(ObsTimeSeriesTest, JsonlWriterEmitsHeaderThenFlatLines) {
  TimeSeriesRegistry registry(4);
  registry.append("a", 1.5);
  registry.append("a", 2.5);
  registry.append("b", -1.0);
  std::ostringstream os;
  write_timeseries_jsonl(os, registry.snapshot());
  const std::string text = os.str();
  std::istringstream lines(text);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "{\"tser\":1,\"series\":2}");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(line.find("\"points\":\""), std::string::npos);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"name\":\"b\""), std::string::npos);
  EXPECT_FALSE(std::getline(lines, line));
}

TEST(ObsTimeSeriesTest, PointsStringRoundTrips) {
  TimeSeriesRegistry registry(8);
  for (int i = 0; i < 23; ++i) {
    registry.append("s", 0.125 * static_cast<double>(i) - 1.0);
  }
  const auto before = registry.snapshot()[0];
  std::ostringstream os;
  write_timeseries_jsonl(os, {before});
  // Pull the "points" string back out of the flat line.
  const std::string text = os.str();
  const std::string key = "\"points\":\"";
  const std::size_t start = text.find(key) + key.size();
  const std::size_t end = text.find('"', start);
  const auto points = parse_timeseries_points(text.substr(start, end - start));
  ASSERT_EQ(points.size(), before.points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, before.points[i].index);
    EXPECT_EQ(points[i].count, before.points[i].count);
    EXPECT_DOUBLE_EQ(points[i].sum, before.points[i].sum);
    EXPECT_DOUBLE_EQ(points[i].min, before.points[i].min);
    EXPECT_DOUBLE_EQ(points[i].max, before.points[i].max);
    EXPECT_DOUBLE_EQ(points[i].last, before.points[i].last);
  }
}

TEST(ObsTimeSeriesTest, ParseRejectsMalformedPoints) {
  EXPECT_THROW((void)parse_timeseries_points("1,2,3"), std::invalid_argument);
  EXPECT_THROW((void)parse_timeseries_points("a,b,c,d,e,f"),
               std::invalid_argument);
}

TEST(ObsTimeSeriesTest, NestedJsonHasSeriesArray) {
  TimeSeriesRegistry registry(4);
  registry.append("a", 1.0);
  std::ostringstream os;
  write_timeseries_json(os, registry.snapshot());
  const std::string text = os.str();
  EXPECT_EQ(text.find("{\"series\":[{"), 0u);
  EXPECT_NE(text.find("\"points\":[["), std::string::npos);
}

TEST(ObsTimeSeriesTest, SparklineScalesToRangeAndWidth) {
  std::vector<TimeSeriesPoint> points;
  for (int i = 0; i < 8; ++i) {
    TimeSeriesPoint p;
    p.last = static_cast<double>(i);
    points.push_back(p);
  }
  const std::string spark = render_sparkline(points);
  EXPECT_FALSE(spark.empty());
  // Monotone ramp: first cell is the lowest glyph, final cell the highest.
  EXPECT_EQ(spark.substr(0, 3), "▁");
  EXPECT_EQ(spark.substr(spark.size() - 3), "█");
  // Width cap keeps the tail (most recent points).
  const std::string tail = render_sparkline(points, 4);
  EXPECT_EQ(tail.size(), 4u * 3u);  // 4 glyphs, 3 bytes each
  EXPECT_EQ(tail.substr(tail.size() - 3), "█");
  EXPECT_TRUE(render_sparkline({}).empty());
}

}  // namespace
}  // namespace deepcat::obs
