// Prometheus exposition renderer tests: name mangling, label escaping,
// the counter/gauge/histogram shapes, and the build-info join gauge the
// HTTP /metrics endpoint serves.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace deepcat::obs {
namespace {

BuildInfo pinned_info() {
  BuildInfo info;
  info.version = "golden";
  info.backend = "pinned";
  info.simd_compiled = false;
  info.threads = 1;
  return info;
}

std::string render(const MetricsRegistry& registry) {
  std::ostringstream os;
  write_prometheus_text(os, registry.snapshot(), pinned_info());
  return os.str();
}

TEST(ObsPrometheusTest, MetricNameManglesDotsAndPrefixes) {
  EXPECT_EQ(prometheus_metric_name("net.accepted"), "deepcat_net_accepted");
  EXPECT_EQ(prometheus_metric_name("model.TS-D1.best"),
            "deepcat_model_TS_D1_best");
  EXPECT_EQ(prometheus_metric_name("rl.critic1_loss"),
            "deepcat_rl_critic1_loss");
}

TEST(ObsPrometheusTest, LabelEscaping) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label("a\nb"), "a\\nb");
}

TEST(ObsPrometheusTest, BuildInfoGaugeComesFirst) {
  MetricsRegistry registry;
  registry.counter("net.accepted").add(3);
  const std::string text = render(registry);
  EXPECT_EQ(text.find("# HELP deepcat_build_info"), 0u);
  EXPECT_NE(
      text.find("deepcat_build_info{version=\"golden\",backend=\"pinned\","
                "simd_compiled=\"false\",threads=\"1\"} 1\n"),
      std::string::npos);
}

TEST(ObsPrometheusTest, CounterRendersAsTotal) {
  MetricsRegistry registry;
  registry.counter("stream.requests_admitted").add(7);
  const std::string text = render(registry);
  EXPECT_NE(
      text.find("# TYPE deepcat_stream_requests_admitted_total counter\n"
                "deepcat_stream_requests_admitted_total 7\n"),
      std::string::npos);
}

TEST(ObsPrometheusTest, GaugeRendersStatFamily) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("stream.queue_depth");
  g.set(1.0);
  g.set(3.0);
  const std::string text = render(registry);
  EXPECT_NE(text.find("# TYPE deepcat_stream_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("deepcat_stream_queue_depth{stat=\"count\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("deepcat_stream_queue_depth{stat=\"mean\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("deepcat_stream_queue_depth{stat=\"min\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("deepcat_stream_queue_depth{stat=\"max\"} 3\n"),
            std::string::npos);
}

TEST(ObsPrometheusTest, HistogramRendersCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {1.0, 2.0, 5.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(10.0);
  const std::string text = render(registry);
  EXPECT_NE(text.find("# TYPE deepcat_lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("deepcat_lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("deepcat_lat_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("deepcat_lat_bucket{le=\"5\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("deepcat_lat_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("deepcat_lat_sum 12\n"), std::string::npos);
  EXPECT_NE(text.find("deepcat_lat_count 3\n"), std::string::npos);
}

TEST(ObsPrometheusTest, EndsWithNewlineAndHasNoTabs) {
  MetricsRegistry registry;
  registry.counter("a").add(1);
  registry.gauge("b").set(2.0);
  const std::string text = render(registry);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text.find('\t'), std::string::npos);
}

}  // namespace
}  // namespace deepcat::obs
