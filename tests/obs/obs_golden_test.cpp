// Golden trace/metrics transcripts for the obs layer: a fixed
// single-threaded scenario under the LogicalClock must export
// byte-identical metrics JSONL and Chrome trace JSON against the
// committed files in tests/obs/golden/.
//
// Regeneration (after an intentional format change):
//
//   DEEPCAT_UPDATE_GOLDEN=1 ./build/tests/obs_test \
//       --gtest_filter='ObsGoldenTest.*'
//
// then commit the rewritten tests/obs/golden/* files. See tests/README.md.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace deepcat::obs {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(DEEPCAT_OBS_GOLDEN_DIR) + "/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("DEEPCAT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write golden file " << path;
    out.write(actual.data(), static_cast<std::streamsize>(actual.size()));
    GTEST_LOG_(INFO) << "updated golden file " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with DEEPCAT_UPDATE_GOLDEN=1 (see "
                     "tests/README.md)";
  std::ostringstream buf(std::ios::binary);
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual)
      << name
      << " diverged from its golden file. If the change is intentional, "
         "regenerate with DEEPCAT_UPDATE_GOLDEN=1 and commit the result.";
}

/// The fixed scenario: a small request-shaped trace plus one of every
/// instrument kind, with values chosen to exercise fixed-point rounding
/// and histogram edges.
void run_scenario(MetricsRegistry& registry, Tracer& tracer) {
  Counter& requests = registry.counter("stream.requests_admitted");
  Gauge& loss = registry.gauge("rl.critic1_loss");
  Gauge& depth = registry.gauge("stream.queue_depth", /*deterministic=*/false);
  Histogram& rec =
      registry.histogram("stream.rec_seconds", {1.0, 5.0, 20.0, 100.0});

  for (int r = 0; r < 3; ++r) {
    const auto request = tracer.scope("request");
    const auto session = tracer.scope("session", request.id());
    const auto tune = tracer.scope("tune_online", session.id());
    requests.add(1);
    depth.set(static_cast<double>(r + 1));
    loss.set(0.125 * (r + 1));
    loss.set(-0.0625 * (r + 1));
    rec.observe(0.5 + 7.0 * r);
  }
  const auto flush = tracer.scope("flush");
  const auto merge = tracer.scope("merge", flush.id());
}

TEST(ObsGoldenTest, MetricsJsonlMatchesGolden) {
  LogicalClock clock;
  Tracer tracer(clock);
  MetricsRegistry registry;
  run_scenario(registry, tracer);
  std::ostringstream os;
  registry.write_jsonl(os);
  check_golden("metrics.jsonl.golden", os.str());
}

TEST(ObsGoldenTest, DeterministicMetricsExportOmitsQueueDepth) {
  LogicalClock clock;
  Tracer tracer(clock);
  MetricsRegistry registry;
  run_scenario(registry, tracer);
  std::ostringstream os;
  registry.write_jsonl(os, /*include_nondeterministic=*/false);
  EXPECT_EQ(os.str().find("queue_depth"), std::string::npos);
  check_golden("metrics_deterministic.jsonl.golden", os.str());
}

TEST(ObsGoldenTest, ChromeTraceMatchesGoldenAndValidates) {
  // Single-threaded + logical clock: tick assignment is fully ordered, so
  // even the trace BYTES are deterministic here (concurrent runs only
  // guarantee structure_signature equality).
  LogicalClock clock;
  Tracer tracer(clock);
  MetricsRegistry registry;
  run_scenario(registry, tracer);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const ChromeTraceCheck check = validate_chrome_trace(os.str());
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.complete_events, tracer.span_count());
  check_golden("trace.json.golden", os.str());
}

TEST(ObsGoldenTest, StructureSignatureMatchesGolden) {
  LogicalClock clock;
  Tracer tracer(clock);
  MetricsRegistry registry;
  run_scenario(registry, tracer);
  check_golden("trace_structure.txt.golden", tracer.structure_signature());
}

}  // namespace
}  // namespace deepcat::obs
