// Tracer unit tests: parent/child structure, logical-clock determinism,
// sampling and span-cap behavior, Chrome-trace structural validity.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/tracer.hpp"

namespace deepcat::obs {
namespace {

TEST(ObsTracerTest, LogicalClockTicksMonotonically) {
  LogicalClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  EXPECT_EQ(clock.now_ns(), 1000u);  // one tick = 1 us in the trace
  EXPECT_EQ(clock.now_ns(), 2000u);
  EXPECT_EQ(clock.ticks(), 3u);
  EXPECT_STREQ(clock.kind(), "logical");
}

TEST(ObsTracerTest, SpansNestByExplicitParentIds) {
  LogicalClock clock;
  Tracer tracer(clock);
  const std::uint64_t root = tracer.begin_span("request");
  ASSERT_NE(root, 0u);
  const std::uint64_t child = tracer.begin_span("session", root);
  ASSERT_NE(child, 0u);
  tracer.end_span(child);
  tracer.end_span(root);
  EXPECT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.structure_signature(),
            ">request 1\nrequest>session 1\n");
}

TEST(ObsTracerTest, ScopeEndsSpansOnExit) {
  LogicalClock clock;
  Tracer tracer(clock);
  {
    const auto outer = tracer.scope("outer");
    const auto inner = tracer.scope("inner", outer.id());
    EXPECT_NE(inner.id(), 0u);
  }
  EXPECT_EQ(tracer.span_count(), 2u);
}

TEST(ObsTracerTest, StructureSignatureIsInterleavingInvariant) {
  // The same logical work performed across different thread counts must
  // produce the identical signature — the property the streaming
  // determinism stress asserts end to end.
  auto run = [](std::size_t threads) {
    LogicalClock clock;
    Tracer tracer(clock);
    const std::uint64_t root = tracer.begin_span("batch");
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&tracer, root, threads, t] {
        for (std::size_t i = t; i < 12; i += threads) {
          const std::uint64_t s = tracer.begin_span("session", root);
          const std::uint64_t g = tracer.begin_span("gp.fit", s);
          tracer.end_span(g);
          tracer.end_span(s);
        }
      });
    }
    for (auto& w : workers) w.join();
    tracer.end_span(root);
    return tracer.structure_signature();
  };
  const std::string one = run(1);
  EXPECT_EQ(run(4), one);
  EXPECT_EQ(run(12), one);
  EXPECT_EQ(one, ">batch 1\nbatch>session 12\nsession>gp.fit 12\n");
}

TEST(ObsTracerTest, SamplingKeepsEveryNthRoot) {
  LogicalClock clock;
  Tracer tracer(clock, {.sample_every = 3});
  std::size_t kept = 0;
  for (int i = 0; i < 9; ++i) {
    const std::uint64_t id = tracer.begin_span("root");
    kept += id != 0 ? 1 : 0;
    tracer.end_span(id);
  }
  EXPECT_EQ(kept, 3u);
  EXPECT_EQ(tracer.span_count(), 3u);
}

TEST(ObsTracerTest, ChildrenOfKeptRootsSurviveSampling) {
  LogicalClock clock;
  Tracer tracer(clock, {.sample_every = 2});
  const std::uint64_t root = tracer.begin_span("r");  // root #1: kept
  ASSERT_NE(root, 0u);
  const std::uint64_t child = tracer.begin_span("c", root);
  EXPECT_NE(child, 0u);  // child of a kept root is never sampled out
  tracer.end_span(child);
  tracer.end_span(root);
}

TEST(ObsTracerTest, SpanCapDropsAndCounts) {
  LogicalClock clock;
  Tracer tracer(clock, {.max_spans = 2});
  EXPECT_NE(tracer.begin_span("a"), 0u);
  EXPECT_NE(tracer.begin_span("b"), 0u);
  EXPECT_EQ(tracer.begin_span("c"), 0u);
  EXPECT_EQ(tracer.begin_span("d"), 0u);
  EXPECT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 2u);
}

TEST(ObsTracerTest, EndSpanZeroIsANoOpAndDoubleEndKeepsFirst) {
  LogicalClock clock;
  Tracer tracer(clock);
  tracer.end_span(0);  // must not crash
  const std::uint64_t id = tracer.begin_span("s");
  tracer.end_span(id);
  tracer.end_span(id);  // second end ignored
  EXPECT_EQ(tracer.span_count(), 1u);
}

TEST(ObsTracerTest, ChromeTraceIsStructurallyValid) {
  LogicalClock clock;
  Tracer tracer(clock);
  const std::uint64_t root = tracer.begin_span("request");
  const std::uint64_t child = tracer.begin_span("session", root);
  tracer.end_span(child);
  tracer.end_span(root);
  (void)tracer.begin_span("unended");  // exports with dur 0

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string json = os.str();
  const ChromeTraceCheck check = validate_chrome_trace(json);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.complete_events, 3u);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"logical\""), std::string::npos);
}

TEST(ObsTracerTest, ValidatorRejectsBrokenTraces) {
  EXPECT_FALSE(validate_chrome_trace("").ok);
  EXPECT_FALSE(validate_chrome_trace("{}").ok);
  EXPECT_FALSE(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").ok);
  // An X event without dur is malformed.
  EXPECT_FALSE(
      validate_chrome_trace(
          "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,"
          "\"pid\":1,\"tid\":1}]}")
          .ok);
}

TEST(ObsTracerTest, SteadyClockIsMonotonicFromZero) {
  SteadyClock clock;
  const std::uint64_t a = clock.now_ns();
  const std::uint64_t b = clock.now_ns();
  EXPECT_GE(b, a);
  EXPECT_STREQ(clock.kind(), "steady");
}

}  // namespace
}  // namespace deepcat::obs
