// MetricsRegistry unit tests: snapshot consistency under concurrent
// increments, histogram bucket-edge semantics, gauge commutativity, and
// the deterministic-export filter the streaming stress tests rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "obs/metrics.hpp"

namespace deepcat::obs {
namespace {

TEST(ObsMetricsTest, CounterSumsExactlyUnderConcurrentIncrements) {
  MetricsRegistry registry;
  Counter& c = registry.counter("events");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMetricsTest, GaugeSnapshotIsIdenticalUnderConcurrentWriters) {
  // The determinism rule: the exported aggregate of a fixed multiset of
  // set() calls must not depend on which thread issued which call.
  const std::vector<double> values = {0.5, -2.25, 7.125, 0.5, 3.0, -1.0};
  auto run = [&](std::size_t threads) {
    MetricsRegistry registry;
    Gauge& g = registry.gauge("g");
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = t; i < values.size(); i += threads) {
          g.set(values[i]);
        }
      });
    }
    for (auto& w : workers) w.join();
    std::ostringstream os;
    registry.write_jsonl(os);
    return std::move(os).str();
  };
  const std::string one = run(1);
  EXPECT_EQ(run(2), one);
  EXPECT_EQ(run(3), one);
  EXPECT_EQ(run(6), one);
}

TEST(ObsMetricsTest, GaugeAggregatesCountSumMinMax) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("loss");
  EXPECT_EQ(g.count(), 0u);
  EXPECT_EQ(g.mean(), 0.0);
  EXPECT_EQ(g.min(), 0.0);  // empty gauge never exports ±inf
  EXPECT_EQ(g.max(), 0.0);
  g.set(2.0);
  g.set(-4.0);
  g.set(8.0);
  EXPECT_EQ(g.count(), 3u);
  EXPECT_DOUBLE_EQ(g.sum(), 6.0);
  EXPECT_DOUBLE_EQ(g.mean(), 2.0);
  EXPECT_DOUBLE_EQ(g.min(), -4.0);
  EXPECT_DOUBLE_EQ(g.max(), 8.0);
}

TEST(ObsMetricsTest, GaugeIgnoresNonFiniteForMinMaxAndSum) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("loss");
  g.set(1.5);
  g.set(std::numeric_limits<double>::quiet_NaN());
  g.set(std::numeric_limits<double>::infinity());
  EXPECT_EQ(g.count(), 3u);  // every set() is an observation
  EXPECT_DOUBLE_EQ(g.sum(), 1.5);  // non-finite contributes 0 to the sum
  EXPECT_DOUBLE_EQ(g.min(), 1.5);
  EXPECT_DOUBLE_EQ(g.max(), 1.5);
}

TEST(ObsMetricsTest, FixedPointRoundTripsAtMicroResolution) {
  EXPECT_EQ(from_fixed_point(to_fixed_point(0.0)), 0.0);
  EXPECT_NEAR(from_fixed_point(to_fixed_point(3.14159265)), 3.14159265, 1e-6);
  EXPECT_NEAR(from_fixed_point(to_fixed_point(-123.456)), -123.456, 1e-6);
  EXPECT_EQ(to_fixed_point(std::numeric_limits<double>::quiet_NaN()), 0);
  EXPECT_EQ(to_fixed_point(1e300),
            std::numeric_limits<std::int64_t>::max());  // saturates, no UB
  EXPECT_EQ(to_fixed_point(-1e300), std::numeric_limits<std::int64_t>::min());
}

TEST(ObsMetricsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {1.0, 2.0, 5.0});
  h.observe(0.5);   // <= 1          -> bucket 0
  h.observe(1.0);   // == edge 1     -> bucket 0 (inclusive upper bound)
  h.observe(1.001); // (1, 2]        -> bucket 1
  h.observe(2.0);   // == edge 2     -> bucket 1
  h.observe(5.0);   // == edge 5     -> bucket 2
  h.observe(5.001); // beyond last   -> overflow bucket
  h.observe(-3.0);  // below first   -> bucket 0
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 7u);
}

TEST(ObsMetricsTest, HistogramRejectsBadEdges) {
  MetricsRegistry registry;
  EXPECT_THROW((void)registry.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("dup", {1.0, 1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("desc", {2.0, 1.0}),
               std::invalid_argument);
}

TEST(ObsMetricsTest, ReRegistrationReturnsTheSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("c");
  Counter& b = registry.counter("c");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("h", {1.0, 2.0});
  Histogram& h2 = registry.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ObsMetricsTest, ReRegistrationWithMismatchThrows) {
  MetricsRegistry registry;
  (void)registry.counter("m");
  EXPECT_THROW((void)registry.gauge("m"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("m", {1.0}), std::invalid_argument);
  (void)registry.histogram("h", {1.0, 2.0});
  EXPECT_THROW((void)registry.histogram("h", {1.0, 3.0}),
               std::invalid_argument);
}

TEST(ObsMetricsTest, HistogramQuantileInterpolatesWithinBuckets) {
  // Uniform mass across three equal-width buckets: quantiles are linear
  // over [0, 30] and exact at every bucket boundary.
  const std::vector<double> edges{10.0, 20.0, 30.0};
  const std::vector<std::uint64_t> counts{10, 10, 10, 0};
  EXPECT_DOUBLE_EQ(histogram_quantile(edges, counts, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(edges, counts, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(edges, counts, 1.0 / 3.0), 10.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(edges, counts, 0.9), 27.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(edges, counts, 1.0), 30.0);
  // Out-of-range and non-finite q clamp rather than misbehave.
  EXPECT_DOUBLE_EQ(histogram_quantile(edges, counts, -3.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(edges, counts, 7.0), 30.0);
  EXPECT_DOUBLE_EQ(
      histogram_quantile(edges, counts,
                         std::numeric_limits<double>::quiet_NaN()),
      0.0);
}

TEST(ObsMetricsTest, HistogramQuantileEdgeCases) {
  const std::vector<double> edges{10.0, 20.0, 30.0};
  // Empty histogram and malformed counts report 0.
  EXPECT_DOUBLE_EQ(histogram_quantile(edges, {0, 0, 0, 0}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(edges, {1, 2}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile({}, {}, 0.5), 0.0);
  // Ranks landing in the overflow bucket report the last finite edge —
  // the tightest bound the histogram can state.
  EXPECT_DOUBLE_EQ(histogram_quantile(edges, {5, 0, 0, 5}, 0.9), 30.0);
  // A negative first edge is its own lower bound (no mass below it is
  // representable), so the whole first bucket collapses onto the edge.
  EXPECT_DOUBLE_EQ(histogram_quantile({-5.0, 5.0}, {4, 0, 0}, 0.5), -5.0);
}

TEST(ObsMetricsTest, HistogramQuantileLandsInSnapshotAndJson) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);    // bucket 0
  for (int i = 0; i < 10; ++i) h.observe(15.0);   // bucket 1
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_DOUBLE_EQ(snaps[0].p50, h.quantile(0.5));
  EXPECT_DOUBLE_EQ(snaps[0].p95, h.quantile(0.95));
  EXPECT_DOUBLE_EQ(snaps[0].p99, h.quantile(0.99));
  std::ostringstream os;
  registry.write_jsonl(os);
  const std::string line = os.str();
  EXPECT_NE(line.find("\"p50\":"), std::string::npos);
  EXPECT_NE(line.find("\"p95\":"), std::string::npos);
  EXPECT_NE(line.find("\"p99\":"), std::string::npos);
}

TEST(ObsMetricsTest, HistogramQuantileTracksExactQuantilesWithinBucketWidth) {
  // Cross-check against the exact-mode QuantileTracker on the same
  // stream: the bucketed estimate may only be off by interpolation error
  // inside one bucket, never by more than a bucket width.
  std::vector<double> edges;
  for (double e = 5.0; e <= 100.0; e += 5.0) edges.push_back(e);
  const double bucket_width = 5.0;
  MetricsRegistry registry;
  Histogram& h = registry.histogram("x", edges);
  common::QuantileTracker exact;
  for (int i = 0; i < 2000; ++i) {
    // Deterministic scramble of (0, 100): i*37 mod 1000, scaled.
    const double v = static_cast<double>((i * 37) % 1000) / 10.0 + 0.05;
    h.observe(v);
    exact.add(v);
  }
  for (const double q : {0.05, 0.25, 0.5, 0.9, 0.95, 0.99}) {
    EXPECT_NEAR(h.quantile(q), exact.quantile(q), bucket_width)
        << "q=" << q;
  }
}

TEST(ObsMetricsTest, DeterministicExportSkipsNondeterministicMetrics) {
  MetricsRegistry registry;
  registry.counter("det").add(2);
  registry.gauge("queue_depth", /*deterministic=*/false).set(7.0);
  const auto full = registry.snapshot(/*include_nondeterministic=*/true);
  const auto det = registry.snapshot(/*include_nondeterministic=*/false);
  EXPECT_EQ(full.size(), 2u);
  ASSERT_EQ(det.size(), 1u);
  EXPECT_EQ(det[0].name, "det");
  std::ostringstream os;
  registry.write_jsonl(os, /*include_nondeterministic=*/false);
  EXPECT_EQ(os.str().find("queue_depth"), std::string::npos);
}

TEST(ObsMetricsTest, SnapshotIsNameSortedAndJsonlIsOneObjectPerLine) {
  MetricsRegistry registry;
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(1);
  registry.gauge("m.middle").set(1.0);
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "a.first");
  EXPECT_EQ(snaps[1].name, "m.middle");
  EXPECT_EQ(snaps[2].name, "z.last");
  std::ostringstream os;
  registry.write_jsonl(os);
  const std::string out = os.str();
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);
  // Every line is a braced object.
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

}  // namespace
}  // namespace deepcat::obs
