// Streaming span export: ring drain semantics (back-pressure, no loss),
// bounded memory, health instruments, signature parity with retained
// mode, and the ChromeTraceFileSink valid-at-every-flush framing.
#include "obs/exporter.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace deepcat::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ObsExporterTest, CallbackSinkReceivesCompletedSpansInOrder) {
  std::vector<SpanRecord> seen;
  CallbackSpanSink sink([&seen](const SpanRecord& s) { seen.push_back(s); });
  LogicalClock clock;
  Tracer tracer(clock, {.exporter = &sink, .ring_capacity = 2});

  const std::uint64_t root = tracer.begin_span("request");
  const std::uint64_t child = tracer.begin_span("session", root);
  tracer.end_span(child);
  tracer.end_span(root);  // second completion fills the ring -> drain
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].name, "session");
  EXPECT_EQ(seen[0].parent, root);
  EXPECT_EQ(seen[1].name, "request");
  EXPECT_EQ(seen[1].parent, 0u);
  EXPECT_LE(seen[0].t0, seen[0].t1);
  EXPECT_EQ(tracer.exported_spans(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 0u);
}

TEST(ObsExporterTest, RingDrainBoundsMemoryWithZeroLoss) {
  std::size_t exported = 0;
  CallbackSpanSink sink([&exported](const SpanRecord&) { ++exported; });
  LogicalClock clock;
  constexpr std::size_t kRing = 4;
  Tracer tracer(clock, {.exporter = &sink, .ring_capacity = kRing});

  constexpr std::size_t kSpans = 1000;
  for (std::size_t i = 0; i < kSpans; ++i) {
    const std::uint64_t id = tracer.begin_span("work");
    tracer.end_span(id);
    // Memory stays O(ring + open spans) mid-stream, not O(trace).
    ASSERT_LE(tracer.retained_spans(), kRing);
  }
  tracer.flush_exporter();
  EXPECT_EQ(exported, kSpans);
  EXPECT_EQ(tracer.exported_spans(), kSpans);
  EXPECT_EQ(tracer.span_count(), kSpans);
  EXPECT_EQ(tracer.dropped_spans(), 0u);  // drain, never drop
  EXPECT_GE(tracer.ring_highwater(), 1u);
  EXPECT_LE(tracer.ring_highwater(), kRing);
}

TEST(ObsExporterTest, StreamingCapLimitsOpenSpansOnly) {
  CallbackSpanSink sink([](const SpanRecord&) {});
  LogicalClock clock;
  Tracer tracer(clock,
                {.max_spans = 2, .exporter = &sink, .ring_capacity = 8});

  const std::uint64_t a = tracer.begin_span("a");
  const std::uint64_t b = tracer.begin_span("b");
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_EQ(tracer.begin_span("c"), 0u);  // 2 already open
  EXPECT_EQ(tracer.dropped_spans(), 1u);
  tracer.end_span(a);
  // Completed spans never count against the cap: room again.
  const std::uint64_t d = tracer.begin_span("d");
  EXPECT_NE(d, 0u);
  tracer.end_span(d);
  tracer.end_span(b);
  tracer.flush_exporter();
  EXPECT_EQ(tracer.exported_spans(), 3u);
}

TEST(ObsExporterTest, DestructorFlushesTheRing) {
  std::size_t exported = 0;
  CallbackSpanSink sink([&exported](const SpanRecord&) { ++exported; });
  LogicalClock clock;
  {
    Tracer tracer(clock, {.exporter = &sink, .ring_capacity = 64});
    for (int i = 0; i < 5; ++i) {
      tracer.end_span(tracer.begin_span("s"));  // never fills the ring
    }
    EXPECT_EQ(exported, 0u);
  }
  EXPECT_EQ(exported, 5u);
}

TEST(ObsExporterTest, StructureSignatureMatchesRetainedMode) {
  auto run = [](SpanSink* sink) {
    LogicalClock clock;
    TracerOptions options;
    options.exporter = sink;
    options.ring_capacity = 2;
    Tracer tracer(clock, options);
    const std::uint64_t root = tracer.begin_span("batch");
    for (int i = 0; i < 6; ++i) {
      const std::uint64_t s = tracer.begin_span("session", root);
      const std::uint64_t g = tracer.begin_span("gp.fit", s);
      tracer.end_span(g);
      tracer.end_span(s);
    }
    tracer.end_span(root);
    return tracer.structure_signature();
  };
  CallbackSpanSink sink([](const SpanRecord&) {});
  const std::string streaming = run(&sink);
  const std::string retained = run(nullptr);
  EXPECT_EQ(streaming, retained);
  EXPECT_EQ(streaming, ">batch 1\nbatch>session 6\nsession>gp.fit 6\n");
}

TEST(ObsExporterTest, HealthInstrumentsLandInTheRegistry) {
  MetricsRegistry registry;
  CallbackSpanSink sink([](const SpanRecord&) {});
  LogicalClock clock;
  Tracer tracer(clock, {.sample_every = 2,
                        .max_spans = 1,
                        .exporter = &sink,
                        .ring_capacity = 4,
                        .health = &registry});
  const std::uint64_t a = tracer.begin_span("a");  // root #1: kept
  ASSERT_NE(a, 0u);
  // A child while `a` is open trips the open-span cap (a second root
  // would be sampled out instead, which does not count as a drop).
  EXPECT_EQ(tracer.begin_span("b", a), 0u);
  tracer.end_span(a);
  tracer.flush_exporter();

  bool saw_emitted = false, saw_dropped = false, saw_highwater = false,
       saw_sample = false;
  for (const MetricSnapshot& snap : registry.snapshot(true)) {
    if (snap.name == "obs.spans.emitted") {
      saw_emitted = true;
      EXPECT_TRUE(snap.deterministic);
      EXPECT_EQ(snap.counter_value, 1u);
    } else if (snap.name == "obs.spans.dropped") {
      saw_dropped = true;
      EXPECT_FALSE(snap.deterministic);
      EXPECT_EQ(snap.counter_value, 1u);
    } else if (snap.name == "obs.spans.ring_highwater") {
      saw_highwater = true;
      EXPECT_FALSE(snap.deterministic);
    } else if (snap.name == "obs.sample_every") {
      saw_sample = true;
      EXPECT_TRUE(snap.deterministic);
      EXPECT_EQ(snap.mean, 2.0);
    }
  }
  EXPECT_TRUE(saw_emitted);
  EXPECT_TRUE(saw_dropped);
  EXPECT_TRUE(saw_highwater);
  EXPECT_TRUE(saw_sample);
}

TEST(ObsExporterTest, ChromeTraceFileIsValidAtEveryFlushBoundary) {
  const std::string path =
      ::testing::TempDir() + "deepcat_exporter_trace.json";
  LogicalClock clock;
  {
    ChromeTraceFileSink sink(path, "logical");
    // Valid immediately after construction (zero spans).
    {
      const ChromeTraceCheck empty = validate_chrome_trace(read_file(path));
      EXPECT_TRUE(empty.ok) << empty.error;
      EXPECT_EQ(empty.complete_events, 0u);
    }
    Tracer tracer(clock, {.exporter = &sink, .ring_capacity = 3});
    for (std::size_t i = 0; i < 10; ++i) {
      const std::uint64_t root = tracer.begin_span("request");
      tracer.end_span(tracer.begin_span("session", root));
      tracer.end_span(root);
      tracer.flush_exporter();
      // The tail-rewind framing keeps the on-disk file a complete trace
      // after every flush — a crash here would still leave parseable JSON.
      const ChromeTraceCheck check = validate_chrome_trace(read_file(path));
      ASSERT_TRUE(check.ok) << "after flush " << i << ": " << check.error;
      ASSERT_EQ(check.complete_events, 2 * (i + 1));
    }
    EXPECT_EQ(sink.exported_spans(), 20u);
  }
  const std::string json = read_file(path);
  const ChromeTraceCheck final_check = validate_chrome_trace(json);
  EXPECT_TRUE(final_check.ok) << final_check.error;
  EXPECT_EQ(final_check.complete_events, 20u);
  EXPECT_NE(json.find("\"logical\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsExporterTest, StreamingModeChromeTraceIsEmptyButValid) {
  CallbackSpanSink sink([](const SpanRecord&) {});
  LogicalClock clock;
  Tracer tracer(clock, {.exporter = &sink, .ring_capacity = 2});
  tracer.end_span(tracer.begin_span("s"));
  std::ostringstream os;
  tracer.write_chrome_trace(os);  // exporter owns the spans
  const ChromeTraceCheck check = validate_chrome_trace(os.str());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.complete_events, 0u);
}

TEST(ObsExporterTest, RingCapacityMustBePositiveWithExporter) {
  CallbackSpanSink sink([](const SpanRecord&) {});
  LogicalClock clock;
  EXPECT_THROW(Tracer(clock, {.exporter = &sink, .ring_capacity = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace deepcat::obs
