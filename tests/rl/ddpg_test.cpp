#include "rl/ddpg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rl/replay.hpp"
#include "rl/replay_per.hpp"

namespace deepcat::rl {
namespace {

DdpgConfig small_config() {
  DdpgConfig c;
  c.state_dim = 2;
  c.action_dim = 1;
  c.hidden = {24, 24};
  c.gamma = 0.3;
  c.actor_lr = 1e-3;
  c.critic_lr = 2e-3;
  c.batch_size = 32;
  return c;
}

void fill_bandit_buffer(ReplayBuffer& buffer, common::Rng& rng,
                        double optimum, int n) {
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform();
    const double r = 1.0 - 2.0 * std::abs(a - optimum);
    buffer.add({{0.5, 0.5}, {a}, r, {0.5, 0.5}, true});
  }
}

TEST(DdpgTest, ConfigValidation) {
  common::Rng rng(1);
  DdpgConfig c = small_config();
  c.action_dim = 0;
  EXPECT_THROW(DdpgAgent(c, rng), std::invalid_argument);
  c = small_config();
  c.batch_size = 0;
  EXPECT_THROW(DdpgAgent(c, rng), std::invalid_argument);
}

TEST(DdpgTest, ActionsInUnitCube) {
  common::Rng rng(2);
  DdpgAgent agent(small_config(), rng);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> st{rng.uniform(), rng.uniform()};
    const auto a = agent.act(st);
    EXPECT_GE(a[0], 0.0);
    EXPECT_LE(a[0], 1.0);
  }
}

TEST(DdpgTest, ActRejectsWrongStateDim) {
  common::Rng rng(3);
  DdpgAgent agent(small_config(), rng);
  const std::vector<double> bad{0.1, 0.2, 0.3};
  EXPECT_THROW((void)agent.act(bad), std::invalid_argument);
}

TEST(DdpgTest, LearnsBanditOptimum) {
  common::Rng rng(4);
  DdpgAgent agent(small_config(), rng);
  UniformReplay buffer(4096);
  fill_bandit_buffer(buffer, rng, 0.2, 2000);
  for (int i = 0; i < 1500; ++i) (void)agent.train_step(buffer, rng);
  const std::vector<double> st{0.5, 0.5};
  EXPECT_NEAR(agent.act(st)[0], 0.2, 0.15);
}

TEST(DdpgTest, QValueTracksReward) {
  common::Rng rng(5);
  DdpgAgent agent(small_config(), rng);
  UniformReplay buffer(4096);
  fill_bandit_buffer(buffer, rng, 0.5, 2000);
  for (int i = 0; i < 1500; ++i) (void)agent.train_step(buffer, rng);
  const std::vector<double> s{0.5, 0.5};
  const std::vector<double> mid{0.5}, hi{0.95};
  EXPECT_GT(agent.q_value(s, mid), agent.q_value(s, hi) + 0.2);
}

TEST(DdpgTest, TrainStepCountsAndReportsLosses) {
  common::Rng rng(6);
  DdpgAgent agent(small_config(), rng);
  UniformReplay buffer(256);
  fill_bandit_buffer(buffer, rng, 0.5, 64);
  const auto stats = agent.train_step(buffer, rng);
  EXPECT_EQ(agent.train_steps(), 1u);
  EXPECT_GE(stats.critic_loss, 0.0);
  EXPECT_TRUE(std::isfinite(stats.actor_loss));
}

TEST(DdpgTest, SaveLoadRoundTrip) {
  common::Rng rng(7);
  DdpgAgent a(small_config(), rng);
  DdpgAgent b(small_config(), rng);
  UniformReplay buffer(256);
  fill_bandit_buffer(buffer, rng, 0.5, 64);
  for (int i = 0; i < 30; ++i) (void)a.train_step(buffer, rng);
  std::stringstream ss;
  a.save(ss);
  b.load(ss);
  const std::vector<double> s{0.1, 0.7};
  EXPECT_EQ(a.act(s), b.act(s));
  const std::vector<double> probe{0.3};
  EXPECT_DOUBLE_EQ(a.q_value(s, probe), b.q_value(s, probe));
}

TEST(DdpgTest, WorksWithPrioritizedReplay) {
  // CDBTune's actual pairing: DDPG + PER. A few steps must run cleanly
  // and feed priorities back.
  common::Rng rng(8);
  DdpgAgent agent(small_config(), rng);
  PrioritizedReplay buffer(512);
  fill_bandit_buffer(buffer, rng, 0.5, 128);
  for (int i = 0; i < 20; ++i) {
    const auto stats = agent.train_step(buffer, rng);
    EXPECT_TRUE(std::isfinite(stats.critic_loss));
  }
}

}  // namespace
}  // namespace deepcat::rl
