#include "rl/sum_tree.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/rng.hpp"

namespace deepcat::rl {
namespace {

TEST(SumTreeTest, RejectsZeroCapacity) {
  EXPECT_THROW(SumTree(0), std::invalid_argument);
}

TEST(SumTreeTest, TotalTracksUpdates) {
  SumTree tree(4);
  EXPECT_DOUBLE_EQ(tree.total(), 0.0);
  tree.set(0, 1.0);
  tree.set(3, 2.5);
  EXPECT_DOUBLE_EQ(tree.total(), 3.5);
  tree.set(0, 0.5);  // overwrite, not add
  EXPECT_DOUBLE_EQ(tree.total(), 3.0);
  EXPECT_DOUBLE_EQ(tree.get(0), 0.5);
}

TEST(SumTreeTest, NonPowerOfTwoCapacity) {
  SumTree tree(5);
  for (std::size_t i = 0; i < 5; ++i) tree.set(i, 1.0);
  EXPECT_DOUBLE_EQ(tree.total(), 5.0);
  EXPECT_EQ(tree.find_prefix(4.5), 4u);
}

TEST(SumTreeTest, BoundsChecking) {
  SumTree tree(4);
  EXPECT_THROW(tree.set(4, 1.0), std::out_of_range);
  EXPECT_THROW((void)tree.get(4), std::out_of_range);
  EXPECT_THROW(tree.set(0, -1.0), std::invalid_argument);
}

TEST(SumTreeTest, FindPrefixSelectsCorrectLeaf) {
  SumTree tree(4);
  tree.set(0, 1.0);
  tree.set(1, 2.0);
  tree.set(2, 3.0);
  tree.set(3, 4.0);
  EXPECT_EQ(tree.find_prefix(0.5), 0u);
  EXPECT_EQ(tree.find_prefix(1.5), 1u);
  EXPECT_EQ(tree.find_prefix(3.5), 2u);
  EXPECT_EQ(tree.find_prefix(9.9), 3u);
}

TEST(SumTreeTest, FindPrefixAtBoundaries) {
  SumTree tree(2);
  tree.set(0, 1.0);
  tree.set(1, 1.0);
  EXPECT_EQ(tree.find_prefix(0.0), 0u);
  EXPECT_EQ(tree.find_prefix(1.0), 1u);
}

TEST(SumTreeTest, SamplingFollowsPriorities) {
  SumTree tree(3);
  tree.set(0, 1.0);
  tree.set(1, 3.0);
  tree.set(2, 6.0);
  common::Rng rng(1);
  std::array<int, 3> counts{};
  const int draws = 60'000;
  for (int i = 0; i < draws; ++i) {
    counts[tree.find_prefix(rng.uniform() * tree.total())]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.6, 0.01);
}

TEST(SumTreeTest, ZeroPriorityLeafIsNeverSampled) {
  SumTree tree(3);
  tree.set(0, 1.0);
  tree.set(1, 0.0);
  tree.set(2, 1.0);
  common::Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(tree.find_prefix(rng.uniform() * tree.total()), 1u);
  }
}

TEST(SumTreeTest, MinNonzero) {
  SumTree tree(4);
  EXPECT_TRUE(std::isinf(tree.min_nonzero()));
  tree.set(1, 5.0);
  tree.set(2, 0.25);
  EXPECT_DOUBLE_EQ(tree.min_nonzero(), 0.25);
}

}  // namespace
}  // namespace deepcat::rl
