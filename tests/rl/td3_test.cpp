#include "rl/td3.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rl/replay.hpp"

namespace deepcat::rl {
namespace {

Td3Config small_config() {
  Td3Config c;
  c.state_dim = 2;
  c.action_dim = 1;
  c.hidden = {24, 24};
  c.gamma = 0.3;
  c.actor_lr = 1e-3;
  c.critic_lr = 2e-3;
  c.batch_size = 32;
  return c;
}

// A one-step bandit: reward depends only on the action, peaked at a*.
// The agent should learn to act near a*.
void fill_bandit_buffer(ReplayBuffer& buffer, common::Rng& rng,
                        double optimum, int n) {
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform();
    const double r = 1.0 - 2.0 * std::abs(a - optimum);
    buffer.add({{0.5, 0.5}, {a}, r, {0.5, 0.5}, true});
  }
}

TEST(Td3Test, ConfigValidation) {
  common::Rng rng(1);
  Td3Config c = small_config();
  c.state_dim = 0;
  EXPECT_THROW(Td3Agent(c, rng), std::invalid_argument);
  c = small_config();
  c.batch_size = 0;
  EXPECT_THROW(Td3Agent(c, rng), std::invalid_argument);
  c = small_config();
  c.policy_delay = 0;
  EXPECT_THROW(Td3Agent(c, rng), std::invalid_argument);
  c = small_config();
  c.gamma = 1.5;
  EXPECT_THROW(Td3Agent(c, rng), std::invalid_argument);
}

TEST(Td3Test, ActionsAreInUnitCube) {
  common::Rng rng(2);
  Td3Agent agent(small_config(), rng);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> st{rng.uniform(), rng.uniform()};
    const auto a = agent.act(st);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_GE(a[0], 0.0);
    EXPECT_LE(a[0], 1.0);
  }
}

TEST(Td3Test, ActRejectsWrongStateDim) {
  common::Rng rng(3);
  Td3Agent agent(small_config(), rng);
  const std::vector<double> bad{0.1};
  EXPECT_THROW((void)agent.act(bad), std::invalid_argument);
}

TEST(Td3Test, NoisyActionsStayClampedAndDiffer) {
  common::Rng rng(4);
  Td3Agent agent(small_config(), rng);
  const std::vector<double> s{0.5, 0.5};
  const auto clean = agent.act(s);
  bool any_diff = false;
  for (int i = 0; i < 50; ++i) {
    const auto noisy = agent.act_noisy(s, 0.3, rng);
    EXPECT_GE(noisy[0], 0.0);
    EXPECT_LE(noisy[0], 1.0);
    any_diff |= (noisy[0] != clean[0]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Td3Test, MinQIsMinimumOfTwins) {
  common::Rng rng(5);
  Td3Agent agent(small_config(), rng);
  const std::vector<double> s{0.2, 0.8};
  const std::vector<double> a{0.5};
  const auto [q1, q2] = agent.twin_q(s, a);
  EXPECT_DOUBLE_EQ(agent.min_q(s, a), std::min(q1, q2));
}

TEST(Td3Test, LearnsBanditOptimum) {
  common::Rng rng(6);
  Td3Agent agent(small_config(), rng);
  UniformReplay buffer(4096);
  fill_bandit_buffer(buffer, rng, 0.8, 2000);
  for (int i = 0; i < 1500; ++i) (void)agent.train_step(buffer, rng);
  const std::vector<double> st{0.5, 0.5};
  const auto a = agent.act(st);
  EXPECT_NEAR(a[0], 0.8, 0.15);
}

TEST(Td3Test, CriticTracksBanditReward) {
  common::Rng rng(7);
  Td3Agent agent(small_config(), rng);
  UniformReplay buffer(4096);
  fill_bandit_buffer(buffer, rng, 0.5, 2000);
  for (int i = 0; i < 1500; ++i) (void)agent.train_step(buffer, rng);
  // Q(s, 0.5) should clearly beat Q(s, 0.05) — the reward gap is 0.9.
  const std::vector<double> s{0.5, 0.5};
  const std::vector<double> mid{0.5}, lo{0.05};
  EXPECT_GT(agent.min_q(s, mid), agent.min_q(s, lo) + 0.2);
}

TEST(Td3Test, ActorLossOnlyOnDelayedSteps) {
  common::Rng rng(8);
  Td3Config c = small_config();
  c.policy_delay = 2;
  Td3Agent agent(c, rng);
  UniformReplay buffer(256);
  fill_bandit_buffer(buffer, rng, 0.5, 64);
  const auto s1 = agent.train_step(buffer, rng);
  const auto s2 = agent.train_step(buffer, rng);
  EXPECT_FALSE(s1.actor_loss.has_value());
  EXPECT_TRUE(s2.actor_loss.has_value());
  EXPECT_EQ(agent.train_steps(), 2u);
}

TEST(Td3Test, CriticLossDecreasesOnStationaryData) {
  common::Rng rng(9);
  Td3Agent agent(small_config(), rng);
  UniformReplay buffer(2048);
  fill_bandit_buffer(buffer, rng, 0.6, 1024);
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 100; ++i) early += agent.train_step(buffer, rng).critic1_loss;
  for (int i = 0; i < 900; ++i) (void)agent.train_step(buffer, rng);
  for (int i = 0; i < 100; ++i) late += agent.train_step(buffer, rng).critic1_loss;
  EXPECT_LT(late, early);
}

TEST(Td3Test, SaveLoadRoundTrip) {
  common::Rng rng(10);
  Td3Agent a(small_config(), rng);
  Td3Agent b(small_config(), rng);  // different random init
  UniformReplay buffer(256);
  fill_bandit_buffer(buffer, rng, 0.7, 128);
  for (int i = 0; i < 50; ++i) (void)a.train_step(buffer, rng);

  std::stringstream ss;
  a.save(ss);
  b.load(ss);
  const std::vector<double> s{0.3, 0.9};
  EXPECT_EQ(a.act(s), b.act(s));
  const std::vector<double> act{0.4};
  EXPECT_EQ(a.twin_q(s, act), b.twin_q(s, act));
}

// Regression for the checkpoint-completeness bug: save used to drop the
// Adam optimizer state (moment vectors + step counts), so a saved-then-
// loaded agent fine-tuned differently from one that was never saved.
// Train, fork the RNG, then continue training the original and a
// save->load clone through identical streams: every result must match
// bit for bit.
TEST(Td3Test, SaveLoadThenTrainMatchesNeverSavedBitExact) {
  common::Rng rng(12);
  Td3Agent original(small_config(), rng);
  UniformReplay buffer(512);
  fill_bandit_buffer(buffer, rng, 0.7, 256);
  for (int i = 0; i < 50; ++i) (void)original.train_step(buffer, rng);

  std::stringstream ss;
  original.save(ss);
  const common::RngState fork = rng.state();

  // Path A: the never-serialized agent keeps training.
  for (int i = 0; i < 25; ++i) (void)original.train_step(buffer, rng);

  // Path B: a fresh agent restored from the checkpoint trains through an
  // identical RNG stream. Without Adam moments + step counts in the
  // checkpoint the adaptive learning rates diverge immediately.
  common::Rng other_init(999);
  Td3Agent clone(small_config(), other_init);
  clone.load(ss);
  EXPECT_EQ(clone.train_steps(), original.train_steps() - 25);
  common::Rng replay_rng(1);
  replay_rng.restore(fork);
  for (int i = 0; i < 25; ++i) (void)clone.train_step(buffer, replay_rng);

  const std::vector<double> s{0.3, 0.9};
  EXPECT_EQ(original.act(s), clone.act(s));
  const std::vector<double> act{0.4};
  EXPECT_EQ(original.twin_q(s, act), clone.twin_q(s, act));
  EXPECT_EQ(original.train_steps(), clone.train_steps());
}

TEST(Td3Test, LoadRejectsTruncatedStream) {
  common::Rng rng(13);
  Td3Agent a(small_config(), rng);
  std::stringstream ss;
  a.save(ss);
  const std::string full = ss.str();
  std::istringstream cut(full.substr(0, full.size() / 3));
  Td3Agent b(small_config(), rng);
  EXPECT_THROW(b.load(cut), std::runtime_error);
}

TEST(Td3Test, TrainStepFeedsPriorityUpdates) {
  // A PER buffer must receive update_priorities from the TD3 training
  // loop — verified through a spy buffer.
  class SpyBuffer : public ReplayBuffer {
   public:
    explicit SpyBuffer(std::size_t capacity) : inner_(capacity) {}
    void add(Transition t) override { inner_.add(std::move(t)); }
    SampledBatch sample(std::size_t m, common::Rng& rng) override {
      return inner_.sample(m, rng);
    }
    void update_priorities(std::span<const std::uint64_t> ids,
                           std::span<const double> tds) override {
      updates += ids.size();
      EXPECT_EQ(ids.size(), tds.size());
    }
    std::size_t size() const noexcept override { return inner_.size(); }
    std::size_t capacity() const noexcept override {
      return inner_.capacity();
    }
    std::size_t updates = 0;

   private:
    UniformReplay inner_;
  };
  common::Rng rng(11);
  Td3Agent agent(small_config(), rng);
  SpyBuffer buffer(256);
  fill_bandit_buffer(buffer, rng, 0.5, 64);
  (void)agent.train_step(buffer, rng);
  EXPECT_EQ(buffer.updates, agent.config().batch_size);
}

}  // namespace
}  // namespace deepcat::rl
